//! Building a custom scanner actor from samplers, and inspecting the
//! ground-truth fleet behind the paper's Table 2.
//!
//! ```sh
//! cargo run --release --example scanner_fleet
//! ```

use lumen6::prelude::*;
use lumen6::scanners::{actor::Schedule, IidMode, PortSampler, SourceSampler, TargetSampler};

fn main() {
    // A custom actor: sources spread across a /48, structured-IID prefix
    // sweep, progressive daily port rotation.
    let actor = ScannerActor {
        name: "demo-scanner".into(),
        asn: 65_000,
        sources: SourceSampler::RandomInPrefix("2001:db8:42::/48".parse().unwrap()),
        targets: TargetSampler::PrefixSweep {
            prefixes: vec!["2001:200::/32".parse().unwrap()],
            iid: IidMode::LowHamming(6),
            subnets_per_prefix: 1 << 14,
        },
        ports: PortSampler::DailyRotate {
            proto: Transport::Tcp,
            pool: PortSampler::common_tcp_ports(100),
            per_day: 6,
        },
        schedule: Schedule::continuous(0, 7, 400),
        probe_len: 60,
    };
    let packets = actor.generate(1);
    println!("demo actor emitted {} probes over a week", packets.len());

    // It is invisible without aggregation and obvious at /48 — exactly the
    // paper's methodological point.
    for agg in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        let scans = detect(&packets, ScanDetectorConfig::paper(agg));
        println!(
            "  at {agg}: {} scans from {} sources",
            scans.scans(),
            scans.sources()
        );
    }

    // The calibrated paper fleet and its ground truth.
    let world = World::build(FleetConfig::small());
    println!(
        "\nTable-2 ground truth ({} actors total):",
        world.fleet.actors.len()
    );
    println!("rank  type                 paper packets  paper /48,/64,/128   sim prefix");
    for t in &world.fleet.truth {
        println!(
            "#{:<4} {:<20} {:>7.1}M       {:>4} / {:>4} / {:>4}   {}",
            t.rank,
            t.as_type.to_string() + " (" + &t.country + ")",
            t.paper_packets_m,
            t.paper_sources.0,
            t.paper_sources.1,
            t.paper_sources.2,
            t.prefix
        );
    }
}
