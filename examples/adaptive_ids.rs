//! The adaptive-aggregation IDS (§5 discussion, implemented): resolve the
//! right aggregation level per actor instead of fixing a mask, and estimate
//! blocklisting collateral.
//!
//! Three adversarial workloads:
//! 1. a heavy single /128 — must alert as exactly that /128;
//! 2. an AS#18-style scanner spreading one-packet sources across a /32 —
//!    invisible at any fixed fine mask, must alert as the /32;
//! 3. a multi-tenant cloud /64 with two scanning tenants among hundreds of
//!    benign ones — must alert the two /128s, not the whole /64.
//!
//! ```sh
//! cargo run --release --example adaptive_ids
//! ```

use lumen6::detect::adaptive::{AdaptiveConfig, AdaptiveIds};
use lumen6::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut window: Vec<PacketRecord> = Vec::new();

    // 1. Heavy single host: 300 destinations.
    let heavy: u128 = "2001:db8:1::1"
        .parse::<std::net::Ipv6Addr>()
        .unwrap()
        .into();
    for i in 0..300u64 {
        window.push(PacketRecord::tcp(
            i * 10,
            heavy,
            0xa000 + u128::from(i),
            1,
            22,
            60,
        ));
    }

    // 2. /32-spread scanner: 800 one-packet sources across random /48s of
    // 2001:db9::/32.
    let spread: Ipv6Prefix = "2001:db9::/32".parse().unwrap();
    for i in 0..800u64 {
        let src = lumen6::addr::gen::random_in_prefix(&mut rng, spread);
        window.push(PacketRecord::tcp(
            100_000 + i * 5,
            src,
            0xb000 + u128::from(i),
            1,
            22,
            60,
        ));
    }

    // 3. Multi-tenant cloud /64: two scanning tenants + 300 benign hosts.
    let cloud: Ipv6Prefix = "2001:dba:0:1::/64".parse().unwrap();
    for (t, tenant) in [(0u64, cloud.bits() | 0x11), (1, cloud.bits() | 0x22)] {
        for i in 0..200u64 {
            window.push(PacketRecord::tcp(
                200_000 + t * 50_000 + i * 7,
                tenant,
                0xc000 + u128::from(t) * 0x1000 + u128::from(i),
                1,
                443,
                60,
            ));
        }
    }
    for i in 0..300u64 {
        let benign = cloud.bits() | (0x8000 + u128::from(i));
        window.push(PacketRecord::tcp(
            250_000 + i * 11,
            benign,
            0xdddd,
            1,
            80,
            120,
        ));
    }

    lumen6::trace::sort_by_time(&mut window);

    let alerts = AdaptiveIds::new(AdaptiveConfig::default()).analyze(&window);
    println!("{} alerts:\n", alerts.len());
    for a in &alerts {
        println!(
            "  {} (/{}) — {} packets, {} destinations, {} contributing sources",
            a.prefix,
            a.prefix.len(),
            a.packets,
            a.distinct_dsts,
            a.contributing_srcs
        );
        println!(
            "      collateral if blocklisted: {} low-activity sources{}",
            a.collateral_srcs,
            if a.subsumed.is_empty() {
                String::new()
            } else {
                format!("; subsumed finer alerts: {}", a.subsumed.len())
            }
        );
    }

    // The headline checks.
    assert!(alerts
        .iter()
        .any(|a| a.prefix.len() == 128 && a.prefix.bits() == heavy));
    assert!(alerts.iter().any(|a| a.prefix == spread));
    let cloud_alerts: Vec<_> = alerts
        .iter()
        .filter(|a| cloud.contains(&a.prefix))
        .collect();
    assert_eq!(cloud_alerts.len(), 2, "tenants alert individually");
    assert!(cloud_alerts
        .iter()
        .all(|a| a.prefix.len() == 128 && a.collateral_srcs == 0));
    println!("\nall three workloads resolved at the right aggregation level ✓");
}
