//! The CDN telescope end to end: deployment, capture filtering, artifact
//! removal, and the §3.3 targeting analysis on the in-DNS / not-in-DNS
//! address pairs.
//!
//! ```sh
//! cargo run --release --example cdn_telescope
//! ```

use lumen6::analysis::targeting;
use lumen6::prelude::*;
use lumen6::telescope::CaptureConfig;

fn main() {
    let world = World::build(FleetConfig::small());
    let dep = &world.deployment;
    println!(
        "telescope: {} machines over {} hosting ASes, {} addresses ({} in DNS), {} DNS pairs",
        dep.machines().len(),
        dep.as_prefixes().len(),
        dep.telescope_size(),
        dep.dns_hitlist().len(),
        dep.pairs().len()
    );

    // Demonstrate the capture filter on hand-made packets.
    let capture = FirewallCapture::new(dep, CaptureConfig::default());
    let dst = dep.machines()[0].client_facing;
    let probes = [
        (
            "TCP/22 probe",
            PacketRecord::tcp(0, 1, dst, 1, 22, 60),
            true,
        ),
        (
            "TCP/443 (served)",
            PacketRecord::tcp(0, 1, dst, 1, 443, 60),
            false,
        ),
        (
            "ICMPv6 echo",
            PacketRecord::icmpv6_echo(0, 1, dst, 96),
            false,
        ),
        (
            "foreign dst",
            PacketRecord::tcp(0, 1, 0xdead, 1, 22, 60),
            false,
        ),
    ];
    for (label, p, expect) in probes {
        assert_eq!(capture.logs(&p), expect);
        println!("firewall logs {label:<18} -> {}", capture.logs(&p));
    }

    // Full pipeline with destination retention for targeting analysis.
    let trace = world.cdn_trace();
    let (clean, _) = ArtifactFilter::default().filter(&trace);
    let scans = detect(&clean, ScanDetectorConfig::paper(AggLevel::L64).with_dsts());

    // §3.3: how many of each source's targets exist in DNS? The paper
    // reports AS#18 separately — it holds 80% of the /64 sources and
    // targets half-hidden addresses, which would swamp the distribution.
    let as18 = world
        .fleet
        .truth
        .iter()
        .find(|t| t.rank == 18)
        .expect("fleet has 20 ASes")
        .prefix;
    let breakdown: Vec<_> = targeting::dns_breakdown(&scans, |a| dep.is_in_dns(a))
        .into_iter()
        .filter(|b| !as18.contains(&b.source))
        .collect();
    let summary = targeting::summarize_dns(&breakdown);
    println!(
        "\n{} scan sources; {:.0}% target only DNS-exposed addresses; {:.0}% have ≥33% hidden targets",
        summary.sources,
        summary.all_in_dns_frac * 100.0,
        summary.heavy_not_in_dns_frac * 100.0
    );

    // The nearby-prior question: were hidden targets preceded by an in-DNS
    // probe in the same /120?
    let explorers: Vec<_> = breakdown
        .iter()
        .filter(|b| b.not_in_dns_frac() > 0.3 && b.total() > 50)
        .map(|b| b.source)
        .collect();
    let analysis = targeting::nearby_prior_analysis(
        &clean,
        &explorers,
        AggLevel::L64,
        |a| dep.is_in_dns(a),
        &[8],
    );
    for n in analysis.iter().take(5) {
        println!(
            "{}: {} hidden targets, {:.0}% had a prior in-DNS probe in the same /120",
            n.source,
            n.hidden_targets,
            n.fraction(8) * 100.0
        );
    }
}
