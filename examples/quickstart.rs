//! Quickstart: build a small simulated world, run the paper's detection
//! pipeline, and print the per-aggregation picture.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lumen6::netmodel::AsInfo;
use lumen6::prelude::*;

fn main() {
    // A scaled-down world: 6 weeks, a few hundred telescope machines, the
    // full 20-AS scanner fleet of the paper's Table 2.
    println!("building world and generating the firewall trace ...");
    let world = World::build(FleetConfig::small());
    let trace = world.cdn_trace();
    println!("logged {} unsolicited packets", trace.len());

    // Step 1 — remove CDN connection artifacts (SMTP fallback, ISAKMP
    // retries): /64 sources that are >30% 5-duplicate packets per day.
    let (clean, report) = ArtifactFilter::default().filter(&trace);
    println!(
        "artifact prefilter removed {} packets from {} sources",
        report.removed_packets, report.removed_sources
    );
    if let Some(((proto, port), n)) = report.top_services(1).first() {
        println!(
            "top artifact service: {}/{port} ({n} packets)",
            proto.label()
        );
    }

    // Step 2 — large-scale scan detection (≥100 destinations, 1 h timeout)
    // at the paper's three source-aggregation levels.
    for agg in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        let scans = detect(&clean, ScanDetectorConfig::paper(agg));
        println!(
            "{agg}: {} scans, {} sources, {} packets",
            scans.scans(),
            scans.sources(),
            scans.packets()
        );
    }

    // Step 3 — who are the top scan sources?
    let at64 = detect(&clean, ScanDetectorConfig::paper(AggLevel::L64));
    println!("\ntop scan sources (/64):");
    for (source, packets) in at64.packets_by_source().into_iter().take(5) {
        let who = world
            .registry
            .origin_asn(source.bits())
            .and_then(|asn| world.registry.as_info(asn))
            .map(AsInfo::descriptor)
            .unwrap_or_else(|| "unknown".into());
        println!("  {source}  {packets} packets  [{who}]");
    }
}
