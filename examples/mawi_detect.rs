//! The public-trace cross-check (§4): per-day detection over a MAWI-style
//! transit vantage with the extended Fukuda–Heidemann definition, plus the
//! Hamming-weight view of scanner target generation.
//!
//! ```sh
//! cargo run --release --example mawi_detect
//! ```

use lumen6::addr::HammingDistribution;
use lumen6::detect::{AggLevel, MawiConfig as FhConfig, MawiDetector, MawiScan};
use lumen6::mawi::{split_days, MawiConfig, MawiWorld};

fn main() {
    let config = MawiConfig::small();
    let days = config.end_day;
    let world = MawiWorld::build(config, None);
    let trace = world.trace();
    println!(
        "MAWI-style trace: {} packets over {days} daily 15-minute windows",
        trace.len()
    );

    // Detection per daily window, both destination thresholds.
    for min_dsts in [100u64, 5] {
        let det = MawiDetector::new(FhConfig {
            agg: AggLevel::L64,
            min_dsts,
            ..Default::default()
        });
        let mut daily: Vec<usize> = Vec::new();
        let mut icmp_days = 0;
        for (_, slice) in split_days(&trace, 0, days) {
            let scans = det.detect(slice);
            if scans.iter().any(MawiScan::is_icmpv6) {
                icmp_days += 1;
            }
            daily.push(scans.len());
        }
        daily.sort_unstable();
        println!(
            "min {min_dsts:>3} destinations: median {} scan sources/day (ICMPv6 on {icmp_days} days)",
            daily[daily.len() / 2]
        );
    }

    // Target-generation fingerprinting: structured (low Hamming weight)
    // sweeps vs the random-IID scanner.
    let structured = HammingDistribution::from_addrs(
        trace
            .iter()
            .filter(|r| r.src == world.as1_source)
            .map(|r| r.dst),
    );
    println!(
        "\nAS#1 targets: mean IID Hamming weight {:.1} -> {}",
        structured.mean(),
        if structured.looks_random() {
            "random"
        } else {
            "structured (hitlist-like)"
        }
    );

    let dec24 = lumen6::trace::SimTime::from_date(2021, 12, 24);
    if dec24.day_index() < days {
        let random = HammingDistribution::from_addrs(
            trace
                .iter()
                .filter(|r| r.src == world.dec24_source)
                .map(|r| r.dst),
        );
        println!(
            "Dec-24 scanner: mean IID Hamming weight {:.1} -> {}",
            random.mean(),
            if random.looks_random() {
                "random (Gaussian)"
            } else {
                "structured"
            }
        );
    }
}
