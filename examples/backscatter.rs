//! The third vantage point: detecting the fleet's scanners from DNS
//! backscatter alone — the reverse-zone authority never sees a single scan
//! packet, only the PTR lookups that victims' resolvers perform about the
//! scanners' source addresses (Fukuda & Heidemann, the paper's ref [12]).
//!
//! ```sh
//! cargo run --release --example backscatter
//! ```

use lumen6::backscatter::{generate_backscatter, BackscatterConfig, BackscatterDetector};
use lumen6::prelude::*;

fn main() {
    let mut cfg = FleetConfig::small();
    cfg.end_day = 21;
    let world = World::build(cfg);
    let trace = world.cdn_trace();
    println!("victim-side traffic: {} packets over 3 weeks", trace.len());

    // What the scanners' reverse-zone authority records.
    let queries = generate_backscatter(&trace, &BackscatterConfig::default(), 42);
    println!("PTR queries at the authority: {}", queries.len());

    // Querier diversity separates scanners from ordinary hosts.
    let detected = BackscatterDetector::default().detect(&queries);
    println!("\nflagged sources (≥20 distinct resolvers):");
    let mut true_positives = 0;
    for s in detected.iter().take(8) {
        let truth = world
            .fleet
            .truth
            .iter()
            .find(|t| t.prefix.contains(&s.source));
        if truth.is_some() {
            true_positives += 1;
        }
        println!(
            "  {}  {} resolvers, {} queries  [{}]",
            s.source,
            s.queriers,
            s.queries,
            truth
                .map(|t| format!("ground truth: Table-2 AS#{}", t.rank))
                .unwrap_or_else(|| "NOT a scanner".into())
        );
    }
    println!(
        "\n{} of {} shown are ground-truth scanners — scan detection without scan packets",
        true_positives,
        detected.len().min(8)
    );

    // Aggregation merges per-address sightings into per-actor entities —
    // and for a scanner that rotates source addresses per probe, only the
    // aggregate is visible at all (see the crate's unit tests for that
    // extreme; the paper's §2.2 lesson applies at this vantage too).
    let at128 = BackscatterDetector {
        agg_len: 128,
        min_queriers: 20,
    };
    println!(
        "per-/128 sightings: {}  ->  per-/64 actors: {}",
        at128.detect(&queries).len(),
        detected.len()
    );
}
