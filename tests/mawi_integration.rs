//! Integration tests for the MAWI cross-check (§4, Appendix A.2).

use lumen6::addr::HammingDistribution;
use lumen6::analysis::{overlap, targeting};
use lumen6::detect::{AggLevel, MawiConfig as FhConfig, MawiDetector};
use lumen6::mawi::{capture_window, split_days, MawiConfig, MawiWorld};
use lumen6::prelude::*;
use lumen6::trace::SimTime;
use std::sync::OnceLock;

/// A MAWI world covering the May-27 switch, July-6 and Dec-24 events.
fn world() -> &'static (MawiWorld, Vec<PacketRecord>) {
    static W: OnceLock<(MawiWorld, Vec<PacketRecord>)> = OnceLock::new();
    W.get_or_init(|| {
        let cfg = MawiConfig {
            start_day: 140,
            end_day: 365,
            ..MawiConfig::small()
        };
        let w = MawiWorld::build(cfg, None);
        let trace = w.trace();
        (w, trace)
    })
}

fn targets_on(day: u64, pred: impl Fn(&PacketRecord) -> bool) -> Vec<u128> {
    let (_, trace) = world();
    let (s, e) = capture_window(day);
    trace
        .iter()
        .filter(|r| r.ts_ms >= s && r.ts_ms < e && pred(r))
        .map(|r| r.dst)
        .collect()
}

#[test]
fn loose_threshold_finds_many_more_sources() {
    // Fig. 5: threshold 5 finds several times the sources threshold 100 does.
    let (w, trace) = world();
    let (s, e) = (w.config().start_day, w.config().end_day);
    let mut strict_total = 0usize;
    let mut loose_total = 0usize;
    for (_, slice) in split_days(trace, s, e) {
        strict_total += MawiDetector::new(FhConfig::paper(AggLevel::L64))
            .detect(slice)
            .len();
        loose_total += MawiDetector::new(FhConfig::loose(AggLevel::L64))
            .detect(slice)
            .len();
    }
    assert!(
        loose_total as f64 > 4.0 * strict_total as f64,
        "loose {loose_total} vs strict {strict_total}"
    );
}

#[test]
fn as1_dominates_the_link_and_is_cross_vantage_consistent() {
    // Fig. 6 + §4: the most active MAWI source is AS#1, also the CDN's top
    // scanner when identities are shared.
    let (w, trace) = world();
    let (s, e) = (w.config().start_day, w.config().end_day);
    let det = MawiDetector::new(FhConfig::paper(AggLevel::L64));
    let mut by_source: std::collections::HashMap<Ipv6Prefix, u64> = Default::default();
    for (_, slice) in split_days(trace, s, e) {
        for scan in det.detect(slice) {
            *by_source.entry(scan.source).or_default() += scan.packets;
        }
    }
    let (top, top_pkts) = by_source
        .iter()
        .max_by_key(|(_, n)| **n)
        .map(|(s, n)| (*s, *n))
        .expect("scans detected");
    assert!(top.contains_addr(w.as1_source));
    let total: u64 = by_source.values().sum();
    assert!(
        top_pkts as f64 > 0.5 * total as f64,
        "top share {}",
        top_pkts as f64 / total as f64
    );

    // Cross-vantage identity: building MAWI against a CDN fleet reuses the
    // AS#1 source address.
    let cdn = World::build(FleetConfig::small());
    let w2 = MawiWorld::build(MawiConfig::small(), Some(&cdn.fleet));
    assert!(cdn.fleet.truth[0].prefix.contains_addr(w2.as1_source));
}

#[test]
fn hitlist_day_has_full_overlap_and_fewer_uniques() {
    // Appendix A.2: on 2021-05-27 AS#1 probes the hitlist (overlap ≈ 100%,
    // uniques collapse); adjacent days have ≈ 0 overlap.
    let (w, _) = world();
    let hitset: std::collections::HashSet<u128> = w.hitlist.iter().copied().collect();
    let may27 = SimTime::from_date(2021, 5, 27).day_index();

    let on = |day| targets_on(day, |r| r.src == w.as1_source);
    let switch = overlap::hitlist_overlap(on(may27).iter(), &hitset);
    let before = overlap::hitlist_overlap(on(may27 - 1).iter(), &hitset);
    let after = overlap::hitlist_overlap(on(may27 + 1).iter(), &hitset);
    assert!(
        switch.fraction() > 0.95,
        "switch-day overlap {}",
        switch.fraction()
    );
    assert!(before.fraction() < 0.05);
    assert!(after.fraction() < 0.05);
    assert!(
        switch.targets * 2 < before.targets,
        "uniques collapse: {} vs {}",
        switch.targets,
        before.targets
    );
}

#[test]
fn port_switch_on_may_27() {
    // §4: hundreds of ports before, exactly six after.
    let (w, _) = world();
    let may27 = SimTime::from_date(2021, 5, 27).day_index();
    let (_, trace) = world();
    let (s, _) = capture_window(may27 - 1);
    let (e2s, e2e) = capture_window(may27 + 1);
    let before: std::collections::HashSet<u16> = trace
        .iter()
        .filter(|r| r.src == w.as1_source && r.ts_ms < s + lumen6::mawi::WINDOW_LEN_MS)
        .filter(|r| r.ts_ms >= s)
        .map(|r| r.dport)
        .collect();
    let after: std::collections::HashSet<u16> = trace
        .iter()
        .filter(|r| r.src == w.as1_source && r.ts_ms >= e2s && r.ts_ms < e2e)
        .map(|r| r.dport)
        .collect();
    assert!(
        before.len() >= 6,
        "progressive sweep covers a daily window: {}",
        before.len()
    );
    let mut want: Vec<u16> = vec![22, 80, 443, 3389, 8080, 8443];
    want.sort_unstable();
    let mut got: Vec<u16> = after.into_iter().collect();
    got.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn icmpv6_peaks_and_hamming_separation() {
    // Fig. 7: structured target IIDs for AS#3's July-6 event, Gaussian for
    // the Dec-24 scanner; the Dec-24 scanner hits a distinct /64 per probe.
    let (w, _) = world();
    let jul6 = SimTime::from_date(2021, 7, 6).day_index();
    let dec24 = SimTime::from_date(2021, 12, 24).day_index();

    let jul_targets = targets_on(jul6, |r| w.jul6_prefix.contains_addr(r.src));
    assert!(!jul_targets.is_empty(), "July-6 event present");
    let jul = HammingDistribution::from_addrs(jul_targets.iter().copied());
    assert!(jul.mean() < 12.0, "structured: mean {}", jul.mean());
    assert!(!jul.looks_random());

    let dec_targets = targets_on(dec24, |r| r.src == w.dec24_source);
    assert!(dec_targets.len() > 1000, "Dec-24 peak present");
    let dec = HammingDistribution::from_addrs(dec_targets.iter().copied());
    assert!(
        dec.looks_random(),
        "mean {} var {}",
        dec.mean(),
        dec.variance()
    );
    assert_eq!(targeting::targets_per_dst64(&dec_targets), 1);

    // Both peak days' ICMPv6 packets dominate those days.
    let day_icmp = |day| {
        targets_on(day, |r| r.proto == Transport::Icmpv6).len() as f64
            / targets_on(day, |_| true).len().max(1) as f64
    };
    assert!(day_icmp(dec24) > 0.5);
    assert!(day_icmp(jul6) > 0.3);
}

#[test]
fn background_traffic_is_never_classified_as_scanning() {
    // The entropy and packets-per-destination criteria must reject real
    // flows: no detected scan source may be one of the background remotes
    // (background sources live outside the scanner address blocks).
    let (w, trace) = world();
    let (s, e) = (w.config().start_day, w.config().end_day);
    let det = MawiDetector::new(FhConfig::loose(AggLevel::L128));
    let background_space: Ipv6Prefix = "2400::/8".parse().unwrap();
    for (_, slice) in split_days(trace, s, e) {
        for scan in det.detect(slice) {
            assert!(
                !background_space.contains(&scan.source),
                "background remote classified as scanner: {:?}",
                scan
            );
        }
    }
}
