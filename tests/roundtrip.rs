//! Cross-crate round trips: a generated world trace survives the binary
//! codec byte-for-byte, and detection over the decoded trace is identical.

use lumen6::prelude::*;
use lumen6::trace::codec::{decode, encode};

#[test]
fn world_trace_codec_roundtrip_and_detection_equality() {
    let mut cfg = FleetConfig::small();
    cfg.end_day = 10;
    let world = World::build(cfg);
    let trace = world.cdn_trace();

    let bytes = encode(&trace).expect("encodes");
    let back = decode(&bytes).expect("decodes");
    assert_eq!(trace, back);

    let a = detect(&trace, ScanDetectorConfig::paper(AggLevel::L64));
    let b = detect(&back, ScanDetectorConfig::paper(AggLevel::L64));
    assert_eq!(a.events, b.events);
}

#[test]
fn trace_writer_reader_file_path() {
    let mut cfg = FleetConfig::small();
    cfg.end_day = 3;
    let world = World::build(cfg);
    let trace = world.cdn_trace();

    let dir = std::env::temp_dir().join(format!("lumen6-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.l6tr");

    let mut w = TraceWriter::new(std::fs::File::create(&path).unwrap()).unwrap();
    for r in &trace {
        w.append(r).unwrap();
    }
    w.finish().unwrap();

    let reader = TraceReader::from_reader(std::fs::File::open(&path).unwrap()).unwrap();
    let back: Result<Vec<_>, _> = reader.collect();
    assert_eq!(back.unwrap(), trace);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_trace_fails_loudly_not_wrongly() {
    let mut cfg = FleetConfig::small();
    cfg.end_day = 2;
    let world = World::build(cfg);
    let trace = world.cdn_trace();
    let mut bytes = encode(&trace).expect("encodes");

    // Flip a byte in the middle: either a decode error surfaces or the
    // decoded stream differs from the original — silent agreement would
    // mean corruption goes unnoticed.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    match decode(&bytes) {
        Err(_) => {}
        Ok(back) => assert_ne!(back, trace),
    }

    // Truncation: must error, never panic.
    let cut = &bytes[..bytes.len() / 3];
    let _ = decode(cut);
}

#[test]
fn multi_level_single_pass_matches_per_level_passes_on_fleet_traffic() {
    let mut cfg = FleetConfig::small();
    cfg.end_day = 14;
    let world = World::build(cfg);
    let trace = world.cdn_trace();
    let (clean, _) = ArtifactFilter::default().filter(&trace);

    let multi = lumen6::detect::multi::detect_multi(
        &clean,
        &AggLevel::PAPER_LEVELS,
        ScanDetectorConfig::default(),
    );
    for lvl in AggLevel::PAPER_LEVELS {
        let single = detect(&clean, ScanDetectorConfig::paper(lvl));
        assert_eq!(multi[&lvl].scans(), single.scans(), "{lvl}");
        assert_eq!(multi[&lvl].packets(), single.packets(), "{lvl}");
        assert_eq!(multi[&lvl].source_set(), single.source_set(), "{lvl}");
    }
}

#[test]
fn adaptive_ids_flags_as18_as_one_coarse_actor_on_fleet_traffic() {
    let mut cfg = FleetConfig::small();
    cfg.end_day = 28;
    let world = World::build(cfg);
    let trace = world.cdn_trace();
    let (clean, _) = ArtifactFilter::default().filter(&trace);

    let alerts = lumen6::detect::adaptive::AdaptiveIds::new(Default::default()).analyze(&clean);
    assert!(!alerts.is_empty());

    // The AS#18 /32 should surface as a coarse alert (its sources being one
    // address per /64, only aggregation reveals the actor in full).
    let as18 = world
        .fleet
        .truth
        .iter()
        .find(|t| t.rank == 18)
        .unwrap()
        .prefix;
    let coarse = alerts
        .iter()
        .find(|a| as18.contains(&a.prefix) && a.prefix.len() <= 48);
    assert!(
        coarse.is_some(),
        "expected a coarse AS#18 alert, got {:?}",
        alerts
            .iter()
            .filter(|a| as18.contains(&a.prefix))
            .collect::<Vec<_>>()
    );

    // AS#1's single /128 must alert as a /128 (never dragged coarser than
    // its own activity warrants), except when subsumed by nothing.
    let as1 = world.fleet.truth[0].prefix;
    assert!(alerts
        .iter()
        .any(|a| as1.contains(&a.prefix) && a.prefix.len() == 128));
}
