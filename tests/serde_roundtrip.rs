//! JSON round-trip stability of the public result types: downstream tools
//! consume `--json` output, so these shapes are API.

use lumen6::detect::adaptive::Alert;
use lumen6::detect::{AggLevel, MawiScan, ScanEvent};
use lumen6::prelude::*;
use lumen6::trace::Transport;

#[test]
fn scan_event_json_roundtrip() {
    let e = ScanEvent {
        source: "2001:db8::/64".parse().unwrap(),
        agg: AggLevel::L64,
        start_ms: 12,
        end_ms: 9_999,
        packets: 500,
        distinct_dsts: 480,
        distinct_srcs: 3,
        ports: vec![((Transport::Tcp, 22), 400), ((Transport::Udp, 500), 100)],
        dsts: Some(vec![1, 2, 3]),
    };
    let json = serde_json::to_string(&e).unwrap();
    let back: ScanEvent = serde_json::from_str(&json).unwrap();
    assert_eq!(e, back);
}

#[test]
fn detection_pipeline_events_roundtrip_via_json() {
    let mut cfg = FleetConfig::small();
    cfg.end_day = 5;
    let world = World::build(cfg);
    let trace = world.cdn_trace();
    let report = detect(&trace, ScanDetectorConfig::paper(AggLevel::L64).with_dsts());
    assert!(report.scans() > 0);
    let json = serde_json::to_string(&report.events).unwrap();
    let back: Vec<ScanEvent> = serde_json::from_str(&json).unwrap();
    assert_eq!(report.events, back);
}

#[test]
fn mawi_scan_and_alert_roundtrip() {
    let scan = MawiScan {
        source: "2001:db8::/64".parse().unwrap(),
        services: vec![(Transport::Icmpv6, 0), (Transport::Tcp, 22)],
        packets: 1_000,
        distinct_dsts: 900,
        start_ms: 5,
        end_ms: 800,
    };
    let back: MawiScan = serde_json::from_str(&serde_json::to_string(&scan).unwrap()).unwrap();
    assert_eq!(scan, back);
    assert!(back.is_icmpv6());

    let alert = Alert {
        prefix: "2001:db8::/32".parse().unwrap(),
        packets: 10_000,
        distinct_dsts: 9_000,
        contributing_srcs: 500,
        collateral_srcs: 12,
        subsumed: vec!["2001:db8:1::/48".parse().unwrap()],
    };
    let back: Alert = serde_json::from_str(&serde_json::to_string(&alert).unwrap()).unwrap();
    assert_eq!(alert, back);
}

#[test]
fn prefix_serializes_compactly_and_roundtrips() {
    let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
    let json = serde_json::to_string(&p).unwrap();
    let back: Ipv6Prefix = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}

#[test]
fn configs_roundtrip() {
    let d = ScanDetectorConfig::default();
    let back: ScanDetectorConfig =
        serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
    assert_eq!(d, back);

    let f = FleetConfig::small();
    let back: FleetConfig = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    assert_eq!(f, back);

    let m = lumen6::mawi::MawiConfig::default();
    let back: lumen6::mawi::MawiConfig =
        serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    assert_eq!(m, back);
}
