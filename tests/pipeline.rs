//! End-to-end integration: the full CDN pipeline on the calibrated fleet
//! must reproduce the paper's qualitative findings.

use lumen6::analysis::{concentration, portbuckets, targeting, topas};
use lumen6::detect::PortClass;
use lumen6::prelude::*;
use std::sync::OnceLock;

struct Lab {
    world: World,
    clean: Vec<PacketRecord>,
    r128: ScanReport,
    r64: ScanReport,
    r48: ScanReport,
}

/// One shared small world for all tests in this file (12 weeks).
fn lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(|| {
        let mut cfg = FleetConfig::small();
        cfg.end_day = 84;
        let world = World::build(cfg);
        let trace = world.cdn_trace();
        let (clean, _) = ArtifactFilter::default().filter(&trace);
        let r128 = detect(&clean, ScanDetectorConfig::paper(AggLevel::L128));
        let r64 = detect(&clean, ScanDetectorConfig::paper(AggLevel::L64).with_dsts());
        let r48 = detect(&clean, ScanDetectorConfig::paper(AggLevel::L48));
        Lab {
            world,
            clean,
            r128,
            r64,
            r48,
        }
    })
}

fn as18(lab: &Lab) -> Ipv6Prefix {
    lab.world
        .fleet
        .truth
        .iter()
        .find(|t| t.rank == 18)
        .expect("20 ASes")
        .prefix
}

#[test]
fn aggregation_changes_the_picture_dramatically() {
    // Table 1: /128 sources far exceed /64 sources; /48 sources exceed /64
    // sources (driven by AS#18-style spread).
    let lab = lab();
    // (The full 439-day world gives a ~4x gap; the shared 12-week test
    // fixture compresses episodic actors, so require a smaller factor.)
    assert!(lab.r128.sources() as f64 > 1.5 * lab.r64.sources() as f64);
    assert!(lab.r48.sources() > lab.r64.sources());
    // Scan packet totals stay comparable across levels (same traffic).
    let p64 = lab.r64.packets() as f64;
    assert!((lab.r48.packets() as f64 - p64).abs() / p64 < 0.15);
}

#[test]
fn as18_48s_exceed_64s_and_32_captures_more() {
    let lab = lab();
    let as18 = as18(lab);
    let s64 = lab
        .r64
        .source_set()
        .iter()
        .filter(|s| as18.contains(s))
        .count();
    let s48 = lab
        .r48
        .source_set()
        .iter()
        .filter(|s| as18.contains(s))
        .count();
    assert!(s48 > s64, "/48 sources {s48} must exceed /64 sources {s64}");

    // The /32 aggregate attributes strictly more packets than /48.
    let at48: u64 = lab
        .r48
        .events
        .iter()
        .filter(|e| as18.contains(&e.source))
        .map(|e| e.packets)
        .sum();
    let r32 = detect(&lab.clean, ScanDetectorConfig::paper(AggLevel::L32));
    let at32: u64 = r32
        .events
        .iter()
        .filter(|e| as18.contains(&e.source))
        .map(|e| e.packets)
        .sum();
    assert!(at32 as f64 > 1.2 * at48 as f64, "/32 {at32} vs /48 {at48}");
}

#[test]
fn relaxed_threshold_blows_up_sources_via_as18() {
    // §2.2: min-dst 50 yields vastly more sources, nearly all in AS#18.
    let lab = lab();
    let loose = detect(
        &lab.clean,
        ScanDetectorConfig {
            agg: AggLevel::L64,
            min_dsts: 50,
            ..Default::default()
        },
    );
    assert!(
        loose.sources() as f64 > 2.0 * lab.r64.sources() as f64,
        "{} vs {}",
        loose.sources(),
        lab.r64.sources()
    );
    let as18 = as18(lab);
    let new: Vec<_> = loose
        .source_set()
        .difference(&lab.r64.source_set())
        .copied()
        .collect();
    let inside = new.iter().filter(|s| as18.contains(s)).count();
    assert!(
        inside * 10 >= new.len() * 9,
        "{inside} of {} new sources in AS18",
        new.len()
    );
}

#[test]
fn timeouts_have_small_effect() {
    // §2.2: 30- and 15-minute timeouts change results only slightly.
    let lab = lab();
    for timeout_ms in [1_800_000u64, 900_000] {
        let r = detect(
            &lab.clean,
            ScanDetectorConfig {
                agg: AggLevel::L64,
                timeout_ms,
                ..Default::default()
            },
        );
        let ds = (r.sources() as f64 - lab.r64.sources() as f64).abs() / lab.r64.sources() as f64;
        assert!(ds < 0.15, "timeout {timeout_ms}: source delta {ds}");
    }
}

#[test]
fn scan_traffic_concentrates_on_top_two_sources() {
    // Fig. 3: the two most active sources dominate.
    let lab = lab();
    let share = concentration::overall_topk_share(&lab.r64, 2);
    assert!(share > 0.5, "top-2 share {share}");
    // And they are AS#1 and AS#2.
    let by_src = lab.r64.packets_by_source();
    let reg = &lab.world.registry;
    let top_asns: Vec<u32> = by_src
        .iter()
        .take(2)
        .filter_map(|(s, _)| reg.origin_asn(s.bits()))
        .collect();
    let truth = &lab.world.fleet.truth;
    assert!(top_asns.contains(&truth[0].asn));
    assert!(top_asns.contains(&truth[1].asn));
}

#[test]
fn table2_top_networks_are_datacenters_and_clouds_not_eyeballs() {
    let lab = lab();
    let rows = topas::top_as_table(&lab.world.registry, &lab.r128, &lab.r64, &lab.r48, 20);
    assert!(
        rows.len() >= 15,
        "most of the fleet detected: {}",
        rows.len()
    );
    // Top five rows are non-residential (paper: no pure eyeball ISP there).
    for row in rows.iter().take(5) {
        let asn = row.asn.expect("fleet sources attributable");
        let info = lab.world.registry.as_info(asn).unwrap();
        assert!(!info.ty.is_residential(), "top-5 row {info:?}");
    }
    // Top-5 packet share is heavy (paper: 92.8%).
    assert!(topas::topk_as_share(&rows, 5) > 0.8);
}

#[test]
fn multiport_scanning_dominates_packets() {
    // Fig. 4: most scan packets come from multi-port scanners.
    let lab = lab();
    let as18 = as18(lab);
    let rows = portbuckets::port_buckets(&lab.r64, |s| as18.contains(s));
    let single = rows.iter().find(|r| r.class == PortClass::Single).unwrap();
    let multi: f64 = rows
        .iter()
        .filter(|r| r.class != PortClass::Single)
        .map(|r| r.packets)
        .sum();
    assert!(multi > 0.8, "multi-port packet share {multi}");
    assert!(single.packets < 0.2);
    // And the >100-ports bucket alone holds a large share.
    let wide = rows
        .iter()
        .find(|r| r.class == PortClass::MoreThan100)
        .unwrap();
    assert!(wide.packets > 0.35, ">100-port share {}", wide.packets);
}

#[test]
fn artifacts_are_removed_and_dominated_by_smtp_and_isakmp() {
    // Appendix A.1.
    let lab = lab();
    let trace = lab.world.cdn_trace();
    let (_, report) = ArtifactFilter::default().filter(&trace);
    // The small fixture runs a reduced artifact mix; the full-scale world
    // removes >60% (see EXPERIMENTS.md).
    assert!(
        report.removed_fraction() > 0.15,
        "{}",
        report.removed_fraction()
    );
    let top2: Vec<_> = report.top_services(2).iter().map(|(s, _)| *s).collect();
    assert!(top2.contains(&(Transport::Udp, 500)), "{top2:?}");
    assert!(top2.contains(&(Transport::Tcp, 25)), "{top2:?}");
}

#[test]
fn most_sources_target_only_dns_exposed_addresses() {
    // §3.3 (AS#18 excluded, as in the paper).
    let lab = lab();
    let as18 = as18(lab);
    let dep = &lab.world.deployment;
    let rows: Vec<_> = targeting::dns_breakdown(&lab.r64, |a| dep.is_in_dns(a))
        .into_iter()
        .filter(|b| !as18.contains(&b.source))
        .collect();
    let summary = targeting::summarize_dns(&rows);
    assert!(
        summary.all_in_dns_frac > 0.5,
        "all-in-DNS fraction {}",
        summary.all_in_dns_frac
    );
    // AS#18 itself targets roughly half not-in-DNS addresses.
    let as18_rows: Vec<_> = targeting::dns_breakdown(&lab.r64, |a| dep.is_in_dns(a))
        .into_iter()
        .filter(|b| as18.contains(&b.source))
        .collect();
    let hidden: u64 = as18_rows.iter().map(|b| b.not_in_dns).sum();
    let total: u64 = as18_rows.iter().map(targeting::SourceDns::total).sum();
    let frac = hidden as f64 / total as f64;
    assert!((0.4..0.6).contains(&frac), "AS18 hidden fraction {frac}");
}

#[test]
fn scan_events_never_overlap_per_source() {
    // Detector invariant on real fleet output.
    let lab = lab();
    let mut per_source: std::collections::HashMap<_, Vec<(u64, u64)>> = Default::default();
    for e in &lab.r64.events {
        per_source
            .entry(e.source)
            .or_default()
            .push((e.start_ms, e.end_ms));
    }
    for spans in per_source.values_mut() {
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[1].0 > w[0].1 + 3_600_000);
        }
    }
}
