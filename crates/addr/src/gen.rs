//! Deterministic, seedable address generation.
//!
//! Scanner actor models (crate `lumen6-scanners`) and the telescope
//! deployment (crate `lumen6-telescope`) need to mint addresses with
//! controlled structure:
//!
//! - *source* strategies: a random address inside a prefix (the paper's
//!   AS#18 sourced from an entire /32), or a base address with only the low
//!   `n` bits varied (AS#9 varied the lowest 7–9 bits);
//! - *target* structure: low-Hamming-weight IIDs (hitlist-like) versus
//!   uniformly random IIDs (the Dec-24 scanner in the paper).
//!
//! All functions take `&mut impl Rng`, so callers control determinism via
//! seeded [`rand::rngs::SmallRng`] instances.

use crate::prefix::Ipv6Prefix;
use rand::Rng;

/// A uniformly random /128 address inside `prefix`.
pub fn random_in_prefix<R: Rng + ?Sized>(rng: &mut R, prefix: Ipv6Prefix) -> u128 {
    let host_bits = 128 - prefix.len();
    if host_bits == 0 {
        return prefix.bits();
    }
    let r: u128 = rng.gen();
    let host_mask = if host_bits >= 128 {
        u128::MAX
    } else {
        (1u128 << host_bits) - 1
    };
    prefix.bits() | (r & host_mask)
}

/// `base` with only the lowest `n` bits replaced by random bits.
///
/// Models scanners that encode scan metadata in (or just vary) the low bits
/// of their source address — e.g. the security company in the paper's AS#9
/// case study, which varied the lowest 7–9 bits.
pub fn vary_low_bits<R: Rng + ?Sized>(rng: &mut R, base: u128, n: u8) -> u128 {
    if n == 0 {
        return base;
    }
    let n = n.min(128);
    let mask = if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    (base & !mask) | (rng.gen::<u128>() & mask)
}

/// An address in `net64` (a /64) with a low-Hamming-weight IID.
///
/// Draws the weight from 1..=max_weight and places that many bits at random
/// positions, biased toward the low end of the IID (as real hitlist
/// addresses are: `::1`, `::2:1`, service ports, small counters).
pub fn low_weight_iid<R: Rng + ?Sized>(rng: &mut R, net64: u64, max_weight: u32) -> u128 {
    let w = rng.gen_range(1..=max_weight.clamp(1, 64));
    let mut iid = 0u64;
    let mut placed = 0;
    while placed < w {
        // Bias: 80% of bits land in the low 16 bit positions.
        let pos: u32 = if rng.gen_bool(0.8) {
            rng.gen_range(0..16)
        } else {
            rng.gen_range(0..64)
        };
        let bit = 1u64 << pos;
        if iid & bit == 0 {
            iid |= bit;
            placed += 1;
        }
    }
    ((net64 as u128) << 64) | iid as u128
}

/// An address in `net64` with a uniformly random IID (weight ≈ 32, binomial).
pub fn random_iid<R: Rng + ?Sized>(rng: &mut R, net64: u64) -> u128 {
    ((net64 as u128) << 64) | rng.gen::<u64>() as u128
}

/// A low-byte server address: `net64::n` with `n` in 1..=255.
pub fn low_byte_addr<R: Rng + ?Sized>(rng: &mut R, net64: u64) -> u128 {
    ((net64 as u128) << 64) | rng.gen_range(1u128..=255)
}

/// A "nearby" address: `base` with the lowest `span_bits` bits re-rolled,
/// guaranteed different from `base`.
///
/// Used to synthesize the paper's §3.3 in-DNS / not-in-DNS address pairs
/// ("close in address space, often within a /123") and scanners probing
/// neighborhoods of discovered addresses.
pub fn nearby_addr<R: Rng + ?Sized>(rng: &mut R, base: u128, span_bits: u8) -> u128 {
    let span = span_bits.clamp(1, 64);
    let mask = (1u128 << span) - 1;
    loop {
        let cand = (base & !mask) | (rng.gen::<u128>() & mask);
        if cand != base {
            return cand;
        }
    }
}

/// Enumerates the first `count` sequential host addresses of a /64:
/// `net64::1`, `net64::2`, ... Useful for building deterministic telescope
/// deployments.
pub fn sequential_hosts(net64: u64, count: u64) -> impl Iterator<Item = u128> {
    let base = (net64 as u128) << 64;
    (1..=count as u128).map(move |i| base | i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn random_in_prefix_stays_inside() {
        let mut r = rng();
        let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        for _ in 0..1000 {
            let a = random_in_prefix(&mut r, p);
            assert!(p.contains_addr(a));
        }
    }

    #[test]
    fn random_in_host_prefix_is_fixed() {
        let mut r = rng();
        let p: Ipv6Prefix = "2001:db8::1".parse().unwrap();
        assert_eq!(random_in_prefix(&mut r, p), p.bits());
    }

    #[test]
    fn random_in_default_prefix_covers_high_bits() {
        let mut r = rng();
        let seen_high = (0..100).any(|_| random_in_prefix(&mut r, Ipv6Prefix::DEFAULT) >> 127 == 1);
        assert!(seen_high);
    }

    #[test]
    fn vary_low_bits_preserves_high_bits() {
        let mut r = rng();
        let base = 0x2001_0db8_0000_0000_0000_0000_0000_1234u128;
        for n in [0u8, 1, 7, 9, 64] {
            let a = vary_low_bits(&mut r, base, n);
            let mask = if n == 0 { 0 } else { (1u128 << n) - 1 };
            assert_eq!(a & !mask, base & !mask, "n={n}");
        }
        assert_eq!(vary_low_bits(&mut r, base, 0), base);
    }

    #[test]
    fn vary_low_bits_actually_varies() {
        let mut r = rng();
        let base = 0u128;
        let distinct: std::collections::HashSet<u128> =
            (0..200).map(|_| vary_low_bits(&mut r, base, 9)).collect();
        assert!(distinct.len() > 50);
        assert!(distinct.iter().all(|&a| a < 512));
    }

    #[test]
    fn low_weight_iid_respects_bound() {
        let mut r = rng();
        for _ in 0..500 {
            let a = low_weight_iid(&mut r, 0xdead_beef, 8);
            let w = (a as u64).count_ones();
            assert!((1..=8).contains(&w));
            assert_eq!((a >> 64) as u64, 0xdead_beef);
        }
    }

    #[test]
    fn random_iid_mean_weight_near_32() {
        let mut r = rng();
        let total: u32 = (0..2000)
            .map(|_| (random_iid(&mut r, 1) as u64).count_ones())
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 32.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn nearby_addr_differs_and_stays_near() {
        let mut r = rng();
        let base = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
        for _ in 0..100 {
            let a = nearby_addr(&mut r, base, 5); // within a /123
            assert_ne!(a, base);
            assert_eq!(a >> 5, base >> 5);
        }
    }

    #[test]
    fn sequential_hosts_enumerate() {
        let v: Vec<u128> = sequential_hosts(0x1, 3).collect();
        assert_eq!(
            v,
            vec![(1u128 << 64) | 1, (1u128 << 64) | 2, (1u128 << 64) | 3]
        );
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let p: Ipv6Prefix = "2001:db8::/48".parse().unwrap();
        for _ in 0..50 {
            assert_eq!(random_in_prefix(&mut a, p), random_in_prefix(&mut b, p));
        }
    }
}
