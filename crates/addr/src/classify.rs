//! Heuristic classification of how an address's Interface ID was generated.
//!
//! Mirrors the address-structure taxonomy of Plonka & Berger ("Temporal and
//! Spatial Classification of Active IPv6 Addresses", IMC 2015) and the
//! hitlist literature the paper cites: server addresses tend to be low-byte
//! or service-port-embedded, SLAAC clients use EUI-64 or privacy (random)
//! IIDs. Scan-detection uses this to characterize *targeted* addresses and
//! to build structured synthetic hitlists.

use serde::{Deserialize, Serialize};

/// Coarse classes of Interface-ID structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IidClass {
    /// IID is zero: the subnet-router anycast address.
    SubnetAnycast,
    /// Only the lowest byte is non-zero (e.g. `::1`, `::a`): typical manually
    /// configured server.
    LowByte,
    /// Only the lowest 16 bits are non-zero and they match a well-known
    /// service port (e.g. `::53`, `::443`).
    EmbeddedPort,
    /// Low 32 bits look like an embedded IPv4 address (dotted-quad style,
    /// each byte non-zero-ish) with zero upper IID bits.
    EmbeddedIpv4,
    /// Bits 24..40 of the IID are `0xfffe`: modified EUI-64 from a MAC.
    Eui64,
    /// Low Hamming weight (≤ 16) without matching a more specific class:
    /// structured / pattern-generated.
    Structured,
    /// Hamming weight near 32: consistent with a random (privacy) IID.
    Random,
}

impl IidClass {
    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            IidClass::SubnetAnycast => "subnet-anycast",
            IidClass::LowByte => "low-byte",
            IidClass::EmbeddedPort => "embedded-port",
            IidClass::EmbeddedIpv4 => "embedded-ipv4",
            IidClass::Eui64 => "eui64",
            IidClass::Structured => "structured",
            IidClass::Random => "random",
        }
    }
}

/// Well-known ports recognized by [`IidClass::EmbeddedPort`].
const KNOWN_PORTS: &[u16] = &[
    21, 22, 23, 25, 53, 80, 110, 143, 443, 465, 587, 993, 995, 3306, 3389, 5060, 5432, 8080, 8443,
];

/// Classifies the Interface ID (low 64 bits) of an address.
///
/// ```
/// use lumen6_addr::{classify_iid, IidClass};
/// assert_eq!(classify_iid(0x1), IidClass::LowByte);
/// assert_eq!(classify_iid(0x50), IidClass::EmbeddedPort); // ::80 hex? no: 0x50 = 80 decimal
/// ```
pub fn classify_iid(addr: u128) -> IidClass {
    let iid = addr as u64;
    if iid == 0 {
        return IidClass::SubnetAnycast;
    }
    if iid <= 0xff {
        // Low-byte unless the value is a recognizable decimal service port
        // (e.g. ::53 meaning DNS on 53 — here we treat the numeric value).
        if KNOWN_PORTS.contains(&(iid as u16)) {
            return IidClass::EmbeddedPort;
        }
        return IidClass::LowByte;
    }
    if iid <= 0xffff && KNOWN_PORTS.contains(&(iid as u16)) {
        return IidClass::EmbeddedPort;
    }
    // Modified EUI-64: ff:fe in the middle of the IID.
    if (iid >> 24) & 0xffff == 0xfffe {
        return IidClass::Eui64;
    }
    // Embedded IPv4: upper 32 IID bits zero, low 32 bits with a plausible
    // dotted-quad (first octet 1..=223, not loopback).
    if iid >> 32 == 0 {
        let v4 = iid as u32;
        let o1 = (v4 >> 24) as u8;
        if (1..=223).contains(&o1) && o1 != 127 {
            return IidClass::EmbeddedIpv4;
        }
    }
    let w = iid.count_ones();
    if w <= 16 {
        IidClass::Structured
    } else {
        IidClass::Random
    }
}

/// Histogram of IID classes over a set of addresses.
pub fn class_histogram<I: IntoIterator<Item = u128>>(addrs: I) -> Vec<(IidClass, u64)> {
    use std::collections::HashMap;
    let mut h: HashMap<IidClass, u64> = HashMap::new();
    for a in addrs {
        *h.entry(classify_iid(a)).or_default() += 1;
    }
    let mut v: Vec<_> = h.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.label().cmp(b.0.label())));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anycast_is_zero_iid() {
        assert_eq!(
            classify_iid(0xdead_0000_0000_0000_0000_0000_0000_0000),
            IidClass::SubnetAnycast
        );
    }

    #[test]
    fn low_byte_servers() {
        assert_eq!(classify_iid(0x1), IidClass::LowByte);
        assert_eq!(classify_iid(0x0a), IidClass::LowByte);
        assert_eq!(classify_iid(0xfe), IidClass::LowByte);
    }

    #[test]
    fn embedded_ports() {
        assert_eq!(classify_iid(53), IidClass::EmbeddedPort);
        assert_eq!(classify_iid(443), IidClass::EmbeddedPort);
        assert_eq!(classify_iid(8080), IidClass::EmbeddedPort);
    }

    #[test]
    fn eui64_detected() {
        // 02:11:22 ff:fe 33:44:55
        let iid: u64 = 0x0211_22ff_fe33_4455;
        assert_eq!(classify_iid(iid as u128), IidClass::Eui64);
    }

    #[test]
    fn embedded_ipv4_detected() {
        // ::192.0.2.1
        let iid: u64 = (192u64 << 24) | (2 << 8) | 1;
        assert_eq!(classify_iid(iid as u128), IidClass::EmbeddedIpv4);
    }

    #[test]
    fn random_iids_classified_random() {
        // Alternating bits: weight 32.
        assert_eq!(
            classify_iid(0xaaaa_aaaa_aaaa_aaaau64 as u128),
            IidClass::Random
        );
    }

    #[test]
    fn structured_low_weight() {
        // Weight 4, not low-byte, not port, not EUI-64, upper bits set.
        let iid: u64 = 0x1001_0000_0010_0001;
        assert_eq!(classify_iid(iid as u128), IidClass::Structured);
    }

    #[test]
    fn histogram_sorted_by_count() {
        let addrs = vec![0x1u128, 0x2, 0x3, 0xaaaa_aaaa_aaaa_aaaa];
        let h = class_histogram(addrs);
        assert_eq!(h[0].0, IidClass::LowByte);
        assert_eq!(h[0].1, 3);
    }
}
