//! The [`Ipv6Prefix`] type: an IPv6 address prefix with the aggregation
//! semantics scan detection needs.
//!
//! Scan-source aggregation (paper §2.2) treats a traffic source either as an
//! individual 128-bit address or as the covering /64, /48, or /32 prefix.
//! `Ipv6Prefix` makes that a one-word operation: [`Ipv6Prefix::aggregate`]
//! truncates to a coarser length, and the type's `Ord`/`Hash` make prefixes
//! usable as map keys for per-source state.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// An IPv6 prefix: a 128-bit address with the low `128 - len` bits zeroed.
///
/// Invariant: all bits below the prefix length are zero. Constructors enforce
/// this by masking, so two prefixes that cover the same range always compare
/// equal.
///
/// ```
/// use lumen6_addr::Ipv6Prefix;
/// let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
/// let host = Ipv6Prefix::host("2001:db8:1:2:3:4:5:6".parse().unwrap());
/// assert!(p.contains(&host));
/// assert_eq!(host.aggregate(64).to_string(), "2001:db8:1:2::/64");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    bits: u128,
    len: u8,
}

/// Error returned when parsing an [`Ipv6Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The address part did not parse as an IPv6 address.
    BadAddress(String),
    /// The length part did not parse, or exceeded 128.
    BadLength(String),
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::BadAddress(s) => write!(f, "invalid IPv6 address: {s:?}"),
            PrefixParseError::BadLength(s) => write!(f, "invalid prefix length: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl Ipv6Prefix {
    /// The all-zero /0 prefix covering the entire IPv6 space.
    pub const DEFAULT: Ipv6Prefix = Ipv6Prefix { bits: 0, len: 0 };

    /// Creates a prefix from raw bits and a length, masking off host bits.
    ///
    /// `len` is clamped to 128.
    #[inline]
    pub fn new(bits: u128, len: u8) -> Self {
        let len = len.min(128);
        Ipv6Prefix {
            bits: bits & mask(len),
            len,
        }
    }

    /// Creates a /128 prefix (a single host) from an address.
    #[inline]
    pub fn host(addr: Ipv6Addr) -> Self {
        Ipv6Prefix {
            bits: u128::from(addr),
            len: 128,
        }
    }

    /// Creates a /128 prefix from raw address bits.
    #[inline]
    pub fn host_bits(bits: u128) -> Self {
        Ipv6Prefix { bits, len: 128 }
    }

    /// Creates a prefix from an [`Ipv6Addr`] and a length, masking host bits.
    #[inline]
    pub fn from_addr(addr: Ipv6Addr, len: u8) -> Self {
        Self::new(u128::from(addr), len)
    }

    /// The raw 128-bit value (host bits are zero).
    #[inline]
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// The prefix length in bits (0..=128).
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a prefix length, not a container size
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The network address as an [`Ipv6Addr`].
    #[inline]
    pub fn addr(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits)
    }

    /// Truncates this prefix to a coarser (or equal) length.
    ///
    /// This is the scan-source aggregation operation of the paper: a /128
    /// source aggregated to its covering /64 or /48. Aggregating to a length
    /// longer than `self.len()` returns `self` unchanged (a prefix cannot be
    /// made more specific without inventing bits).
    #[inline]
    pub fn aggregate(&self, len: u8) -> Self {
        if len >= self.len {
            *self
        } else {
            Ipv6Prefix::new(self.bits, len)
        }
    }

    /// Whether `other` is fully contained in `self` (including equality).
    #[inline]
    pub fn contains(&self, other: &Ipv6Prefix) -> bool {
        self.len <= other.len && (other.bits & mask(self.len)) == self.bits
    }

    /// Whether the given address falls inside this prefix.
    #[inline]
    pub fn contains_addr(&self, addr: u128) -> bool {
        (addr & mask(self.len)) == self.bits
    }

    /// The immediate parent (one bit shorter), or `None` for /0.
    #[inline]
    pub fn parent(&self) -> Option<Ipv6Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv6Prefix::new(self.bits, self.len - 1))
        }
    }

    /// The sibling prefix: same parent, last prefix bit flipped. `None` for /0.
    #[inline]
    pub fn sibling(&self) -> Option<Ipv6Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv6Prefix {
                bits: self.bits ^ (1u128 << (128 - self.len)),
                len: self.len,
            })
        }
    }

    /// The two children of this prefix (one bit longer), or `None` for /128.
    #[inline]
    pub fn children(&self) -> Option<(Ipv6Prefix, Ipv6Prefix)> {
        if self.len == 128 {
            None
        } else {
            let left = Ipv6Prefix {
                bits: self.bits,
                len: self.len + 1,
            };
            let right = Ipv6Prefix {
                bits: self.bits | (1u128 << (127 - self.len)),
                len: self.len + 1,
            };
            Some((left, right))
        }
    }

    /// The bit at position `i` (0 = most significant). Panics if `i >= 128`.
    #[inline]
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 128);
        (self.bits >> (127 - i)) & 1 == 1
    }

    /// The first (lowest) address covered by this prefix.
    #[inline]
    pub fn first_addr(&self) -> u128 {
        self.bits
    }

    /// The last (highest) address covered by this prefix.
    #[inline]
    pub fn last_addr(&self) -> u128 {
        self.bits | !mask(self.len)
    }

    /// The number of /128 addresses covered, saturating at `u128::MAX` for /0.
    #[inline]
    pub fn size(&self) -> u128 {
        if self.len == 0 {
            u128::MAX
        } else {
            1u128 << (128 - self.len)
        }
    }

    /// Length of the longest common prefix of two prefixes, capped at the
    /// shorter of the two lengths.
    pub fn common_prefix_len(&self, other: &Ipv6Prefix) -> u8 {
        let diff = self.bits ^ other.bits;
        let common = diff.leading_zeros().min(128) as u8;
        common.min(self.len).min(other.len)
    }

    /// The smallest prefix that covers both inputs.
    pub fn merge(&self, other: &Ipv6Prefix) -> Ipv6Prefix {
        let len = self.common_prefix_len(other);
        Ipv6Prefix::new(self.bits, len)
    }

    /// The n-th subnet of the given length within this prefix.
    ///
    /// For example, `"2001:db8::/32".nth_subnet(48, 5)` is the sixth /48
    /// inside the /32. Returns `None` if `sub_len < self.len()` or the index
    /// is out of range.
    pub fn nth_subnet(&self, sub_len: u8, n: u128) -> Option<Ipv6Prefix> {
        if sub_len < self.len || sub_len > 128 {
            return None;
        }
        let width = sub_len - self.len;
        if width < 128 && n >= (1u128 << width) {
            return None;
        }
        let bits = self.bits | (n << (128 - sub_len));
        Some(Ipv6Prefix::new(bits, sub_len))
    }
}

/// A bit mask with the top `len` bits set.
#[inline]
fn mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else if len >= 128 {
        u128::MAX
    } else {
        !(u128::MAX >> len)
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 128 {
            write!(f, "{}", self.addr())
        } else {
            write!(f, "{}/{}", self.addr(), self.len)
        }
    }
}

impl fmt::Debug for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((addr, len)) => {
                let addr: Ipv6Addr = addr
                    .parse()
                    .map_err(|_| PrefixParseError::BadAddress(addr.to_string()))?;
                let len: u8 = len
                    .parse()
                    .map_err(|_| PrefixParseError::BadLength(len.to_string()))?;
                if len > 128 {
                    return Err(PrefixParseError::BadLength(len.to_string()));
                }
                Ok(Ipv6Prefix::from_addr(addr, len))
            }
            None => {
                let addr: Ipv6Addr = s
                    .parse()
                    .map_err(|_| PrefixParseError::BadAddress(s.to_string()))?;
                Ok(Ipv6Prefix::host(addr))
            }
        }
    }
}

impl From<Ipv6Addr> for Ipv6Prefix {
    fn from(addr: Ipv6Addr) -> Self {
        Ipv6Prefix::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["2001:db8::/32", "::/0", "2001:db8:1:2::/64", "ff00::/8"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn host_display_omits_len() {
        assert_eq!(p("2001:db8::1").to_string(), "2001:db8::1");
        assert_eq!(p("2001:db8::1").len(), 128);
    }

    #[test]
    fn constructor_masks_host_bits() {
        let a = Ipv6Prefix::new(
            u128::from_str_radix("20010db8000000010000000000000001", 16).unwrap(),
            32,
        );
        assert_eq!(a, p("2001:db8::/32"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            "zzz/64".parse::<Ipv6Prefix>(),
            Err(PrefixParseError::BadAddress(_))
        ));
        assert!(matches!(
            "2001:db8::/129".parse::<Ipv6Prefix>(),
            Err(PrefixParseError::BadLength(_))
        ));
        assert!(matches!(
            "2001:db8::/x".parse::<Ipv6Prefix>(),
            Err(PrefixParseError::BadLength(_))
        ));
    }

    #[test]
    fn aggregate_truncates() {
        let h = p("2001:db8:aaaa:bbbb:cccc:dddd:eeee:ffff");
        assert_eq!(h.aggregate(64), p("2001:db8:aaaa:bbbb::/64"));
        assert_eq!(h.aggregate(48), p("2001:db8:aaaa::/48"));
        assert_eq!(h.aggregate(32), p("2001:db8::/32"));
        assert_eq!(h.aggregate(0), Ipv6Prefix::DEFAULT);
    }

    #[test]
    fn aggregate_to_finer_is_identity() {
        let x = p("2001:db8::/32");
        assert_eq!(x.aggregate(64), x);
        assert_eq!(x.aggregate(32), x);
    }

    #[test]
    fn containment() {
        assert!(p("2001:db8::/32").contains(&p("2001:db8:1::/48")));
        assert!(p("2001:db8::/32").contains(&p("2001:db8::/32")));
        assert!(!p("2001:db8:1::/48").contains(&p("2001:db8::/32")));
        assert!(!p("2001:db8::/32").contains(&p("2001:db9::/32")));
        assert!(Ipv6Prefix::DEFAULT.contains(&p("::1")));
    }

    #[test]
    fn contains_addr_boundaries() {
        let x = p("2001:db8::/32");
        assert!(x.contains_addr(x.first_addr()));
        assert!(x.contains_addr(x.last_addr()));
        assert!(!x.contains_addr(x.last_addr().wrapping_add(1)));
        assert!(!x.contains_addr(x.first_addr().wrapping_sub(1)));
    }

    #[test]
    fn parent_and_children() {
        let x = p("2001:db8::/32");
        let (l, r) = x.children().unwrap();
        assert_eq!(l.parent().unwrap(), x);
        assert_eq!(r.parent().unwrap(), x);
        assert_ne!(l, r);
        assert!(x.contains(&l) && x.contains(&r));
        assert_eq!(l.sibling().unwrap(), r);
        assert_eq!(r.sibling().unwrap(), l);
        assert!(Ipv6Prefix::DEFAULT.parent().is_none());
        assert!(p("::1").children().is_none());
    }

    #[test]
    fn size_and_range() {
        assert_eq!(p("2001:db8::/127").size(), 2);
        assert_eq!(p("::1").size(), 1);
        assert_eq!(p("2001:db8::/64").size(), 1u128 << 64);
        assert_eq!(Ipv6Prefix::DEFAULT.size(), u128::MAX);
        let x = p("2001:db8::/112");
        assert_eq!(x.last_addr() - x.first_addr() + 1, x.size());
    }

    #[test]
    fn merge_finds_common_cover() {
        let a = p("2001:db8:0:1::/64");
        let b = p("2001:db8:0:2::/64");
        let m = a.merge(&b);
        assert!(m.contains(&a) && m.contains(&b));
        assert_eq!(m, p("2001:db8::/62"));
    }

    #[test]
    fn nth_subnet_enumerates() {
        let x = p("2001:db8::/32");
        assert_eq!(x.nth_subnet(48, 0).unwrap(), p("2001:db8::/48"));
        assert_eq!(x.nth_subnet(48, 1).unwrap(), p("2001:db8:1::/48"));
        assert_eq!(x.nth_subnet(48, 0xffff).unwrap(), p("2001:db8:ffff::/48"));
        assert!(x.nth_subnet(48, 0x10000).is_none());
        assert!(x.nth_subnet(16, 0).is_none());
    }

    #[test]
    fn ordering_is_by_bits_then_len() {
        let mut v = vec![p("2001:db8:1::/48"), p("2001:db8::/32"), p("::/0")];
        v.sort();
        assert_eq!(v, vec![p("::/0"), p("2001:db8::/32"), p("2001:db8:1::/48")]);
    }

    #[test]
    fn bit_access() {
        let x = p("8000::/1");
        assert!(x.bit(0));
        let y = p("4000::/2");
        assert!(!y.bit(0));
        assert!(y.bit(1));
    }
}
