//! Named narrowing helpers for 128-bit address state and wire-format
//! counters.
//!
//! L007 (`lumen6-analyzer`) forbids bare truncating `as` casts in the
//! detection crates because a silent truncation of an IPv6 address or a
//! counter is a wrong-answer bug — /64 attribution quietly collapses
//! onto the low bits. These helpers are the blessed sinks: each names
//! its intent (take the low half, saturate into a wire field) at the
//! call site, so the remaining bare casts stay worth auditing.

/// Low 64 bits of a 128-bit value — the interface identifier half of an
/// IPv6 address, or the low word fed to a 64-bit hash mixer.
#[must_use]
pub fn low64(x: u128) -> u64 {
    x as u64 // truncation is the point
}

/// High 64 bits of a 128-bit value — the /64 network prefix half.
#[must_use]
pub fn high64(x: u128) -> u64 {
    (x >> 64) as u64
}

/// Saturating narrow of a length/count into a 16-bit wire field.
#[must_use]
pub fn sat_u16(x: usize) -> u16 {
    u16::try_from(x).unwrap_or(u16::MAX)
}

/// Saturating narrow of a length/count into a 32-bit wire field.
#[must_use]
pub fn sat_u32(x: usize) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_recombine() {
        let addr: u128 = 0x2001_0db8_0000_0042_fe80_0000_0000_beef;
        assert_eq!(high64(addr), 0x2001_0db8_0000_0042);
        assert_eq!(low64(addr), 0xfe80_0000_0000_beef);
        assert_eq!(
            (u128::from(high64(addr)) << 64) | u128::from(low64(addr)),
            addr
        );
    }

    #[test]
    fn saturating_narrows_clamp() {
        assert_eq!(sat_u16(1234), 1234);
        assert_eq!(sat_u16(usize::MAX), u16::MAX);
        assert_eq!(sat_u32(70_000), 70_000);
        assert_eq!(sat_u32(usize::MAX), u32::MAX);
    }
}
