//! Per-nibble entropy profiles of address sets (Entropy/IP-style).
//!
//! Foremski, Plonka & Berger's *Entropy/IP* (IMC 2016) — cited by the paper
//! as one of the ways scanners uncover structure in the IPv6 space —
//! characterizes an address set by the Shannon entropy of each of the 32
//! hex nibbles. Fixed nibbles (network prefixes, padding zeroes) have
//! entropy 0; counters and port-embeddings have low entropy; random
//! privacy IIDs approach 4 bits. The profile both *fingerprints* how a
//! population of addresses was generated and seeds target-generation
//! models ([`crate::gen`], `lumen6_scanners::tga`).

use serde::{Deserialize, Serialize};

/// Number of nibbles in an IPv6 address.
pub const NIBBLES: usize = 32;

/// Extracts nibble `i` (0 = most significant) of an address.
#[inline]
pub fn nibble(addr: u128, i: usize) -> u8 {
    debug_assert!(i < NIBBLES);
    ((addr >> ((NIBBLES - 1 - i) * 4)) & 0xf) as u8
}

/// Coarse structure classes per nibble position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NibbleClass {
    /// One value only (network prefix, padding).
    Fixed,
    /// Entropy below 1.5 bits: counters, small enumerations.
    Low,
    /// Entropy 1.5–3.5 bits: structured but varied.
    Medium,
    /// Entropy above 3.5 bits: effectively random.
    High,
}

/// Per-nibble value counts and entropy of an address set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyProfile {
    counts: Vec<[u64; 16]>, // 32 positions
    total: u64,
}

impl Default for EntropyProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl EntropyProfile {
    /// An empty profile.
    pub fn new() -> Self {
        EntropyProfile {
            counts: vec![[0u64; 16]; NIBBLES],
            total: 0,
        }
    }

    /// Adds one address.
    pub fn observe(&mut self, addr: u128) {
        for i in 0..NIBBLES {
            self.counts[i][nibble(addr, i) as usize] += 1;
        }
        self.total += 1;
    }

    /// Builds a profile from an address iterator.
    pub fn from_addrs<I: IntoIterator<Item = u128>>(addrs: I) -> Self {
        let mut p = Self::new();
        for a in addrs {
            p.observe(a);
        }
        p
    }

    /// Number of addresses observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Shannon entropy (bits, 0..=4) of nibble position `i`.
    pub fn entropy(&self, i: usize) -> f64 {
        let total = self.total as f64;
        if self.total == 0 {
            return 0.0;
        }
        -self.counts[i]
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// The full 32-position entropy profile.
    pub fn profile(&self) -> [f64; NIBBLES] {
        let mut out = [0.0; NIBBLES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.entropy(i);
        }
        out
    }

    /// Classifies nibble position `i`.
    pub fn class(&self, i: usize) -> NibbleClass {
        let h = self.entropy(i);
        if h == 0.0 {
            NibbleClass::Fixed
        } else if h < 1.5 {
            NibbleClass::Low
        } else if h < 3.5 {
            NibbleClass::Medium
        } else {
            NibbleClass::High
        }
    }

    /// Mean entropy of the IID nibbles (positions 16..32): ~0 for low-byte
    /// server farms, ~4 for privacy addresses. The paper's Hamming-weight
    /// analysis is a cruder cut of the same signal.
    pub fn iid_entropy(&self) -> f64 {
        (16..NIBBLES).map(|i| self.entropy(i)).sum::<f64>() / 16.0
    }

    /// The empirical distribution of values at position `i` (sums to 1).
    pub fn distribution(&self, i: usize) -> [f64; 16] {
        let mut out = [0.0; 16];
        if self.total == 0 {
            return out;
        }
        for (v, slot) in out.iter_mut().enumerate() {
            *slot = self.counts[i][v] as f64 / self.total as f64;
        }
        out
    }

    /// Raw counts at position `i`.
    pub fn counts(&self, i: usize) -> &[u64; 16] {
        &self.counts[i]
    }

    /// A compact textual profile, one character per nibble: `.` fixed,
    /// `l` low, `m` medium, `H` high — handy in reports.
    pub fn signature(&self) -> String {
        (0..NIBBLES)
            .map(|i| match self.class(i) {
                NibbleClass::Fixed => '.',
                NibbleClass::Low => 'l',
                NibbleClass::Medium => 'm',
                NibbleClass::High => 'H',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn nibble_extraction() {
        let a: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_00ff;
        assert_eq!(nibble(a, 0), 0x2);
        assert_eq!(nibble(a, 1), 0x0);
        assert_eq!(nibble(a, 3), 0x1);
        assert_eq!(nibble(a, 31), 0xf);
        assert_eq!(nibble(a, 30), 0xf);
        assert_eq!(nibble(a, 29), 0x0);
    }

    #[test]
    fn fixed_prefix_zero_entropy() {
        // All addresses share 2001:db8::/32 and differ only in the last
        // nibble.
        let base: u128 = 0x2001_0db8 << 96;
        let p = EntropyProfile::from_addrs((0..16u128).map(|i| base | i));
        for i in 0..8 {
            assert_eq!(p.entropy(i), 0.0, "prefix nibble {i}");
            assert_eq!(p.class(i), NibbleClass::Fixed);
        }
        assert!((p.entropy(31) - 4.0).abs() < 1e-9, "uniform last nibble");
        assert_eq!(p.class(31), NibbleClass::High);
    }

    #[test]
    fn random_iids_have_high_iid_entropy() {
        let mut rng = SmallRng::seed_from_u64(5);
        let base: u128 = 0x2001_0db8 << 96;
        let p = EntropyProfile::from_addrs((0..5000).map(|_| base | u128::from(rng.gen::<u64>())));
        assert!(p.iid_entropy() > 3.8, "iid entropy {}", p.iid_entropy());
        // Network half stays fixed.
        assert!(p.profile()[..8].iter().all(|&h| h == 0.0));
    }

    #[test]
    fn low_byte_servers_have_low_iid_entropy() {
        let base: u128 = 0x2001_0db8 << 96;
        let p = EntropyProfile::from_addrs((1..=200u128).map(|i| base | ((i % 10) + 1)));
        assert!(p.iid_entropy() < 0.5, "iid entropy {}", p.iid_entropy());
    }

    #[test]
    fn signature_readable() {
        let base: u128 = 0x2001_0db8 << 96;
        let mut rng = SmallRng::seed_from_u64(6);
        let p = EntropyProfile::from_addrs((0..2000).map(|_| base | u128::from(rng.gen::<u16>())));
        let sig = p.signature();
        assert_eq!(sig.len(), 32);
        assert!(sig.starts_with("...."));
        assert!(sig.ends_with("HHHH"), "{sig}");
    }

    #[test]
    fn distribution_sums_to_one() {
        let p = EntropyProfile::from_addrs([1u128, 2, 3, 0xf]);
        for i in 0..NIBBLES {
            let s: f64 = p.distribution(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn empty_profile_is_all_fixed() {
        let p = EntropyProfile::new();
        assert_eq!(p.total(), 0);
        assert!(p.profile().iter().all(|&h| h == 0.0));
        assert_eq!(p.iid_entropy(), 0.0);
    }
}
