//! IPv6 address and prefix primitives for scan detection.
//!
//! This crate provides the low-level building blocks used throughout the
//! `lumen6` workspace:
//!
//! - [`Ipv6Prefix`]: a compact, totally ordered IPv6 prefix type with the
//!   aggregation operations scan detection needs (truncate a source address
//!   to /64, /48, /32, ...; containment; supernet/subnet walks).
//! - [`trie::PrefixTrie`]: a binary radix trie for longest-prefix-match
//!   lookups (prefix → AS attribution, allocation lookup).
//! - [`hamming`]: Hamming-weight analysis of Interface IDs (the low 64 bits),
//!   used by the paper (§4, Fig. 7) to distinguish structured from random
//!   target generation.
//! - [`classify`]: heuristic classification of how an address's IID was
//!   generated (low-byte, EUI-64, embedded port, random, ...).
//! - [`gen`]: deterministic, seedable address generators used by the scanner
//!   actor models (random-in-prefix, vary-low-bits, low-Hamming-weight IIDs).
//!
//! All types are plain data: no I/O, no global state, no wall-clock access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cast;
pub mod classify;
pub mod entropy;
pub mod gen;
pub mod hamming;
pub mod prefix;
pub mod trie;

pub use classify::{classify_iid, IidClass};
pub use entropy::EntropyProfile;
pub use hamming::{hamming_weight_iid, HammingDistribution};
pub use prefix::{Ipv6Prefix, PrefixParseError};
pub use trie::PrefixTrie;

/// The Interface ID: the low 64 bits of an IPv6 address.
#[inline]
pub fn iid(addr: u128) -> u64 {
    addr as u64
}

/// The network part: the high 64 bits of an IPv6 address.
#[inline]
pub fn network64(addr: u128) -> u64 {
    (addr >> 64) as u64
}
