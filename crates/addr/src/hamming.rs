//! Hamming-weight analysis of Interface IDs.
//!
//! The paper (§4, Appendix A.2, Fig. 7) uses the Hamming weight — the number
//! of bits set to 1 — of the rightmost 64 bits (the Interface ID) of targeted
//! addresses as an indicator of destination-address randomness: addresses
//! taken from hitlists or generated structurally exhibit a *low* Hamming
//! weight, while uniformly random IIDs concentrate near 32 with a binomial
//! (≈ Gaussian) distribution.

use serde::{Deserialize, Serialize};

/// Hamming weight (popcount) of the Interface ID (low 64 bits) of an address.
#[inline]
pub fn hamming_weight_iid(addr: u128) -> u32 {
    (addr as u64).count_ones()
}

/// An empirical distribution of IID Hamming weights (0..=64).
///
/// Collect with [`HammingDistribution::observe`], then query summary
/// statistics or compare against the binomial(64, ½) expected under uniform
/// random IIDs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HammingDistribution {
    counts: Vec<u64>, // 65 buckets
    total: u64,
}

impl HammingDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        HammingDistribution {
            counts: vec![0; 65],
            total: 0,
        }
    }

    /// Adds one address's IID Hamming weight to the distribution.
    pub fn observe(&mut self, addr: u128) {
        self.counts[hamming_weight_iid(addr) as usize] += 1;
        self.total += 1;
    }

    /// Builds a distribution from an iterator of addresses.
    pub fn from_addrs<I: IntoIterator<Item = u128>>(addrs: I) -> Self {
        let mut d = Self::new();
        for a in addrs {
            d.observe(a);
        }
        d
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations with exactly weight `w` (0..=64).
    pub fn count(&self, w: u32) -> u64 {
        self.counts.get(w as usize).copied().unwrap_or(0)
    }

    /// The 65-bucket histogram (index = weight).
    pub fn histogram(&self) -> &[u64] {
        &self.counts
    }

    /// Fraction of observations at each weight; empty distribution → zeros.
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; 65];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Mean Hamming weight. Uniform random IIDs have mean 32.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(w, &c)| w as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Variance of the Hamming weight. Uniform random IIDs have variance 16.
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let m = self.mean();
        let ss: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(w, &c)| c as f64 * (w as f64 - m).powi(2))
            .sum();
        ss / self.total as f64
    }

    /// Median Hamming weight (lower median).
    pub fn median(&self) -> u32 {
        if self.total == 0 {
            return 0;
        }
        let half = self.total.div_ceil(2);
        let mut acc = 0u64;
        for (w, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= half {
                return w as u32;
            }
        }
        64
    }

    /// Chi-square statistic against the binomial(64, ½) distribution expected
    /// for uniformly random IIDs. Buckets with expected count < 1 are pooled
    /// into their neighbors to keep the statistic stable.
    pub fn chi_square_vs_random(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let probs = binomial64_pmf();
        let mut chi = 0.0;
        let mut pool_obs = 0.0;
        let mut pool_exp = 0.0;
        for (w, &p) in probs.iter().enumerate() {
            let obs = self.counts[w] as f64 + pool_obs;
            let exp = n * p + pool_exp;
            if exp < 1.0 {
                pool_obs = obs;
                pool_exp = exp;
                continue;
            }
            pool_obs = 0.0;
            pool_exp = 0.0;
            chi += (obs - exp).powi(2) / exp;
        }
        if pool_exp > 0.0 {
            chi += (pool_obs - pool_exp).powi(2) / pool_exp;
        }
        chi
    }

    /// A coarse randomness verdict: does this distribution look like
    /// uniformly random IIDs?
    ///
    /// Uses the mean (within 32 ± 2), variance (within 16 ± 8), and requires
    /// at least 30 observations. This is the heuristic the experiments use to
    /// tag the December-24 scanner as "random IID generation" (paper §4).
    pub fn looks_random(&self) -> bool {
        self.total >= 30
            && (self.mean() - 32.0).abs() <= 2.0
            && (self.variance() - 16.0).abs() <= 8.0
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &HammingDistribution) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// The binomial(64, ½) PMF over weights 0..=64: C(64, w) / 2^64.
pub fn binomial64_pmf() -> [f64; 65] {
    let mut out = [0.0; 65];
    // C(64, w) fits in f64 exactly up to w=32? Not exactly, but well within
    // f64 precision for our use; compute multiplicatively to avoid overflow.
    let mut c = 1.0f64; // C(64, 0)
    for (w, slot) in out.iter_mut().enumerate() {
        *slot = c / 2f64.powi(64);
        c = c * (64 - w) as f64 / (w + 1) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn weight_of_known_addresses() {
        assert_eq!(hamming_weight_iid(0), 0);
        assert_eq!(hamming_weight_iid(1), 1);
        assert_eq!(hamming_weight_iid(u128::MAX), 64);
        // Network bits must not count.
        assert_eq!(hamming_weight_iid(u128::MAX << 64), 0);
        assert_eq!(hamming_weight_iid(0x3), 2);
    }

    #[test]
    fn empty_distribution_is_inert() {
        let d = HammingDistribution::new();
        assert_eq!(d.total(), 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.median(), 0);
        assert!(!d.looks_random());
        assert_eq!(d.chi_square_vs_random(), 0.0);
    }

    #[test]
    fn random_iids_look_random() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = HammingDistribution::from_addrs((0..5000).map(|_| rng.gen::<u64>() as u128));
        assert!(d.looks_random(), "mean={} var={}", d.mean(), d.variance());
        assert!((d.mean() - 32.0).abs() < 0.5);
    }

    #[test]
    fn low_weight_iids_do_not_look_random() {
        // Hitlist-style addresses: ::1, ::2, small IIDs.
        let d = HammingDistribution::from_addrs((1u128..1000).map(|i| i % 256));
        assert!(d.mean() < 8.0);
        assert!(!d.looks_random());
    }

    #[test]
    fn chi_square_separates_random_from_structured() {
        let mut rng = SmallRng::seed_from_u64(9);
        let random = HammingDistribution::from_addrs((0..2000).map(|_| rng.gen::<u64>() as u128));
        let structured = HammingDistribution::from_addrs((0..2000u128).map(|i| i % 64));
        assert!(random.chi_square_vs_random() < structured.chi_square_vs_random());
    }

    #[test]
    fn binomial_pmf_sums_to_one_and_is_symmetric() {
        let pmf = binomial64_pmf();
        let sum: f64 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in 0..=32 {
            assert!((pmf[w] - pmf[64 - w]).abs() < 1e-12);
        }
        // Mode at 32.
        assert!(pmf[32] >= pmf[31] && pmf[32] >= pmf[33]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = HammingDistribution::from_addrs([0u128, 1, 3]);
        let b = HammingDistribution::from_addrs([7u128]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(3), 1);
        assert_eq!(a.count(0), 1);
    }

    #[test]
    fn median_on_small_sets() {
        let d = HammingDistribution::from_addrs([1u128, 3, 7]); // weights 1,2,3
        assert_eq!(d.median(), 2);
    }
}
