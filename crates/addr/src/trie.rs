//! A binary radix (Patricia-style) trie over [`Ipv6Prefix`] keys with
//! longest-prefix-match lookup.
//!
//! Used for prefix → AS attribution (the routing-table model of
//! `lumen6-netmodel`) and for allocation lookups. The trie stores one value
//! per exact prefix; lookups return the most specific stored prefix covering
//! the query.
//!
//! The implementation is a plain binary trie with path traversal bounded by
//! 128 bits; nodes are arena-allocated in a `Vec` for cache locality and to
//! avoid recursive ownership.

use crate::prefix::Ipv6Prefix;

/// Index of a node in the arena. `u32::MAX` encodes "no child".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    children: [u32; 2],
    /// Value attached at exactly this depth/path, if any.
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            children: [NIL, NIL],
            value: None,
        }
    }
}

/// A binary radix trie keyed by IPv6 prefixes, supporting exact insert/get
/// and longest-prefix-match lookup.
///
/// ```
/// use lumen6_addr::{Ipv6Prefix, PrefixTrie};
/// let mut t = PrefixTrie::new();
/// t.insert("2001:db8::/32".parse().unwrap(), "isp");
/// t.insert("2001:db8:1::/48".parse().unwrap(), "customer");
/// let q: Ipv6Prefix = "2001:db8:1:2::1".parse().unwrap();
/// let (p, v) = t.longest_match(q.bits()).unwrap();
/// assert_eq!(*v, "customer");
/// assert_eq!(p.len(), 48);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value at the exact prefix, returning the previous value if
    /// the prefix was already present.
    pub fn insert(&mut self, prefix: Ipv6Prefix, value: V) -> Option<V> {
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let child = self.nodes[node].children[bit];
            node = if child == NIL {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[bit] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let prev = self.nodes[node].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Returns the value stored at exactly this prefix, if any.
    pub fn get(&self, prefix: &Ipv6Prefix) -> Option<&V> {
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let child = self.nodes[node].children[bit];
            if child == NIL {
                return None;
            }
            node = child as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Returns a mutable reference to the value at exactly this prefix.
    pub fn get_mut(&mut self, prefix: &Ipv6Prefix) -> Option<&mut V> {
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let child = self.nodes[node].children[bit];
            if child == NIL {
                return None;
            }
            node = child as usize;
        }
        self.nodes[node].value.as_mut()
    }

    /// Removes and returns the value at exactly this prefix. The node itself
    /// is left in place (tombstone); this keeps removal O(len) without
    /// re-linking, which is fine for routing-table-sized tries.
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<V> {
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let child = self.nodes[node].children[bit];
            if child == NIL {
                return None;
            }
            node = child as usize;
        }
        let v = self.nodes[node].value.take();
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// Longest-prefix match: the most specific stored prefix containing the
    /// address, with its value.
    pub fn longest_match(&self, addr: u128) -> Option<(Ipv6Prefix, &V)> {
        let mut node = 0usize;
        let mut best: Option<(u8, &V)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for i in 0..128u8 {
            let bit = ((addr >> (127 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NIL {
                break;
            }
            node = child as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some((i + 1, v));
            }
        }
        best.map(|(len, v)| (Ipv6Prefix::new(addr, len), v))
    }

    /// All stored (prefix, value) pairs covering the address, from least to
    /// most specific.
    pub fn matches(&self, addr: u128) -> Vec<(Ipv6Prefix, &V)> {
        let mut out = Vec::new();
        let mut node = 0usize;
        if let Some(v) = self.nodes[0].value.as_ref() {
            out.push((Ipv6Prefix::DEFAULT, v));
        }
        for i in 0..128u8 {
            let bit = ((addr >> (127 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NIL {
                break;
            }
            node = child as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                out.push((Ipv6Prefix::new(addr, i + 1), v));
            }
        }
        out
    }

    /// Iterates over all stored (prefix, value) pairs in lexicographic
    /// (bit-string) order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv6Prefix, &V)> {
        // Explicit stack DFS; left (0) before right (1).
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<(usize, u128, u8)> = vec![(0, 0, 0)];
        while let Some((node, bits, depth)) = stack.pop() {
            if let Some(v) = self.nodes[node].value.as_ref() {
                out.push((Ipv6Prefix::new(bits, depth), v));
            }
            // Push right first so left is processed first.
            let right = self.nodes[node].children[1];
            if right != NIL {
                stack.push((right as usize, bits | (1u128 << (127 - depth)), depth + 1));
            }
            let left = self.nodes[node].children[0];
            if left != NIL {
                stack.push((left as usize, bits, depth + 1));
            }
        }
        out.sort_by_key(|(p, _)| (p.bits(), p.len()));
        out.into_iter()
    }

    /// Linear-scan longest-prefix match over an explicit list; used as a
    /// correctness oracle in tests and as the ablation baseline in benches.
    pub fn linear_longest_match(
        entries: &[(Ipv6Prefix, V)],
        addr: u128,
    ) -> Option<(Ipv6Prefix, &V)> {
        entries
            .iter()
            .filter(|(p, _)| p.contains_addr(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("2001:db8::/32"), 1), None);
        assert_eq!(t.insert(p("2001:db8::/32"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("2001:db8::/32")), Some(&2));
        assert_eq!(t.get(&p("2001:db8::/33")), None);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::/32"), "wide");
        t.insert(p("2001:db8:1::/48"), "mid");
        t.insert(p("2001:db8:1:2::/64"), "narrow");
        let q = u128::from(p("2001:db8:1:2::99").addr());
        assert_eq!(t.longest_match(q).unwrap().1, &"narrow");
        let q2 = u128::from(p("2001:db8:1:3::99").addr());
        assert_eq!(t.longest_match(q2).unwrap().1, &"mid");
        let q3 = u128::from(p("2001:db8:9::1").addr());
        assert_eq!(t.longest_match(q3).unwrap().1, &"wide");
        let q4 = u128::from(p("2001:db9::1").addr());
        assert!(t.longest_match(q4).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv6Prefix::DEFAULT, "default");
        assert_eq!(t.longest_match(0).unwrap().1, &"default");
        assert_eq!(t.longest_match(u128::MAX).unwrap().1, &"default");
    }

    #[test]
    fn matches_returns_all_covers() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv6Prefix::DEFAULT, 0);
        t.insert(p("2001:db8::/32"), 32);
        t.insert(p("2001:db8:1::/48"), 48);
        let q = u128::from(p("2001:db8:1::1").addr());
        let m: Vec<i32> = t.matches(q).into_iter().map(|(_, v)| *v).collect();
        assert_eq!(m, vec![0, 32, 48]);
    }

    #[test]
    fn remove_tombstones() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::/32"), 1);
        t.insert(p("2001:db8:1::/48"), 2);
        assert_eq!(t.remove(&p("2001:db8:1::/48")), Some(2));
        assert_eq!(t.remove(&p("2001:db8:1::/48")), None);
        assert_eq!(t.len(), 1);
        let q = u128::from(p("2001:db8:1::1").addr());
        assert_eq!(t.longest_match(q).unwrap().1, &1);
    }

    #[test]
    fn iter_yields_sorted_entries() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8:1::/48"), "b");
        t.insert(p("2001:db8::/32"), "a");
        t.insert(p("ff00::/8"), "c");
        let got: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(got, vec!["2001:db8::/32", "2001:db8:1::/48", "ff00::/8"]);
    }

    #[test]
    fn host_route_matches_only_itself() {
        let mut t = PrefixTrie::new();
        let h = p("2001:db8::1");
        t.insert(h, "host");
        assert!(t.longest_match(h.bits()).is_some());
        assert!(t.longest_match(h.bits() + 1).is_none());
    }
}
