//! Property-based tests for prefix algebra and trie/linear LPM equivalence.

use lumen6_addr::{gen, Ipv6Prefix, PrefixTrie};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_prefix() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Ipv6Prefix::new(bits, len))
}

proptest! {
    #[test]
    fn display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Ipv6Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn aggregation_is_monotone_containment(p in arb_prefix(), len in 0u8..=128) {
        let agg = p.aggregate(len);
        prop_assert!(agg.contains(&p));
        prop_assert!(agg.len() <= p.len());
    }

    #[test]
    fn aggregation_is_idempotent(p in arb_prefix(), len in 0u8..=128) {
        let once = p.aggregate(len);
        prop_assert_eq!(once.aggregate(len), once);
    }

    #[test]
    fn aggregation_composes(p in arb_prefix(), a in 0u8..=128, b in 0u8..=128) {
        // Aggregating to min(a,b) equals aggregating twice in either order.
        let lo = a.min(b);
        prop_assert_eq!(p.aggregate(a).aggregate(b), p.aggregate(lo));
        prop_assert_eq!(p.aggregate(b).aggregate(a), p.aggregate(lo));
    }

    #[test]
    fn containment_is_transitive(addr in any::<u128>(), a in 0u8..=128, b in 0u8..=128, c in 0u8..=128) {
        let mut lens = [a, b, c];
        lens.sort();
        let coarse = Ipv6Prefix::new(addr, lens[0]);
        let mid = Ipv6Prefix::new(addr, lens[1]);
        let fine = Ipv6Prefix::new(addr, lens[2]);
        prop_assert!(coarse.contains(&mid));
        prop_assert!(mid.contains(&fine));
        prop_assert!(coarse.contains(&fine));
    }

    #[test]
    fn merge_covers_both(a in arb_prefix(), b in arb_prefix()) {
        let m = a.merge(&b);
        prop_assert!(m.contains(&a));
        prop_assert!(m.contains(&b));
    }

    #[test]
    fn parent_child_inverse(p in arb_prefix()) {
        if let Some((l, r)) = p.children() {
            prop_assert_eq!(l.parent().unwrap(), p);
            prop_assert_eq!(r.parent().unwrap(), p);
            prop_assert_eq!(l.merge(&r), p);
        }
    }

    #[test]
    fn first_last_addr_contained(p in arb_prefix()) {
        prop_assert!(p.contains_addr(p.first_addr()));
        prop_assert!(p.contains_addr(p.last_addr()));
    }

    #[test]
    fn trie_matches_linear_scan(
        entries in proptest::collection::vec((any::<u128>(), 16u8..=64), 1..40),
        queries in proptest::collection::vec(any::<u128>(), 1..20),
    ) {
        let entries: Vec<(Ipv6Prefix, usize)> = entries
            .into_iter()
            .enumerate()
            .map(|(i, (bits, len))| (Ipv6Prefix::new(bits, len), i))
            .collect();
        let mut trie = PrefixTrie::new();
        // Later duplicates overwrite earlier ones — mirror that in the oracle
        // by deduplicating keeping the last value per prefix.
        let mut dedup: std::collections::HashMap<Ipv6Prefix, usize> = Default::default();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            dedup.insert(*p, *v);
        }
        let linear: Vec<(Ipv6Prefix, usize)> = dedup.into_iter().collect();
        for q in queries {
            let got = trie.longest_match(q).map(|(p, v)| (p.len(), *v));
            let want = PrefixTrie::linear_longest_match(&linear, q).map(|(p, v)| (p.len(), *v));
            // Values may differ when two same-length prefixes match (impossible:
            // same length + contains addr => same prefix), so require equality.
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn trie_get_returns_inserted(entries in proptest::collection::vec((any::<u128>(), 0u8..=128), 1..30)) {
        let mut trie = PrefixTrie::new();
        let mut last: std::collections::HashMap<Ipv6Prefix, usize> = Default::default();
        for (i, (bits, len)) in entries.iter().enumerate() {
            let p = Ipv6Prefix::new(*bits, *len);
            trie.insert(p, i);
            last.insert(p, i);
        }
        for (p, v) in &last {
            prop_assert_eq!(trie.get(p), Some(v));
        }
        prop_assert_eq!(trie.len(), last.len());
    }

    #[test]
    fn random_in_prefix_contained(seed in any::<u64>(), bits in any::<u128>(), len in 0u8..=128) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = Ipv6Prefix::new(bits, len);
        let a = gen::random_in_prefix(&mut rng, p);
        prop_assert!(p.contains_addr(a));
    }

    #[test]
    fn nearby_addr_within_span(seed in any::<u64>(), base in any::<u128>(), span in 1u8..=64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = gen::nearby_addr(&mut rng, base, span);
        prop_assert_ne!(a, base);
        prop_assert_eq!(a >> span, base >> span);
    }
}
