//! Fault-tolerant streaming ingest: the unified [`Detect`] trait, the
//! [`DetectorBuilder`], out-of-order tolerance, and checkpoint/resume.
//!
//! The paper's vantage point captures continuously for 15 months; an ingest
//! that loses all in-memory run state on restart, or aborts on the first
//! corrupt record, cannot reproduce that operationally. This module wraps
//! any detector backend in a [`Session`] that survives all three failure
//! modes:
//!
//! 1. **Crashes** — [`Checkpoint`]s capture the complete pipeline state
//!    (detector runs and sketches, the reorder buffer, the trace byte
//!    offset) with an integrity checksum, written atomically (temp file +
//!    rename). A killed run resumed from its last checkpoint produces a
//!    report *byte-identical* to an uninterrupted run — a subprocess-tested
//!    invariant.
//! 2. **Reordering** — real multi-machine logs are never globally
//!    time-ordered. A bounded [`ReorderBuffer`] with a configurable
//!    watermark re-sorts slightly-late packets before `observe`; packets
//!    later than the watermark are counted and dropped, never silently
//!    mis-eventized.
//! 3. **Corrupt records** — recoverable decode errors (field overflows)
//!    quarantine-and-skip with per-kind `lumen6-obs` counters instead of
//!    aborting (framing errors still abort: stream alignment is lost).
//!
//! The three detector backends — [`ScanDetector`], [`MultiLevelDetector`],
//! and the sharded pipeline — all implement [`Detect`], so the CLI and the
//! experiment harness dispatch through one code path chosen by
//! [`DetectorBuilder`]. Snapshots use one uniform per-level format: a
//! checkpoint written by a sharded run restores into a sequential run and
//! vice versa, and the shard count may change across a resume.

use crate::aggregate::AggLevel;
use crate::detector::{ScanDetector, ScanDetectorConfig};
use crate::event::ScanReport;
use crate::multi::MultiLevelDetector;
use crate::parallel::{ShardPlan, ShardedDetector};
use crate::snapshot::{DetectorSnapshot, LevelState, SnapshotError};
use lumen6_obs::MetricsRegistry;
use lumen6_trace::{
    CodecError, FileStreamSource, PacketRecord, RecordBatch, Source, TracePosition,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// The unified detector trait
// ---------------------------------------------------------------------------

/// The unified push interface over all detector backends.
///
/// Unlike [`ScanDetector::observe`], the trait's `observe` returns nothing:
/// the sharded backend processes packets on worker threads and cannot
/// return closed events synchronously, so every implementation accumulates
/// mid-stream events internally and reports them from [`finish`].
///
/// [`finish`]: Detect::finish
pub trait Detect: Send {
    /// Feeds one packet. Records must arrive in non-decreasing time order
    /// (wrap the detector in a [`Session`] with a watermark if they don't).
    fn observe(&mut self, r: &PacketRecord);

    /// Feeds a columnar batch, equivalent to observing each record in
    /// order. The default loops over [`observe`](Detect::observe); every
    /// backend overrides it with a grouped path that looks up per-source
    /// run state once per (source, batch).
    fn observe_batch(&mut self, batch: &RecordBatch) {
        for i in 0..batch.len() {
            self.observe(&batch.get(i));
        }
    }

    /// Closes runs idle since before `now_ms - timeout`, bounding state
    /// size in a long-running deployment. Report-neutral: events closed
    /// here are identical to what [`finish`](Detect::finish) would emit.
    fn flush_idle(&mut self, now_ms: u64);

    /// Packets observed so far.
    fn observed(&self) -> u64;

    /// The aggregation levels this detector reports on.
    fn levels(&self) -> Vec<AggLevel>;

    /// The complete serializable per-level state (see
    /// [`LevelState`]). `&mut` because the sharded backend must quiesce its
    /// workers to collect it; sequential backends do not mutate.
    fn state(&mut self) -> Vec<LevelState>;

    /// A versioned [`DetectorSnapshot`] wrapping [`state`](Detect::state).
    fn snapshot(&mut self) -> DetectorSnapshot {
        DetectorSnapshot::new(self.state())
    }

    /// Ends the stream and returns the per-level reports, each sorted by
    /// `(start_ms, source)`.
    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport>;
}

impl Detect for ScanDetector {
    fn observe(&mut self, r: &PacketRecord) {
        if let Some(e) = ScanDetector::observe(self, r) {
            self.pending.push(e);
        }
    }

    fn observe_batch(&mut self, batch: &RecordBatch) {
        let events = ScanDetector::observe_batch(self, batch);
        self.pending.extend(events);
    }

    fn flush_idle(&mut self, now_ms: u64) {
        let events = ScanDetector::flush_idle(self, now_ms);
        self.pending.extend(events);
    }

    fn observed(&self) -> u64 {
        ScanDetector::observed(self)
    }

    fn levels(&self) -> Vec<AggLevel> {
        vec![self.config().agg]
    }

    fn state(&mut self) -> Vec<LevelState> {
        vec![ScanDetector::state(self)]
    }

    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport> {
        let mut this = *self;
        let lvl = this.config().agg;
        let mut events = std::mem::take(&mut this.pending);
        events.extend(ScanDetector::finish(this));
        events.sort_by_key(|e| (e.start_ms, e.source));
        BTreeMap::from([(lvl, ScanReport::new(events))])
    }
}

impl Detect for MultiLevelDetector {
    fn observe(&mut self, r: &PacketRecord) {
        MultiLevelDetector::observe(self, r);
    }

    fn observe_batch(&mut self, batch: &RecordBatch) {
        MultiLevelDetector::observe_batch(self, batch);
    }

    fn flush_idle(&mut self, now_ms: u64) {
        MultiLevelDetector::flush_idle(self, now_ms);
    }

    fn observed(&self) -> u64 {
        MultiLevelDetector::observed(self)
    }

    fn levels(&self) -> Vec<AggLevel> {
        MultiLevelDetector::levels(self)
    }

    fn state(&mut self) -> Vec<LevelState> {
        MultiLevelDetector::state(self)
    }

    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport> {
        MultiLevelDetector::finish(*self)
    }
}

impl Detect for ShardedDetector {
    fn observe(&mut self, r: &PacketRecord) {
        ShardedDetector::observe(self, r);
    }

    fn observe_batch(&mut self, batch: &RecordBatch) {
        ShardedDetector::observe_batch(self, batch);
    }

    fn flush_idle(&mut self, now_ms: u64) {
        ShardedDetector::flush_idle(self, now_ms);
    }

    fn observed(&self) -> u64 {
        ShardedDetector::observed(self)
    }

    fn levels(&self) -> Vec<AggLevel> {
        ShardedDetector::levels(self).to_vec()
    }

    fn state(&mut self) -> Vec<LevelState> {
        ShardedDetector::state(self)
    }

    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport> {
        ShardedDetector::finish(*self)
    }
}

// ---------------------------------------------------------------------------
// DetectorBuilder
// ---------------------------------------------------------------------------

/// Chooses and constructs a detector backend behind the [`Detect`] trait —
/// the one code path `lumen6 detect` and the experiment harness dispatch
/// through.
///
/// ```
/// use lumen6_detect::prelude::*;
/// use lumen6_trace::PacketRecord;
///
/// let mut det = DetectorBuilder::new(ScanDetectorConfig::default())
///     .levels(&AggLevel::PAPER_LEVELS)
///     .build();
/// for i in 0..150u64 {
///     det.observe(&PacketRecord::tcp(i * 1_000, 7, 0xd000 + u128::from(i), 1, 22, 60));
/// }
/// let reports = det.finish();
/// assert_eq!(reports[&AggLevel::L64].scans(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DetectorBuilder {
    base: ScanDetectorConfig,
    levels: Vec<AggLevel>,
    plan: Option<ShardPlan>,
}

impl DetectorBuilder {
    /// A sequential single-level builder at `base.agg`.
    pub fn new(base: ScanDetectorConfig) -> Self {
        let levels = vec![base.agg];
        DetectorBuilder {
            base,
            levels,
            plan: None,
        }
    }

    /// Detect at these aggregation levels (the base config's `agg` field is
    /// overridden per level).
    pub fn levels(mut self, levels: &[AggLevel]) -> Self {
        self.levels = levels.to_vec();
        self
    }

    /// Run the sharded parallel pipeline with this plan.
    pub fn sharded(mut self, plan: ShardPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Run sequentially (the default).
    pub fn sequential(mut self) -> Self {
        self.plan = None;
        self
    }

    /// Constructs a fresh detector: the sharded pipeline when a plan is
    /// set, a plain [`ScanDetector`] for a single level, and a
    /// [`MultiLevelDetector`] otherwise.
    pub fn build(&self) -> Box<dyn Detect> {
        match (&self.plan, self.levels.as_slice()) {
            (Some(plan), levels) => {
                Box::new(ShardedDetector::new(levels, self.base.clone(), *plan))
            }
            (None, [lvl]) => {
                let mut cfg = self.base.clone();
                cfg.agg = *lvl;
                Box::new(ScanDetector::new(cfg))
            }
            (None, levels) => Box::new(MultiLevelDetector::new(levels, self.base.clone())),
        }
    }

    /// Reconstructs a detector from a snapshot. The snapshot's embedded
    /// per-level configurations are authoritative (they were validated at
    /// checkpoint time); only the builder's backend choice (sequential vs
    /// sharded, and the shard plan) applies, which is what makes a
    /// checkpoint portable across backends and shard counts.
    pub fn restore(&self, snapshot: &DetectorSnapshot) -> Result<Box<dyn Detect>, SnapshotError> {
        snapshot.check_version()?;
        if snapshot.levels.is_empty() {
            return Err(SnapshotError("snapshot has no levels".into()));
        }
        Ok(match (&self.plan, snapshot.levels.as_slice()) {
            (Some(plan), states) => Box::new(ShardedDetector::from_state(states, *plan)?),
            (None, [state]) => Box::new(ScanDetector::from_state(state)),
            (None, states) => Box::new(MultiLevelDetector::from_state(states)),
        })
    }
}

// ---------------------------------------------------------------------------
// Out-of-order tolerance
// ---------------------------------------------------------------------------

/// Heap entry ordered by `(ts, seq)`: timestamp first, arrival order as the
/// tiebreaker so equal-timestamp packets release in arrival order.
#[derive(Debug, Clone, Copy)]
struct Entry {
    ts: u64,
    seq: u64,
    rec: PacketRecord,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.ts, self.seq) == (other.ts, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

/// Bounded reorder buffer with a time watermark.
///
/// Packets are held until the maximum timestamp seen exceeds theirs by more
/// than `watermark_ms`, then released in timestamp order — so the detector
/// always sees a non-decreasing stream as long as disorder stays within the
/// watermark. Packets arriving *later* than the watermark (timestamp below
/// `max_seen - watermark_ms`, i.e. after their release horizon has passed)
/// are counted and dropped: feeding them through would either corrupt run
/// accounting or force unbounded buffering.
///
/// A watermark of 0 disables the buffer entirely (pure passthrough, nothing
/// dropped), preserving the detectors' native mild-disorder tolerance for
/// sorted simulator output.
#[derive(Debug)]
pub struct ReorderBuffer {
    watermark_ms: u64,
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    max_ts: u64,
    late_dropped: u64,
}

impl ReorderBuffer {
    /// A buffer releasing packets `watermark_ms` behind the newest seen.
    pub fn new(watermark_ms: u64) -> Self {
        ReorderBuffer {
            watermark_ms,
            heap: BinaryHeap::new(),
            seq: 0,
            max_ts: 0,
            late_dropped: 0,
        }
    }

    /// The configured watermark.
    pub fn watermark_ms(&self) -> u64 {
        self.watermark_ms
    }

    /// Packets dropped for arriving beyond the watermark.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Packets currently buffered.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Feeds one packet; appends every packet whose release horizon passed
    /// to `out`, in timestamp order.
    pub fn push(&mut self, rec: PacketRecord, out: &mut Vec<PacketRecord>) {
        if self.watermark_ms == 0 {
            out.push(rec);
            return;
        }
        let horizon = self.max_ts.saturating_sub(self.watermark_ms);
        if rec.ts_ms < horizon {
            self.late_dropped += 1;
            return;
        }
        self.heap.push(Reverse(Entry {
            ts: rec.ts_ms,
            seq: self.seq,
            rec,
        }));
        self.seq += 1;
        self.max_ts = self.max_ts.max(rec.ts_ms);
        let horizon = self.max_ts.saturating_sub(self.watermark_ms);
        while self.heap.peek().is_some_and(|Reverse(e)| e.ts <= horizon) {
            if let Some(Reverse(e)) = self.heap.pop() {
                out.push(e.rec);
            }
        }
    }

    /// End of stream: releases everything still buffered, in order.
    pub fn drain(&mut self, out: &mut Vec<PacketRecord>) {
        while let Some(Reverse(e)) = self.heap.pop() {
            out.push(e.rec);
        }
    }

    /// Serializable state (entries sorted by release order).
    pub fn state(&self) -> ReorderState {
        let mut entries: Vec<Entry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        ReorderState {
            watermark_ms: self.watermark_ms,
            max_ts: self.max_ts,
            late_dropped: self.late_dropped,
            entries: entries.into_iter().map(|e| e.rec).collect(),
        }
    }

    /// Rebuilds a buffer from serialized state; buffered entries keep their
    /// relative release order.
    pub fn from_state(st: &ReorderState) -> Self {
        let heap = st
            .entries
            .iter()
            .enumerate()
            .map(|(i, rec)| {
                Reverse(Entry {
                    ts: rec.ts_ms,
                    seq: i as u64,
                    rec: *rec,
                })
            })
            .collect();
        ReorderBuffer {
            watermark_ms: st.watermark_ms,
            heap,
            seq: st.entries.len() as u64,
            max_ts: st.max_ts,
            late_dropped: st.late_dropped,
        }
    }
}

/// Serialized [`ReorderBuffer`] contents, part of a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorderState {
    /// The configured watermark.
    pub watermark_ms: u64,
    /// Maximum timestamp seen so far.
    pub max_ts: u64,
    /// Packets dropped as beyond-watermark late.
    pub late_dropped: u64,
    /// Buffered packets in release order.
    pub entries: Vec<PacketRecord>,
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Header magic for checkpoint files.
const CHECKPOINT_MAGIC: &str = "L6CK";
/// Checkpoint framing version.
const CHECKPOINT_FRAME_VERSION: u32 = 1;

/// FNV-1a 64-bit over a byte string — the checkpoint integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The complete durable state of a [`Session`] at one stream position:
/// resuming from a checkpoint reproduces the uninterrupted run byte for
/// byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Trace byte offset and delta-decode state to resume the reader at.
    pub position: TracePosition,
    /// Records pulled from the trace so far (including late-dropped ones).
    pub records_done: u64,
    /// Recoverable decode errors skipped so far.
    pub decode_skipped: u64,
    /// Detector state.
    pub detector: DetectorSnapshot,
    /// Reorder buffer contents.
    pub reorder: ReorderState,
    /// Checkpoints written before this one, plus one.
    pub checkpoints_written: u64,
    /// Simulation time of the last periodic idle flush (0 = none yet).
    pub last_flush_ms: u64,
}

impl Checkpoint {
    /// Writes the checkpoint atomically: serialize, checksum, write to
    /// `<path>.tmp`, fsync, rename over `path`. A crash mid-write leaves
    /// the previous checkpoint intact.
    pub fn save(&self, path: &Path) -> Result<(), SessionError> {
        let body = serde_json::to_string(self).map_err(|e| SessionError::Corrupt(e.to_string()))?;
        let header = format!(
            "{CHECKPOINT_MAGIC} v{CHECKPOINT_FRAME_VERSION} {:016x} {}\n",
            fnv1a(body.as_bytes()),
            body.len()
        );
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(header.as_bytes())?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and verifies a checkpoint written by [`save`](Self::save).
    pub fn load(path: &Path) -> Result<Self, SessionError> {
        let data = fs::read_to_string(path)?;
        let (header, body) = data
            .split_once('\n')
            .ok_or_else(|| SessionError::Corrupt("missing checkpoint header".into()))?;
        let mut parts = header.split(' ');
        let magic = parts.next().unwrap_or_default();
        let version = parts.next().unwrap_or_default();
        let checksum = parts.next().unwrap_or_default();
        let len = parts.next().unwrap_or_default();
        if magic != CHECKPOINT_MAGIC {
            return Err(SessionError::Corrupt(format!(
                "bad checkpoint magic {magic:?}"
            )));
        }
        if version != format!("v{CHECKPOINT_FRAME_VERSION}") {
            return Err(SessionError::Corrupt(format!(
                "unsupported checkpoint framing {version:?}"
            )));
        }
        if len.parse::<usize>().ok() != Some(body.len()) {
            return Err(SessionError::Corrupt(format!(
                "checkpoint length mismatch: header says {len}, body is {}",
                body.len()
            )));
        }
        let expect = u64::from_str_radix(checksum, 16).map_err(|_| {
            SessionError::Corrupt(format!("bad checkpoint checksum field {checksum:?}"))
        })?;
        let actual = fnv1a(body.as_bytes());
        if actual != expect {
            return Err(SessionError::Corrupt(format!(
                "checkpoint checksum mismatch: header {expect:016x}, body {actual:016x}"
            )));
        }
        let ck: Checkpoint =
            serde_json::from_str(body).map_err(|e| SessionError::Corrupt(e.to_string()))?;
        ck.detector
            .check_version()
            .map_err(SessionError::Snapshot)?;
        Ok(ck)
    }
}

/// When and where a [`Session`] checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (also probed for auto-resume).
    pub path: PathBuf,
    /// Write a checkpoint every this many records. 0 disables periodic
    /// writes (the file is still probed for resume).
    pub every_records: u64,
    /// Stop the session (without finishing) after this many checkpoint
    /// writes — a deterministic stand-in for `kill -9` in resume tests.
    pub stop_after: Option<u64>,
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Session-layer configuration, orthogonal to the detector configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Reorder-buffer watermark; 0 = passthrough (sorted input).
    pub watermark_ms: u64,
    /// Checkpointing policy; `None` runs without durability.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Call `flush_idle` whenever stream time advances this far past the
    /// last flush; 0 disables. Report-neutral at any cadence.
    pub flush_idle_every_ms: u64,
    /// Abort on recoverable decode errors instead of quarantine-and-skip.
    pub strict: bool,
    /// Records staged per [`Detect::observe_batch`] call on the hot path.
    /// Values ≤ 1 feed single-record batches. Any value produces reports
    /// and checkpoints byte-identical to per-record ingest; this only
    /// trades latency of mid-stream event collection against lookup
    /// amortization.
    pub batch: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            watermark_ms: 0,
            checkpoint: None,
            flush_idle_every_ms: 0,
            strict: false,
            batch: DEFAULT_SESSION_BATCH,
        }
    }
}

/// Default [`SessionConfig::batch`]: large enough to amortize per-source
/// lookups on bursty scan traffic, small enough that mid-stream events
/// surface promptly.
pub const DEFAULT_SESSION_BATCH: usize = 4096;

/// Outcome of [`Session::run`]: the stream finished, or the session stopped
/// deliberately after `stop_after` checkpoints.
#[derive(Debug)]
pub enum SessionOutcome {
    /// End of stream: final per-level reports and run statistics.
    Finished(SessionReport),
    /// Stopped by [`CheckpointPolicy::stop_after`]; resume from the
    /// checkpoint file to continue.
    Stopped {
        /// Checkpoints written over the session's whole life.
        checkpoints_written: u64,
        /// Records ingested over the session's whole life.
        records_done: u64,
    },
}

/// Final output of a completed session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Per-level scan reports, each sorted by `(start_ms, source)`.
    pub reports: BTreeMap<AggLevel, ScanReport>,
    /// Records ingested (including late-dropped).
    pub records: u64,
    /// Packets dropped as beyond-watermark late.
    pub late_dropped: u64,
    /// Recoverable decode errors skipped.
    pub decode_skipped: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
}

/// Errors from [`Session`] runs and checkpoint IO.
#[derive(Debug)]
pub enum SessionError {
    /// Filesystem failure (trace or checkpoint file).
    Io(io::Error),
    /// Unrecoverable trace decode failure.
    Codec(CodecError),
    /// Snapshot version/shape mismatch on restore.
    Snapshot(SnapshotError),
    /// Checkpoint file failed framing or checksum validation.
    Corrupt(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session io error: {e}"),
            SessionError::Codec(e) => write!(f, "session decode error: {e}"),
            SessionError::Snapshot(e) => write!(f, "session restore error: {e}"),
            SessionError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<io::Error> for SessionError {
    fn from(e: io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<CodecError> for SessionError {
    fn from(e: CodecError) -> Self {
        // Unwrap I/O failures (file missing, permission, disk) to the Io
        // variant so callers classify them as filesystem problems, exactly
        // as when the session opened files itself; only genuine decode
        // failures surface as Codec.
        match e {
            CodecError::Io(io) => SessionError::Io(io),
            other => SessionError::Codec(other),
        }
    }
}

/// Fault-tolerant streaming ingest over any [`Detect`] backend.
///
/// [`Session::run`] drives a trace file end to end: it auto-resumes from
/// the checkpoint file when one exists, re-sorts mildly disordered input,
/// quarantines corrupt records, and checkpoints periodically. See the
/// module docs for the guarantees.
pub struct Session {
    builder: DetectorBuilder,
    config: SessionConfig,
}

impl Session {
    /// A session dispatching through `builder` under `config`.
    pub fn new(builder: DetectorBuilder, config: SessionConfig) -> Self {
        Session { builder, config }
    }

    /// Runs the session over `trace` (an L6TR file). If the checkpoint
    /// file exists, the run resumes from it; otherwise it starts fresh.
    ///
    /// Equivalent to [`run_source`](Self::run_source) over a
    /// [`FileStreamSource`] (permissive unless [`SessionConfig::strict`]).
    pub fn run(self, trace: &Path) -> Result<SessionOutcome, SessionError> {
        let permissive = !self.config.strict;
        let mut src = FileStreamSource::open(trace)?.permissive(permissive);
        self.run_source(&mut src)
    }

    /// Runs the session over any [`Source`] — a trace file, an in-memory
    /// record vector, or a fused generator that synthesizes records on the
    /// fly. If the checkpoint file exists, the run resumes from it: the
    /// source is [`Source::resume`]d at the checkpointed position (which
    /// must have been produced by the same kind of source over the same
    /// underlying data).
    ///
    /// The ingest loop pulls records in batches of at most
    /// [`SessionConfig::batch`], capped so no pull ever crosses a
    /// checkpoint boundary — checkpoints are therefore taken at exactly
    /// the same record counts and stream positions as per-record ingest,
    /// and stay byte-identical to it.
    pub fn run_source(self, src: &mut dyn Source) -> Result<SessionOutcome, SessionError> {
        let reg = MetricsRegistry::global();
        let resume = match &self.config.checkpoint {
            Some(p) if p.path.exists() => Some(Checkpoint::load(&p.path)?),
            _ => None,
        };

        let (mut det, mut reorder, mut records_done, mut ckpts, skipped_before, mut last_flush) =
            match &resume {
                Some(ck) => (
                    self.builder
                        .restore(&ck.detector)
                        .map_err(SessionError::Snapshot)?,
                    ReorderBuffer::from_state(&ck.reorder),
                    ck.records_done,
                    ck.checkpoints_written,
                    ck.decode_skipped,
                    ck.last_flush_ms,
                ),
                None => (
                    self.builder.build(),
                    ReorderBuffer::new(self.config.watermark_ms),
                    0,
                    0,
                    0,
                    0,
                ),
            };
        if let Some(ck) = &resume {
            src.resume(ck.position)?;
            reg.counter("detect.session.resumes").add(1);
        }

        // Released records are staged into a reusable columnar batch and
        // flushed to the detector's grouped batch path. Staging never
        // crosses an ordering point: the stage is flushed before every
        // `flush_idle` and before every checkpoint snapshot, so the
        // detector state at those points — and therefore every checkpoint
        // byte — is identical to per-record ingest.
        let batch_cap = self.config.batch.max(1);
        let mut staged = RecordBatch::with_capacity(batch_cap);
        let flush_staged = |det: &mut Box<dyn Detect>, staged: &mut RecordBatch| {
            if !staged.is_empty() {
                reg.histogram("detect.session.batch_size")
                    .record(staged.len() as u64);
                det.observe_batch(staged);
                staged.clear();
            }
        };

        let every = self
            .config
            .checkpoint
            .as_ref()
            .map_or(0, |p| p.every_records);
        let source_records = reg.counter("source.records");
        let fill_us = reg.histogram("detect.session.source_fill_us");
        let mut incoming = RecordBatch::with_capacity(batch_cap);
        let mut ready: Vec<PacketRecord> = Vec::new();
        loop {
            // Never pull past the next checkpoint boundary: `position()`
            // right after the fill is then exactly the post-boundary-record
            // position a per-record loop would checkpoint at.
            let want = if every > 0 {
                let until = every - (records_done % every);
                batch_cap.min(usize::try_from(until).unwrap_or(usize::MAX))
            } else {
                batch_cap
            };
            let n = {
                let t = lumen6_obs::StageTimer::new(fill_us.clone());
                let n = src.fill(&mut incoming, want)?;
                t.stop();
                n
            };
            if n == 0 {
                break;
            }
            source_records.add(n as u64);
            for i in 0..n {
                let rec = incoming.get(i);
                records_done += 1;
                reorder.push(rec, &mut ready);
                for r in ready.drain(..) {
                    if self.config.flush_idle_every_ms > 0
                        && r.ts_ms >= last_flush + self.config.flush_idle_every_ms
                    {
                        // Flush at the watermark horizon: every future
                        // detector input is ≥ `r.ts_ms - watermark`, so
                        // closures here match what end-of-stream finish
                        // would emit.
                        flush_staged(&mut det, &mut staged);
                        det.flush_idle(r.ts_ms.saturating_sub(reorder.watermark_ms()));
                        last_flush = r.ts_ms;
                        reg.counter("detect.session.idle_flushes").add(1);
                    }
                    staged.push(r);
                    if staged.len() >= batch_cap {
                        flush_staged(&mut det, &mut staged);
                    }
                }
            }

            if let Some(policy) = &self.config.checkpoint {
                if policy.every_records > 0 && records_done % policy.every_records == 0 {
                    flush_staged(&mut det, &mut staged);
                    ckpts += 1;
                    let ck = Checkpoint {
                        position: src.position(),
                        records_done,
                        decode_skipped: skipped_before + src.skipped(),
                        detector: det.snapshot(),
                        reorder: reorder.state(),
                        checkpoints_written: ckpts,
                        last_flush_ms: last_flush,
                    };
                    ck.save(&policy.path)?;
                    reg.counter("detect.session.checkpoints_written").add(1);
                    if policy.stop_after.is_some_and(|n| ckpts >= n) {
                        reg.counter("detect.session.stops").add(1);
                        return Ok(SessionOutcome::Stopped {
                            checkpoints_written: ckpts,
                            records_done,
                        });
                    }
                }
            }
        }

        reorder.drain(&mut ready);
        staged.extend(ready.drain(..));
        flush_staged(&mut det, &mut staged);
        let late = reorder.late_dropped();
        let skipped = skipped_before + src.skipped();
        reg.counter("detect.session.late_dropped").add(late);
        let reports = det.finish();
        Ok(SessionOutcome::Finished(SessionReport {
            reports,
            records: records_done,
            late_dropped: late,
            decode_skipped: skipped,
            checkpoints_written: ckpts,
        }))
    }
}
