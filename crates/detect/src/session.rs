//! Fault-tolerant streaming ingest: the unified [`Detect`] trait, the
//! [`DetectorBuilder`], out-of-order tolerance, and checkpoint/resume.
//!
//! The paper's vantage point captures continuously for 15 months; an ingest
//! that loses all in-memory run state on restart, or aborts on the first
//! corrupt record, cannot reproduce that operationally. This module wraps
//! any detector backend in a [`Session`] that survives all three failure
//! modes:
//!
//! 1. **Crashes** — [`Checkpoint`]s capture the complete pipeline state
//!    (detector runs and sketches, the reorder buffer, the trace byte
//!    offset) with an integrity checksum, written atomically (temp file +
//!    rename). A killed run resumed from its last checkpoint produces a
//!    report *byte-identical* to an uninterrupted run — a subprocess-tested
//!    invariant.
//! 2. **Reordering** — real multi-machine logs are never globally
//!    time-ordered. A bounded [`ReorderBuffer`] with a configurable
//!    watermark re-sorts slightly-late packets before `observe`; packets
//!    later than the watermark are counted and dropped, never silently
//!    mis-eventized.
//! 3. **Corrupt records** — recoverable decode errors (field overflows)
//!    quarantine-and-skip with per-kind `lumen6-obs` counters instead of
//!    aborting (framing errors still abort: stream alignment is lost).
//!
//! The three detector backends — [`ScanDetector`], [`MultiLevelDetector`],
//! and the sharded pipeline — all implement [`Detect`], so the CLI and the
//! experiment harness dispatch through one code path chosen by
//! [`DetectorBuilder`]. Snapshots use one uniform per-level format: a
//! checkpoint written by a sharded run restores into a sequential run and
//! vice versa, and the shard count may change across a resume.

use crate::aggregate::AggLevel;
use crate::detector::{ScanDetector, ScanDetectorConfig};
use crate::event::ScanReport;
use crate::multi::MultiLevelDetector;
use crate::parallel::{ShardPlan, ShardedDetector};
use crate::snapshot::{DetectorSnapshot, LevelState, SnapshotError};
use lumen6_obs::MetricsRegistry;
use lumen6_trace::{
    CodecError, FileStreamSource, FillOutcome, PacketRecord, RecordBatch, Source, TracePosition,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// The unified detector trait
// ---------------------------------------------------------------------------

/// The unified push interface over all detector backends.
///
/// Unlike [`ScanDetector::observe`], the trait's `observe` returns nothing:
/// the sharded backend processes packets on worker threads and cannot
/// return closed events synchronously, so every implementation accumulates
/// mid-stream events internally and reports them from [`finish`].
///
/// [`finish`]: Detect::finish
pub trait Detect: Send {
    /// Feeds one packet. Records must arrive in non-decreasing time order
    /// (wrap the detector in a [`Session`] with a watermark if they don't).
    fn observe(&mut self, r: &PacketRecord);

    /// Feeds a columnar batch, equivalent to observing each record in
    /// order. The default loops over [`observe`](Detect::observe); every
    /// backend overrides it with a grouped path that looks up per-source
    /// run state once per (source, batch).
    fn observe_batch(&mut self, batch: &RecordBatch) {
        for i in 0..batch.len() {
            self.observe(&batch.get(i));
        }
    }

    /// Closes runs idle since before `now_ms - timeout`, bounding state
    /// size in a long-running deployment. Report-neutral: events closed
    /// here are identical to what [`finish`](Detect::finish) would emit.
    fn flush_idle(&mut self, now_ms: u64);

    /// Packets observed so far.
    fn observed(&self) -> u64;

    /// The aggregation levels this detector reports on.
    fn levels(&self) -> Vec<AggLevel>;

    /// The complete serializable per-level state (see
    /// [`LevelState`]). `&mut` because the sharded backend must quiesce its
    /// workers to collect it; sequential backends do not mutate.
    fn state(&mut self) -> Vec<LevelState>;

    /// A versioned [`DetectorSnapshot`] wrapping [`state`](Detect::state).
    fn snapshot(&mut self) -> DetectorSnapshot {
        DetectorSnapshot::new(self.state())
    }

    /// Ends the stream and returns the per-level reports, each sorted by
    /// `(start_ms, source)`.
    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport>;
}

impl Detect for ScanDetector {
    fn observe(&mut self, r: &PacketRecord) {
        if let Some(e) = ScanDetector::observe(self, r) {
            self.pending.push(e);
        }
    }

    fn observe_batch(&mut self, batch: &RecordBatch) {
        let events = ScanDetector::observe_batch(self, batch);
        self.pending.extend(events);
    }

    fn flush_idle(&mut self, now_ms: u64) {
        let events = ScanDetector::flush_idle(self, now_ms);
        self.pending.extend(events);
    }

    fn observed(&self) -> u64 {
        ScanDetector::observed(self)
    }

    fn levels(&self) -> Vec<AggLevel> {
        vec![self.config().agg]
    }

    fn state(&mut self) -> Vec<LevelState> {
        vec![ScanDetector::state(self)]
    }

    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport> {
        let mut this = *self;
        let lvl = this.config().agg;
        let mut events = std::mem::take(&mut this.pending);
        events.extend(ScanDetector::finish(this));
        events.sort_by_key(|e| (e.start_ms, e.source));
        BTreeMap::from([(lvl, ScanReport::new(events))])
    }
}

impl Detect for MultiLevelDetector {
    fn observe(&mut self, r: &PacketRecord) {
        MultiLevelDetector::observe(self, r);
    }

    fn observe_batch(&mut self, batch: &RecordBatch) {
        MultiLevelDetector::observe_batch(self, batch);
    }

    fn flush_idle(&mut self, now_ms: u64) {
        MultiLevelDetector::flush_idle(self, now_ms);
    }

    fn observed(&self) -> u64 {
        MultiLevelDetector::observed(self)
    }

    fn levels(&self) -> Vec<AggLevel> {
        MultiLevelDetector::levels(self)
    }

    fn state(&mut self) -> Vec<LevelState> {
        MultiLevelDetector::state(self)
    }

    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport> {
        MultiLevelDetector::finish(*self)
    }
}

impl Detect for ShardedDetector {
    fn observe(&mut self, r: &PacketRecord) {
        ShardedDetector::observe(self, r);
    }

    fn observe_batch(&mut self, batch: &RecordBatch) {
        ShardedDetector::observe_batch(self, batch);
    }

    fn flush_idle(&mut self, now_ms: u64) {
        ShardedDetector::flush_idle(self, now_ms);
    }

    fn observed(&self) -> u64 {
        ShardedDetector::observed(self)
    }

    fn levels(&self) -> Vec<AggLevel> {
        ShardedDetector::levels(self).to_vec()
    }

    fn state(&mut self) -> Vec<LevelState> {
        ShardedDetector::state(self)
    }

    fn finish(self: Box<Self>) -> BTreeMap<AggLevel, ScanReport> {
        ShardedDetector::finish(*self)
    }
}

// ---------------------------------------------------------------------------
// DetectorBuilder
// ---------------------------------------------------------------------------

/// Which execution backend a [`DetectorBuilder`] realizes a detector on.
///
/// The backend is orthogonal to *what* is detected (configuration and
/// aggregation levels live on the builder): the sequential and sharded
/// pipelines produce identical reports and interchangeable snapshots, so
/// the choice is purely an execution-resource decision and is made at
/// [`build`](DetectorBuilder::build) /
/// [`restore`](DetectorBuilder::restore) time — including across a resume,
/// where the checkpoint may have been written by the other backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The single-threaded reference pipeline.
    Sequential,
    /// The sharded parallel pipeline (identical output, see
    /// [`crate::parallel`]).
    Sharded(ShardPlan),
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Sharded(ShardPlan::default())
    }
}

impl Backend {
    /// Resolves the CLI escape hatches: `sequential` wins, an explicit
    /// `threads = N` pins the shard count, otherwise one shard per core.
    pub fn from_flags(threads: Option<usize>, sequential: bool) -> Self {
        if sequential {
            Backend::Sequential
        } else {
            match threads {
                Some(n) if n > 0 => Backend::Sharded(ShardPlan::with_shards(n)),
                _ => Backend::default(),
            }
        }
    }

    /// Whether callers may fan their own loops out across threads.
    pub fn is_parallel(&self) -> bool {
        matches!(self, Backend::Sharded(_))
    }
}

/// Chooses and constructs a detector backend behind the [`Detect`] trait —
/// the one code path `lumen6 detect`, `lumen6 serve`, and the experiment
/// harness dispatch through.
///
/// The builder holds the detection *shape* (base configuration and
/// aggregation levels); the execution [`Backend`] is passed to
/// [`build`](Self::build) so one builder can realize detectors on
/// different backends.
///
/// ```
/// use lumen6_detect::prelude::*;
/// use lumen6_trace::PacketRecord;
///
/// let mut det = DetectorBuilder::new(ScanDetectorConfig::default())
///     .levels(&AggLevel::PAPER_LEVELS)
///     .build(Backend::Sequential);
/// for i in 0..150u64 {
///     det.observe(&PacketRecord::tcp(i * 1_000, 7, 0xd000 + u128::from(i), 1, 22, 60));
/// }
/// let reports = det.finish();
/// assert_eq!(reports[&AggLevel::L64].scans(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DetectorBuilder {
    base: ScanDetectorConfig,
    levels: Vec<AggLevel>,
}

impl DetectorBuilder {
    /// A single-level builder at `base.agg`.
    pub fn new(base: ScanDetectorConfig) -> Self {
        let levels = vec![base.agg];
        DetectorBuilder { base, levels }
    }

    /// Detect at these aggregation levels (the base config's `agg` field is
    /// overridden per level).
    pub fn levels(mut self, levels: &[AggLevel]) -> Self {
        self.levels = levels.to_vec();
        self
    }

    /// Constructs a fresh detector on the given backend: the sharded
    /// pipeline when `backend` carries a plan, a plain [`ScanDetector`]
    /// for a single sequential level, and a [`MultiLevelDetector`]
    /// otherwise.
    pub fn build(&self, backend: Backend) -> Box<dyn Detect> {
        match (backend, self.levels.as_slice()) {
            (Backend::Sharded(plan), levels) => {
                Box::new(ShardedDetector::new(levels, self.base.clone(), plan))
            }
            (Backend::Sequential, [lvl]) => {
                let mut cfg = self.base.clone();
                cfg.agg = *lvl;
                Box::new(ScanDetector::new(cfg))
            }
            (Backend::Sequential, levels) => {
                Box::new(MultiLevelDetector::new(levels, self.base.clone()))
            }
        }
    }

    /// Reconstructs a detector from a snapshot on the given backend. The
    /// snapshot's embedded per-level configurations are authoritative
    /// (they were validated at checkpoint time); only the backend choice
    /// (sequential vs sharded, and the shard plan) applies, which is what
    /// makes a checkpoint portable across backends and shard counts.
    pub fn restore(
        &self,
        backend: Backend,
        snapshot: &DetectorSnapshot,
    ) -> Result<Box<dyn Detect>, SnapshotError> {
        snapshot.check_version()?;
        if snapshot.levels.is_empty() {
            return Err(SnapshotError("snapshot has no levels".into()));
        }
        Ok(match (backend, snapshot.levels.as_slice()) {
            (Backend::Sharded(plan), states) => {
                Box::new(ShardedDetector::from_state(states, plan)?)
            }
            (Backend::Sequential, [state]) => Box::new(ScanDetector::from_state(state)),
            (Backend::Sequential, states) => Box::new(MultiLevelDetector::from_state(states)),
        })
    }
}

// ---------------------------------------------------------------------------
// Out-of-order tolerance
// ---------------------------------------------------------------------------

/// Heap entry ordered by `(ts, seq)`: timestamp first, arrival order as the
/// tiebreaker so equal-timestamp packets release in arrival order.
#[derive(Debug, Clone, Copy)]
struct Entry {
    ts: u64,
    seq: u64,
    rec: PacketRecord,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.ts, self.seq) == (other.ts, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

/// Bounded reorder buffer with a time watermark.
///
/// Packets are held until the maximum timestamp seen exceeds theirs by more
/// than `watermark_ms`, then released in timestamp order — so the detector
/// always sees a non-decreasing stream as long as disorder stays within the
/// watermark. Packets arriving *later* than the watermark (timestamp below
/// `max_seen - watermark_ms`, i.e. after their release horizon has passed)
/// are counted and dropped: feeding them through would either corrupt run
/// accounting or force unbounded buffering.
///
/// A watermark of 0 disables the buffer entirely (pure passthrough, nothing
/// dropped), preserving the detectors' native mild-disorder tolerance for
/// sorted simulator output.
#[derive(Debug)]
pub struct ReorderBuffer {
    watermark_ms: u64,
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    max_ts: u64,
    late_dropped: u64,
}

impl ReorderBuffer {
    /// A buffer releasing packets `watermark_ms` behind the newest seen.
    pub fn new(watermark_ms: u64) -> Self {
        ReorderBuffer {
            watermark_ms,
            heap: BinaryHeap::new(),
            seq: 0,
            max_ts: 0,
            late_dropped: 0,
        }
    }

    /// The configured watermark.
    pub fn watermark_ms(&self) -> u64 {
        self.watermark_ms
    }

    /// Packets dropped for arriving beyond the watermark.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Packets currently buffered.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Feeds one packet; appends every packet whose release horizon passed
    /// to `out`, in timestamp order.
    pub fn push(&mut self, rec: PacketRecord, out: &mut Vec<PacketRecord>) {
        if self.watermark_ms == 0 {
            out.push(rec);
            return;
        }
        let horizon = self.max_ts.saturating_sub(self.watermark_ms);
        if rec.ts_ms < horizon {
            self.late_dropped += 1;
            return;
        }
        self.heap.push(Reverse(Entry {
            ts: rec.ts_ms,
            seq: self.seq,
            rec,
        }));
        self.seq += 1;
        self.max_ts = self.max_ts.max(rec.ts_ms);
        let horizon = self.max_ts.saturating_sub(self.watermark_ms);
        while self.heap.peek().is_some_and(|Reverse(e)| e.ts <= horizon) {
            if let Some(Reverse(e)) = self.heap.pop() {
                // lumen6: allow(L009, out is a flow-through buffer the caller drains every step; volume per call is bounded by the heap, which the watermark caps)
                out.push(e.rec);
            }
        }
    }

    /// End of stream: releases everything still buffered, in order.
    pub fn drain(&mut self, out: &mut Vec<PacketRecord>) {
        while let Some(Reverse(e)) = self.heap.pop() {
            // lumen6: allow(L009, end-of-stream flush of the remaining heap; bounded by the watermark and runs once)
            out.push(e.rec);
        }
    }

    /// Serializable state (entries sorted by release order).
    pub fn state(&self) -> ReorderState {
        let mut entries: Vec<Entry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        ReorderState {
            watermark_ms: self.watermark_ms,
            max_ts: self.max_ts,
            late_dropped: self.late_dropped,
            entries: entries.into_iter().map(|e| e.rec).collect(),
        }
    }

    /// Rebuilds a buffer from serialized state; buffered entries keep their
    /// relative release order.
    pub fn from_state(st: &ReorderState) -> Self {
        let heap = st
            .entries
            .iter()
            .enumerate()
            .map(|(i, rec)| {
                Reverse(Entry {
                    ts: rec.ts_ms,
                    seq: i as u64,
                    rec: *rec,
                })
            })
            .collect();
        ReorderBuffer {
            watermark_ms: st.watermark_ms,
            heap,
            seq: st.entries.len() as u64,
            max_ts: st.max_ts,
            late_dropped: st.late_dropped,
        }
    }
}

/// Serialized [`ReorderBuffer`] contents, part of a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorderState {
    /// The configured watermark.
    pub watermark_ms: u64,
    /// Maximum timestamp seen so far.
    pub max_ts: u64,
    /// Packets dropped as beyond-watermark late.
    pub late_dropped: u64,
    /// Buffered packets in release order.
    pub entries: Vec<PacketRecord>,
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Header magic for checkpoint files.
const CHECKPOINT_MAGIC: &str = "L6CK";
/// Checkpoint framing version.
const CHECKPOINT_FRAME_VERSION: u32 = 1;

/// FNV-1a 64-bit over a byte string — the checkpoint integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The complete durable state of a [`Session`] at one stream position:
/// resuming from a checkpoint reproduces the uninterrupted run byte for
/// byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Trace byte offset and delta-decode state to resume the reader at.
    pub position: TracePosition,
    /// Records pulled from the trace so far (including late-dropped ones).
    pub records_done: u64,
    /// Recoverable decode errors skipped so far.
    pub decode_skipped: u64,
    /// Detector state.
    pub detector: DetectorSnapshot,
    /// Reorder buffer contents.
    pub reorder: ReorderState,
    /// Checkpoints written before this one, plus one.
    pub checkpoints_written: u64,
    /// Simulation time of the last periodic idle flush (0 = none yet).
    pub last_flush_ms: u64,
}

impl Checkpoint {
    /// Writes the checkpoint atomically: serialize, checksum, write to
    /// `<path>.tmp`, fsync, rename over `path`. A crash mid-write leaves
    /// the previous checkpoint intact. Before the rename, any existing
    /// checkpoint is *copied* (not renamed — a crash between the two
    /// operations must leave `path` valid) to
    /// [`prev_path`](Self::prev_path), so one generation of history
    /// survives even a corruption of the main file that slips past the
    /// atomic rename (torn disk writes, operator accidents);
    /// [`load_newest`](Self::load_newest) falls back to it.
    pub fn save(&self, path: &Path) -> Result<(), SessionError> {
        let body = serde_json::to_string(self).map_err(|e| SessionError::Corrupt(e.to_string()))?;
        let header = format!(
            "{CHECKPOINT_MAGIC} v{CHECKPOINT_FRAME_VERSION} {:016x} {}\n",
            fnv1a(body.as_bytes()),
            body.len()
        );
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(header.as_bytes())?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        if path.exists() {
            fs::copy(path, Self::prev_path(path))?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Where [`save`](Self::save) keeps the previous checkpoint
    /// generation: `<path>.prev` (extension appended, not replaced).
    pub fn prev_path(path: &Path) -> PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".prev");
        PathBuf::from(os)
    }

    /// Loads the newest *valid* checkpoint at `path`: the main file when
    /// it verifies, else the `.prev` generation when the main file is
    /// corrupt (bad framing, checksum, or deserialization). A missing main
    /// file is still an error — callers probe existence first, and a clean
    /// start must not silently resume from stale history.
    pub fn load_newest(path: &Path) -> Result<Self, SessionError> {
        match Self::load(path) {
            Err(SessionError::Corrupt(main_err)) => {
                let prev = Self::prev_path(path);
                if prev.exists() {
                    Self::load(&prev)
                } else {
                    Err(SessionError::Corrupt(main_err))
                }
            }
            other => other,
        }
    }

    /// Loads and verifies a checkpoint written by [`save`](Self::save).
    pub fn load(path: &Path) -> Result<Self, SessionError> {
        let data = fs::read_to_string(path)?;
        let (header, body) = data
            .split_once('\n')
            .ok_or_else(|| SessionError::Corrupt("missing checkpoint header".into()))?;
        let mut parts = header.split(' ');
        let magic = parts.next().unwrap_or_default();
        let version = parts.next().unwrap_or_default();
        let checksum = parts.next().unwrap_or_default();
        let len = parts.next().unwrap_or_default();
        if magic != CHECKPOINT_MAGIC {
            return Err(SessionError::Corrupt(format!(
                "bad checkpoint magic {magic:?}"
            )));
        }
        if version != format!("v{CHECKPOINT_FRAME_VERSION}") {
            return Err(SessionError::Corrupt(format!(
                "unsupported checkpoint framing {version:?}"
            )));
        }
        if len.parse::<usize>().ok() != Some(body.len()) {
            return Err(SessionError::Corrupt(format!(
                "checkpoint length mismatch: header says {len}, body is {}",
                body.len()
            )));
        }
        let expect = u64::from_str_radix(checksum, 16).map_err(|_| {
            SessionError::Corrupt(format!("bad checkpoint checksum field {checksum:?}"))
        })?;
        let actual = fnv1a(body.as_bytes());
        if actual != expect {
            return Err(SessionError::Corrupt(format!(
                "checkpoint checksum mismatch: header {expect:016x}, body {actual:016x}"
            )));
        }
        let ck: Checkpoint =
            serde_json::from_str(body).map_err(|e| SessionError::Corrupt(e.to_string()))?;
        ck.detector
            .check_version()
            .map_err(SessionError::Snapshot)?;
        Ok(ck)
    }
}

/// When and where a [`Session`] checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (also probed for auto-resume).
    pub path: PathBuf,
    /// Write a checkpoint every this many records. 0 disables periodic
    /// writes (the file is still probed for resume).
    pub every_records: u64,
    /// Stop the session (without finishing) after this many checkpoint
    /// writes — a deterministic stand-in for `kill -9` in resume tests.
    pub stop_after: Option<u64>,
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Session-layer configuration, orthogonal to the detector configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Reorder-buffer watermark; 0 = passthrough (sorted input).
    pub watermark_ms: u64,
    /// Checkpointing policy; `None` runs without durability.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Call `flush_idle` whenever stream time advances this far past the
    /// last flush; 0 disables. Report-neutral at any cadence.
    pub flush_idle_every_ms: u64,
    /// Abort on recoverable decode errors instead of quarantine-and-skip.
    pub strict: bool,
    /// Records staged per [`Detect::observe_batch`] call on the hot path.
    /// Values ≤ 1 feed single-record batches. Any value produces reports
    /// and checkpoints byte-identical to per-record ingest; this only
    /// trades latency of mid-stream event collection against lookup
    /// amortization.
    pub batch: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            watermark_ms: 0,
            checkpoint: None,
            flush_idle_every_ms: 0,
            strict: false,
            batch: DEFAULT_SESSION_BATCH,
        }
    }
}

/// Default [`SessionConfig::batch`]: large enough to amortize per-source
/// lookups on bursty scan traffic, small enough that mid-stream events
/// surface promptly.
pub const DEFAULT_SESSION_BATCH: usize = 4096;

/// Outcome of [`Session::run`]: the stream finished, or the session stopped
/// deliberately after `stop_after` checkpoints.
#[derive(Debug)]
pub enum SessionOutcome {
    /// End of stream: final per-level reports and run statistics.
    Finished(SessionReport),
    /// Stopped by [`CheckpointPolicy::stop_after`]; resume from the
    /// checkpoint file to continue.
    Stopped {
        /// Checkpoints written over the session's whole life.
        checkpoints_written: u64,
        /// Records ingested over the session's whole life.
        records_done: u64,
    },
}

/// What one [`Session::step`] call did — the re-entrant analog of
/// [`SessionOutcome`], with the non-terminal states a scheduler needs to
/// multiplex many sessions on a bounded worker pool.
#[derive(Debug)]
pub enum Step {
    /// Ingested up to one batch of records; call again for more.
    Ingested(usize),
    /// The source has no data right now (a tailed file awaiting its
    /// writer). Re-poll later; stepping again immediately just spins.
    Pending,
    /// Stopped by [`CheckpointPolicy::stop_after`] (deliberate mid-stream
    /// stop for resume tests). Further steps continue the stream.
    Stopped {
        /// Checkpoints written over the session's whole life.
        checkpoints_written: u64,
        /// Records ingested over the session's whole life.
        records_done: u64,
    },
    /// End of stream: final reports. The session is finished; subsequent
    /// steps return [`SessionError::Done`].
    Finished(SessionReport),
}

/// Final output of a completed session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Per-level scan reports, each sorted by `(start_ms, source)`.
    pub reports: BTreeMap<AggLevel, ScanReport>,
    /// Records ingested (including late-dropped).
    pub records: u64,
    /// Packets dropped as beyond-watermark late.
    pub late_dropped: u64,
    /// Recoverable decode errors skipped.
    pub decode_skipped: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
}

/// Errors from [`Session`] runs and checkpoint IO.
#[derive(Debug)]
pub enum SessionError {
    /// Filesystem failure (trace or checkpoint file).
    Io(io::Error),
    /// Unrecoverable trace decode failure.
    Codec(CodecError),
    /// Snapshot version/shape mismatch on restore.
    Snapshot(SnapshotError),
    /// Checkpoint file failed framing or checksum validation.
    Corrupt(String),
    /// The session already delivered its final report; it cannot be
    /// stepped or reported again.
    Done,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session io error: {e}"),
            SessionError::Codec(e) => write!(f, "session decode error: {e}"),
            SessionError::Snapshot(e) => write!(f, "session restore error: {e}"),
            SessionError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            SessionError::Done => write!(f, "session already finished"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<io::Error> for SessionError {
    fn from(e: io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<CodecError> for SessionError {
    fn from(e: CodecError) -> Self {
        // Unwrap I/O failures (file missing, permission, disk) to the Io
        // variant so callers classify them as filesystem problems, exactly
        // as when the session opened files itself; only genuine decode
        // failures surface as Codec.
        match e {
            CodecError::Io(io) => SessionError::Io(io),
            other => SessionError::Codec(other),
        }
    }
}

/// Flushes the staged columnar batch to the detector's grouped path.
///
/// Staging never crosses an ordering point: the stage is flushed before
/// every `flush_idle` and before every checkpoint snapshot, so the
/// detector state at those points — and therefore every checkpoint byte —
/// is identical to per-record ingest.
fn flush_staged(reg: &MetricsRegistry, det: &mut Box<dyn Detect>, staged: &mut RecordBatch) {
    if !staged.is_empty() {
        reg.histogram("detect.session.batch_size")
            .record(staged.len() as u64);
        det.observe_batch(staged);
        staged.clear();
    }
}

/// The live in-flight state of a started [`Session`]: detector, reorder
/// buffer, counters, and the reusable ingest scratch buffers.
struct RunState {
    det: Box<dyn Detect>,
    reorder: ReorderBuffer,
    /// Records pulled from the source over the session's whole life
    /// (including pre-resume history from the checkpoint).
    records_done: u64,
    ckpts: u64,
    /// Decode skips accumulated before this process attached (from the
    /// resumed checkpoint); the live source's own count is added on top.
    skipped_before: u64,
    /// Last observed `src.skipped()`, kept so [`Session::finish_now`] and
    /// [`Session::report_now`] can account skips without the source.
    src_skipped: u64,
    last_flush: u64,
    staged: RecordBatch,
    incoming: RecordBatch,
    ready: Vec<PacketRecord>,
    /// Checkpointed position to [`Source::resume`] at on the first step.
    resume_at: Option<TracePosition>,
}

/// Fault-tolerant streaming ingest over any [`Detect`] backend.
///
/// [`Session::run`] drives a trace file end to end: it auto-resumes from
/// the checkpoint file when one exists, re-sorts mildly disordered input,
/// quarantines corrupt records, and checkpoints periodically. See the
/// module docs for the guarantees.
///
/// The session is *re-entrant*: [`step`](Self::step) performs one bounded
/// unit of ingest and returns, so a scheduler (the `lumen6 serve` daemon)
/// can multiplex many sessions over a fixed worker pool. `run`/`run_source`
/// are thin wrappers that loop `step` to a terminal state. A step-driven
/// session produces reports and checkpoint bytes identical to a
/// `run_source`-driven one — both execute the same loop body.
pub struct Session {
    builder: DetectorBuilder,
    backend: Backend,
    config: SessionConfig,
    state: Option<RunState>,
    finished: bool,
}

impl Session {
    /// A session dispatching through `builder` on `backend` under
    /// `config`.
    pub fn new(builder: DetectorBuilder, backend: Backend, config: SessionConfig) -> Self {
        Session {
            builder,
            backend,
            config,
            state: None,
            finished: false,
        }
    }

    /// The session-layer configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Records ingested so far (0 until the first step; includes
    /// checkpoint-resumed history afterwards).
    pub fn records_done(&self) -> u64 {
        self.state.as_ref().map_or(0, |st| st.records_done)
    }

    /// Whether the session delivered its final report.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Runs the session over `trace` (an L6TR file). If the checkpoint
    /// file exists, the run resumes from it; otherwise it starts fresh.
    ///
    /// Equivalent to [`run_source`](Self::run_source) over a
    /// [`FileStreamSource`] (permissive unless [`SessionConfig::strict`]).
    pub fn run(self, trace: &Path) -> Result<SessionOutcome, SessionError> {
        let permissive = !self.config.strict;
        let mut src = FileStreamSource::open(trace)?.permissive(permissive);
        self.run_source(&mut src)
    }

    /// Runs the session over any [`Source`] to a terminal state by looping
    /// [`step`](Self::step) — a trace file, an in-memory record vector, a
    /// tailed growing file, or a fused generator. `Pending` outcomes (a
    /// tail awaiting its writer) are waited out with a short sleep.
    pub fn run_source(mut self, src: &mut dyn Source) -> Result<SessionOutcome, SessionError> {
        loop {
            match self.step(src)? {
                Step::Ingested(_) => {}
                Step::Pending => std::thread::sleep(std::time::Duration::from_millis(2)),
                Step::Stopped {
                    checkpoints_written,
                    records_done,
                } => {
                    return Ok(SessionOutcome::Stopped {
                        checkpoints_written,
                        records_done,
                    })
                }
                Step::Finished(report) => return Ok(SessionOutcome::Finished(report)),
            }
        }
    }

    /// Lazily builds the run state: loads the newest valid checkpoint when
    /// the policy's file exists (recording the position to resume the
    /// source at on the next step), otherwise starts fresh.
    fn ensure_state(&mut self) -> Result<(), SessionError> {
        if self.finished {
            return Err(SessionError::Done);
        }
        if self.state.is_some() {
            return Ok(());
        }
        let resume = match &self.config.checkpoint {
            Some(p) if p.path.exists() => Some(Checkpoint::load_newest(&p.path)?),
            _ => None,
        };
        let batch_cap = self.config.batch.max(1);
        let st = match resume {
            Some(ck) => RunState {
                det: self
                    .builder
                    .restore(self.backend, &ck.detector)
                    .map_err(SessionError::Snapshot)?,
                reorder: ReorderBuffer::from_state(&ck.reorder),
                records_done: ck.records_done,
                ckpts: ck.checkpoints_written,
                skipped_before: ck.decode_skipped,
                src_skipped: 0,
                last_flush: ck.last_flush_ms,
                staged: RecordBatch::with_capacity(batch_cap),
                incoming: RecordBatch::with_capacity(batch_cap),
                ready: Vec::new(),
                resume_at: Some(ck.position),
            },
            None => RunState {
                det: self.builder.build(self.backend),
                reorder: ReorderBuffer::new(self.config.watermark_ms),
                records_done: 0,
                ckpts: 0,
                skipped_before: 0,
                src_skipped: 0,
                last_flush: 0,
                staged: RecordBatch::with_capacity(batch_cap),
                incoming: RecordBatch::with_capacity(batch_cap),
                ready: Vec::new(),
                resume_at: None,
            },
        };
        self.state = Some(st);
        Ok(())
    }

    /// Performs one bounded unit of ingest: pull at most one batch from
    /// `src`, feed it through the reorder buffer into the detector, and
    /// checkpoint if a boundary was crossed.
    ///
    /// The first step lazily initializes: if the checkpoint file exists
    /// the session restores from it and `src` is
    /// [`Source::resume`](lumen6_trace::Source::resume)d at the
    /// checkpointed position — so the same `src` must be passed to every
    /// step of one session.
    ///
    /// Pulls are capped at [`SessionConfig::batch`] records and never
    /// cross a checkpoint boundary, so checkpoints are taken at exactly
    /// the same record counts and stream positions — and with the same
    /// bytes — as per-record or `run_source`-driven ingest.
    pub fn step(&mut self, src: &mut dyn Source) -> Result<Step, SessionError> {
        let reg = MetricsRegistry::global();
        self.ensure_state()?;
        let Some(st) = self.state.as_mut() else {
            return Err(SessionError::Done);
        };
        if let Some(pos) = st.resume_at.take() {
            src.resume(pos)?;
            reg.counter("detect.session.resumes").add(1);
        }

        let batch_cap = self.config.batch.max(1);
        let every = self
            .config
            .checkpoint
            .as_ref()
            .map_or(0, |p| p.every_records);
        // Never pull past the next checkpoint boundary: `position()`
        // right after the fill is then exactly the post-boundary-record
        // position a per-record loop would checkpoint at.
        let want = if every > 0 {
            let until = every - (st.records_done % every);
            batch_cap.min(usize::try_from(until).unwrap_or(usize::MAX))
        } else {
            batch_cap
        };
        let outcome = {
            let t = lumen6_obs::StageTimer::new(reg.histogram("detect.session.source_fill_us"));
            let outcome = src.poll_fill(&mut st.incoming, want)?;
            t.stop();
            outcome
        };
        st.src_skipped = src.skipped();
        let n = match outcome {
            FillOutcome::Pending => return Ok(Step::Pending),
            FillOutcome::Eof => return self.finish_now().map(Step::Finished),
            FillOutcome::Filled(n) => n,
        };

        reg.counter("source.records").add(n as u64);
        for i in 0..n {
            let rec = st.incoming.get(i);
            st.records_done += 1;
            st.reorder.push(rec, &mut st.ready);
            for r in st.ready.drain(..) {
                if self.config.flush_idle_every_ms > 0
                    && r.ts_ms >= st.last_flush + self.config.flush_idle_every_ms
                {
                    // Flush at the watermark horizon: every future
                    // detector input is ≥ `r.ts_ms - watermark`, so
                    // closures here match what end-of-stream finish
                    // would emit.
                    flush_staged(reg, &mut st.det, &mut st.staged);
                    st.det
                        .flush_idle(r.ts_ms.saturating_sub(st.reorder.watermark_ms()));
                    st.last_flush = r.ts_ms;
                    reg.counter("detect.session.idle_flushes").add(1);
                }
                st.staged.push(r);
                if st.staged.len() >= batch_cap {
                    flush_staged(reg, &mut st.det, &mut st.staged);
                }
            }
        }

        if let Some(policy) = &self.config.checkpoint {
            if policy.every_records > 0 && st.records_done % policy.every_records == 0 {
                flush_staged(reg, &mut st.det, &mut st.staged);
                st.ckpts += 1;
                let ck = Checkpoint {
                    position: src.position(),
                    records_done: st.records_done,
                    decode_skipped: st.skipped_before + st.src_skipped,
                    detector: st.det.snapshot(),
                    reorder: st.reorder.state(),
                    checkpoints_written: st.ckpts,
                    last_flush_ms: st.last_flush,
                };
                ck.save(&policy.path)?;
                reg.counter("detect.session.checkpoints_written").add(1);
                if policy.stop_after.is_some_and(|n| st.ckpts >= n) {
                    reg.counter("detect.session.stops").add(1);
                    return Ok(Step::Stopped {
                        checkpoints_written: st.ckpts,
                        records_done: st.records_done,
                    });
                }
            }
        }
        Ok(Step::Ingested(n))
    }

    /// Writes a checkpoint at the session's current position, off the
    /// periodic record-count grid — the graceful-shutdown drain path.
    /// Returns `false` without writing when the session has no checkpoint
    /// policy, has not started, or already finished. Subsequent periodic
    /// checkpoints stay on the absolute record-count grid, so a run
    /// resumed from an off-grid checkpoint still reproduces every later
    /// on-grid checkpoint byte for byte.
    pub fn checkpoint_now(&mut self, src: &mut dyn Source) -> Result<bool, SessionError> {
        let reg = MetricsRegistry::global();
        let Some(policy) = self.config.checkpoint.clone() else {
            return Ok(false);
        };
        if self.finished {
            return Ok(false);
        }
        let Some(st) = self.state.as_mut() else {
            return Ok(false);
        };
        flush_staged(reg, &mut st.det, &mut st.staged);
        st.src_skipped = src.skipped();
        st.ckpts += 1;
        let ck = Checkpoint {
            position: src.position(),
            records_done: st.records_done,
            decode_skipped: st.skipped_before + st.src_skipped,
            detector: st.det.snapshot(),
            reorder: st.reorder.state(),
            checkpoints_written: st.ckpts,
            last_flush_ms: st.last_flush,
        };
        ck.save(&policy.path)?;
        reg.counter("detect.session.checkpoints_written").add(1);
        Ok(true)
    }

    /// Ends the stream now: drains the reorder buffer, flushes staged
    /// records, and returns the final report. Called by [`step`] on end
    /// of stream, and directly by the daemon's graceful-shutdown drain
    /// (where the tailed source may never reach EOF). The session is
    /// finished afterwards; a session that never started finishes over an
    /// empty (or checkpoint-restored) stream.
    ///
    /// [`step`]: Self::step
    pub fn finish_now(&mut self) -> Result<SessionReport, SessionError> {
        let reg = MetricsRegistry::global();
        self.ensure_state()?;
        let Some(mut st) = self.state.take() else {
            return Err(SessionError::Done);
        };
        self.finished = true;
        st.reorder.drain(&mut st.ready);
        st.staged.extend(st.ready.drain(..));
        flush_staged(reg, &mut st.det, &mut st.staged);
        let late = st.reorder.late_dropped();
        let skipped = st.skipped_before + st.src_skipped;
        reg.counter("detect.session.late_dropped").add(late);
        let reports = st.det.finish();
        Ok(SessionReport {
            reports,
            records: st.records_done,
            late_dropped: late,
            decode_skipped: skipped,
            checkpoints_written: st.ckpts,
        })
    }

    /// A point-in-time [`SessionReport`] *without* ending the session —
    /// the daemon's periodic per-tenant publication. Implemented by
    /// snapshotting the live detector, restoring the snapshot into a
    /// throwaway clone, feeding it the staged and still-buffered records,
    /// and finishing the clone; the live pipeline is untouched, so the
    /// next checkpoint stays byte-identical to an unpublished run.
    pub fn report_now(&mut self) -> Result<SessionReport, SessionError> {
        self.ensure_state()?;
        let Some(st) = self.state.as_mut() else {
            return Err(SessionError::Done);
        };
        let snap = st.det.snapshot();
        let mut clone = self
            .builder
            .restore(self.backend, &snap)
            .map_err(SessionError::Snapshot)?;
        if !st.staged.is_empty() {
            clone.observe_batch(&st.staged);
        }
        for rec in st.reorder.state().entries {
            clone.observe(&rec);
        }
        let reports = clone.finish();
        Ok(SessionReport {
            reports,
            records: st.records_done,
            late_dropped: st.reorder.late_dropped(),
            decode_skipped: st.skipped_before + st.src_skipped,
            checkpoints_written: st.ckpts,
        })
    }
}
