//! The streaming large-scale scan detector (paper §2.2).
//!
//! A *scan* is a maximal sequence of packets from one aggregated source in
//! which consecutive packets are never more than `timeout` apart, targeting
//! at least `min_dsts` distinct destination addresses. The defaults are the
//! paper's: 100 destinations, 3 600 s timeout. Aggregation is applied to the
//! source address *before* detection, so a /48 can qualify while none of its
//! /64s does.
//!
//! The detector is a push-based stream processor: feed it time-ordered
//! [`PacketRecord`]s via [`ScanDetector::observe`], which returns an event
//! whenever a source's previous activity run closes (by exceeding the
//! timeout) and qualified as a scan. Call [`ScanDetector::finish`] at end of
//! stream to flush all open runs. [`ScanDetector::flush_idle`] lets a
//! long-running IDS garbage-collect idle state without ending the stream.

use crate::aggregate::AggLevel;
use crate::event::{ScanEvent, ScanReport};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::sketch::{DistinctCounter, SketchConfig};
use crate::snapshot::{CounterState, LevelState, RunState};
use lumen6_addr::Ipv6Prefix;
use lumen6_trace::{PacketRecord, RecordBatch, Transport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the large-scale scan definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanDetectorConfig {
    /// Source aggregation level applied before detection.
    pub agg: AggLevel,
    /// Minimum distinct destination addresses for a run to qualify as a
    /// scan. The paper uses 100 (and studies 50 in the sensitivity analysis;
    /// related work used 25 or 5).
    pub min_dsts: u64,
    /// Maximum packet inter-arrival time within one scan, in milliseconds.
    /// The paper uses one hour (3 600 000 ms) and studies 30 and 15 minutes.
    pub timeout_ms: u64,
    /// Retain the full destination-address set on emitted events (needed for
    /// targeting analysis; costs memory, so off for IDS use).
    pub keep_dsts: bool,
    /// If set, per-source distinct counters spill from exact sets to
    /// HyperLogLog sketches per [`SketchConfig`]. Sketched events cannot
    /// retain destination sets. Deserialization also accepts the legacy
    /// `[spill_threshold, precision]` tuple encoding.
    pub sketch: Option<SketchConfig>,
}

impl Default for ScanDetectorConfig {
    fn default() -> Self {
        ScanDetectorConfig {
            agg: AggLevel::L64,
            min_dsts: 100,
            timeout_ms: 3_600_000,
            keep_dsts: false,
            sketch: None,
        }
    }
}

impl ScanDetectorConfig {
    /// The paper's configuration at a given aggregation level.
    pub fn paper(agg: AggLevel) -> Self {
        ScanDetectorConfig {
            agg,
            ..Default::default()
        }
    }

    /// Same configuration with destination retention enabled.
    pub fn with_dsts(mut self) -> Self {
        self.keep_dsts = true;
        self
    }

    /// The `(spill_threshold, precision)` pair threaded into every per-run
    /// [`DistinctCounter::insert`] — the single authority for the sketch
    /// fallback, replacing the two hard-coded `(usize::MAX, 12)` sites the
    /// observe paths used to carry separately.
    ///
    /// With `sketch: None` the detector is exact: the `usize::MAX` spill
    /// threshold means no counter ever spills, so the accompanying
    /// precision (the default 12) exists only to give the hot path a
    /// concrete value and never builds a sketch. With `sketch: Some(..)`
    /// both values come from the config, precision clamped to the supported
    /// `4..=16`.
    ///
    /// Precision trades estimate error for memory: a sketch holds
    /// `2^precision` one-byte registers with ≈`1.04/sqrt(2^precision)`
    /// relative error — 12 → 4 KiB at ≈1.6%, 14 → 16 KiB at ≈0.8%,
    /// 16 → 64 KiB at ≈0.4%. At paper-scale intensities (~100x more
    /// distinct sources) the 1.6% default visibly skews Table 1 source
    /// counts, so high-intensity sketched runs should raise it
    /// (`--sketch-precision` on the CLI).
    pub fn sketch_params(&self) -> (usize, u8) {
        self.sketch
            .map_or((usize::MAX, crate::sketch::DEFAULT_PRECISION), |s| {
                let s = s.clamped();
                (s.spill_threshold, s.precision)
            })
    }

    /// Normalizes the configuration: clamps any sketch precision into the
    /// supported range. Applied when a detector is constructed or restored
    /// from a snapshot, so out-of-range values from hand-edited configs or
    /// foreign checkpoints never linger in live state (where they would
    /// poison [`HyperLogLog::merge`](crate::HyperLogLog::merge) later).
    #[must_use]
    fn normalized(mut self) -> Self {
        self.sketch = self.sketch.map(SketchConfig::clamped);
        self
    }
}

/// Per-source accumulation state for one activity run.
#[derive(Debug)]
struct SourceRun {
    start_ms: u64,
    last_ms: u64,
    packets: u64,
    dsts: DistinctCounter,
    dst_list: Option<FxHashSet<u128>>,
    srcs: DistinctCounter,
    ports: FxHashMap<(Transport, u16), u64>,
}

impl SourceRun {
    fn new(ts: u64, keep_dsts: bool) -> Self {
        SourceRun {
            start_ms: ts,
            last_ms: ts,
            packets: 0,
            dsts: DistinctCounter::new(),
            dst_list: keep_dsts.then(FxHashSet::default),
            srcs: DistinctCounter::new(),
            ports: FxHashMap::default(),
        }
    }
}

/// Reusable grouping scratch for [`ScanDetector::observe_batch`]: index
/// vectors and closure buffers survive across batches so the batched path
/// allocates nothing in steady state. Never serialized — it carries no
/// detector state between batches.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Masked (aggregated) source bits per row, one
    /// [`kernels::aggregate_column`](crate::kernels::aggregate_column) pass
    /// per batch.
    keys: Vec<u128>,
    /// Masked source → position in `groups` for the batch being processed.
    index: FxHashMap<u128, usize>,
    /// Per-source record indices (into the batch), in arrival order.
    groups: Vec<(u128, Vec<u32>)>,
    /// Recycled index vectors.
    pool: Vec<Vec<u32>>,
    /// Closed events tagged with the batch index of the closing record, so
    /// emission order can be restored to exact arrival order.
    closed: Vec<(u32, ScanEvent)>,
    /// Columnar staging for the record-slice entry point
    /// ([`ScanDetector::observe_records`]), reused across calls.
    rows: RecordBatch,
}

/// Memory-footprint snapshot of a running detector (what an operator
/// dashboards: per-source state is the thing that grows under attack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorMemory {
    /// Sources with an open activity run.
    pub open_runs: usize,
    /// Exact destination-set entries held across all runs.
    pub exact_dst_entries: usize,
    /// Runs whose destination counter spilled to a HyperLogLog sketch.
    pub sketched_runs: usize,
    /// Distinct (service → count) histogram entries across all runs.
    pub port_entries: usize,
}

/// Streaming large-scale scan detector. See the module docs for usage.
///
/// ```
/// use lumen6_detect::{ScanDetector, ScanDetectorConfig, AggLevel};
/// use lumen6_trace::PacketRecord;
///
/// let mut det = ScanDetector::new(ScanDetectorConfig::paper(AggLevel::L64));
/// // 150 probes to distinct destinations, one second apart.
/// for i in 0..150u64 {
///     let pkt = PacketRecord::tcp(i * 1_000, 0x2001, 0xd000 + i as u128, 1, 22, 60);
///     assert!(det.observe(&pkt).is_none()); // still within one run
/// }
/// let events = det.finish();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].distinct_dsts, 150);
/// ```
#[derive(Debug)]
pub struct ScanDetector {
    config: ScanDetectorConfig,
    runs: FxHashMap<Ipv6Prefix, SourceRun>,
    observed: u64,
    runs_opened: u64,
    /// Mid-stream events accumulated when this detector is driven through
    /// the unified [`Detect`](crate::session::Detect) trait (whose `observe`
    /// returns nothing); empty when driven via the inherent API.
    pub(crate) pending: Vec<ScanEvent>,
    scratch: BatchScratch,
    /// Batched-path statistics: records ingested via `observe_batch` and
    /// how many of them hit the last-source memo (consecutive records from
    /// the same aggregated source, the common shape of scan traffic).
    batch_records: u64,
    memo_hits: u64,
}

impl ScanDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: ScanDetectorConfig) -> Self {
        ScanDetector {
            config: config.normalized(),
            runs: FxHashMap::default(),
            observed: 0,
            runs_opened: 0,
            pending: Vec::new(),
            scratch: BatchScratch::default(),
            batch_records: 0,
            memo_hits: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScanDetectorConfig {
        &self.config
    }

    /// Number of packets observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of sources with an open activity run (IDS memory footprint).
    pub fn open_runs(&self) -> usize {
        self.runs.len()
    }

    /// Total activity runs ever opened (first packet of a new source, or
    /// the first packet after a timeout split).
    pub fn runs_opened(&self) -> u64 {
        self.runs_opened
    }

    /// Detailed memory snapshot (see [`DetectorMemory`]).
    pub fn memory(&self) -> DetectorMemory {
        let mut m = DetectorMemory {
            open_runs: self.runs.len(),
            ..Default::default()
        };
        for run in self.runs.values() {
            match &run.dsts {
                crate::sketch::DistinctCounter::Exact(set) => m.exact_dst_entries += set.len(),
                crate::sketch::DistinctCounter::Sketch(_) => m.sketched_runs += 1,
            }
            m.port_entries += run.ports.len();
        }
        m
    }

    /// Feeds one packet. Returns a scan event if this packet's arrival
    /// closed a qualifying previous run of the same source (i.e. the gap to
    /// the source's last packet exceeded the timeout).
    ///
    /// Records are expected in non-decreasing time order; a timestamp below
    /// a source's last seen time is tolerated and treated as simultaneous
    /// (gap zero), which keeps the detector robust to mildly disordered
    /// input without growing events backwards in time.
    pub fn observe(&mut self, r: &PacketRecord) -> Option<ScanEvent> {
        let source = self.config.agg.source_of(r.src);
        self.observe_aggregated(source, r)
    }

    /// [`observe`](Self::observe) with the source aggregation already
    /// applied. Callers that fan one packet out to several detectors (the
    /// multi-level and sharded pipelines) compute each aggregation once and
    /// pass it here instead of having every detector re-mask the address.
    ///
    /// `source` must equal `self.config().agg.source_of(r.src)`; passing
    /// anything else corrupts per-source state attribution.
    pub fn observe_aggregated(
        &mut self,
        source: Ipv6Prefix,
        r: &PacketRecord,
    ) -> Option<ScanEvent> {
        debug_assert_eq!(source, self.config.agg.source_of(r.src));
        self.observed += 1;
        let (spill, precision) = self.config.sketch_params();

        let mut closed = None;
        let run = match self.runs.entry(source) {
            std::collections::hash_map::Entry::Occupied(mut occ) => {
                let gap = r.ts_ms.saturating_sub(occ.get().last_ms);
                if gap > self.config.timeout_ms {
                    let old = std::mem::replace(
                        occ.get_mut(),
                        SourceRun::new(r.ts_ms, self.config.keep_dsts),
                    );
                    self.runs_opened += 1;
                    closed = Self::emit(&self.config, source, old);
                }
                occ.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(vac) => {
                self.runs_opened += 1;
                vac.insert(SourceRun::new(r.ts_ms, self.config.keep_dsts))
            }
        };

        run.last_ms = run.last_ms.max(r.ts_ms);
        run.packets += 1;
        run.dsts.insert(r.dst, spill, precision);
        if let Some(list) = run.dst_list.as_mut() {
            list.insert(r.dst);
        }
        run.srcs.insert(r.src, spill, precision);
        *run.ports.entry((r.proto, r.dport)).or_default() += 1;

        closed
    }

    /// Feeds a decoded [`RecordBatch`] (struct-of-arrays) through the
    /// batched hot path. Returns every scan event closed by records in the
    /// batch, in exact arrival order — byte-for-byte the same events, state,
    /// and ordering as feeding each record through
    /// [`observe`](Self::observe) individually.
    ///
    /// The batch is grouped by aggregated source prefix first, so the
    /// per-source run state is looked up in the runs map once per
    /// (source, batch) instead of once per packet. The grouping key is the
    /// masked source column produced by one
    /// [`kernels::aggregate_column`](crate::kernels::aggregate_column) pass
    /// — a single AND per row — and a last-source memo makes the grouping
    /// itself O(1) per record for bursty scan traffic.
    pub fn observe_batch(&mut self, batch: &RecordBatch) -> Vec<ScanEvent> {
        let n = batch.len();
        let (spill, precision) = self.config.sketch_params();
        let keep = self.config.keep_dsts;
        let timeout = self.config.timeout_ms;
        let agg = self.config.agg;
        let mut scratch = std::mem::take(&mut self.scratch);
        let BatchScratch {
            keys,
            index,
            groups,
            pool,
            closed,
            rows: _,
        } = &mut scratch;

        // Phase 1: mask the source column down to the aggregation level in
        // one columnar pass, then group record indices by masked source,
        // preserving arrival order within each group. Consecutive
        // same-source records (the dominant pattern under scan traffic)
        // skip the map entirely.
        crate::kernels::aggregate_column(batch.src(), agg, keys);
        let mut last: Option<(u128, usize)> = None;
        let mut memo_hits = 0u64;
        for (i, &key) in keys.iter().enumerate() {
            let gi = match last {
                Some((k, g)) if k == key => {
                    memo_hits += 1;
                    g
                }
                _ => *index.entry(key).or_insert_with(|| {
                    let g = groups.len();
                    groups.push((key, pool.pop().unwrap_or_default()));
                    g
                }),
            };
            groups[gi].1.push(i as u32);
            last = Some((key, gi));
        }

        // Phase 2: one runs-map lookup per (source, batch), then replay the
        // group's records against the held run. Per-source state depends
        // only on that source's subsequence, so processing groups out of
        // arrival order cannot change any run or counter.
        let mut opened = 0u64;
        for (key, idxs) in groups.iter_mut() {
            // The key bits are already masked, so this re-mask is identity.
            let source = Ipv6Prefix::new(*key, agg.len());
            let run = match self.runs.entry(source) {
                std::collections::hash_map::Entry::Occupied(occ) => occ.into_mut(),
                std::collections::hash_map::Entry::Vacant(vac) => {
                    opened += 1;
                    let first_ts = batch.ts_ms()[idxs[0] as usize];
                    vac.insert(SourceRun::new(first_ts, keep))
                }
            };
            for &i in idxs.iter() {
                let r = batch.get(i as usize);
                debug_assert_eq!(source, agg.source_of(r.src));
                let gap = r.ts_ms.saturating_sub(run.last_ms);
                if gap > timeout {
                    let old = std::mem::replace(run, SourceRun::new(r.ts_ms, keep));
                    opened += 1;
                    if let Some(e) = Self::emit(&self.config, source, old) {
                        closed.push((i, e));
                    }
                }
                run.last_ms = run.last_ms.max(r.ts_ms);
                run.packets += 1;
                run.dsts.insert(r.dst, spill, precision);
                if let Some(list) = run.dst_list.as_mut() {
                    list.insert(r.dst);
                }
                run.srcs.insert(r.src, spill, precision);
                *run.ports.entry((r.proto, r.dport)).or_default() += 1;
            }
        }

        // Phase 3: restore exact arrival order for the closure events (a
        // record closes at most one run, so sorting by batch index alone is
        // total) and recycle the scratch buffers.
        closed.sort_unstable_by_key(|&(i, _)| i);
        let out: Vec<ScanEvent> = closed.drain(..).map(|(_, e)| e).collect();
        for (_, mut v) in groups.drain(..) {
            v.clear();
            pool.push(v);
        }
        index.clear();
        self.scratch = scratch;
        self.observed += n as u64;
        self.runs_opened += opened;
        self.batch_records += n as u64;
        self.memo_hits += memo_hits;
        out
    }

    /// [`observe_batch`](Self::observe_batch) over a plain record slice:
    /// stages the rows into a reused columnar scratch batch, then runs the
    /// same grouped path. Off the hot paths — the sharded pipeline ships
    /// columnar sub-batches directly — but kept for slice-shaped callers
    /// and tests.
    pub fn observe_records(&mut self, records: &[PacketRecord]) -> Vec<ScanEvent> {
        let mut rows = std::mem::take(&mut self.scratch.rows);
        rows.clear();
        rows.extend(records.iter().copied());
        let out = self.observe_batch(&rows);
        self.scratch.rows = rows;
        out
    }

    /// Records ingested through the batched path and how many hit the
    /// last-source memo, for the obs hit-rate counters.
    pub fn batch_stats(&self) -> (u64, u64) {
        (self.batch_records, self.memo_hits)
    }

    /// Closes and returns qualifying runs idle since before
    /// `now - timeout`. Lets a long-running deployment bound state size.
    pub fn flush_idle(&mut self, now_ms: u64) -> Vec<ScanEvent> {
        let deadline = now_ms.saturating_sub(self.config.timeout_ms);
        let idle: Vec<Ipv6Prefix> = self
            .runs
            .iter()
            .filter(|(_, run)| run.last_ms < deadline)
            .map(|(s, _)| *s)
            .collect();
        let mut out = Vec::new();
        for s in idle {
            if let Some(run) = self.runs.remove(&s) {
                if let Some(e) = Self::emit(&self.config, s, run) {
                    out.push(e);
                }
            }
        }
        out
    }

    /// Ends the stream: closes every open run and returns the qualifying
    /// events, sorted by (start time, source) for determinism.
    ///
    /// If the batch path was used, flushes its telemetry
    /// (`detect.batch.records` / `detect.batch.memo_hits`) to the global
    /// metrics registry — accumulated as plain integers during the stream
    /// so the hot path stays free of atomics.
    pub fn finish(mut self) -> Vec<ScanEvent> {
        if self.batch_records > 0 {
            let reg = lumen6_obs::MetricsRegistry::global();
            reg.counter("detect.batch.records").add(self.batch_records);
            reg.counter("detect.batch.memo_hits").add(self.memo_hits);
        }
        let mut out: Vec<ScanEvent> = self
            .runs
            .drain()
            .filter_map(|(s, run)| Self::emit(&self.config, s, run))
            .collect();
        out.sort_by_key(|e| (e.start_ms, e.source));
        out
    }

    fn emit(config: &ScanDetectorConfig, source: Ipv6Prefix, run: SourceRun) -> Option<ScanEvent> {
        let distinct = run.dsts.count();
        if distinct < config.min_dsts {
            return None;
        }
        let ports: BTreeMap<(Transport, u16), u64> = run.ports.into_iter().collect();
        let dsts = run.dst_list.map(|set| {
            let mut v: Vec<u128> = set.into_iter().collect();
            v.sort_unstable();
            v
        });
        Some(ScanEvent {
            source,
            agg: config.agg,
            start_ms: run.start_ms,
            end_ms: run.last_ms,
            packets: run.packets,
            distinct_dsts: distinct,
            distinct_srcs: run.srcs.count(),
            ports: ports.into_iter().collect(),
            dsts,
        })
    }

    /// Serializable snapshot of the complete detector state: configuration,
    /// counters, every open run, and any trait-accumulated pending events.
    /// Order-sensitive collections are sorted, so two detectors in the same
    /// logical state produce identical snapshots.
    pub fn state(&self) -> LevelState {
        let mut runs: Vec<RunState> = self
            .runs
            .iter()
            .map(|(source, run)| RunState {
                source: *source,
                start_ms: run.start_ms,
                last_ms: run.last_ms,
                packets: run.packets,
                dsts: CounterState::from(&run.dsts),
                dst_list: run.dst_list.as_ref().map(|set| {
                    let mut v: Vec<u128> = set.iter().copied().collect();
                    v.sort_unstable();
                    v
                }),
                srcs: CounterState::from(&run.srcs),
                ports: {
                    let mut v: Vec<((Transport, u16), u64)> =
                        run.ports.iter().map(|(&k, &n)| (k, n)).collect();
                    v.sort_unstable_by_key(|&(k, _)| k);
                    v
                },
            })
            .collect();
        runs.sort_by_key(|r| r.source);
        LevelState {
            config: self.config.clone(),
            observed: self.observed,
            runs_opened: self.runs_opened,
            runs,
            pending: self.pending.clone(),
        }
    }

    /// Rebuilds a detector from a [`state`](Self::state) snapshot. The
    /// snapshot's embedded configuration is authoritative.
    pub fn from_state(state: &LevelState) -> Self {
        let runs = state
            .runs
            .iter()
            .map(|r| {
                (
                    r.source,
                    SourceRun {
                        start_ms: r.start_ms,
                        last_ms: r.last_ms,
                        packets: r.packets,
                        dsts: DistinctCounter::from(&r.dsts),
                        dst_list: r.dst_list.as_ref().map(|v| v.iter().copied().collect()),
                        srcs: DistinctCounter::from(&r.srcs),
                        ports: r.ports.iter().copied().collect(),
                    },
                )
            })
            .collect();
        ScanDetector {
            config: state.config.clone().normalized(),
            runs,
            observed: state.observed,
            runs_opened: state.runs_opened,
            pending: state.pending.clone(),
            scratch: BatchScratch::default(),
            batch_records: 0,
            memo_hits: 0,
        }
    }
}

/// Runs the detector over a complete, time-sorted slice and returns the full
/// report (mid-stream closures plus end-of-stream flush).
pub fn detect(records: &[PacketRecord], config: ScanDetectorConfig) -> ScanReport {
    let mut det = ScanDetector::new(config);
    let mut events = Vec::new();
    for r in records {
        if let Some(e) = det.observe(r) {
            events.push(e);
        }
    }
    events.extend(det.finish());
    events.sort_by_key(|e| (e.start_ms, e.source));
    ScanReport::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3_600_000;

    /// `n` packets from `src`, one per second, to distinct destinations.
    fn burst(src: u128, t0: u64, n: u64, dport: u16) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::tcp(t0 + i * 1000, src, 0xdd00 + i as u128, 40000, dport, 60))
            .collect()
    }

    #[test]
    fn hundred_destinations_qualifies() {
        let recs = burst(1, 0, 100, 22);
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(report.scans(), 1);
        let e = &report.events[0];
        assert_eq!(e.packets, 100);
        assert_eq!(e.distinct_dsts, 100);
        assert_eq!(e.distinct_srcs, 1);
        assert_eq!(e.start_ms, 0);
        assert_eq!(e.end_ms, 99_000);
    }

    #[test]
    fn ninety_nine_destinations_does_not() {
        let recs = burst(1, 0, 99, 22);
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(report.scans(), 0);
    }

    #[test]
    fn repeated_destinations_do_not_count_twice() {
        // 200 packets but only 50 distinct destinations.
        let mut recs = Vec::new();
        for i in 0..200u64 {
            recs.push(PacketRecord::tcp(i * 1000, 1, (i % 50) as u128, 1, 22, 60));
        }
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(report.scans(), 0);
    }

    #[test]
    fn timeout_splits_events() {
        let mut recs = burst(1, 0, 100, 22);
        recs.extend(burst(1, 100_000 + HOUR + 1, 100, 22));
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(report.scans(), 2);
        assert_eq!(report.sources(), 1);
    }

    #[test]
    fn gap_exactly_at_timeout_does_not_split() {
        // Last packet of first burst at t=99_000; next packet exactly
        // `timeout` later must stay in the same event (strictly-greater gap
        // splits).
        let mut recs = burst(1, 0, 100, 22);
        recs.extend(burst(1, 99_000 + HOUR, 100, 23));
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(report.scans(), 1);
        assert_eq!(report.events[0].packets, 200);
    }

    #[test]
    fn gap_one_ms_over_timeout_splits() {
        let mut recs = burst(1, 0, 100, 22);
        recs.extend(burst(1, 99_000 + HOUR + 1, 100, 22));
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(report.scans(), 2);
    }

    /// A mixed workload: interleaved sources, a timeout split, and
    /// sub-threshold noise — exercises memo hits, group reuse, and
    /// mid-batch closures.
    fn mixed_workload() -> Vec<PacketRecord> {
        let mut recs = Vec::new();
        for s in 0..5u64 {
            recs.extend(burst(0x2001_0000 + u128::from(s), s * 137, 110 + s, 22));
        }
        recs.extend(burst(0x2001_0000, 200_000 + HOUR + 1, 120, 443));
        recs.extend(burst(0x9999, 50_000, 20, 53)); // below min_dsts
        lumen6_trace::sort_by_time(&mut recs);
        recs
    }

    #[test]
    fn observe_batch_matches_per_record() {
        for cfg in [
            ScanDetectorConfig::paper(AggLevel::L128),
            ScanDetectorConfig::paper(AggLevel::L64),
            ScanDetectorConfig {
                keep_dsts: true,
                ..ScanDetectorConfig::paper(AggLevel::L128)
            },
            ScanDetectorConfig {
                sketch: Some((64, 12).into()),
                ..ScanDetectorConfig::paper(AggLevel::L128)
            },
        ] {
            let recs = mixed_workload();
            let mut per_record = ScanDetector::new(cfg.clone());
            let mut per_events = Vec::new();
            for r in &recs {
                per_events.extend(per_record.observe(r));
            }

            // Awkward batch sizes: mid-run splits, size-1 batches.
            for chunk in [1usize, 7, 64, recs.len()] {
                let mut batched = ScanDetector::new(cfg.clone());
                let mut bat_events = Vec::new();
                for part in recs.chunks(chunk) {
                    let batch: RecordBatch = part.iter().copied().collect();
                    bat_events.extend(batched.observe_batch(&batch));
                }
                assert_eq!(bat_events, per_events, "chunk={chunk}: events");
                assert_eq!(
                    batched.state(),
                    per_record.state(),
                    "chunk={chunk}: snapshot state"
                );
                assert_eq!(batched.observed(), per_record.observed());
                assert_eq!(batched.runs_opened(), per_record.runs_opened());
            }
        }
    }

    #[test]
    fn observe_records_slice_path_matches_batch_path() {
        let recs = mixed_workload();
        let cfg = ScanDetectorConfig::paper(AggLevel::L64);
        let mut a = ScanDetector::new(cfg.clone());
        let mut b = ScanDetector::new(cfg);
        let batch: RecordBatch = recs.iter().copied().collect();
        assert_eq!(a.observe_batch(&batch), b.observe_records(&recs));
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn batch_memo_counts_consecutive_same_source_lookups() {
        let recs = burst(7, 0, 100, 22);
        let mut det = ScanDetector::new(ScanDetectorConfig::paper(AggLevel::L128));
        det.observe_records(&recs);
        let (records, memo_hits) = det.batch_stats();
        assert_eq!(records, 100);
        assert_eq!(memo_hits, 99, "every record after the first memo-hits");
    }

    #[test]
    fn mid_stream_emission_on_gap() {
        let mut det = ScanDetector::new(ScanDetectorConfig::paper(AggLevel::L128));
        for r in burst(1, 0, 100, 22) {
            assert!(det.observe(&r).is_none());
        }
        // First packet after the timeout closes and emits the run.
        let r = PacketRecord::tcp(99_000 + HOUR + 1, 1, 9, 1, 22, 60);
        let e = det.observe(&r).expect("qualifying run closes");
        assert_eq!(e.distinct_dsts, 100);
        // The trailing single packet does not qualify.
        assert!(det.finish().is_empty());
    }

    #[test]
    fn aggregation_merges_spread_sources() {
        // 100 distinct /128 sources in one /64, each sending ONE packet to a
        // distinct destination: invisible at /128, a scan at /64. This is
        // the paper's central methodological point.
        let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let recs: Vec<PacketRecord> = (0..100u64)
            .map(|i| PacketRecord::tcp(i * 1000, base + i as u128, 0xee00 + i as u128, 1, 22, 60))
            .collect();
        let at128 = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(at128.scans(), 0);
        let at64 = detect(&recs, ScanDetectorConfig::paper(AggLevel::L64));
        assert_eq!(at64.scans(), 1);
        assert_eq!(at64.events[0].distinct_srcs, 100);
        assert_eq!(at64.events[0].source.len(), 64);
    }

    #[test]
    fn forty_eight_can_qualify_when_no_64_does() {
        // Two /64s in one /48, each targeting 60 destinations: no /64 scan,
        // one /48 scan (Table 2, AS#18 situation).
        let p64a: u128 = 0x2001_0db8_0001_0000_0000_0000_0000_0001;
        let p64b: u128 = 0x2001_0db8_0001_0001_0000_0000_0000_0001;
        let mut recs = burst(p64a, 0, 60, 22);
        recs.extend(burst(p64b, 500, 60, 22));
        // Distinct destinations across the two bursts:
        for (i, r) in recs.iter_mut().enumerate() {
            r.dst = 0xaa00 + i as u128;
        }
        lumen6_trace::sort_by_time(&mut recs);
        assert_eq!(
            detect(&recs, ScanDetectorConfig::paper(AggLevel::L64)).scans(),
            0
        );
        let at48 = detect(&recs, ScanDetectorConfig::paper(AggLevel::L48));
        assert_eq!(at48.scans(), 1);
        assert_eq!(at48.events[0].distinct_dsts, 120);
    }

    #[test]
    fn keep_dsts_returns_sorted_targets() {
        let recs = burst(1, 0, 100, 22);
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128).with_dsts());
        let dsts = report.events[0].dsts.as_ref().unwrap();
        assert_eq!(dsts.len(), 100);
        assert!(dsts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(dsts[0], 0xdd00);
    }

    #[test]
    fn ports_histogram_accumulates() {
        let mut recs = burst(1, 0, 100, 22);
        recs.extend(burst(1, 100_000, 50, 443));
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        let e = &report.events[0];
        assert_eq!(e.num_ports(), 2);
        assert!(e.targets(Transport::Tcp, 22));
        assert_eq!(e.top_port().unwrap(), ((Transport::Tcp, 22), 100));
    }

    #[test]
    fn flush_idle_bounds_state() {
        let mut det = ScanDetector::new(ScanDetectorConfig::paper(AggLevel::L128));
        for r in burst(1, 0, 100, 22) {
            det.observe(&r);
        }
        for r in burst(2, HOUR, 5, 22) {
            det.observe(&r);
        }
        assert_eq!(det.open_runs(), 2);
        // Source 1 idle since 99s; flush at a time where only it is expired.
        let flushed = det.flush_idle(99_000 + HOUR + 1);
        assert_eq!(flushed.len(), 1);
        assert_eq!(det.open_runs(), 1);
        // Non-qualifying idle runs are dropped silently.
        let flushed2 = det.flush_idle(HOUR + 5_000 + HOUR + 1);
        assert!(flushed2.is_empty());
        assert_eq!(det.open_runs(), 0);
    }

    #[test]
    fn out_of_order_timestamp_tolerated() {
        let mut recs = burst(1, 10_000, 100, 22);
        // A straggler 5 s in the past.
        recs.push(PacketRecord::tcp(5_000, 1, 0xffff, 1, 22, 60));
        let report = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        assert_eq!(report.scans(), 1);
        let e = &report.events[0];
        assert_eq!(e.packets, 101);
        // Event does not extend backwards past its first-seen packet.
        assert_eq!(e.start_ms, 10_000);
    }

    #[test]
    fn sketched_detection_close_to_exact() {
        let recs = burst(1, 0, 5_000, 22);
        let exact = detect(&recs, ScanDetectorConfig::paper(AggLevel::L128));
        let mut cfg = ScanDetectorConfig::paper(AggLevel::L128);
        cfg.sketch = Some(SketchConfig::spill_at(256));
        let sketched = detect(&recs, cfg);
        assert_eq!(exact.scans(), 1);
        assert_eq!(sketched.scans(), 1);
        let a = exact.events[0].distinct_dsts as f64;
        let b = sketched.events[0].distinct_dsts as f64;
        assert!((a - b).abs() / a < 0.05, "exact={a} sketched={b}");
    }

    #[test]
    fn min_dsts_five_matches_loose_definition() {
        let recs = burst(1, 0, 7, 22);
        let mut cfg = ScanDetectorConfig::paper(AggLevel::L128);
        cfg.min_dsts = 5;
        assert_eq!(detect(&recs, cfg).scans(), 1);
        assert_eq!(
            detect(&recs, ScanDetectorConfig::paper(AggLevel::L128)).scans(),
            0
        );
    }

    #[test]
    fn memory_snapshot_tracks_state_and_spills() {
        let mut cfg = ScanDetectorConfig::paper(AggLevel::L128);
        cfg.sketch = Some(SketchConfig::spill_at(64));
        let mut det = ScanDetector::new(cfg);
        // Source 1: 200 distinct destinations → spills past 64.
        for r in burst(1, 0, 200, 22) {
            det.observe(&r);
        }
        // Source 2: 10 destinations → stays exact.
        for r in burst(2, 0, 10, 23) {
            det.observe(&r);
        }
        let m = det.memory();
        assert_eq!(m.open_runs, 2);
        assert_eq!(m.sketched_runs, 1);
        assert_eq!(m.exact_dst_entries, 10);
        assert_eq!(m.port_entries, 2);
        // Sketch caps the per-source footprint: the spilled run no longer
        // contributes destination entries.
        let empty = ScanDetector::new(ScanDetectorConfig::default());
        assert_eq!(empty.memory(), DetectorMemory::default());
    }

    #[test]
    fn empty_input_empty_report() {
        let report = detect(&[], ScanDetectorConfig::default());
        assert_eq!(report.scans(), 0);
        assert_eq!(report.packets(), 0);
    }

    #[test]
    fn construction_and_restore_clamp_sketch_precision() {
        use crate::sketch::{DEFAULT_PRECISION, MAX_PRECISION};
        let cfg = ScanDetectorConfig {
            sketch: Some(SketchConfig {
                spill_threshold: 64,
                precision: 99,
            }),
            ..Default::default()
        };
        let det = ScanDetector::new(cfg);
        assert_eq!(
            det.config().sketch.map(|s| s.precision),
            Some(MAX_PRECISION)
        );
        // Simulate a foreign snapshot carrying an unclamped precision: the
        // restore boundary must normalize it too, so a restored detector
        // can always merge sketches with a freshly built one.
        let mut state = det.state();
        state.config.sketch = Some(SketchConfig {
            spill_threshold: 64,
            precision: 99,
        });
        let back = ScanDetector::from_state(&state);
        assert_eq!(back.config().sketch_params(), (64, MAX_PRECISION));
        // And the exact (no-sketch) default never spills.
        assert_eq!(
            ScanDetectorConfig::default().sketch_params(),
            (usize::MAX, DEFAULT_PRECISION)
        );
    }
}
