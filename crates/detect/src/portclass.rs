//! Single- vs multi-port scan classification (paper footnote 9, Figs. 4, 8).
//!
//! A scan is tagged by the fraction `f` of its packets that hit the most
//! common port: `f > 0.5` → single port; `f > 0.09` → fewer than 10 ports;
//! `f > 0.009` → fewer than 100 ports; otherwise more than 100 ports. This
//! avoids misclassifying a scan as multi-port when only a tiny fraction of
//! its packets stray across many ports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's four ports-per-scan buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PortClass {
    /// One dominant port (f > 0.5).
    Single,
    /// Fewer than 10 ports (f > 0.09).
    LessThan10,
    /// Fewer than 100 ports (f > 0.009).
    LessThan100,
    /// More than 100 ports.
    MoreThan100,
}

impl PortClass {
    /// All buckets in display order.
    pub const ALL: [PortClass; 4] = [
        PortClass::Single,
        PortClass::LessThan10,
        PortClass::LessThan100,
        PortClass::MoreThan100,
    ];

    /// Label matching the paper's Fig. 4 x-axis.
    pub fn label(&self) -> &'static str {
        match self {
            PortClass::Single => "1 port",
            PortClass::LessThan10 => "<10 ports",
            PortClass::LessThan100 => "<100 ports",
            PortClass::MoreThan100 => ">100 ports",
        }
    }
}

impl fmt::Display for PortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies a scan from its per-port packet counts and total packet count.
///
/// `per_port` yields the packet count of each targeted (protocol, port);
/// `total` is the event's total packets. An empty event classifies as
/// `Single` (degenerate, but keeps the function total).
pub fn classify_ports<I: IntoIterator<Item = u64>>(per_port: I, total: u64) -> PortClass {
    if total == 0 {
        return PortClass::Single;
    }
    let max = per_port.into_iter().max().unwrap_or(0);
    let f = max as f64 / total as f64;
    if f > 0.5 {
        PortClass::Single
    } else if f > 0.09 {
        PortClass::LessThan10
    } else if f > 0.009 {
        PortClass::LessThan100
    } else {
        PortClass::MoreThan100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_port_is_single() {
        // 60% of packets on one port.
        assert_eq!(classify_ports([60, 20, 20], 100), PortClass::Single);
        assert_eq!(classify_ports([100], 100), PortClass::Single);
    }

    #[test]
    fn exactly_half_is_not_single() {
        assert_eq!(classify_ports([50, 50], 100), PortClass::LessThan10);
    }

    #[test]
    fn even_spread_over_8_ports() {
        let counts = vec![125u64; 8];
        assert_eq!(classify_ports(counts, 1000), PortClass::LessThan10);
    }

    #[test]
    fn even_spread_over_50_ports() {
        let counts = vec![20u64; 50];
        assert_eq!(classify_ports(counts, 1000), PortClass::LessThan100);
    }

    #[test]
    fn even_spread_over_500_ports() {
        let counts = vec![2u64; 500];
        assert_eq!(classify_ports(counts, 1000), PortClass::MoreThan100);
    }

    #[test]
    fn stray_packets_do_not_flip_single_port() {
        // 94% on one port, 6% sprayed across 600 ports: still single.
        let mut counts = vec![1u64; 60];
        counts.push(940);
        assert_eq!(classify_ports(counts, 1000), PortClass::Single);
    }

    #[test]
    fn empty_event_is_degenerate_single() {
        assert_eq!(classify_ports([], 0), PortClass::Single);
    }

    #[test]
    fn boundaries() {
        // f exactly 0.09 → not <10, falls to <100.
        assert_eq!(classify_ports([9], 100), PortClass::LessThan100);
        // f just above 0.09 → <10.
        assert_eq!(classify_ports([10], 100), PortClass::LessThan10);
        // f exactly 0.009 → >100 bucket.
        assert_eq!(classify_ports([9], 1000), PortClass::MoreThan100);
        // f just above 0.009 → <100.
        assert_eq!(classify_ports([10], 1000), PortClass::LessThan100);
    }

    #[test]
    fn labels() {
        assert_eq!(PortClass::Single.label(), "1 port");
        assert_eq!(PortClass::MoreThan100.to_string(), ">100 ports");
    }
}
