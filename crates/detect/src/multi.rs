//! One-pass simultaneous detection at several aggregation levels.
//!
//! The paper's Table 1 and Fig. 2 report /128, /64, and /48 results side by
//! side, and its discussion (§5) suggests IDSes "track simultaneously
//! various aggregations". Re-reading a multi-month trace once per level is
//! wasteful; [`MultiLevelDetector`] fans each packet out to one
//! [`ScanDetector`] per level in a single pass. The ablation bench
//! `adaptive_vs_fixed` compares this against the naive multi-pass loop.

use crate::aggregate::AggLevel;
use crate::detector::{ScanDetector, ScanDetectorConfig};
use crate::event::{ScanEvent, ScanReport};
use crate::snapshot::LevelState;
use lumen6_addr::Ipv6Prefix;
use lumen6_trace::{PacketRecord, RecordBatch};
use std::collections::BTreeMap;

/// Simultaneous multi-level scan detection.
#[derive(Debug)]
pub struct MultiLevelDetector {
    detectors: Vec<(AggLevel, ScanDetector)>,
    /// Mid-stream events per level, in arrival order.
    pending: BTreeMap<AggLevel, Vec<ScanEvent>>,
}

impl MultiLevelDetector {
    /// Creates one detector per level, sharing the base configuration
    /// (whose own `agg` field is overridden per level).
    pub fn new(levels: &[AggLevel], base: ScanDetectorConfig) -> Self {
        let detectors = levels
            .iter()
            .map(|&lvl| {
                let mut cfg = base.clone();
                cfg.agg = lvl;
                (lvl, ScanDetector::new(cfg))
            })
            .collect();
        MultiLevelDetector {
            detectors,
            pending: BTreeMap::new(),
        }
    }

    /// The paper's three levels with the paper's scan definition.
    pub fn paper() -> Self {
        Self::new(&AggLevel::PAPER_LEVELS, ScanDetectorConfig::default())
    }

    /// The configured aggregation levels, in detection order.
    pub fn levels(&self) -> Vec<AggLevel> {
        self.detectors.iter().map(|(lvl, _)| *lvl).collect()
    }

    /// Packets observed so far (every level sees every packet).
    pub fn observed(&self) -> u64 {
        self.detectors.first().map_or(0, |(_, det)| det.observed())
    }

    /// Feeds one packet to every level.
    ///
    /// The source aggregation is computed once per packet and narrowed from
    /// the previous level when levels are ordered fine-to-coarse (as
    /// [`AggLevel::PAPER_LEVELS`] is), instead of every detector re-masking
    /// the full 128-bit address.
    pub fn observe(&mut self, r: &PacketRecord) {
        let mut prev: Option<Ipv6Prefix> = None;
        for (lvl, det) in &mut self.detectors {
            let source = match prev {
                Some(p) if p.len() >= lvl.len() => p.aggregate(lvl.len()),
                _ => lvl.source_of(r.src),
            };
            prev = Some(source);
            if let Some(e) = det.observe_aggregated(source, r) {
                self.pending.entry(*lvl).or_default().push(e);
            }
        }
    }

    /// Feeds a columnar batch to every level via the grouped batch path
    /// (see [`ScanDetector::observe_batch`]). Equivalent to calling
    /// [`observe`](Self::observe) on each record in order; the per-level
    /// grouping pass amortizes source aggregation and run-state lookups
    /// across the batch instead of narrowing prefixes per packet.
    pub fn observe_batch(&mut self, batch: &RecordBatch) {
        for (lvl, det) in &mut self.detectors {
            let events = det.observe_batch(batch);
            if !events.is_empty() {
                self.pending.entry(*lvl).or_default().extend(events);
            }
        }
    }

    /// [`observe_batch`](Self::observe_batch) over a plain record slice.
    pub fn observe_records(&mut self, records: &[PacketRecord]) {
        for (lvl, det) in &mut self.detectors {
            let events = det.observe_records(records);
            if !events.is_empty() {
                self.pending.entry(*lvl).or_default().extend(events);
            }
        }
    }

    /// Closes runs idle since before `now - timeout` at every level,
    /// collecting qualifying events into the pending set that
    /// [`finish`](Self::finish) reports. Report-neutral: an event closed
    /// here is identical to the one `finish` would eventually emit, so
    /// flushing at any cadence never changes the final reports.
    pub fn flush_idle(&mut self, now_ms: u64) {
        for (lvl, det) in &mut self.detectors {
            let events = det.flush_idle(now_ms);
            if !events.is_empty() {
                self.pending.entry(*lvl).or_default().extend(events);
            }
        }
    }

    /// Serializable per-level snapshot of the complete detector state,
    /// including mid-stream pending events.
    pub fn state(&self) -> Vec<LevelState> {
        self.detectors
            .iter()
            .map(|(lvl, det)| {
                let mut st = det.state();
                if let Some(p) = self.pending.get(lvl) {
                    st.pending.extend(p.iter().cloned());
                }
                st
            })
            .collect()
    }

    /// Rebuilds a multi-level detector from per-level snapshots (each
    /// state's embedded configuration, including its level, is
    /// authoritative).
    pub fn from_state(states: &[LevelState]) -> Self {
        let mut pending = BTreeMap::new();
        let detectors = states
            .iter()
            .map(|st| {
                let mut det = ScanDetector::from_state(st);
                let lvl = det.config().agg;
                let p = std::mem::take(&mut det.pending);
                if !p.is_empty() {
                    pending.insert(lvl, p);
                }
                (lvl, det)
            })
            .collect();
        MultiLevelDetector { detectors, pending }
    }

    /// Ends the stream and returns the per-level reports.
    ///
    /// Flushes per-level telemetry (`detect.multi.l<len>.runs_opened` /
    /// `.events_closed`) to the global metrics registry — counts accumulate
    /// as plain integers during the stream, so observation stays free of
    /// atomics.
    pub fn finish(mut self) -> BTreeMap<AggLevel, ScanReport> {
        let reg = lumen6_obs::MetricsRegistry::global();
        let mut out = BTreeMap::new();
        for (lvl, det) in self.detectors {
            let opened = det.runs_opened();
            let mut events = self.pending.remove(&lvl).unwrap_or_default();
            events.extend(det.finish());
            events.sort_by_key(|e| (e.start_ms, e.source));
            reg.counter(&format!("detect.multi.l{}.runs_opened", lvl.len()))
                .add(opened);
            reg.counter(&format!("detect.multi.l{}.events_closed", lvl.len()))
                .add(events.len() as u64);
            out.insert(lvl, ScanReport::new(events));
        }
        out
    }
}

/// Convenience: runs multi-level detection over a complete sorted slice.
pub fn detect_multi(
    records: &[PacketRecord],
    levels: &[AggLevel],
    base: ScanDetectorConfig,
) -> BTreeMap<AggLevel, ScanReport> {
    let mut det = MultiLevelDetector::new(levels, base);
    for r in records {
        det.observe(r);
    }
    det.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect;

    fn spread_scan() -> Vec<PacketRecord> {
        // 100 /128s across one /64, each one packet to a distinct dst, plus
        // one heavy /128 hitting 150 dsts.
        let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let heavy: u128 = 0x2001_0db9_0000_0000_0000_0000_0000_0001;
        let mut recs: Vec<PacketRecord> = (0..100u64)
            .map(|i| PacketRecord::tcp(i * 1000, base + i as u128, 0xa000 + i as u128, 1, 22, 60))
            .collect();
        recs.extend(
            (0..150u64).map(|i| PacketRecord::tcp(i * 900, heavy, 0xb000 + i as u128, 1, 22, 60)),
        );
        lumen6_trace::sort_by_time(&mut recs);
        recs
    }

    #[test]
    fn single_pass_equals_multi_pass() {
        let recs = spread_scan();
        let multi = detect_multi(
            &recs,
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
        );
        for lvl in AggLevel::PAPER_LEVELS {
            let single = detect(&recs, ScanDetectorConfig::paper(lvl));
            let m = &multi[&lvl];
            assert_eq!(m.scans(), single.scans(), "level {lvl}");
            assert_eq!(m.packets(), single.packets(), "level {lvl}");
            assert_eq!(m.source_set(), single.source_set(), "level {lvl}");
        }
    }

    #[test]
    fn levels_see_different_pictures() {
        let recs = spread_scan();
        let multi = detect_multi(
            &recs,
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
        );
        // /128: only the heavy source qualifies. /64: heavy + spread = 2.
        assert_eq!(multi[&AggLevel::L128].scans(), 1);
        assert_eq!(multi[&AggLevel::L64].scans(), 2);
        assert_eq!(multi[&AggLevel::L48].scans(), 2);
    }

    #[test]
    fn empty_input() {
        let multi = detect_multi(&[], &AggLevel::PAPER_LEVELS, ScanDetectorConfig::default());
        assert!(multi.values().all(|r| r.scans() == 0));
    }

    #[test]
    fn mid_stream_events_are_collected() {
        // Two bursts separated by more than the timeout: the first event is
        // emitted mid-stream and must appear in the final report.
        let mut recs: Vec<PacketRecord> = (0..100u64)
            .map(|i| PacketRecord::tcp(i * 1000, 1, 0xa000 + i as u128, 1, 22, 60))
            .collect();
        recs.extend(
            (0..100u64)
                .map(|i| PacketRecord::tcp(8_000_000 + i * 1000, 1, 0xa000 + i as u128, 1, 22, 60)),
        );
        let multi = detect_multi(&recs, &[AggLevel::L128], ScanDetectorConfig::default());
        assert_eq!(multi[&AggLevel::L128].scans(), 2);
    }
}
