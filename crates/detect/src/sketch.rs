//! A from-scratch HyperLogLog sketch for distinct-destination counting.
//!
//! The scan definition hinges on *distinct destination IPv6 addresses per
//! source*. Offline analysis can afford exact `HashSet<u128>`s, but an
//! operational IDS tracking tens of thousands of candidate sources cannot:
//! a single heavy scanner may probe millions of destinations. HyperLogLog
//! bounds per-source memory at `2^precision` bytes with ~1.04/√m relative
//! error — at the default precision 12 that is 4 KiB and ≈1.6% error,
//! far finer than the detection threshold needs.
//!
//! The implementation follows Flajolet et al. (2007) with the standard
//! small-range (linear counting) correction. Hashing is a splitmix64-style
//! finalizer over the folded 128-bit address.

use lumen6_addr::cast::{high64, low64};
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

/// Named configuration for spilling exact distinct-sets to HyperLogLog
/// sketches, replacing the old opaque `(usize, u8)` tuple on
/// [`ScanDetectorConfig`](crate::ScanDetectorConfig).
///
/// Serialization is backward compatible: deserialization accepts both the
/// new named-field object and the legacy two-element `[spill_threshold,
/// precision]` array that older JSON configs contain. Serialization always
/// emits the named form. Both decode arms clamp `precision` into the
/// supported `4..=16` range (see [`SketchConfig::clamped`]), so no
/// out-of-range precision survives deserialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SketchConfig {
    /// Exact-set size beyond which a per-source counter spills to a sketch.
    pub spill_threshold: usize,
    /// HyperLogLog precision (log2 register count), clamped to 4..=16 at
    /// sketch construction.
    pub precision: u8,
}

/// Smallest supported HyperLogLog precision (16 registers).
pub const MIN_PRECISION: u8 = 4;
/// Largest supported HyperLogLog precision (64 KiB of registers).
pub const MAX_PRECISION: u8 = 16;
/// Default HyperLogLog precision: 4 KiB per sketch, ≈1.6% relative error.
pub const DEFAULT_PRECISION: u8 = 12;

impl SketchConfig {
    /// A sketch configuration with the default precision of 12
    /// (4 KiB per sketch, ≈1.6% relative error).
    pub fn spill_at(spill_threshold: usize) -> Self {
        SketchConfig {
            spill_threshold,
            precision: DEFAULT_PRECISION,
        }
    }

    /// The same configuration with `precision` clamped to the supported
    /// `4..=16` range.
    ///
    /// [`HyperLogLog::new`] clamps too, but only at sketch *construction* —
    /// a config carrying an out-of-range precision (hand-edited JSON, a
    /// corrupted checkpoint) used to survive as-is until a freshly built
    /// clamped sketch failed to [`merge`](HyperLogLog::merge) with one
    /// restored unclamped, mid-run. Every deserialization and
    /// snapshot-restore boundary now normalizes through this helper so an
    /// in-memory `SketchConfig` is always in range.
    #[must_use]
    pub fn clamped(self) -> Self {
        SketchConfig {
            spill_threshold: self.spill_threshold,
            precision: self.precision.clamp(MIN_PRECISION, MAX_PRECISION),
        }
    }
}

impl From<(usize, u8)> for SketchConfig {
    fn from((spill_threshold, precision): (usize, u8)) -> Self {
        SketchConfig {
            spill_threshold,
            precision,
        }
    }
}

impl Deserialize for SketchConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Legacy tuple encoding: [spill_threshold, precision].
            Value::Array(items) if items.len() == 2 => Ok(SketchConfig {
                spill_threshold: usize::from_value(&items[0])?,
                precision: u8::from_value(&items[1])?,
            }
            .clamped()),
            Value::Object(_) => {
                let get = |name: &str| {
                    v.get(name)
                        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))
                };
                Ok(SketchConfig {
                    spill_threshold: usize::from_value(get("spill_threshold")?)?,
                    precision: u8::from_value(get("precision")?)?,
                }
                .clamped())
            }
            other => Err(DeError::expected(
                "SketchConfig object or [spill, precision]",
                other,
            )),
        }
    }
}

/// Mixes a 128-bit value into a well-distributed 64-bit hash.
#[inline]
fn mix128(x: u128) -> u64 {
    // Fold, then two rounds of splitmix64 finalization.
    let mut z = low64(x) ^ high64(x).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// HyperLogLog distinct counter over 128-bit items.
///
/// ```
/// use lumen6_detect::HyperLogLog;
/// let mut h = HyperLogLog::new(12);
/// for i in 0..10_000u128 { h.insert(i); }
/// let est = h.estimate();
/// assert!((est as f64 - 10_000.0).abs() / 10_000.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` registers. Precision is clamped
    /// to 4..=16.
    pub fn new(precision: u8) -> Self {
        let p = precision.clamp(4, 16);
        HyperLogLog {
            precision: p,
            registers: vec![0; 1 << p],
        }
    }

    /// The precision (log2 of register count).
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Inserts an item.
    #[inline]
    pub fn insert(&mut self, item: u128) {
        let h = mix128(item);
        let idx = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        // Rank: position of the leftmost 1 in the remaining bits, 1-based;
        // all-zero remainder gets the maximum rank.
        let rank = (rest.leading_zeros() as u8).min(64 - self.precision) + 1;
        if self.registers[idx] < rank {
            self.registers[idx] = rank;
        }
    }

    /// Estimated distinct count.
    pub fn estimate(&self) -> u64 {
        let m = self.registers.len() as f64;
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-(i32::from(r))))
            .sum();
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting while registers are sparse.
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return (m * (m / zeros as f64).ln()).round() as u64;
            }
        }
        raw.round() as u64
    }

    /// Merges another sketch of the same precision; error if they differ.
    pub fn merge(&mut self, other: &HyperLogLog) -> Result<(), &'static str> {
        if self.precision != other.precision {
            return Err("cannot merge HyperLogLog sketches of different precision");
        }
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
        Ok(())
    }

    /// Whether no item was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Memory used by the register array, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// A distinct counter that is exact up to a bound, then switches to a
/// HyperLogLog. This is what the streaming detector uses: almost all
/// candidate sources touch only a handful of destinations (Fig. 1 of the
/// paper), so the exact small-set path dominates and sketches are only built
/// for the heavy hitters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DistinctCounter {
    /// Exact set, used while small. Hashed with the deterministic
    /// [`FxBuildHasher`](crate::fxhash::FxBuildHasher) — this insert is on
    /// the per-packet hot path, and the serialized form
    /// ([`CounterState`](crate::snapshot::CounterState)) sorts the set, so
    /// iteration order never reaches any output.
    Exact(crate::fxhash::FxHashSet<u128>),
    /// Sketch, after spilling.
    Sketch(HyperLogLog),
}

impl DistinctCounter {
    /// Creates an exact counter.
    pub fn new() -> Self {
        DistinctCounter::Exact(Default::default())
    }

    /// Inserts, spilling to a sketch once the exact set exceeds `spill_at`.
    pub fn insert(&mut self, item: u128, spill_at: usize, precision: u8) {
        match self {
            DistinctCounter::Exact(set) => {
                set.insert(item);
                if set.len() > spill_at {
                    let mut hll = HyperLogLog::new(precision);
                    for &x in set.iter() {
                        hll.insert(x);
                    }
                    *self = DistinctCounter::Sketch(hll);
                }
            }
            DistinctCounter::Sketch(hll) => hll.insert(item),
        }
    }

    /// Distinct count (exact or estimated).
    pub fn count(&self) -> u64 {
        match self {
            DistinctCounter::Exact(set) => set.len() as u64,
            DistinctCounter::Sketch(hll) => hll.estimate(),
        }
    }

    /// Whether this counter spilled to a sketch.
    pub fn is_sketched(&self) -> bool {
        matches!(self, DistinctCounter::Sketch(_))
    }
}

impl Default for DistinctCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sketch_config_parses_legacy_tuple_json() {
        let cfg: SketchConfig = serde_json::from_str("[256, 12]").unwrap();
        assert_eq!(
            cfg,
            SketchConfig {
                spill_threshold: 256,
                precision: 12
            }
        );
    }

    #[test]
    fn sketch_config_roundtrips_named_form() {
        let cfg = SketchConfig {
            spill_threshold: 64,
            precision: 10,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("spill_threshold"), "{json}");
        let back: SketchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn sketch_config_rejects_malformed_json() {
        assert!(serde_json::from_str::<SketchConfig>("[256]").is_err());
        assert!(serde_json::from_str::<SketchConfig>("\"nope\"").is_err());
        assert!(serde_json::from_str::<SketchConfig>("{\"spill_threshold\": 4}").is_err());
    }

    #[test]
    fn sketch_config_clamps_out_of_range_precision_on_deserialize() {
        // Named form, precision far above the supported range: the decoded
        // config must already be clamped, not carry 99 until a mid-run
        // sketch merge explodes.
        let high: SketchConfig =
            serde_json::from_str("{\"spill_threshold\": 256, \"precision\": 99}").unwrap();
        assert_eq!(high.precision, MAX_PRECISION);
        let low: SketchConfig =
            serde_json::from_str("{\"spill_threshold\": 256, \"precision\": 0}").unwrap();
        assert_eq!(low.precision, MIN_PRECISION);
        // Legacy tuple form clamps identically.
        let legacy: SketchConfig = serde_json::from_str("[256, 99]").unwrap();
        assert_eq!(legacy.precision, MAX_PRECISION);
        // Round trip: serializing the clamped config and reading it back is
        // a fixed point.
        let json = serde_json::to_string(&high).unwrap();
        let back: SketchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, high);
    }

    #[test]
    fn clamped_is_identity_in_range() {
        for p in MIN_PRECISION..=MAX_PRECISION {
            let cfg = SketchConfig {
                spill_threshold: 64,
                precision: p,
            };
            assert_eq!(cfg.clamped(), cfg);
        }
    }

    #[test]
    fn detector_config_accepts_both_sketch_encodings() {
        use crate::detector::ScanDetectorConfig;
        let legacy = serde_json::to_string(&ScanDetectorConfig {
            sketch: Some(SketchConfig::spill_at(256)),
            ..Default::default()
        })
        .unwrap()
        .replace("{\"spill_threshold\":256,\"precision\":12}", "[256,12]");
        assert!(legacy.contains("[256,12]"), "{legacy}");
        let parsed: ScanDetectorConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.sketch, Some(SketchConfig::spill_at(256)));
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let h = HyperLogLog::new(12);
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0);
    }

    #[test]
    fn small_counts_are_near_exact() {
        let mut h = HyperLogLog::new(12);
        for i in 0..100u128 {
            h.insert(i);
        }
        let est = h.estimate();
        assert!((95..=105).contains(&est), "est={est}");
    }

    #[test]
    fn duplicate_inserts_do_not_inflate() {
        let mut h = HyperLogLog::new(12);
        for _ in 0..50 {
            for i in 0..20u128 {
                h.insert(i);
            }
        }
        let est = h.estimate();
        assert!((18..=22).contains(&est), "est={est}");
    }

    #[test]
    fn error_within_bounds_at_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &n in &[1_000u64, 50_000, 500_000] {
            let mut h = HyperLogLog::new(12);
            for _ in 0..n {
                h.insert(rng.gen::<u128>());
            }
            let est = h.estimate() as f64;
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.05, "n={n} est={est} err={err}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut u = HyperLogLog::new(10);
        for i in 0..5_000u128 {
            a.insert(i);
            u.insert(i);
        }
        for i in 2_500..7_500u128 {
            b.insert(i);
            u.insert(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u);
    }

    #[test]
    fn merge_rejects_mismatched_precision() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(12);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn precision_clamped() {
        assert_eq!(HyperLogLog::new(0).precision(), 4);
        assert_eq!(HyperLogLog::new(40).precision(), 16);
        assert_eq!(HyperLogLog::new(12).memory_bytes(), 4096);
    }

    #[test]
    fn distinct_counter_spills_and_stays_accurate() {
        let mut c = DistinctCounter::new();
        for i in 0..10_000u128 {
            c.insert(i, 256, 12);
        }
        assert!(c.is_sketched());
        let est = c.count() as f64;
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.05, "est={est}");
    }

    #[test]
    fn distinct_counter_exact_below_spill() {
        let mut c = DistinctCounter::new();
        for i in 0..100u128 {
            c.insert(i, 256, 12);
            c.insert(i, 256, 12);
        }
        assert!(!c.is_sketched());
        assert_eq!(c.count(), 100);
    }
}
