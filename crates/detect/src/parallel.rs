//! Sharded parallel multi-level scan detection.
//!
//! Eventization state is keyed by the *aggregated* source prefix, which
//! makes detection embarrassingly parallel across sources: partition the
//! packet stream by source prefix, run an independent
//! [`MultiLevelDetector`] per partition, and merge. The partition key is the
//! **coarsest** configured aggregation level — two addresses equal at a
//! finer level are necessarily equal at every coarser one, so hashing the
//! coarsest prefix routes all packets that share state at *any* level to
//! the same shard. Within a shard packets arrive in stream order (one FIFO
//! channel per shard), so each per-source run accumulates exactly as it
//! would sequentially.
//!
//! The merge is deterministic: per level, `(start_ms, source)` is unique —
//! one source's runs have distinct start times and distinct sources are
//! distinct keys — so sorting the concatenated shard outputs by that key is
//! a total order, independent of shard count and thread scheduling. The
//! result is byte-identical to [`detect_multi`](crate::multi::detect_multi)
//! (a property-tested invariant, see `crates/detect/tests/`).
//!
//! ```
//! use lumen6_detect::parallel::{detect_multi_sharded, ShardPlan};
//! use lumen6_detect::{AggLevel, ScanDetectorConfig};
//! use lumen6_trace::PacketRecord;
//!
//! let recs: Vec<PacketRecord> = (0..200u64)
//!     .map(|i| PacketRecord::tcp(i * 1000, 7, 0xd000 + i as u128, 1, 22, 60))
//!     .collect();
//! let reports = detect_multi_sharded(
//!     &recs,
//!     &AggLevel::PAPER_LEVELS,
//!     ScanDetectorConfig::default(),
//!     ShardPlan::with_shards(4),
//! );
//! assert_eq!(reports[&AggLevel::L128].scans(), 1);
//! ```

use crate::aggregate::AggLevel;
use crate::detector::ScanDetectorConfig;
use crate::event::{ScanEvent, ScanReport};
use crate::multi::MultiLevelDetector;
use crate::snapshot::{LevelState, SnapshotError};
use lumen6_obs::MetricsRegistry;
use lumen6_trace::{PacketRecord, RecordBatch};
use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Control-plane message to a shard worker. Besides packet batches, the
/// router can ask workers to garbage-collect idle runs or to report their
/// serializable state mid-stream (for checkpointing) without tearing the
/// pipeline down.
enum ShardMsg {
    /// A batch of packets to observe, in stream order.
    Batch(Vec<PacketRecord>),
    /// Close runs idle since before `now - timeout` (see
    /// [`MultiLevelDetector::flush_idle`]).
    FlushIdle(u64),
    /// Send the worker's per-level state back through the provided channel.
    Snapshot(SyncSender<Vec<LevelState>>),
}

/// How a sharded detection run is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of worker shards. Clamped to at least 1.
    pub shards: usize,
    /// Packets per batch handed to a shard channel. Batching amortizes
    /// channel synchronization; the value does not affect results.
    pub batch: usize,
    /// Batches allowed in flight per shard before the router blocks.
    /// Bounds pipeline memory to roughly
    /// `shards * depth * batch * size_of::<PacketRecord>()`.
    pub depth: usize,
}

impl Default for ShardPlan {
    /// One shard per available hardware thread.
    fn default() -> Self {
        ShardPlan::with_shards(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        )
    }
}

impl ShardPlan {
    /// A plan with an explicit shard count and default batching.
    pub fn with_shards(shards: usize) -> Self {
        ShardPlan {
            shards: shards.max(1),
            batch: 4096,
            depth: 4,
        }
    }
}

/// Seed-free 64-bit mixer (SplitMix64 finalizer). Shard routing must be
/// deterministic across runs, so no `RandomState`.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard owning `src` when routing on `coarsest` across `shards`
/// workers. Shared by live routing and snapshot restore so a checkpoint
/// re-partitions identically to how the stream routes.
#[inline]
fn route(coarsest: AggLevel, shards: usize, src: u128) -> usize {
    let p = coarsest.source_of(src);
    let bits = p.bits();
    let h = mix64((bits >> 64) as u64 ^ (bits as u64).rotate_left(32) ^ u64::from(p.len()));
    (h % shards as u64) as usize
}

/// Sharded multi-level detector with the same push interface as
/// [`MultiLevelDetector`]: feed time-ordered packets via
/// [`observe`](Self::observe), then [`finish`](Self::finish).
///
/// Worker threads are spawned on construction and joined by `finish`;
/// dropping without finishing shuts the workers down and discards results.
#[derive(Debug)]
pub struct ShardedDetector {
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<BTreeMap<AggLevel, Vec<ScanEvent>>>>,
    buffers: Vec<Vec<PacketRecord>>,
    levels: Vec<AggLevel>,
    coarsest: AggLevel,
    batch: usize,
    observed: u64,
    // Telemetry accumulated locally (plain integers on the hot path) and
    // flushed to the global registry once, in `finish`.
    routed: Vec<u64>,
    batches_sent: u64,
    stalls: u64,
}

impl ShardedDetector {
    /// Spawns `plan.shards` workers, each owning a [`MultiLevelDetector`]
    /// over `levels` with the shared base configuration.
    pub fn new(levels: &[AggLevel], base: ScanDetectorConfig, plan: ShardPlan) -> Self {
        let shards = plan.shards.max(1);
        Self::build(levels, base, plan, vec![None; shards], 0)
    }

    /// Rebuilds a sharded detector from a uniform per-level snapshot (as
    /// produced by [`state`](Self::state), [`MultiLevelDetector::state`],
    /// or [`ScanDetector::state`](crate::ScanDetector::state)). The shard
    /// count may differ from the snapshotting run: open runs and pending
    /// events are re-partitioned by the deterministic routing hash, which
    /// keys on the coarsest-level prefix and therefore lands every run on
    /// one owning shard regardless of shard count.
    pub fn from_state(states: &[LevelState], plan: ShardPlan) -> Result<Self, SnapshotError> {
        let base = states
            .first()
            .map(|s| s.config.clone())
            .ok_or_else(|| SnapshotError("snapshot has no levels".into()))?;
        let levels: Vec<AggLevel> = states.iter().map(|s| s.config.agg).collect();
        let shards = plan.shards.max(1);
        let coarsest = levels.iter().copied().min().unwrap_or(AggLevel::L128);

        // Empty per-shard per-level skeletons, then deal out runs and
        // pending events by routing hash. Counters are whole-stream values,
        // not per-shard state, so they ride on shard 0 and re-sum on the
        // next snapshot/finish.
        let mut parts: Vec<Vec<LevelState>> = (0..shards)
            .map(|_| {
                states
                    .iter()
                    .map(|s| LevelState {
                        config: s.config.clone(),
                        observed: 0,
                        runs_opened: 0,
                        runs: Vec::new(),
                        pending: Vec::new(),
                    })
                    .collect()
            })
            .collect();
        for (li, st) in states.iter().enumerate() {
            parts[0][li].observed = st.observed;
            parts[0][li].runs_opened = st.runs_opened;
            for run in &st.runs {
                let sh = route(coarsest, shards, run.source.bits());
                parts[sh][li].runs.push(run.clone());
            }
            for e in &st.pending {
                let sh = route(coarsest, shards, e.source.bits());
                parts[sh][li].pending.push(e.clone());
            }
        }
        let observed = states.first().map_or(0, |s| s.observed);
        Ok(Self::build(
            &levels,
            base,
            plan,
            parts.into_iter().map(Some).collect(),
            observed,
        ))
    }

    fn build(
        levels: &[AggLevel],
        base: ScanDetectorConfig,
        plan: ShardPlan,
        initial: Vec<Option<Vec<LevelState>>>,
        observed: u64,
    ) -> Self {
        let shards = plan.shards.max(1);
        debug_assert_eq!(initial.len(), shards);
        let coarsest = levels.iter().copied().min().unwrap_or(AggLevel::L128);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for init in initial {
            let (tx, rx) = sync_channel::<ShardMsg>(plan.depth.max(1));
            let levels = levels.to_vec();
            let base = base.clone();
            workers.push(std::thread::spawn(move || {
                let started = Instant::now();
                let mut det = match init {
                    Some(states) => MultiLevelDetector::from_state(&states),
                    None => MultiLevelDetector::new(&levels, base),
                };
                while let Ok(msg) = rx.recv() {
                    match msg {
                        // The grouped batch path: one run-state lookup per
                        // (source, batch) inside the worker instead of one
                        // per packet.
                        ShardMsg::Batch(batch) => det.observe_records(&batch),
                        ShardMsg::FlushIdle(now_ms) => det.flush_idle(now_ms),
                        ShardMsg::Snapshot(reply) => {
                            let _ = reply.send(det.state());
                        }
                    }
                }
                let out: BTreeMap<AggLevel, Vec<ScanEvent>> = det
                    .finish()
                    .into_iter()
                    .map(|(lvl, report)| (lvl, report.events))
                    .collect();
                MetricsRegistry::global()
                    .histogram("detect.parallel.worker_wall_us")
                    .record_duration(started.elapsed());
                out
            }));
            senders.push(tx);
        }
        ShardedDetector {
            senders,
            workers,
            buffers: vec![Vec::with_capacity(plan.batch.max(1)); shards],
            levels: levels.to_vec(),
            coarsest,
            batch: plan.batch.max(1),
            observed,
            routed: vec![0; shards],
            batches_sent: 0,
            stalls: 0,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The configured aggregation levels.
    pub fn levels(&self) -> &[AggLevel] {
        &self.levels
    }

    /// Number of packets routed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The shard owning all state for `src` (and every source sharing its
    /// coarsest-level prefix).
    #[inline]
    fn shard_of(&self, src: u128) -> usize {
        route(self.coarsest, self.senders.len(), src)
    }

    /// Routes one packet to its owning shard. Packets must arrive in
    /// non-decreasing time order, as for the sequential detectors.
    pub fn observe(&mut self, r: &PacketRecord) {
        self.observed += 1;
        let shard = self.shard_of(r.src);
        self.routed[shard] += 1;
        self.buffers[shard].push(*r);
        if self.buffers[shard].len() >= self.batch {
            let full = std::mem::replace(&mut self.buffers[shard], Vec::with_capacity(self.batch));
            self.send_batch(shard, full);
        }
    }

    /// Routes a columnar batch to the owning shards. A last-shard memo
    /// skips the routing hash for consecutive same-source packets, the
    /// common shape of bursty scan traffic. Results are identical to
    /// calling [`observe`](Self::observe) per record.
    pub fn observe_batch(&mut self, batch: &RecordBatch) {
        let srcs = batch.src();
        let mut last: Option<(u128, usize)> = None;
        for (i, &src) in srcs.iter().enumerate() {
            let shard = match last {
                Some((s, sh)) if s == src => sh,
                _ => {
                    let sh = self.shard_of(src);
                    last = Some((src, sh));
                    sh
                }
            };
            self.observed += 1;
            self.routed[shard] += 1;
            self.buffers[shard].push(batch.get(i));
            if self.buffers[shard].len() >= self.batch {
                let full =
                    std::mem::replace(&mut self.buffers[shard], Vec::with_capacity(self.batch));
                self.send_batch(shard, full);
            }
        }
    }

    /// A shard's channel can only close while the pipeline is live if its
    /// worker panicked. Joining the dead worker retrieves the original
    /// payload so the root cause — not a secondary send/recv error —
    /// surfaces at the call site that observed the failure.
    fn propagate_worker_panic(&mut self, shard: usize) -> ! {
        if shard < self.workers.len() {
            if let Err(payload) = self.workers.remove(shard).join() {
                std::panic::resume_unwind(payload);
            }
        }
        // lumen6: allow(L001, a live shard channel closed but its worker exited cleanly: unreachable by construction, and the router has no error channel to its caller)
        panic!("shard {shard} channel closed but its worker exited cleanly");
    }

    /// Sends one batch to a shard, counting a stall when the bounded
    /// channel is full and the router has to block on the worker.
    fn send_batch(&mut self, shard: usize, batch: Vec<PacketRecord>) {
        self.batches_sent += 1;
        match self.senders[shard].try_send(ShardMsg::Batch(batch)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                self.stalls += 1;
                if self.senders[shard].send(msg).is_err() {
                    self.propagate_worker_panic(shard);
                }
            }
            Err(TrySendError::Disconnected(_)) => self.propagate_worker_panic(shard),
        }
    }

    /// Flushes buffered batches so every worker has seen the stream up to
    /// the current position. Must precede any control message whose effect
    /// depends on stream position (flush-idle, snapshot).
    fn drain_buffers(&mut self) {
        let flushes: Vec<(usize, Vec<PacketRecord>)> = self
            .buffers
            .iter_mut()
            .enumerate()
            .filter(|(_, buf)| !buf.is_empty())
            .map(|(shard, buf)| (shard, std::mem::take(buf)))
            .collect();
        for (shard, buf) in flushes {
            self.send_batch(shard, buf);
        }
    }

    /// Closes runs idle since before `now - timeout` on every shard.
    /// Report-neutral, like [`MultiLevelDetector::flush_idle`].
    pub fn flush_idle(&mut self, now_ms: u64) {
        self.drain_buffers();
        for shard in 0..self.senders.len() {
            if self.senders[shard]
                .send(ShardMsg::FlushIdle(now_ms))
                .is_err()
            {
                self.propagate_worker_panic(shard);
            }
        }
    }

    /// Serializable snapshot of the complete pipeline state, merged across
    /// shards into the same uniform per-level form the sequential detectors
    /// produce — so a sharded checkpoint restores into any backend. The
    /// pipeline keeps running afterwards.
    pub fn state(&mut self) -> Vec<LevelState> {
        self.drain_buffers();
        // One rendezvous channel per shard; workers reply with their state
        // once they have consumed everything queued before the request.
        let mut replies = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (reply_tx, reply_rx) = sync_channel(1);
            if self.senders[shard]
                .send(ShardMsg::Snapshot(reply_tx))
                .is_err()
            {
                self.propagate_worker_panic(shard);
            }
            replies.push(reply_rx);
        }
        let mut merged: Option<Vec<LevelState>> = None;
        for (shard, rx) in replies.into_iter().enumerate() {
            let Ok(states) = rx.recv() else {
                self.propagate_worker_panic(shard)
            };
            match &mut merged {
                None => merged = Some(states),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(states) {
                        // lumen6: allow(L001, every shard detector is built from the single config captured in new(), so a merge mismatch cannot occur)
                        a.merge(b).expect("shards share one config");
                    }
                }
            }
        }
        let mut out = merged.unwrap_or_default();
        for lvl in &mut out {
            lvl.normalize();
        }
        out
    }

    /// Ends the stream: flushes buffered batches, joins the workers, and
    /// merges per-shard events into per-level reports sorted by
    /// `(start_ms, source)`.
    pub fn finish(mut self) -> BTreeMap<AggLevel, ScanReport> {
        self.drain_buffers();
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();

        let reg = MetricsRegistry::global();
        for (shard, &n) in self.routed.iter().enumerate() {
            reg.counter(&format!("detect.parallel.shard.{shard}.packets_routed"))
                .add(n);
        }
        reg.counter("detect.parallel.batches_sent")
            .add(self.batches_sent);
        reg.counter("detect.parallel.channel_full_stalls")
            .add(self.stalls);

        let mut merged: BTreeMap<AggLevel, Vec<ScanEvent>> =
            self.levels.iter().map(|&lvl| (lvl, Vec::new())).collect();
        for worker in self.workers.drain(..) {
            let shard_events = match worker.join() {
                Ok(events) => events,
                // Re-raise the worker's own panic payload: the root cause,
                // not a generic "worker panicked" message.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (lvl, events) in shard_events {
                merged.entry(lvl).or_default().extend(events);
            }
        }
        let merge_timer = reg.stage("detect.parallel.merge_us");
        let out = merged
            .into_iter()
            .map(|(lvl, mut events)| {
                events.sort_by_key(|e| (e.start_ms, e.source));
                (lvl, ScanReport::new(events))
            })
            .collect();
        drop(merge_timer);
        out
    }
}

/// Runs sharded multi-level detection over a complete time-sorted slice.
///
/// Produces output identical to
/// [`detect_multi`](crate::multi::detect_multi) for any shard count.
pub fn detect_multi_sharded(
    records: &[PacketRecord],
    levels: &[AggLevel],
    base: ScanDetectorConfig,
    plan: ShardPlan,
) -> BTreeMap<AggLevel, ScanReport> {
    let mut det = ShardedDetector::new(levels, base, plan);
    for r in records {
        det.observe(r);
    }
    det.finish()
}

/// Runs sharded detection over a packet stream without materializing it —
/// pair with [`lumen6_trace::codec::decode_chunks`] to keep peak memory
/// independent of trace size.
pub fn detect_multi_sharded_stream(
    records: impl IntoIterator<Item = PacketRecord>,
    levels: &[AggLevel],
    base: ScanDetectorConfig,
    plan: ShardPlan,
) -> BTreeMap<AggLevel, ScanReport> {
    let mut det = ShardedDetector::new(levels, base, plan);
    for r in records {
        det.observe(&r);
    }
    det.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::detect_multi;

    fn workload() -> Vec<PacketRecord> {
        // Several sources across distinct /48s and /64s, one spread /64,
        // a timeout split, and sub-threshold noise.
        let mut recs = Vec::new();
        for s in 0..6u64 {
            let src = ((0x2001_0db8_0000_0000u128 + u128::from(s)) << 64) | 0x1;
            for i in 0..120u64 {
                recs.push(PacketRecord::tcp(
                    s * 77 + i * 1000,
                    src,
                    0xa000 + u128::from(s) * 0x1000 + u128::from(i),
                    1,
                    22,
                    60,
                ));
            }
        }
        // Spread /64: 100 /128s, one packet each.
        for i in 0..100u64 {
            recs.push(PacketRecord::tcp(
                i * 500,
                0x2600_0000_0000_0000_0000_0000_0000_0000u128 + u128::from(i),
                0xb000 + u128::from(i),
                1,
                443,
                60,
            ));
        }
        // Second burst past the timeout for source 0.
        let src0 = (0x2001_0db8_0000_0000u128 << 64) | 0x1;
        for i in 0..110u64 {
            recs.push(PacketRecord::tcp(
                8_000_000 + i * 1000,
                src0,
                0xc000 + u128::from(i),
                1,
                22,
                60,
            ));
        }
        // Noise below min_dsts.
        for i in 0..40u64 {
            recs.push(PacketRecord::udp(
                i * 2000,
                0x99,
                0xd000 + u128::from(i),
                1,
                53,
                80,
            ));
        }
        lumen6_trace::sort_by_time(&mut recs);
        recs
    }

    #[test]
    fn identical_to_sequential_for_all_shard_counts() {
        let recs = workload();
        let seq = detect_multi(
            &recs,
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
        );
        for shards in [1, 2, 3, 4, 8, 17] {
            let par = detect_multi_sharded(
                &recs,
                &AggLevel::PAPER_LEVELS,
                ScanDetectorConfig::default(),
                ShardPlan {
                    shards,
                    batch: 64,
                    depth: 2,
                },
            );
            assert_eq!(par, seq, "{shards} shards");
        }
    }

    #[test]
    fn identical_with_dsts_and_sketch() {
        let recs = workload();
        let cfg = ScanDetectorConfig {
            keep_dsts: true,
            ..Default::default()
        };
        let seq = detect_multi(&recs, &AggLevel::PAPER_LEVELS, cfg.clone());
        let par = detect_multi_sharded(
            &recs,
            &AggLevel::PAPER_LEVELS,
            cfg,
            ShardPlan::with_shards(4),
        );
        assert_eq!(par, seq);

        let sk = ScanDetectorConfig {
            sketch: Some((64, 12).into()),
            ..Default::default()
        };
        let seq = detect_multi(&recs, &[AggLevel::L64], sk.clone());
        let par = detect_multi_sharded(&recs, &[AggLevel::L64], sk, ShardPlan::with_shards(3));
        assert_eq!(par, seq);
    }

    #[test]
    fn streaming_entry_point_matches() {
        let recs = workload();
        let seq = detect_multi(
            &recs,
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
        );
        let par = detect_multi_sharded_stream(
            recs.iter().copied(),
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::with_shards(2),
        );
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_stream() {
        let out = detect_multi_sharded(
            &[],
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::default(),
        );
        assert_eq!(out.len(), 3);
        assert!(out.values().all(|r| r.scans() == 0));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let det = ShardedDetector::new(
            &[AggLevel::L64],
            ScanDetectorConfig::default(),
            ShardPlan {
                shards: 0,
                batch: 0,
                depth: 0,
            },
        );
        assert_eq!(det.shards(), 1);
        let out = det.finish();
        assert_eq!(out[&AggLevel::L64].scans(), 0);
    }

    #[test]
    fn observed_counts_routed_packets() {
        let recs = workload();
        let mut det = ShardedDetector::new(
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::with_shards(2),
        );
        for r in &recs {
            det.observe(r);
        }
        assert_eq!(det.observed(), recs.len() as u64);
        det.finish();
    }

    #[test]
    fn routing_is_deterministic_and_level_consistent() {
        // All packets whose /48s are equal must land on the same shard when
        // /48 is the coarsest level.
        let det = ShardedDetector::new(
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::with_shards(7),
        );
        let base: u128 = 0x2001_0db8_0001_0000_0000_0000_0000_0000;
        let first = det.shard_of(base);
        for host in 1..2_000u128 {
            assert_eq!(det.shard_of(base | host), first);
            assert_eq!(det.shard_of(base | (host << 64)), first);
        }
        det.finish();
    }
}
