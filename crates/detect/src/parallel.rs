//! Sharded parallel multi-level scan detection.
//!
//! Eventization state is keyed by the *aggregated* source prefix, which
//! makes detection embarrassingly parallel across sources: partition the
//! packet stream by source prefix, run an independent
//! [`MultiLevelDetector`] per partition, and merge. The partition key is the
//! **coarsest** configured aggregation level — two addresses equal at a
//! finer level are necessarily equal at every coarser one, so hashing the
//! coarsest prefix routes all packets that share state at *any* level to
//! the same shard. Within a shard packets arrive in stream order (one FIFO
//! channel per shard), so each per-source run accumulates exactly as it
//! would sequentially.
//!
//! The unit of work shipped to a shard is a columnar
//! [`RecordBatch`] sub-batch, not a rowified `Vec<PacketRecord>`: the
//! router computes the routing key over the `src` column in one pass
//! ([`kernels::route_column`](crate::kernels::route_column)), scatters rows
//! column-to-column into per-shard staging batches
//! ([`RecordBatch::push_from`]), and each worker feeds the sub-batch
//! straight into its backend's grouped
//! [`observe_batch`](MultiLevelDetector::observe_batch) — so the columnar
//! decode layout survives end to end and the per-shard FxHash run state
//! stays hot. Drained sub-batches are returned through a recycle channel
//! and reissued as staging buffers, so the steady-state router allocates
//! nothing.
//!
//! The merge is deterministic: per level, `(start_ms, source)` is unique —
//! one source's runs have distinct start times and distinct sources are
//! distinct keys — so sorting the concatenated shard outputs by that key is
//! a total order, independent of shard count and thread scheduling. The
//! result is byte-identical to [`detect_multi`](crate::multi::detect_multi)
//! (a property-tested invariant, see `crates/detect/tests/`).
//!
//! ```
//! use lumen6_detect::parallel::{detect_multi_sharded, ShardPlan};
//! use lumen6_detect::{AggLevel, ScanDetectorConfig};
//! use lumen6_trace::PacketRecord;
//!
//! let recs: Vec<PacketRecord> = (0..200u64)
//!     .map(|i| PacketRecord::tcp(i * 1000, 7, 0xd000 + i as u128, 1, 22, 60))
//!     .collect();
//! let reports = detect_multi_sharded(
//!     &recs,
//!     &AggLevel::PAPER_LEVELS,
//!     ScanDetectorConfig::default(),
//!     ShardPlan::with_shards(4),
//! );
//! assert_eq!(reports[&AggLevel::L128].scans(), 1);
//! ```

use crate::aggregate::AggLevel;
use crate::detector::ScanDetectorConfig;
use crate::event::{ScanEvent, ScanReport};
use crate::kernels::{route, route_column};
use crate::multi::MultiLevelDetector;
use crate::snapshot::{LevelState, SnapshotError};
use lumen6_obs::{Gauge, Histogram, MetricsRegistry};
use lumen6_trace::{PacketRecord, RecordBatch};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Control-plane message to a shard worker. Besides packet sub-batches, the
/// router can ask workers to garbage-collect idle runs or to report their
/// serializable state mid-stream (for checkpointing) without tearing the
/// pipeline down.
enum ShardMsg {
    /// A columnar sub-batch of packets to observe, in stream order. The
    /// worker returns the emptied batch through the recycle channel.
    Batch(RecordBatch),
    /// Close runs idle since before `now - timeout` (see
    /// [`MultiLevelDetector::flush_idle`]).
    FlushIdle(u64),
    /// Send the worker's per-level state back through the provided channel.
    Snapshot(SyncSender<Vec<LevelState>>),
}

/// How a sharded detection run is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of worker shards. Clamped to at least 1.
    pub shards: usize,
    /// Packets per sub-batch handed to a shard channel. Batching amortizes
    /// channel synchronization; the value does not affect results.
    pub batch: usize,
    /// Batches allowed in flight per shard before the router blocks.
    /// Bounds pipeline memory to roughly
    /// `shards * depth * batch * size_of::<PacketRecord>()`.
    pub depth: usize,
}

impl Default for ShardPlan {
    /// One shard per available hardware thread.
    fn default() -> Self {
        ShardPlan::with_shards(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        )
    }
}

impl ShardPlan {
    /// A plan with an explicit shard count and default batching.
    pub fn with_shards(shards: usize) -> Self {
        ShardPlan {
            shards: shards.max(1),
            batch: 4096,
            depth: 4,
        }
    }
}

/// Sharded multi-level detector with the same push interface as
/// [`MultiLevelDetector`]: feed time-ordered packets via
/// [`observe`](Self::observe) or columnar batches via
/// [`observe_batch`](Self::observe_batch), then [`finish`](Self::finish).
///
/// Worker threads are spawned on construction and joined by `finish`;
/// dropping without finishing shuts the workers down and discards results.
#[derive(Debug)]
pub struct ShardedDetector {
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<BTreeMap<AggLevel, Vec<ScanEvent>>>>,
    /// Per-shard columnar staging buffers; swapped against a spare (never
    /// reallocated) when full.
    buffers: Vec<RecordBatch>,
    /// Free list of empty sub-batches. Workers return drained batches
    /// through `recycle`; the router refills this list from it before ever
    /// allocating a fresh batch.
    spares: Vec<RecordBatch>,
    recycle: Receiver<RecordBatch>,
    /// Scratch for the columnar routing kernel, reused across batches.
    routes: Vec<u32>,
    /// Per-shard row-index scratch for the column-wise scatter, reused
    /// across batches.
    shard_idxs: Vec<Vec<u32>>,
    levels: Vec<AggLevel>,
    coarsest: AggLevel,
    batch: usize,
    observed: u64,
    // Telemetry accumulated locally (plain integers on the hot path) and
    // flushed to the global registry at flush windows or in `finish`.
    routed: Vec<u64>,
    window_routed: Vec<u64>,
    batches_sent: u64,
    stalls: u64,
    /// Rows per sub-batch actually shipped (`detect.shard.batch_rows`).
    batch_rows: Histogram,
    /// Max/mean routed per shard over the last flush window, in permille
    /// (`detect.shard.imbalance`; 1000 = perfectly balanced).
    imbalance: Gauge,
}

impl ShardedDetector {
    /// Spawns `plan.shards` workers, each owning a [`MultiLevelDetector`]
    /// over `levels` with the shared base configuration.
    pub fn new(levels: &[AggLevel], base: ScanDetectorConfig, plan: ShardPlan) -> Self {
        let shards = plan.shards.max(1);
        Self::build(levels, base, plan, vec![None; shards], 0)
    }

    /// Rebuilds a sharded detector from a uniform per-level snapshot (as
    /// produced by [`state`](Self::state), [`MultiLevelDetector::state`],
    /// or [`ScanDetector::state`](crate::ScanDetector::state)). The shard
    /// count may differ from the snapshotting run: open runs and pending
    /// events are re-partitioned by the deterministic routing hash, which
    /// keys on the coarsest-level prefix and therefore lands every run on
    /// one owning shard regardless of shard count.
    pub fn from_state(states: &[LevelState], plan: ShardPlan) -> Result<Self, SnapshotError> {
        let base = states
            .first()
            .map(|s| s.config.clone())
            .ok_or_else(|| SnapshotError("snapshot has no levels".into()))?;
        let levels: Vec<AggLevel> = states.iter().map(|s| s.config.agg).collect();
        let shards = plan.shards.max(1);
        let coarsest = levels.iter().copied().min().unwrap_or(AggLevel::L128);

        // Empty per-shard per-level skeletons, then deal out runs and
        // pending events by routing hash. Counters are whole-stream values,
        // not per-shard state, so they ride on shard 0 and re-sum on the
        // next snapshot/finish.
        let mut parts: Vec<Vec<LevelState>> = (0..shards)
            .map(|_| {
                states
                    .iter()
                    .map(|s| LevelState {
                        config: s.config.clone(),
                        observed: 0,
                        runs_opened: 0,
                        runs: Vec::new(),
                        pending: Vec::new(),
                    })
                    .collect()
            })
            .collect();
        for (li, st) in states.iter().enumerate() {
            parts[0][li].observed = st.observed;
            parts[0][li].runs_opened = st.runs_opened;
            for run in &st.runs {
                let sh = route(coarsest, shards, run.source.bits());
                parts[sh][li].runs.push(run.clone());
            }
            for e in &st.pending {
                let sh = route(coarsest, shards, e.source.bits());
                parts[sh][li].pending.push(e.clone());
            }
        }
        let observed = states.first().map_or(0, |s| s.observed);
        Ok(Self::build(
            &levels,
            base,
            plan,
            parts.into_iter().map(Some).collect(),
            observed,
        ))
    }

    fn build(
        levels: &[AggLevel],
        base: ScanDetectorConfig,
        plan: ShardPlan,
        initial: Vec<Option<Vec<LevelState>>>,
        observed: u64,
    ) -> Self {
        let shards = plan.shards.max(1);
        debug_assert_eq!(initial.len(), shards);
        let coarsest = levels.iter().copied().min().unwrap_or(AggLevel::L128);
        let batch = plan.batch.max(1);
        // lumen6: allow(L009, recycle channel is bounded by construction: batches in circulation never exceed shards*(depth+1), pinned by staging_buffers_are_recycled_not_reallocated)
        let (recycle_tx, recycle) = channel::<RecordBatch>();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for init in initial {
            let (tx, rx) = sync_channel::<ShardMsg>(plan.depth.max(1));
            let levels = levels.to_vec();
            let base = base.clone();
            let recycle_tx = recycle_tx.clone();
            workers.push(std::thread::spawn(move || {
                let started = Instant::now();
                let mut det = match init {
                    Some(states) => MultiLevelDetector::from_state(&states),
                    None => MultiLevelDetector::new(&levels, base),
                };
                while let Ok(msg) = rx.recv() {
                    match msg {
                        // The columnar batch path: the sub-batch feeds the
                        // backend's grouped observe_batch directly, then
                        // goes back to the router for reuse (send fails
                        // only after the router is gone — nothing to
                        // recycle to, so the batch is simply dropped).
                        ShardMsg::Batch(mut batch) => {
                            det.observe_batch(&batch);
                            batch.clear();
                            let _ = recycle_tx.send(batch);
                        }
                        ShardMsg::FlushIdle(now_ms) => det.flush_idle(now_ms),
                        ShardMsg::Snapshot(reply) => {
                            let _ = reply.send(det.state());
                        }
                    }
                }
                let out: BTreeMap<AggLevel, Vec<ScanEvent>> = det
                    .finish()
                    .into_iter()
                    .map(|(lvl, report)| (lvl, report.events))
                    .collect();
                MetricsRegistry::global()
                    .histogram("detect.parallel.worker_wall_us")
                    .record_duration(started.elapsed());
                out
            }));
            senders.push(tx);
        }
        let reg = MetricsRegistry::global();
        ShardedDetector {
            senders,
            workers,
            buffers: (0..shards)
                .map(|_| RecordBatch::with_capacity(batch))
                .collect(),
            spares: Vec::new(),
            recycle,
            routes: Vec::new(),
            shard_idxs: vec![Vec::new(); shards],
            levels: levels.to_vec(),
            coarsest,
            batch,
            observed,
            routed: vec![0; shards],
            window_routed: vec![0; shards],
            batches_sent: 0,
            stalls: 0,
            batch_rows: reg.histogram("detect.shard.batch_rows"),
            imbalance: reg.gauge("detect.shard.imbalance"),
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The configured aggregation levels.
    pub fn levels(&self) -> &[AggLevel] {
        &self.levels
    }

    /// Number of packets routed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The shard owning all state for `src` (and every source sharing its
    /// coarsest-level prefix).
    #[inline]
    fn shard_of(&self, src: u128) -> usize {
        route(self.coarsest, self.senders.len(), src)
    }

    /// Routes one packet to its owning shard. Packets must arrive in
    /// non-decreasing time order, as for the sequential detectors.
    pub fn observe(&mut self, r: &PacketRecord) {
        self.observed += 1;
        let shard = self.shard_of(r.src);
        self.routed[shard] += 1;
        self.window_routed[shard] += 1;
        self.buffers[shard].push(*r);
        if self.buffers[shard].len() >= self.batch {
            self.flush_shard(shard);
        }
    }

    /// Routes a columnar batch to the owning shards: one
    /// [`route_column`] pass over the `src` column (memoized for
    /// consecutive same-source rows), a per-shard row-index build, then a
    /// column-wise gather into the per-shard staging batches
    /// ([`RecordBatch::extend_from_indices`]) — writes stay contiguous per
    /// column and no `PacketRecord` is materialized on the way. When the
    /// whole batch routes to one shard (run-clustered traffic), the
    /// scatter degenerates to seven contiguous column copies. Results are
    /// identical to calling [`observe`](Self::observe) per record; staged
    /// sub-batches may briefly exceed `ShardPlan::batch` by up to one
    /// input batch before they flush.
    pub fn observe_batch(&mut self, batch: &RecordBatch) {
        let mut routes = std::mem::take(&mut self.routes);
        route_column(batch.src(), self.coarsest, self.senders.len(), &mut routes);
        let mut idxs = std::mem::take(&mut self.shard_idxs);
        let uniform = match routes.first() {
            Some(&f) if routes.iter().all(|&s| s == f) => Some(f as usize),
            _ => None,
        };
        if let Some(shard) = uniform {
            self.routed[shard] += batch.len() as u64;
            self.window_routed[shard] += batch.len() as u64;
            self.buffers[shard].extend_from_batch(batch);
            if self.buffers[shard].len() >= self.batch {
                self.flush_shard(shard);
            }
        } else {
            for (i, &shard) in routes.iter().enumerate() {
                idxs[shard as usize].push(i as u32);
            }
            for (shard, rows) in idxs.iter_mut().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let n = rows.len() as u64;
                self.routed[shard] += n;
                self.window_routed[shard] += n;
                self.buffers[shard].extend_from_indices(batch, rows);
                rows.clear();
                if self.buffers[shard].len() >= self.batch {
                    self.flush_shard(shard);
                }
            }
        }
        self.observed += batch.len() as u64;
        self.routes = routes;
        self.shard_idxs = idxs;
    }

    /// A shard's channel can only close while the pipeline is live if its
    /// worker panicked. Joining the dead worker retrieves the original
    /// payload so the root cause — not a secondary send/recv error —
    /// surfaces at the call site that observed the failure.
    fn propagate_worker_panic(&mut self, shard: usize) -> ! {
        if shard < self.workers.len() {
            if let Err(payload) = self.workers.remove(shard).join() {
                std::panic::resume_unwind(payload);
            }
        }
        // lumen6: allow(L001, a live shard channel closed but its worker exited cleanly: unreachable by construction, and the router has no error channel to its caller)
        panic!("shard {shard} channel closed but its worker exited cleanly");
    }

    /// An empty sub-batch to stage into: refills the free list from the
    /// workers' recycle channel first, and only allocates when the pipeline
    /// has fewer batches in circulation than it needs (start-up, or every
    /// shard's depth fully in flight).
    fn take_spare(&mut self) -> RecordBatch {
        while let Ok(b) = self.recycle.try_recv() {
            debug_assert!(b.is_empty(), "workers recycle cleared batches");
            self.spares.push(b);
        }
        self.spares
            .pop()
            .unwrap_or_else(|| RecordBatch::with_capacity(self.batch))
    }

    /// Ships shard `shard`'s staged sub-batch, swapping in a recycled spare
    /// so staging never reallocates.
    fn flush_shard(&mut self, shard: usize) {
        let spare = self.take_spare();
        let full = std::mem::replace(&mut self.buffers[shard], spare);
        self.batch_rows.record(full.len() as u64);
        self.send_batch(shard, full);
    }

    /// Sends one sub-batch to a shard, counting a stall when the bounded
    /// channel is full and the router has to block on the worker.
    fn send_batch(&mut self, shard: usize, batch: RecordBatch) {
        self.batches_sent += 1;
        match self.senders[shard].try_send(ShardMsg::Batch(batch)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                self.stalls += 1;
                if self.senders[shard].send(msg).is_err() {
                    self.propagate_worker_panic(shard);
                }
            }
            Err(TrySendError::Disconnected(_)) => self.propagate_worker_panic(shard),
        }
    }

    /// Flushes buffered sub-batches so every worker has seen the stream up
    /// to the current position. Must precede any control message whose
    /// effect depends on stream position (flush-idle, snapshot). Ends a
    /// flush window: publishes the routing-skew gauge for the window just
    /// closed.
    fn drain_buffers(&mut self) {
        for shard in 0..self.buffers.len() {
            if !self.buffers[shard].is_empty() {
                self.flush_shard(shard);
            }
        }
        self.publish_imbalance();
    }

    /// Publishes `detect.shard.imbalance` — max/mean packets routed per
    /// shard over the window since the last publish, in permille (1000 =
    /// perfectly balanced) — and starts a new window. Windows with no
    /// traffic leave the gauge untouched.
    fn publish_imbalance(&mut self) {
        let total: u64 = self.window_routed.iter().sum();
        if total == 0 {
            return;
        }
        let max = self.window_routed.iter().copied().fold(0, u64::max);
        let mean = total as f64 / self.window_routed.len() as f64;
        self.imbalance
            .set((max as f64 / mean * 1000.0).round() as i64);
        for w in &mut self.window_routed {
            *w = 0;
        }
    }

    /// Closes runs idle since before `now - timeout` on every shard.
    /// Report-neutral, like [`MultiLevelDetector::flush_idle`].
    pub fn flush_idle(&mut self, now_ms: u64) {
        self.drain_buffers();
        for shard in 0..self.senders.len() {
            if self.senders[shard]
                .send(ShardMsg::FlushIdle(now_ms))
                .is_err()
            {
                self.propagate_worker_panic(shard);
            }
        }
    }

    /// Serializable snapshot of the complete pipeline state, merged across
    /// shards into the same uniform per-level form the sequential detectors
    /// produce — so a sharded checkpoint restores into any backend. The
    /// pipeline keeps running afterwards.
    pub fn state(&mut self) -> Vec<LevelState> {
        self.drain_buffers();
        // One rendezvous channel per shard; workers reply with their state
        // once they have consumed everything queued before the request.
        let mut replies = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (reply_tx, reply_rx) = sync_channel(1);
            if self.senders[shard]
                .send(ShardMsg::Snapshot(reply_tx))
                .is_err()
            {
                self.propagate_worker_panic(shard);
            }
            replies.push(reply_rx);
        }
        let mut merged: Option<Vec<LevelState>> = None;
        for (shard, rx) in replies.into_iter().enumerate() {
            let Ok(states) = rx.recv() else {
                self.propagate_worker_panic(shard)
            };
            match &mut merged {
                None => merged = Some(states),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(states) {
                        // lumen6: allow(L001, every shard detector is built from the single config captured in new(), so a merge mismatch cannot occur)
                        a.merge(b).expect("shards share one config");
                    }
                }
            }
        }
        let mut out = merged.unwrap_or_default();
        for lvl in &mut out {
            lvl.normalize();
        }
        out
    }

    /// Ends the stream: flushes buffered sub-batches, joins the workers,
    /// and merges per-shard events into per-level reports sorted by
    /// `(start_ms, source)`.
    pub fn finish(mut self) -> BTreeMap<AggLevel, ScanReport> {
        self.drain_buffers();
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();

        let reg = MetricsRegistry::global();
        for (shard, &n) in self.routed.iter().enumerate() {
            reg.counter(&format!("detect.parallel.shard.{shard}.packets_routed"))
                .add(n);
        }
        reg.counter("detect.parallel.batches_sent")
            .add(self.batches_sent);
        reg.counter("detect.parallel.channel_full_stalls")
            .add(self.stalls);

        let mut merged: BTreeMap<AggLevel, Vec<ScanEvent>> =
            self.levels.iter().map(|&lvl| (lvl, Vec::new())).collect();
        for worker in self.workers.drain(..) {
            let shard_events = match worker.join() {
                Ok(events) => events,
                // Re-raise the worker's own panic payload: the root cause,
                // not a generic "worker panicked" message.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (lvl, events) in shard_events {
                merged.entry(lvl).or_default().extend(events);
            }
        }
        let merge_timer = reg.stage("detect.parallel.merge_us");
        let out = merged
            .into_iter()
            .map(|(lvl, mut events)| {
                events.sort_by_key(|e| (e.start_ms, e.source));
                (lvl, ScanReport::new(events))
            })
            .collect();
        drop(merge_timer);
        out
    }
}

/// Runs sharded multi-level detection over a complete time-sorted slice.
/// Row-major input is routed per record — one fused transpose straight
/// into the per-shard columnar staging buffers, with no intermediate
/// batch. (Already-columnar input, e.g. decoded `RecordBatch` chunks,
/// should go through [`ShardedDetector::observe_batch`] instead, whose
/// vectorized route-and-scatter is the only copy on that path.) Workers
/// consume columnar sub-batches either way.
///
/// Produces output identical to
/// [`detect_multi`](crate::multi::detect_multi) for any shard count.
pub fn detect_multi_sharded(
    records: &[PacketRecord],
    levels: &[AggLevel],
    base: ScanDetectorConfig,
    plan: ShardPlan,
) -> BTreeMap<AggLevel, ScanReport> {
    let mut det = ShardedDetector::new(levels, base, plan);
    for r in records {
        det.observe(r);
    }
    det.finish()
}

/// Runs sharded detection over a packet stream without materializing it —
/// pair with [`lumen6_trace::codec::decode_chunks`] to keep peak memory
/// independent of trace size. Row-major input routes per record straight
/// into the columnar staging buffers (see [`detect_multi_sharded`]).
pub fn detect_multi_sharded_stream(
    records: impl IntoIterator<Item = PacketRecord>,
    levels: &[AggLevel],
    base: ScanDetectorConfig,
    plan: ShardPlan,
) -> BTreeMap<AggLevel, ScanReport> {
    let mut det = ShardedDetector::new(levels, base, plan);
    for r in records {
        det.observe(&r);
    }
    det.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::detect_multi;

    fn workload() -> Vec<PacketRecord> {
        // Several sources across distinct /48s and /64s, one spread /64,
        // a timeout split, and sub-threshold noise.
        let mut recs = Vec::new();
        for s in 0..6u64 {
            let src = ((0x2001_0db8_0000_0000u128 + u128::from(s)) << 64) | 0x1;
            for i in 0..120u64 {
                recs.push(PacketRecord::tcp(
                    s * 77 + i * 1000,
                    src,
                    0xa000 + u128::from(s) * 0x1000 + u128::from(i),
                    1,
                    22,
                    60,
                ));
            }
        }
        // Spread /64: 100 /128s, one packet each.
        for i in 0..100u64 {
            recs.push(PacketRecord::tcp(
                i * 500,
                0x2600_0000_0000_0000_0000_0000_0000_0000u128 + u128::from(i),
                0xb000 + u128::from(i),
                1,
                443,
                60,
            ));
        }
        // Second burst past the timeout for source 0.
        let src0 = (0x2001_0db8_0000_0000u128 << 64) | 0x1;
        for i in 0..110u64 {
            recs.push(PacketRecord::tcp(
                8_000_000 + i * 1000,
                src0,
                0xc000 + u128::from(i),
                1,
                22,
                60,
            ));
        }
        // Noise below min_dsts.
        for i in 0..40u64 {
            recs.push(PacketRecord::udp(
                i * 2000,
                0x99,
                0xd000 + u128::from(i),
                1,
                53,
                80,
            ));
        }
        lumen6_trace::sort_by_time(&mut recs);
        recs
    }

    #[test]
    fn identical_to_sequential_for_all_shard_counts() {
        let recs = workload();
        let seq = detect_multi(
            &recs,
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
        );
        for shards in [1, 2, 3, 4, 8, 17] {
            let par = detect_multi_sharded(
                &recs,
                &AggLevel::PAPER_LEVELS,
                ScanDetectorConfig::default(),
                ShardPlan {
                    shards,
                    batch: 64,
                    depth: 2,
                },
            );
            assert_eq!(par, seq, "{shards} shards");
        }
    }

    #[test]
    fn identical_with_dsts_and_sketch() {
        let recs = workload();
        let cfg = ScanDetectorConfig {
            keep_dsts: true,
            ..Default::default()
        };
        let seq = detect_multi(&recs, &AggLevel::PAPER_LEVELS, cfg.clone());
        let par = detect_multi_sharded(
            &recs,
            &AggLevel::PAPER_LEVELS,
            cfg,
            ShardPlan::with_shards(4),
        );
        assert_eq!(par, seq);

        let sk = ScanDetectorConfig {
            sketch: Some((64, 12).into()),
            ..Default::default()
        };
        let seq = detect_multi(&recs, &[AggLevel::L64], sk.clone());
        let par = detect_multi_sharded(&recs, &[AggLevel::L64], sk, ShardPlan::with_shards(3));
        assert_eq!(par, seq);
    }

    #[test]
    fn streaming_entry_point_matches() {
        let recs = workload();
        let seq = detect_multi(
            &recs,
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
        );
        let par = detect_multi_sharded_stream(
            recs.iter().copied(),
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::with_shards(2),
        );
        assert_eq!(par, seq);
    }

    #[test]
    fn row_and_batch_ingest_mix_matches_sequential() {
        // Interleaving per-record observe with columnar observe_batch must
        // land every row in the same staging buffers in stream order.
        let recs = workload();
        let seq = detect_multi(
            &recs,
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
        );
        let mut det = ShardedDetector::new(
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan {
                shards: 3,
                batch: 50,
                depth: 2,
            },
        );
        let mut staged = RecordBatch::new();
        for (i, part) in recs.chunks(37).enumerate() {
            if i % 2 == 0 {
                for r in part {
                    det.observe(r);
                }
            } else {
                staged.clear();
                staged.extend(part.iter().copied());
                det.observe_batch(&staged);
            }
        }
        assert_eq!(det.observed(), recs.len() as u64);
        assert_eq!(det.finish(), seq);
    }

    #[test]
    fn staging_buffers_are_recycled_not_reallocated() {
        // After the pipeline warms up, every shipped sub-batch comes back
        // through the recycle channel: the router should hold at most
        // shards * (depth + 1) + spares batches in circulation, and the
        // spares list should actually be fed (proving reuse, not fresh
        // allocation per flush).
        let recs = workload();
        let mut det = ShardedDetector::new(
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan {
                shards: 2,
                batch: 16,
                depth: 2,
            },
        );
        let mut staged = RecordBatch::new();
        for part in recs.chunks(64) {
            staged.clear();
            staged.extend(part.iter().copied());
            det.observe_batch(&staged);
        }
        assert!(det.batches_sent > 10, "sent {}", det.batches_sent);
        // state() is a rendezvous: workers have consumed (and recycled)
        // every sub-batch queued before it returns. The next take_spare
        // must therefore find returned batches on the free list instead of
        // allocating.
        det.state();
        let recycled = det.take_spare();
        assert!(recycled.is_empty());
        assert!(
            !det.spares.is_empty(),
            "recycle channel returned no batches to the free list"
        );
        det.finish();
    }

    #[test]
    fn empty_stream() {
        let out = detect_multi_sharded(
            &[],
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::default(),
        );
        assert_eq!(out.len(), 3);
        assert!(out.values().all(|r| r.scans() == 0));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let det = ShardedDetector::new(
            &[AggLevel::L64],
            ScanDetectorConfig::default(),
            ShardPlan {
                shards: 0,
                batch: 0,
                depth: 0,
            },
        );
        assert_eq!(det.shards(), 1);
        let out = det.finish();
        assert_eq!(out[&AggLevel::L64].scans(), 0);
    }

    #[test]
    fn observed_counts_routed_packets() {
        let recs = workload();
        let mut det = ShardedDetector::new(
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::with_shards(2),
        );
        for r in &recs {
            det.observe(r);
        }
        assert_eq!(det.observed(), recs.len() as u64);
        det.finish();
    }

    #[test]
    fn routing_is_deterministic_and_level_consistent() {
        // All packets whose /48s are equal must land on the same shard when
        // /48 is the coarsest level.
        let det = ShardedDetector::new(
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::with_shards(7),
        );
        let base: u128 = 0x2001_0db8_0001_0000_0000_0000_0000_0000;
        let first = det.shard_of(base);
        for host in 1..2_000u128 {
            assert_eq!(det.shard_of(base | host), first);
            assert_eq!(det.shard_of(base | (host << 64)), first);
        }
        det.finish();
    }

    #[test]
    fn imbalance_gauge_is_published_in_permille() {
        use lumen6_obs::MetricsRegistry;
        let recs = workload();
        let mut det = ShardedDetector::new(
            &AggLevel::PAPER_LEVELS,
            ScanDetectorConfig::default(),
            ShardPlan::with_shards(4),
        );
        let mut staged = RecordBatch::new();
        staged.extend(recs.iter().copied());
        det.observe_batch(&staged);
        det.finish();
        let g = MetricsRegistry::global()
            .gauge("detect.shard.imbalance")
            .get();
        // max/mean >= 1 by definition; a wildly skewed 4-shard split of
        // this workload would read 4000.
        assert!((1000..=4000).contains(&g), "imbalance {g}");
    }
}
