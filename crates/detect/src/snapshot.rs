//! Versioned, serializable detector state for checkpoint/resume.
//!
//! A long-running ingest (the paper's vantage point covers 15 months) must
//! survive restarts without losing the open per-source activity runs, or
//! every crash silently truncates scans in progress. This module defines a
//! *uniform* state representation — [`DetectorSnapshot`], a set of
//! per-aggregation-level [`LevelState`]s — that all three detector backends
//! ([`ScanDetector`](crate::ScanDetector),
//! [`MultiLevelDetector`](crate::multi::MultiLevelDetector), and the
//! sharded pipeline) can produce and restore from. Because the format is
//! backend-agnostic, a checkpoint taken from a sharded run can be resumed
//! sequentially and vice versa, and the shard count may change across a
//! resume: runs are re-partitioned by the deterministic routing hash at
//! restore time.
//!
//! Determinism: everything order-sensitive is sorted before serialization
//! (run lists by source, destination sets ascending), so two snapshots of
//! equal logical state serialize identically even though the live detectors
//! use hash maps internally.

use crate::aggregate::AggLevel;
use crate::detector::ScanDetectorConfig;
use crate::event::ScanEvent;
use crate::sketch::HyperLogLog;
use lumen6_addr::Ipv6Prefix;
use lumen6_trace::Transport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Snapshot format version; bumped on any incompatible layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Complete detector state: one [`LevelState`] per aggregation level, in
/// ascending level order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Per-level detector state, sorted by aggregation level.
    pub levels: Vec<LevelState>,
}

impl DetectorSnapshot {
    /// Wraps per-level states, normalizing order and stamping the version.
    pub fn new(mut levels: Vec<LevelState>) -> Self {
        levels.sort_by_key(|l| l.config.agg);
        DetectorSnapshot {
            version: SNAPSHOT_VERSION,
            levels,
        }
    }

    /// The aggregation levels present in this snapshot.
    pub fn levels(&self) -> Vec<AggLevel> {
        self.levels.iter().map(|l| l.config.agg).collect()
    }

    /// Fails unless the snapshot's version is the current one.
    pub fn check_version(&self) -> Result<(), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError(format!(
                "snapshot version {} unsupported (expected {})",
                self.version, SNAPSHOT_VERSION
            )));
        }
        Ok(())
    }
}

/// State of one single-level detector: configuration, counters, all open
/// activity runs, and scan events already closed mid-stream but not yet
/// reported.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelState {
    /// The detector's configuration (aggregation level included).
    pub config: ScanDetectorConfig,
    /// Packets observed at this level so far.
    pub observed: u64,
    /// Activity runs ever opened at this level.
    pub runs_opened: u64,
    /// Open per-source runs, sorted by source prefix.
    pub runs: Vec<RunState>,
    /// Mid-stream events closed before the snapshot, in arrival order.
    pub pending: Vec<ScanEvent>,
}

impl LevelState {
    /// Merges another shard's state at the same level into this one.
    /// Sources are disjoint across shards, so runs concatenate; counters
    /// add. Used by the sharded pipeline to produce one uniform state.
    pub fn merge(&mut self, other: LevelState) -> Result<(), SnapshotError> {
        if self.config != other.config {
            return Err(SnapshotError(format!(
                "cannot merge level states with differing configs (level {})",
                self.config.agg
            )));
        }
        self.observed += other.observed;
        self.runs_opened += other.runs_opened;
        self.runs.extend(other.runs);
        self.pending.extend(other.pending);
        Ok(())
    }

    /// Sorts runs by source — call once after all merges so the serialized
    /// form is deterministic regardless of shard scheduling.
    pub fn normalize(&mut self) {
        self.runs.sort_by_key(|r| r.source);
    }
}

/// One open activity run, the serializable twin of the detector-internal
/// `SourceRun`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunState {
    /// Aggregated source prefix owning the run.
    pub source: Ipv6Prefix,
    /// Timestamp of the run's first packet (ms).
    pub start_ms: u64,
    /// Timestamp of the run's last packet (ms).
    pub last_ms: u64,
    /// Packets accumulated.
    pub packets: u64,
    /// Distinct destination counter.
    pub dsts: CounterState,
    /// Retained destination list (when `keep_dsts`), sorted ascending.
    pub dst_list: Option<Vec<u128>>,
    /// Distinct /128-source counter within the aggregate.
    pub srcs: CounterState,
    /// Packet counts per (protocol, destination port), sorted by key.
    pub ports: Vec<((Transport, u16), u64)>,
}

/// Serializable state of a [`DistinctCounter`](crate::sketch::DistinctCounter):
/// the exact set is stored as a sorted vector so equal sets serialize
/// identically (hash-set iteration order is not deterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CounterState {
    /// Exact distinct set, sorted ascending.
    Exact(Vec<u128>),
    /// Spilled HyperLogLog sketch.
    Sketch(HyperLogLog),
}

impl From<&crate::sketch::DistinctCounter> for CounterState {
    fn from(c: &crate::sketch::DistinctCounter) -> Self {
        match c {
            crate::sketch::DistinctCounter::Exact(set) => {
                let mut v: Vec<u128> = set.iter().copied().collect();
                v.sort_unstable();
                CounterState::Exact(v)
            }
            crate::sketch::DistinctCounter::Sketch(hll) => CounterState::Sketch(hll.clone()),
        }
    }
}

impl From<&CounterState> for crate::sketch::DistinctCounter {
    fn from(s: &CounterState) -> Self {
        match s {
            CounterState::Exact(v) => {
                crate::sketch::DistinctCounter::Exact(v.iter().copied().collect())
            }
            CounterState::Sketch(hll) => crate::sketch::DistinctCounter::Sketch(hll.clone()),
        }
    }
}

/// Snapshot validation or restore failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}
