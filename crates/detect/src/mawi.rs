//! The extended Fukuda–Heidemann scan detector used on public MAWI traces
//! (paper §4).
//!
//! Operating on one capture window (MAWI publishes 15 minutes per day), a
//! source is a scan if, for some destination port, it
//!
//! 1. targets at least `min_dsts` distinct destination IPs (the paper uses
//!    100 for its large-scale definition and compares with the original 5),
//! 2. sends all of those packets to the *same* destination port,
//! 3. sends fewer than `max_pkts_per_dst` (10) packets per destination on
//!    that port, and
//! 4. has packet-length entropy below `max_len_entropy` (0.1 bits) — scan
//!    probes are uniform, real traffic is not.
//!
//! In a second step, per-port scans from the same source are merged into a
//! single multi-port scan record, mirroring the paper's methodology.

use crate::aggregate::AggLevel;
use lumen6_addr::Ipv6Prefix;
use lumen6_trace::{PacketRecord, Transport};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the MAWI-style detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MawiConfig {
    /// Source aggregation level.
    pub agg: AggLevel,
    /// Minimum distinct destination IPs per (source, port) group.
    pub min_dsts: u64,
    /// A source must send strictly fewer than this many packets per
    /// destination IP on the same port.
    pub max_pkts_per_dst: u64,
    /// Maximum Shannon entropy (bits) of the packet-length distribution.
    pub max_len_entropy: f64,
}

impl Default for MawiConfig {
    fn default() -> Self {
        MawiConfig {
            agg: AggLevel::L64,
            min_dsts: 100,
            max_pkts_per_dst: 10,
            max_len_entropy: 0.1,
        }
    }
}

impl MawiConfig {
    /// The paper's large-scale configuration at an aggregation level.
    pub fn paper(agg: AggLevel) -> Self {
        MawiConfig {
            agg,
            ..Default::default()
        }
    }

    /// The original Fukuda–Heidemann destination threshold (5), for the
    /// comparison in Fig. 5 / Appendix A.2.
    pub fn loose(agg: AggLevel) -> Self {
        MawiConfig {
            agg,
            min_dsts: 5,
            ..Default::default()
        }
    }
}

/// A detected (and per-source merged) MAWI scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MawiScan {
    /// Scan source at the configured aggregation.
    pub source: Ipv6Prefix,
    /// Qualifying (protocol, destination port) groups, sorted.
    pub services: Vec<(Transport, u16)>,
    /// Total packets across qualifying groups.
    pub packets: u64,
    /// Distinct destinations across qualifying groups.
    pub distinct_dsts: u64,
    /// First packet timestamp across qualifying groups.
    pub start_ms: u64,
    /// Last packet timestamp across qualifying groups.
    pub end_ms: u64,
}

impl MawiScan {
    /// Whether any qualifying group is ICMPv6 (§4 "ICMPv6 scans").
    pub fn is_icmpv6(&self) -> bool {
        self.services.iter().any(|(p, _)| *p == Transport::Icmpv6)
    }
}

/// Shannon entropy (bits) of a value histogram.
pub fn shannon_entropy<I: IntoIterator<Item = u64>>(counts: I) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Per-(source, service) accumulation.
#[derive(Debug, Default)]
struct Group {
    per_dst: HashMap<u128, u64>,
    len_hist: HashMap<u16, u64>,
    packets: u64,
    start_ms: u64,
    end_ms: u64,
}

/// The MAWI-style detector. Stateless between windows: construct once, call
/// [`MawiDetector::detect`] per capture window.
///
/// ```
/// use lumen6_detect::{MawiDetector, MawiConfig, AggLevel};
/// use lumen6_trace::PacketRecord;
///
/// // A clean same-port scan: constant probe size, one packet per target.
/// let window: Vec<PacketRecord> = (0..150u64)
///     .map(|i| PacketRecord::tcp(i * 10, 0x2001, 0xd000 + i as u128, 1, 22, 60))
///     .collect();
/// let scans = MawiDetector::new(MawiConfig::paper(AggLevel::L64)).detect(&window);
/// assert_eq!(scans.len(), 1);
/// assert_eq!(scans[0].services, vec![(lumen6_trace::Transport::Tcp, 22)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MawiDetector {
    config: MawiConfig,
}

impl MawiDetector {
    /// Creates a detector.
    pub fn new(config: MawiConfig) -> Self {
        MawiDetector { config }
    }

    /// Runs detection over one capture window and returns per-source merged
    /// scans, sorted by source.
    pub fn detect(&self, records: &[PacketRecord]) -> Vec<MawiScan> {
        let mut groups: HashMap<(Ipv6Prefix, Transport, u16), Group> = HashMap::new();
        for r in records {
            let s = self.config.agg.source_of(r.src);
            let g = groups
                .entry((s, r.proto, r.dport))
                .or_insert_with(|| Group {
                    start_ms: r.ts_ms,
                    end_ms: r.ts_ms,
                    ..Default::default()
                });
            *g.per_dst.entry(r.dst).or_default() += 1;
            *g.len_hist.entry(r.len).or_default() += 1;
            g.packets += 1;
            g.start_ms = g.start_ms.min(r.ts_ms);
            g.end_ms = g.end_ms.max(r.ts_ms);
        }

        // Qualify per-port groups, then merge per source with an exact
        // destination union (a multi-port scanner usually probes the same
        // host set on every port — summing would double-count).
        let mut merged: HashMap<Ipv6Prefix, (MawiScan, std::collections::HashSet<u128>)> =
            HashMap::new();
        for ((source, proto, port), g) in groups {
            if (g.per_dst.len() as u64) < self.config.min_dsts {
                continue;
            }
            if g.per_dst
                .values()
                .any(|&n| n >= self.config.max_pkts_per_dst)
            {
                continue;
            }
            if shannon_entropy(g.len_hist.values().copied()) >= self.config.max_len_entropy {
                continue;
            }
            let (entry, union) = merged.entry(source).or_insert_with(|| {
                (
                    MawiScan {
                        source,
                        services: Vec::new(),
                        packets: 0,
                        distinct_dsts: 0,
                        start_ms: g.start_ms,
                        end_ms: g.end_ms,
                    },
                    std::collections::HashSet::new(),
                )
            });
            entry.services.push((proto, port));
            entry.packets += g.packets;
            union.extend(g.per_dst.keys().copied());
            entry.start_ms = entry.start_ms.min(g.start_ms);
            entry.end_ms = entry.end_ms.max(g.end_ms);
        }

        let mut out: Vec<MawiScan> = merged
            .into_values()
            .map(|(mut scan, union)| {
                scan.distinct_dsts = union.len() as u64;
                scan.services.sort_unstable();
                scan
            })
            .collect();
        out.sort_by_key(|s| s.source);
        out
    }

    /// The active configuration.
    pub fn config(&self) -> &MawiConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean same-port scan: one packet per destination, constant length.
    fn clean_scan(src: u128, n: u64, dport: u16, len: u16) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::tcp(i * 10, src, 0xd000 + i as u128, 1, dport, len))
            .collect()
    }

    fn det(min_dsts: u64) -> MawiDetector {
        MawiDetector::new(MawiConfig {
            agg: AggLevel::L128,
            min_dsts,
            ..Default::default()
        })
    }

    #[test]
    fn clean_scan_detected() {
        let recs = clean_scan(1, 150, 22, 60);
        let scans = det(100).detect(&recs);
        assert_eq!(scans.len(), 1);
        assert_eq!(scans[0].distinct_dsts, 150);
        assert_eq!(scans[0].services, vec![(Transport::Tcp, 22)]);
        assert!(!scans[0].is_icmpv6());
    }

    #[test]
    fn below_threshold_not_detected() {
        let recs = clean_scan(1, 99, 22, 60);
        assert!(det(100).detect(&recs).is_empty());
        // But the loose (5-destination) definition catches it — the Fig. 5
        // order-of-magnitude effect.
        assert_eq!(det(5).detect(&recs).len(), 1);
    }

    #[test]
    fn varying_length_rejected_by_entropy() {
        // Same-port, many destinations, but every packet a different size:
        // looks like real traffic, not probes.
        let recs: Vec<PacketRecord> = (0..150u64)
            .map(|i| PacketRecord::tcp(i * 10, 1, 0xd000 + i as u128, 1, 443, 60 + (i % 64) as u16))
            .collect();
        assert!(det(100).detect(&recs).is_empty());
    }

    #[test]
    fn near_constant_length_accepted() {
        // 99.5% one size — entropy ≈ 0.045 bits < 0.1.
        let mut recs = clean_scan(1, 995, 22, 60);
        for i in 0..5u64 {
            recs.push(PacketRecord::tcp(i, 1, 0xf000 + i as u128, 1, 22, 72));
        }
        let scans = det(100).detect(&recs);
        assert_eq!(scans.len(), 1);
    }

    #[test]
    fn retransmission_heavy_source_rejected() {
        // 10 packets per destination on the same port: at the cap → reject.
        let mut recs = Vec::new();
        for d in 0..150u64 {
            for k in 0..10u64 {
                recs.push(PacketRecord::tcp(
                    d * 100 + k,
                    1,
                    0xd000 + d as u128,
                    1,
                    25,
                    60,
                ));
            }
        }
        assert!(det(100).detect(&recs).is_empty());
    }

    #[test]
    fn nine_packets_per_dst_accepted() {
        let mut recs = Vec::new();
        for d in 0..150u64 {
            for k in 0..9u64 {
                recs.push(PacketRecord::tcp(
                    d * 100 + k,
                    1,
                    0xd000 + d as u128,
                    1,
                    25,
                    60,
                ));
            }
        }
        assert_eq!(det(100).detect(&recs).len(), 1);
    }

    #[test]
    fn multi_port_scans_merged_per_source() {
        let mut recs = clean_scan(1, 120, 22, 60);
        recs.extend(clean_scan(1, 130, 80, 60).into_iter().map(|mut r| {
            r.ts_ms += 100_000;
            r
        }));
        let scans = det(100).detect(&recs);
        assert_eq!(scans.len(), 1, "merged into one scan record");
        assert_eq!(
            scans[0].services,
            vec![(Transport::Tcp, 22), (Transport::Tcp, 80)]
        );
        assert_eq!(scans[0].packets, 250);
        // Destination union, not sum: both port groups probed the same host
        // range (the 120-target set is a subset of the 130-target set).
        assert_eq!(scans[0].distinct_dsts, 130);
    }

    #[test]
    fn distinct_sources_stay_distinct() {
        let mut recs = clean_scan(1, 120, 22, 60);
        recs.extend(clean_scan(2, 120, 22, 60));
        let scans = det(100).detect(&recs);
        assert_eq!(scans.len(), 2);
    }

    #[test]
    fn icmpv6_scans_flagged() {
        let recs: Vec<PacketRecord> = (0..200u64)
            .map(|i| PacketRecord::icmpv6_echo(i * 10, 9, 0xe000 + i as u128, 96))
            .collect();
        let scans = det(100).detect(&recs);
        assert_eq!(scans.len(), 1);
        assert!(scans[0].is_icmpv6());
    }

    #[test]
    fn source_aggregation_applies() {
        // 120 packets spread over 120 /128s of one /64, one per destination.
        let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let recs: Vec<PacketRecord> = (0..120u64)
            .map(|i| PacketRecord::tcp(i * 10, base + i as u128, 0xd000 + i as u128, 1, 22, 60))
            .collect();
        assert!(det(100).detect(&recs).is_empty(), "invisible at /128");
        let at64 = MawiDetector::new(MawiConfig::paper(AggLevel::L64)).detect(&recs);
        assert_eq!(at64.len(), 1);
    }

    #[test]
    fn entropy_function_basics() {
        assert_eq!(shannon_entropy([100]), 0.0);
        assert!((shannon_entropy([50, 50]) - 1.0).abs() < 1e-12);
        assert!((shannon_entropy([25, 25, 25, 25]) - 2.0).abs() < 1e-12);
        assert_eq!(shannon_entropy([]), 0.0);
        assert_eq!(shannon_entropy([0, 0, 10]), 0.0);
    }

    #[test]
    fn time_bounds_cover_merged_groups() {
        let mut recs = clean_scan(1, 120, 22, 60);
        let mut later = clean_scan(1, 120, 23, 60);
        for r in &mut later {
            r.ts_ms += 500_000;
        }
        recs.extend(later);
        let scans = det(100).detect(&recs);
        assert_eq!(scans[0].start_ms, 0);
        assert_eq!(scans[0].end_ms, 500_000 + 119 * 10);
    }
}
