//! Traffic-feature fingerprinting of scans — actor attribution beyond
//! source prefixes.
//!
//! The paper's discussion (§5) concludes that IDSes "may have to rely on
//! traffic features and other header fields to fingerprint individual
//! scans and hosts", and Appendix A.4 performs exactly such an inference by
//! hand: two /64s in *different* /48s were attributed to one actor because
//! their port coverage, in-DNS fractions, activity spans, and target sets
//! almost coincide. This module mechanizes that reasoning:
//!
//! - [`Fingerprint::of`] reduces a [`ScanEvent`] to a feature vector
//!   (volume, destination spread, port behavior, probe size, target IID
//!   structure);
//! - [`distance`] compares fingerprints on a scale-free footing;
//! - [`cluster`] greedily groups events whose fingerprints are closer than
//!   a threshold — events of one scanning entity cluster together even
//!   when their source prefixes share nothing.

use crate::event::ScanEvent;
use lumen6_addr::hamming_weight_iid;
use serde::{Deserialize, Serialize};

/// A scale-free feature vector of one scan event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// log₂(packets).
    pub log_packets: f64,
    /// log₂(distinct destinations).
    pub log_dsts: f64,
    /// Packets per destination (repeat factor).
    pub pkts_per_dst: f64,
    /// log₂(1 + number of targeted services).
    pub log_ports: f64,
    /// Fraction of packets on the busiest port.
    pub top_port_frac: f64,
    /// Mean Hamming weight of target IIDs (0 when destinations were not
    /// retained): separates hitlist-driven from random targeting.
    pub target_iid_weight: f64,
    /// Mean distinct targets per destination /64 (0 when unavailable):
    /// separates neighborhood-probing from spread targeting.
    pub targets_per_64: f64,
}

impl Fingerprint {
    /// Extracts the fingerprint of an event.
    pub fn of(event: &ScanEvent) -> Fingerprint {
        let top = event.ports.iter().map(|&(_, n)| n).max().unwrap_or(0) as f64;
        let (weight, per64) = match event.dsts.as_ref() {
            Some(dsts) if !dsts.is_empty() => {
                let w = dsts
                    .iter()
                    .map(|&d| f64::from(hamming_weight_iid(d)))
                    .sum::<f64>()
                    / dsts.len() as f64;
                let mut nets: Vec<u64> = dsts.iter().map(|&d| (d >> 64) as u64).collect();
                nets.sort_unstable();
                nets.dedup();
                (w, dsts.len() as f64 / nets.len() as f64)
            }
            _ => (0.0, 0.0),
        };
        Fingerprint {
            log_packets: (event.packets.max(1) as f64).log2(),
            log_dsts: (event.distinct_dsts.max(1) as f64).log2(),
            pkts_per_dst: event.packets as f64 / event.distinct_dsts.max(1) as f64,
            log_ports: (1.0 + event.num_ports() as f64).log2(),
            top_port_frac: if event.packets > 0 {
                top / event.packets as f64
            } else {
                0.0
            },
            target_iid_weight: weight,
            targets_per_64: per64,
        }
    }

    /// The feature vector, normalized to comparable scales.
    fn vector(&self) -> [f64; 7] {
        [
            self.log_packets / 20.0,
            self.log_dsts / 20.0,
            (self.pkts_per_dst.min(16.0)) / 16.0,
            self.log_ports / 16.0,
            self.top_port_frac,
            self.target_iid_weight / 64.0,
            (self.targets_per_64.min(16.0)) / 16.0,
        ]
    }
}

/// Euclidean distance between normalized fingerprints (0 ≈ same behavior).
pub fn distance(a: &Fingerprint, b: &Fingerprint) -> f64 {
    a.vector()
        .iter()
        .zip(b.vector().iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// A cluster of behaviorally similar scan events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Indices into the input event slice.
    pub members: Vec<usize>,
    /// Centroid fingerprint.
    pub centroid: Fingerprint,
}

/// Greedy centroid clustering: each event joins the first cluster whose
/// centroid is within `threshold`, else founds a new one. Order-dependent
/// but deterministic; events should be in canonical (start, source) order.
pub fn cluster(events: &[ScanEvent], threshold: f64) -> Vec<Cluster> {
    let mut clusters: Vec<(Vec<usize>, Vec<f64>)> = Vec::new();
    let prints: Vec<Fingerprint> = events.iter().map(Fingerprint::of).collect();
    for (i, fp) in prints.iter().enumerate() {
        let v = fp.vector();
        let mut placed = false;
        for (members, centroid) in &mut clusters {
            let d = centroid
                .iter()
                .zip(v.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            if d <= threshold {
                // Running-mean centroid update.
                let n = members.len() as f64;
                for (c, y) in centroid.iter_mut().zip(v.iter()) {
                    *c = (*c * n + y) / (n + 1.0);
                }
                members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push((vec![i], v.to_vec()));
        }
    }
    clusters
        .into_iter()
        .map(|(members, centroid)| {
            // Recover a representative Fingerprint from the centroid vector.
            let rep = Fingerprint {
                log_packets: centroid[0] * 20.0,
                log_dsts: centroid[1] * 20.0,
                pkts_per_dst: centroid[2] * 16.0,
                log_ports: centroid[3] * 16.0,
                top_port_frac: centroid[4],
                target_iid_weight: centroid[5] * 64.0,
                targets_per_64: centroid[6] * 16.0,
            };
            Cluster {
                members,
                centroid: rep,
            }
        })
        .collect()
}

/// Pairwise similarity verdict for two *sources*' aggregate behavior: the
/// Appendix A.4 question ("are these two /64s the same actor?"). Averages
/// each source's event fingerprints and thresholds the distance.
pub fn same_actor(a_events: &[&ScanEvent], b_events: &[&ScanEvent], threshold: f64) -> bool {
    fn mean(events: &[&ScanEvent]) -> Option<[f64; 7]> {
        if events.is_empty() {
            return None;
        }
        let mut acc = [0.0; 7];
        for e in events {
            for (a, v) in acc.iter_mut().zip(Fingerprint::of(e).vector().iter()) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= events.len() as f64;
        }
        Some(acc)
    }
    match (mean(a_events), mean(b_events)) {
        (Some(a), Some(b)) => {
            let d: f64 = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            d <= threshold
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggLevel;
    use lumen6_trace::Transport;

    fn ev(packets: u64, dsts: u64, ports: usize, iid_max: u64) -> ScanEvent {
        let per_port = packets / ports as u64;
        let dst_list: Vec<u128> = (0..dsts)
            .map(|i| ((i as u128 % 7) << 64) | u128::from(i % iid_max.max(1)))
            .collect();
        ScanEvent {
            source: lumen6_addr::Ipv6Prefix::new(0x2001 << 112, 64),
            agg: AggLevel::L64,
            start_ms: 0,
            end_ms: 1000,
            packets,
            distinct_dsts: dsts,
            distinct_srcs: 1,
            ports: (0..ports as u16)
                .map(|p| ((Transport::Tcp, 22 + p), per_port))
                .collect(),
            dsts: Some(dst_list),
        }
    }

    #[test]
    fn identical_behavior_zero_distance() {
        let a = Fingerprint::of(&ev(1000, 500, 8, 16));
        let b = Fingerprint::of(&ev(1000, 500, 8, 16));
        assert!(distance(&a, &b) < 1e-12);
    }

    #[test]
    fn different_behavior_larger_distance() {
        let single_port = Fingerprint::of(&ev(1000, 900, 1, 4));
        let wide_sweep = Fingerprint::of(&ev(1000, 200, 400, u64::MAX));
        let similar = Fingerprint::of(&ev(1100, 850, 1, 4));
        assert!(distance(&single_port, &wide_sweep) > 4.0 * distance(&single_port, &similar));
    }

    #[test]
    fn clustering_groups_like_with_like() {
        // Two behavior families, interleaved: 6 single-port hitlist scans
        // and 6 wide port sweeps.
        let mut events = Vec::new();
        for i in 0..6u64 {
            events.push(ev(900 + i * 20, 800 + i * 10, 1, 4));
            events.push(ev(900 + i * 20, 150 + i * 10, 300, u64::MAX));
        }
        let clusters = cluster(&events, 0.12);
        assert_eq!(clusters.len(), 2, "{clusters:?}");
        // Members alternate even/odd indices.
        for c in &clusters {
            let parity = c.members[0] % 2;
            assert!(c.members.iter().all(|m| m % 2 == parity));
            assert_eq!(c.members.len(), 6);
        }
    }

    #[test]
    fn tight_threshold_splits_everything() {
        let events = vec![ev(1000, 500, 8, 16), ev(4000, 100, 1, 4)];
        let clusters = cluster(&events, 1e-9);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn same_actor_inference() {
        // A.4-style: two sources with near-identical behavior (one 3× the
        // volume), a third completely different.
        let a = [ev(1000, 700, 20, 8)];
        let b = [ev(3000, 1900, 20, 8)];
        let c = [ev(500, 480, 1, 2)];
        let ar: Vec<&ScanEvent> = a.iter().collect();
        let br: Vec<&ScanEvent> = b.iter().collect();
        let cr: Vec<&ScanEvent> = c.iter().collect();
        assert!(same_actor(&ar, &br, 0.15));
        assert!(!same_actor(&ar, &cr, 0.15));
        assert!(!same_actor(&[], &br, 0.15), "empty side never matches");
    }

    #[test]
    fn events_without_dsts_still_fingerprint() {
        let mut e = ev(1000, 500, 8, 16);
        e.dsts = None;
        let fp = Fingerprint::of(&e);
        assert_eq!(fp.target_iid_weight, 0.0);
        assert_eq!(fp.targets_per_64, 0.0);
        assert!(fp.log_packets > 0.0);
    }
}
