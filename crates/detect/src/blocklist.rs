//! An operational blocklist on top of adaptive alerts.
//!
//! The paper warns (§5) that scan detection feeding blocklists is where
//! aggregation mistakes turn into collateral damage: block a /32 because a
//! scanner spread across it and an entire provider's customers go dark.
//! This module is the enforcement half of [`crate::adaptive`]:
//!
//! - alerts are admitted only if their collateral estimate is acceptable;
//! - entries carry a TTL and expire unless re-confirmed;
//! - membership tests are longest-prefix-match over a binary trie, so a
//!   blocked /32 covers all its addresses at O(prefix-length);
//! - every decision is recorded, auditable, and reversible.

use crate::adaptive::Alert;
use lumen6_addr::{Ipv6Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};

/// Admission policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlocklistConfig {
    /// Maximum tolerated collateral (low-activity sources inside the
    /// prefix) per alert.
    pub max_collateral: u64,
    /// Entry lifetime; re-admitting an alert refreshes it.
    pub ttl_ms: u64,
    /// Minimum alert packet volume to bother blocking.
    pub min_packets: u64,
    /// Coarsest prefix the operator is willing to block (e.g. 32 — never
    /// block anything shorter than a /32).
    pub min_prefix_len: u8,
}

impl Default for BlocklistConfig {
    fn default() -> Self {
        BlocklistConfig {
            max_collateral: 8,
            ttl_ms: 24 * 3_600_000,
            min_packets: 100,
            min_prefix_len: 32,
        }
    }
}

/// Why an alert was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Estimated collateral exceeds the policy bound.
    TooMuchCollateral,
    /// Alert volume below the policy floor.
    TooFewPackets,
    /// Prefix coarser than the operator allows.
    TooCoarse,
    /// Already covered by an existing (equal or coarser) entry.
    AlreadyCovered,
}

/// Outcome of offering one alert to the blocklist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// Entry added (or refreshed).
    Blocked(Ipv6Prefix),
    /// Rejected with a reason.
    Rejected(Ipv6Prefix, RejectReason),
}

#[derive(Debug, Clone)]
struct Entry {
    expires_ms: u64,
    hits: u64,
}

/// The blocklist.
#[derive(Debug, Clone)]
pub struct Blocklist {
    config: BlocklistConfig,
    trie: PrefixTrie<Entry>,
    entries: Vec<Ipv6Prefix>,
}

impl Blocklist {
    /// Creates an empty blocklist.
    pub fn new(config: BlocklistConfig) -> Blocklist {
        Blocklist {
            config,
            trie: PrefixTrie::new(),
            entries: Vec::new(),
        }
    }

    /// Offers a batch of alerts at time `now_ms`; returns one decision per
    /// alert, in order.
    pub fn ingest(&mut self, now_ms: u64, alerts: &[Alert]) -> Vec<Decision> {
        alerts.iter().map(|a| self.offer(now_ms, a)).collect()
    }

    fn offer(&mut self, now_ms: u64, alert: &Alert) -> Decision {
        let p = alert.prefix;
        if p.len() < self.config.min_prefix_len {
            return Decision::Rejected(p, RejectReason::TooCoarse);
        }
        if alert.packets < self.config.min_packets {
            return Decision::Rejected(p, RejectReason::TooFewPackets);
        }
        if alert.collateral_srcs > self.config.max_collateral {
            return Decision::Rejected(p, RejectReason::TooMuchCollateral);
        }
        // Refresh if exactly present; reject if a live coarser cover exists.
        if let Some(e) = self.trie.get_mut(&p) {
            e.expires_ms = now_ms + self.config.ttl_ms;
            return Decision::Blocked(p);
        }
        if let Some((cover, entry)) = self.trie.longest_match(p.bits()) {
            if cover.len() <= p.len() && entry.expires_ms > now_ms && cover.contains(&p) {
                return Decision::Rejected(p, RejectReason::AlreadyCovered);
            }
        }
        self.trie.insert(
            p,
            Entry {
                expires_ms: now_ms + self.config.ttl_ms,
                hits: 0,
            },
        );
        self.entries.push(p);
        Decision::Blocked(p)
    }

    /// Whether traffic from `addr` is blocked at time `now_ms`; counts a
    /// hit on the matching entry.
    pub fn check(&mut self, addr: u128, now_ms: u64) -> bool {
        // Find the most specific live cover.
        let hit = self
            .trie
            .matches(addr)
            .into_iter()
            .rev()
            .find(|(_, e)| e.expires_ms > now_ms)
            .map(|(p, _)| p);
        match hit {
            Some(p) => {
                if let Some(e) = self.trie.get_mut(&p) {
                    e.hits += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Removes expired entries; returns how many were dropped.
    pub fn expire(&mut self, now_ms: u64) -> usize {
        let mut dropped = 0;
        self.entries.retain(|p| {
            let live = self
                .trie
                .get(p)
                .map(|e| e.expires_ms > now_ms)
                .unwrap_or(false);
            if !live {
                self.trie.remove(p);
                dropped += 1;
            }
            live
        });
        dropped
    }

    /// Live entries with their accumulated hit counts.
    pub fn entries(&self) -> Vec<(Ipv6Prefix, u64)> {
        self.entries
            .iter()
            .filter_map(|p| self.trie.get(p).map(|e| (*p, e.hits)))
            .collect()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the blocklist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(prefix: &str, packets: u64, collateral: u64) -> Alert {
        Alert {
            prefix: prefix.parse().unwrap(),
            packets,
            distinct_dsts: packets,
            contributing_srcs: 1,
            collateral_srcs: collateral,
            subsumed: vec![],
        }
    }

    fn bl() -> Blocklist {
        Blocklist::new(BlocklistConfig::default())
    }

    #[test]
    fn admits_clean_alert_and_blocks_contained_traffic() {
        let mut b = bl();
        let d = b.ingest(0, &[alert("2001:db8::/48", 5_000, 0)]);
        assert_eq!(d, vec![Decision::Blocked("2001:db8::/48".parse().unwrap())]);
        assert!(b.check("2001:db8::1234".parse::<Ipv6Prefix>().unwrap().bits(), 1000));
        assert!(!b.check("2001:db9::1".parse::<Ipv6Prefix>().unwrap().bits(), 1000));
        assert_eq!(b.entries()[0].1, 1, "hit recorded");
    }

    #[test]
    fn collateral_guard_rejects_risky_blocks() {
        let mut b = bl();
        let d = b.ingest(0, &[alert("2001:db8::/64", 10_000, 500)]);
        assert_eq!(
            d,
            vec![Decision::Rejected(
                "2001:db8::/64".parse().unwrap(),
                RejectReason::TooMuchCollateral
            )]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn volume_floor_and_coarseness_guard() {
        let mut b = bl();
        let d = b.ingest(
            0,
            &[
                alert("2001:db8::/48", 10, 0),
                alert("2001::/16", 1_000_000, 0),
            ],
        );
        assert!(matches!(
            d[0],
            Decision::Rejected(_, RejectReason::TooFewPackets)
        ));
        assert!(matches!(
            d[1],
            Decision::Rejected(_, RejectReason::TooCoarse)
        ));
    }

    #[test]
    fn ttl_expires_entries() {
        let mut b = bl();
        b.ingest(0, &[alert("2001:db8::/48", 1_000, 0)]);
        let addr = "2001:db8::1".parse::<Ipv6Prefix>().unwrap().bits();
        assert!(b.check(addr, 1_000));
        let ttl = BlocklistConfig::default().ttl_ms;
        assert!(!b.check(addr, ttl + 1), "expired entries stop matching");
        assert_eq!(b.expire(ttl + 1), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn readmission_refreshes_ttl() {
        let mut b = bl();
        let a = alert("2001:db8::/48", 1_000, 0);
        b.ingest(0, std::slice::from_ref(&a));
        let ttl = BlocklistConfig::default().ttl_ms;
        // Refresh shortly before expiry.
        b.ingest(ttl - 10, &[a]);
        let addr = "2001:db8::1".parse::<Ipv6Prefix>().unwrap().bits();
        assert!(b.check(addr, ttl + 10), "refresh extended the lifetime");
        assert_eq!(b.len(), 1, "no duplicate entry");
    }

    #[test]
    fn finer_alert_covered_by_live_coarser_entry() {
        let mut b = bl();
        b.ingest(0, &[alert("2001:db8::/32", 100_000, 0)]);
        let d = b.ingest(10, &[alert("2001:db8:1::/48", 5_000, 0)]);
        assert!(matches!(
            d[0],
            Decision::Rejected(_, RejectReason::AlreadyCovered)
        ));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn expired_coarse_cover_does_not_block_admission() {
        let mut b = bl();
        b.ingest(0, &[alert("2001:db8::/32", 100_000, 0)]);
        let ttl = BlocklistConfig::default().ttl_ms;
        let d = b.ingest(ttl + 1, &[alert("2001:db8:1::/48", 5_000, 0)]);
        assert!(matches!(d[0], Decision::Blocked(_)));
    }

    #[test]
    fn most_specific_live_entry_takes_the_hit() {
        let mut b = bl();
        b.ingest(0, &[alert("2001:db8::/32", 100_000, 0)]);
        // Admit a finer one after the cover expires, then re-admit cover.
        let ttl = BlocklistConfig::default().ttl_ms;
        b.ingest(ttl + 1, &[alert("2001:db8:1::/48", 5_000, 0)]);
        b.ingest(ttl + 2, &[alert("2001:db8::/32", 100_000, 0)]);
        let inside_fine = "2001:db8:1::9".parse::<Ipv6Prefix>().unwrap().bits();
        assert!(b.check(inside_fine, ttl + 3));
        let entries = b.entries();
        let fine_hits = entries
            .iter()
            .find(|(p, _)| p.len() == 48)
            .map(|(_, h)| *h)
            .unwrap();
        assert_eq!(fine_hits, 1, "hit attributed to the most specific entry");
    }
}
