//! Adaptive-aggregation scan alerting — the IDS sketched in the paper's
//! discussion (§5), built out.
//!
//! Fixed-mask detection faces a dilemma the paper demonstrates twice over:
//! aggregate too little and a scanner spreading its sources across a /32
//! (AS#18) stays invisible; aggregate too much and a multi-tenant cloud
//! whose customers get sub-/96 allocations (AS#6) is conflated into one
//! "source", so blocklisting it shoots innocent bystanders.
//!
//! [`AdaptiveIds::analyze`] resolves a traffic window bottom-up:
//!
//! 1. Per-/128 statistics are computed once.
//! 2. Walking levels from most specific to coarsest, a prefix raises an
//!    alert if its **residual** traffic — packets from descendants *not*
//!    already covered by a finer alert — meets the scan definition. A lone
//!    heavy /128 therefore alerts as a /128, and never drags its /64
//!    neighbors with it; a /32-spread scanner alerts as the /32 because only
//!    the union of its thousands of quiet sources crosses the threshold.
//! 3. Finer alerts contained in a coarser alert are subsumed: the /32-wide
//!    actor is reported once, with its qualifying /48s listed, matching the
//!    paper's attribution of the whole /32 to one entity.
//!
//! Every alert carries a **collateral estimate**: the number of distinct
//! low-activity /128 sources inside the alert prefix. Blocking an alerted
//! prefix with a high estimate risks exactly the collateral damage the
//! paper warns about. (For a genuinely spread scanner the low-activity
//! sources are usually the scanner's own addresses, so the estimate is an
//! upper bound — an operator signal, not ground truth.)

use crate::aggregate::AggLevel;
use lumen6_addr::Ipv6Prefix;
use lumen6_trace::PacketRecord;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Configuration of the adaptive analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Aggregation levels to consider, most specific first. Defaults to
    /// /128, /64, /48, /32.
    pub levels: Vec<AggLevel>,
    /// Scan definition: minimum distinct destinations.
    pub min_dsts: u64,
    /// Sources with at most this many distinct destinations count as
    /// low-activity for the collateral estimate.
    pub benign_dst_limit: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            levels: vec![AggLevel::L128, AggLevel::L64, AggLevel::L48, AggLevel::L32],
            min_dsts: 100,
            benign_dst_limit: 3,
        }
    }
}

/// One adaptive alert: a prefix whose residual traffic meets the scan
/// definition, at the most specific level where that happens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The alerted source prefix.
    pub prefix: Ipv6Prefix,
    /// Packets attributed to this alert (residual at emission time).
    pub packets: u64,
    /// Distinct destinations in the residual traffic.
    pub distinct_dsts: u64,
    /// Distinct /128 sources contributing to the residual traffic.
    pub contributing_srcs: u64,
    /// Low-activity /128 sources inside the prefix: the collateral-damage
    /// upper bound if this prefix were blocklisted.
    pub collateral_srcs: u64,
    /// Finer-level alerts subsumed into this one (empty for leaf alerts).
    pub subsumed: Vec<Ipv6Prefix>,
}

/// The adaptive-aggregation analyzer. Stateless; call
/// [`AdaptiveIds::analyze`] per traffic window.
///
/// ```
/// use lumen6_detect::adaptive::{AdaptiveIds, AdaptiveConfig};
/// use lumen6_trace::PacketRecord;
///
/// // 200 one-packet sources spread across one /64: invisible per /128,
/// // one actor at /64.
/// let window: Vec<PacketRecord> = (0..200u64)
///     .map(|i| PacketRecord::tcp(i, (0x2001u128 << 112) | i as u128,
///                                0xa000 + i as u128, 1, 22, 60))
///     .collect();
/// let alerts = AdaptiveIds::new(AdaptiveConfig::default()).analyze(&window);
/// assert_eq!(alerts.len(), 1);
/// assert_eq!(alerts[0].prefix.len(), 64);
/// assert_eq!(alerts[0].contributing_srcs, 200);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdaptiveIds {
    config: AdaptiveConfig,
}

#[derive(Debug, Default)]
struct HostStat {
    dsts: HashSet<u128>,
    packets: u64,
}

impl AdaptiveIds {
    /// Creates an analyzer.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveIds { config }
    }

    /// Analyzes one window of traffic and returns the final alert set,
    /// sorted by packet count descending.
    pub fn analyze(&self, records: &[PacketRecord]) -> Vec<Alert> {
        // 1. Per-/128 stats.
        let mut hosts: HashMap<u128, HostStat> = HashMap::new();
        for r in records {
            let h = hosts.entry(r.src).or_default();
            h.dsts.insert(r.dst);
            h.packets += 1;
        }

        let mut levels = self.config.levels.clone();
        levels.sort_by_key(|l| std::cmp::Reverse(l.len())); // most specific first

        // Hosts already covered by a finer-level alert.
        let mut covered: HashSet<u128> = HashSet::new();
        let mut alerts: Vec<Alert> = Vec::new();

        for lvl in levels {
            // Group hosts by their prefix at this level.
            let mut groups: HashMap<Ipv6Prefix, Vec<u128>> = HashMap::new();
            for &host in hosts.keys() {
                groups.entry(lvl.source_of(host)).or_default().push(host);
            }
            for (prefix, members) in groups {
                let residual: Vec<u128> = members
                    .iter()
                    .copied()
                    .filter(|h| !covered.contains(h))
                    .collect();
                if residual.is_empty() {
                    continue;
                }
                // Union of residual destinations.
                let mut dsts: HashSet<u128> = HashSet::new();
                let mut packets = 0u64;
                for h in &residual {
                    let stat = &hosts[h];
                    dsts.extend(stat.dsts.iter().copied());
                    packets += stat.packets;
                }
                if (dsts.len() as u64) < self.config.min_dsts {
                    continue;
                }
                // Collateral: low-activity hosts anywhere inside the prefix.
                let collateral = members
                    .iter()
                    .filter(|h| hosts[*h].dsts.len() as u64 <= self.config.benign_dst_limit)
                    .count() as u64;

                // Subsume finer alerts contained in this prefix.
                let mut subsumed: Vec<Ipv6Prefix> = Vec::new();
                let mut sub_packets = 0u64;
                let mut sub_dsts = 0u64;
                alerts.retain(|a| {
                    if prefix.contains(&a.prefix) {
                        subsumed.push(a.prefix);
                        subsumed.extend(a.subsumed.iter().copied());
                        sub_packets += a.packets;
                        sub_dsts += a.distinct_dsts;
                        false
                    } else {
                        true
                    }
                });
                subsumed.sort();

                for h in &residual {
                    covered.insert(*h);
                }
                alerts.push(Alert {
                    prefix,
                    packets: packets + sub_packets,
                    // Destination overlap between residual and subsumed
                    // alerts is possible; the sum is an upper bound kept for
                    // interpretability (each part was individually exact).
                    distinct_dsts: dsts.len() as u64 + sub_dsts,
                    contributing_srcs: residual.len() as u64,
                    collateral_srcs: collateral,
                    subsumed,
                });
            }
        }

        alerts.sort_by(|a, b| b.packets.cmp(&a.packets).then(a.prefix.cmp(&b.prefix)));
        alerts
    }

    /// The active configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(recs: &[PacketRecord]) -> Vec<Alert> {
        AdaptiveIds::new(AdaptiveConfig::default()).analyze(recs)
    }

    /// One heavy /128 scanning 150 destinations.
    fn heavy_host(src: u128, n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::tcp(i, src, 0xd000 + i as u128, 1, 22, 60))
            .collect()
    }

    #[test]
    fn lone_heavy_host_alerts_at_slash_128() {
        let recs = heavy_host(42, 150);
        let alerts = analyze(&recs);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].prefix.len(), 128);
        assert_eq!(alerts[0].distinct_dsts, 150);
        assert!(alerts[0].subsumed.is_empty());
        assert_eq!(alerts[0].collateral_srcs, 0);
    }

    #[test]
    fn spread_scanner_alerts_at_coarse_level() {
        // AS#18-style: 500 /128 sources spread across one /32 (varying /48s
        // and /64s), each sending ONE packet to a distinct destination.
        let slash32: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let recs: Vec<PacketRecord> = (0..500u64)
            .map(|i| {
                // Vary bits 80..89 (just below the /32 boundary) so each
                // source lands in its own /48 (and /64) while sharing the /32.
                let src = slash32 | ((i as u128) << 80) | (i as u128);
                PacketRecord::tcp(i, src, 0xe000 + i as u128, 1, 22, 60)
            })
            .collect();
        let alerts = analyze(&recs);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].prefix.len(), 32);
        assert_eq!(alerts[0].contributing_srcs, 500);
        // Every member is low-activity, so the collateral bound is large —
        // the operator signal that blocking this /32 is risky.
        assert_eq!(alerts[0].collateral_srcs, 500);
    }

    #[test]
    fn cloud_tenants_do_not_conflate() {
        // AS#6-style: two scanning tenants (heavy /128s) and 200 benign
        // hosts, all inside one /64. The benign hosts touch 1 destination
        // each (not enough residual to alert the /64).
        let net: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let mut recs = heavy_host(net | 0x1000, 150);
        recs.extend(heavy_host(net | 0x2000, 140));
        for i in 0..200u64 {
            recs.push(PacketRecord::tcp(
                i,
                net | (0x9000 + i as u128),
                0xf000,
                1,
                443,
                60,
            ));
        }
        let alerts = analyze(&recs);
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert!(alerts.iter().all(|a| a.prefix.len() == 128));
        // Blocking either /128 causes zero collateral.
        assert!(alerts.iter().all(|a| a.collateral_srcs == 0));
    }

    #[test]
    fn benign_residual_can_still_alert_when_spread() {
        // 120 benign-looking hosts in one /64, but each hits a DISTINCT
        // destination — collectively that is a spread scan and must alert at
        // /64 even though each host alone is "low activity".
        let net: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let recs: Vec<PacketRecord> = (0..120u64)
            .map(|i| PacketRecord::tcp(i, net | i as u128, 0xa000 + i as u128, 1, 22, 60))
            .collect();
        let alerts = analyze(&recs);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].prefix.len(), 64);
    }

    #[test]
    fn heavy_host_plus_spread_neighbors_subsumes() {
        // A /64 containing a qualifying /128 AND 100 spread one-packet
        // sources with distinct destinations: the /128 alerts first; the
        // /64's residual (100 dsts) also qualifies and subsumes the /128.
        let net: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let mut recs = heavy_host(net | 0xff, 150);
        recs.extend((0..100u64).map(|i| {
            PacketRecord::tcp(
                i,
                net | (0x1_0000 + i as u128),
                0xc000 + i as u128,
                1,
                22,
                60,
            )
        }));
        let alerts = analyze(&recs);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].prefix.len(), 64);
        assert_eq!(alerts[0].subsumed.len(), 1);
        assert_eq!(alerts[0].subsumed[0].len(), 128);
        assert_eq!(alerts[0].packets, 250);
    }

    #[test]
    fn quiet_window_no_alerts() {
        let recs: Vec<PacketRecord> = (0..50u64)
            .map(|i| PacketRecord::tcp(i, i as u128 + 1, 0xf000, 1, 443, 60))
            .collect();
        assert!(analyze(&recs).is_empty());
    }

    #[test]
    fn empty_window() {
        assert!(analyze(&[]).is_empty());
    }

    #[test]
    fn alerts_sorted_by_packets() {
        let mut recs = heavy_host(1, 200);
        recs.extend(heavy_host(0xaaaa_0000_0000_0000_0000_0000_0000_0000, 120));
        let alerts = analyze(&recs);
        assert_eq!(alerts.len(), 2);
        assert!(alerts[0].packets >= alerts[1].packets);
    }
}
