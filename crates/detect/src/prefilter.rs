//! CDN artifact prefiltering (paper §2.1 and Appendix A.1).
//!
//! Client-facing CDN addresses attract traffic that *looks* like scanning
//! but is not: SMTP servers retrying mail delivery against AAAA records of
//! hosted domains, hosts attempting IPsec (ISAKMP, UDP/500) against many
//! CDN machines they were mapped to, NetBIOS chatter, and similar
//! misconfiguration fallout. The paper removes, per day, every /64 source
//! for which more than 30% of logged packets are "5-duplicates": packets
//! hitting the same (destination IP, destination port) more than 5 times
//! over the course of that day.
//!
//! The filter is deliberately port-agnostic — any port may also be targeted
//! by real scans — so removal is purely behavioral.

use crate::aggregate::AggLevel;
use lumen6_addr::Ipv6Prefix;
use lumen6_trace::{PacketRecord, Transport, DAY_MS};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Configuration of the 5-duplicate artifact filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactFilterConfig {
    /// Source aggregation for the filter decision (the paper uses /64).
    pub agg: AggLevel,
    /// A (dst, port) pair hit strictly more than this many times per day
    /// marks those packets as duplicates. The paper uses 5.
    pub dup_threshold: u64,
    /// Sources whose daily duplicate fraction strictly exceeds this are
    /// removed for that day. The paper uses 0.30.
    pub max_dup_fraction: f64,
}

impl Default for ArtifactFilterConfig {
    fn default() -> Self {
        ArtifactFilterConfig {
            agg: AggLevel::L64,
            dup_threshold: 5,
            max_dup_fraction: 0.30,
        }
    }
}

/// What the filter removed — the input for the paper's Appendix A.1
/// observation that UDP/500 (ISAKMP) and TCP/25 (SMTP) dominate artifacts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FilterReport {
    /// Packets seen.
    pub input_packets: u64,
    /// Packets removed.
    pub removed_packets: u64,
    /// Distinct (source, day) pairs removed.
    pub removed_source_days: u64,
    /// Distinct sources removed on at least one day.
    pub removed_sources: u64,
    /// Removed packets per (protocol, destination port), sorted descending.
    pub removed_by_service: Vec<((Transport, u16), u64)>,
    /// Removed distinct sources per (protocol, destination port) — a source
    /// counts toward every service it sent removed packets to.
    pub removed_sources_by_service: Vec<((Transport, u16), u64)>,
}

impl FilterReport {
    /// Fraction of input packets removed.
    pub fn removed_fraction(&self) -> f64 {
        if self.input_packets == 0 {
            0.0
        } else {
            self.removed_packets as f64 / self.input_packets as f64
        }
    }

    /// The most-removed services, e.g. `[(UDP/500, ...), (TCP/25, ...)]`.
    pub fn top_services(&self, n: usize) -> &[((Transport, u16), u64)] {
        &self.removed_by_service[..n.min(self.removed_by_service.len())]
    }
}

/// The 5-duplicate artifact filter. Operates on a full, time-sorted trace;
/// day boundaries are multiples of [`DAY_MS`] from the epoch.
///
/// ```
/// use lumen6_detect::ArtifactFilter;
/// use lumen6_trace::PacketRecord;
///
/// // An SMTP server retrying the same (destination, port) 50 times a day
/// // looks like a scan source but is an artifact — the filter removes it.
/// let recs: Vec<PacketRecord> = (0..50)
///     .map(|i| PacketRecord::tcp(i * 60_000, 0xa, 0xbeef, 2525, 25, 80))
///     .collect();
/// let (kept, report) = ArtifactFilter::default().filter(&recs);
/// assert!(kept.is_empty());
/// assert_eq!(report.removed_packets, 50);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArtifactFilter {
    config: ArtifactFilterConfig,
}

impl ArtifactFilter {
    /// Creates a filter with the paper's parameters.
    pub fn new(config: ArtifactFilterConfig) -> Self {
        ArtifactFilter { config }
    }

    /// Applies the filter, returning the kept packets (original order) and a
    /// report on what was removed.
    ///
    /// Two passes per day: first count per-(source, dst, proto, port)
    /// packets, then decide per source and copy the keepers.
    pub fn filter(&self, records: &[PacketRecord]) -> (Vec<PacketRecord>, FilterReport) {
        let mut kept = Vec::with_capacity(records.len());
        let mut report = FilterReport {
            input_packets: records.len() as u64,
            ..Default::default()
        };
        let mut removed_sources: HashSet<Ipv6Prefix> = HashSet::new();
        let mut removed_by_service: BTreeMap<(Transport, u16), u64> = BTreeMap::new();
        let mut removed_src_service: HashSet<(Ipv6Prefix, Transport, u16)> = HashSet::new();

        // Process day by day (records are time-sorted).
        let mut day_start = 0usize;
        while day_start < records.len() {
            let day = records[day_start].ts_ms / DAY_MS;
            let mut day_end = day_start;
            while day_end < records.len() && records[day_end].ts_ms / DAY_MS == day {
                day_end += 1;
            }
            let day_slice = &records[day_start..day_end];
            self.filter_day(
                day_slice,
                &mut kept,
                &mut report,
                &mut removed_sources,
                &mut removed_by_service,
                &mut removed_src_service,
            );
            day_start = day_end;
        }

        report.removed_sources = removed_sources.len() as u64;
        report.removed_by_service = {
            let mut v: Vec<_> = removed_by_service.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        };
        report.removed_sources_by_service = {
            let mut m: BTreeMap<(Transport, u16), u64> = BTreeMap::new();
            for (_, proto, port) in removed_src_service {
                *m.entry((proto, port)).or_default() += 1;
            }
            let mut v: Vec<_> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        };
        (kept, report)
    }

    fn filter_day(
        &self,
        day: &[PacketRecord],
        kept: &mut Vec<PacketRecord>,
        report: &mut FilterReport,
        removed_sources: &mut HashSet<Ipv6Prefix>,
        removed_by_service: &mut BTreeMap<(Transport, u16), u64>,
        removed_src_service: &mut HashSet<(Ipv6Prefix, Transport, u16)>,
    ) {
        // Pass 1: per-(source, dst, proto, port) packet counts and
        // per-source totals.
        let mut flow_counts: HashMap<(Ipv6Prefix, u128, Transport, u16), u64> = HashMap::new();
        let mut src_totals: HashMap<Ipv6Prefix, u64> = HashMap::new();
        for r in day {
            let s = self.config.agg.source_of(r.src);
            *flow_counts.entry((s, r.dst, r.proto, r.dport)).or_default() += 1;
            *src_totals.entry(s).or_default() += 1;
        }
        // Per-source duplicate packet counts: packets belonging to flows
        // that exceeded the duplicate threshold.
        let mut src_dups: HashMap<Ipv6Prefix, u64> = HashMap::new();
        for (&(s, _, _, _), &n) in &flow_counts {
            if n > self.config.dup_threshold {
                *src_dups.entry(s).or_default() += n;
            }
        }
        // Decide removal per source.
        let removed: HashSet<Ipv6Prefix> = src_totals
            .iter()
            .filter(|(s, &total)| {
                let dups = src_dups.get(*s).copied().unwrap_or(0);
                dups as f64 > self.config.max_dup_fraction * total as f64
            })
            .map(|(s, _)| *s)
            .collect();

        report.removed_source_days += removed.len() as u64;

        // Pass 2: copy keepers, account removals.
        for r in day {
            let s = self.config.agg.source_of(r.src);
            if removed.contains(&s) {
                report.removed_packets += 1;
                *removed_by_service.entry((r.proto, r.dport)).or_default() += 1;
                removed_src_service.insert((s, r.proto, r.dport));
                removed_sources.insert(s);
            } else {
                kept.push(*r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An SMTP fallback artifact: one source hammering the same
    /// (destination, port) far more than 5 times in a day.
    fn smtp_artifact(src: u128, t0: u64, repeats: u64) -> Vec<PacketRecord> {
        (0..repeats)
            .map(|i| PacketRecord::tcp(t0 + i * 60_000, src, 0xbeef, 2525, 25, 80))
            .collect()
    }

    /// Scan-like traffic: distinct destination per packet.
    fn scanlike(src: u128, t0: u64, n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::tcp(t0 + i * 1000, src, 0xcc00 + i as u128, 1, 22, 60))
            .collect()
    }

    fn run(records: &mut [PacketRecord]) -> (Vec<PacketRecord>, FilterReport) {
        lumen6_trace::sort_by_time(records);
        ArtifactFilter::new(ArtifactFilterConfig::default()).filter(records)
    }

    #[test]
    fn pure_artifact_source_is_removed() {
        let mut recs = smtp_artifact(1, 0, 50);
        let (kept, report) = run(&mut recs);
        assert!(kept.is_empty());
        assert_eq!(report.removed_packets, 50);
        assert_eq!(report.removed_sources, 1);
        assert_eq!(report.top_services(1)[0].0, (Transport::Tcp, 25));
    }

    #[test]
    fn scanner_is_kept() {
        let mut recs = scanlike(1, 0, 200);
        let (kept, report) = run(&mut recs);
        assert_eq!(kept.len(), 200);
        assert_eq!(report.removed_packets, 0);
    }

    #[test]
    fn exactly_five_repeats_is_not_duplicate() {
        // 5 hits on the same (dst, port): at the threshold, not over it.
        let mut recs = smtp_artifact(1, 0, 5);
        let (kept, report) = run(&mut recs);
        assert_eq!(kept.len(), 5);
        assert_eq!(report.removed_packets, 0);
    }

    #[test]
    fn six_repeats_of_a_lone_flow_removes_source() {
        let mut recs = smtp_artifact(1, 0, 6);
        let (kept, _) = run(&mut recs);
        assert!(kept.is_empty());
    }

    #[test]
    fn mixed_source_below_fraction_survives() {
        // 10 duplicate packets + 90 scan-like: 10% < 30% → all kept.
        let mut recs = smtp_artifact(1, 0, 10);
        recs.extend(scanlike(1, 1_000_000, 90));
        let (kept, report) = run(&mut recs);
        assert_eq!(kept.len(), 100);
        assert_eq!(report.removed_packets, 0);
    }

    #[test]
    fn mixed_source_above_fraction_is_removed_entirely() {
        // 40 duplicate packets + 60 scan-like: 40% > 30% → the whole source
        // goes, including its scan-like packets (the filter removes sources,
        // not packets).
        let mut recs = smtp_artifact(1, 0, 40);
        recs.extend(scanlike(1, 1_000_000, 60));
        let (kept, report) = run(&mut recs);
        assert!(kept.is_empty());
        assert_eq!(report.removed_packets, 100);
    }

    #[test]
    fn removal_is_per_day() {
        // Artifact behavior on day 0, clean scanning on day 1: only day 0
        // is removed.
        let mut recs = smtp_artifact(1, 0, 50);
        recs.extend(scanlike(1, DAY_MS + 1000, 120));
        let (kept, report) = run(&mut recs);
        assert_eq!(kept.len(), 120);
        assert_eq!(report.removed_packets, 50);
        assert_eq!(report.removed_source_days, 1);
        assert_eq!(report.removed_sources, 1);
    }

    #[test]
    fn aggregation_level_64_merges_addresses() {
        // Two /128s in the same /64, each repeating the same flow 4 times:
        // individually under the threshold, jointly 8 > 5 → removed.
        let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let mut recs = Vec::new();
        for i in 0..4u64 {
            recs.push(PacketRecord::tcp(i * 1000, base + 1, 0xbeef, 1, 25, 80));
            recs.push(PacketRecord::tcp(i * 1000 + 1, base + 2, 0xbeef, 1, 25, 80));
        }
        let (kept, _) = run(&mut recs);
        assert!(kept.is_empty());
    }

    #[test]
    fn distinct_ports_are_distinct_flows() {
        // Same destination, 6 different ports, one packet each: no flow
        // exceeds the duplicate threshold.
        let mut recs: Vec<PacketRecord> = (0..6u16)
            .map(|i| PacketRecord::tcp(u64::from(i) * 1000, 1, 0xbeef, 1, 8000 + i, 60))
            .collect();
        let (kept, _) = run(&mut recs);
        assert_eq!(kept.len(), 6);
    }

    #[test]
    fn report_fraction_and_empty_input() {
        let filter = ArtifactFilter::new(ArtifactFilterConfig::default());
        let (kept, report) = filter.filter(&[]);
        assert!(kept.is_empty());
        assert_eq!(report.removed_fraction(), 0.0);

        // Sources in distinct /64s so the filter judges them separately.
        let mut recs = smtp_artifact(1u128 << 64, 0, 30);
        recs.extend(scanlike(2u128 << 64, 0, 70));
        lumen6_trace::sort_by_time(&mut recs);
        let (_, report) = filter.filter(&recs);
        assert!((report.removed_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn isakmp_artifacts_reported_by_service() {
        let mut recs: Vec<PacketRecord> = (0..20u64)
            .map(|i| PacketRecord::udp(i * 1000, 7, 0xbeef, 500, 500, 120))
            .collect();
        recs.extend(smtp_artifact(8, 0, 10));
        let (_, report) = run(&mut recs);
        assert_eq!(report.top_services(2)[0].0, (Transport::Udp, 500));
        assert_eq!(report.top_services(2)[1].0, (Transport::Tcp, 25));
        assert_eq!(report.removed_sources_by_service.len(), 2);
    }
}
