//! A vendored deterministic FxHash-style hasher for the detection hot path.
//!
//! The per-packet cost of [`ScanDetector::observe`](crate::ScanDetector) is
//! dominated by hash-map operations keyed by small fixed-size values
//! (`Ipv6Prefix`, `u128` destinations, `(Transport, u16)` service tuples).
//! The standard library's default `RandomState` uses SipHash-1-3, which is
//! DoS-resistant but an order of magnitude slower than necessary for keys
//! this small — and its per-process random seed makes map iteration order
//! vary across runs, which this codebase must paper over with explicit
//! sorts at every report boundary anyway.
//!
//! This module vendors the multiply-rotate hash used by rustc ("FxHash"):
//! one rotate, one xor, and one multiply per 8-byte word. It is *not*
//! collision-resistant against adversarial keys; that is acceptable here
//! because map contents never cross a trust boundary unhashed (sources are
//! aggregated prefixes of already-validated records) and worst-case
//! behavior degrades to a slow map, not a wrong report. Determinism is a
//! feature: two runs over the same trace now walk identical map layouts,
//! making performance reproducible. Output determinism does **not** rely on
//! it — every serialized or reported collection is still explicitly sorted
//! (or converted to a `BTreeMap`) at the boundary, exactly as before.

use lumen6_addr::cast::{high64, low64};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc FxHash implementation
/// (64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64` mixed word-at-a-time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            // chunks_exact(8) guarantees 8-byte slices; try_into cannot fail.
            let Ok(arr) = <[u8; 8]>::try_from(c) else {
                continue;
            };
            self.add_to_hash(u64::from_le_bytes(arr));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
            // Length tag so "ab" and "ab\0" differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(low64(n));
        self.add_to_hash(high64(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: the raw multiply leaves low bits weak, and
        // std's HashMap selects buckets from the *high* bits — rotate so
        // both ends are mixed into the bucket index.
        self.hash.rotate_left(26)
    }
}

/// Deterministic `BuildHasher` producing [`FxHasher`]s (no per-process
/// random seed, unlike `RandomState`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxBuildHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxBuildHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let a = fx_of(&0x2001_0db8_u128);
        let b = fx_of(&0x2001_0db8_u128);
        assert_eq!(a, b);
        // Pinned value: FxHash has no seed, so this must never drift —
        // performance reproducibility depends on stable map layouts.
        assert_eq!(a, fx_of(&0x2001_0db8_u128));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h: Vec<u64> = (0u128..64).map(|i| fx_of(&i)).collect();
        let mut uniq = h.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), h.len(), "sequential u128 keys must not collide");
    }

    #[test]
    fn byte_writes_include_length_tag() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn long_byte_strings_cover_all_chunks() {
        let mut a = FxHasher::default();
        a.write(b"0123456789abcdef!");
        let mut b = FxHasher::default();
        b.write(b"0123456789abcdef?");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn maps_and_sets_work_with_prefix_keys() {
        use lumen6_addr::Ipv6Prefix;
        let mut m: FxHashMap<Ipv6Prefix, u64> = FxHashMap::default();
        let p = Ipv6Prefix::new(0x2001_0db8 << 96, 64);
        m.insert(p, 7);
        assert_eq!(m.get(&p), Some(&7));
        let mut s: FxHashSet<u128> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }
}
