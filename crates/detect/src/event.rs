//! Scan events and reports — the detector's output model.

use crate::aggregate::AggLevel;
use crate::portclass::{classify_ports, PortClass};
use lumen6_addr::Ipv6Prefix;
use lumen6_trace::Transport;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One detected scan: a maximal run of packets from one (aggregated) source
/// in which no packet inter-arrival exceeded the timeout and which targeted
/// at least the configured number of distinct destinations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanEvent {
    /// The scan source at the detection aggregation level.
    pub source: Ipv6Prefix,
    /// Aggregation level the detector ran at.
    pub agg: AggLevel,
    /// Timestamp of the first packet (ms since epoch).
    pub start_ms: u64,
    /// Timestamp of the last packet (ms since epoch).
    pub end_ms: u64,
    /// Total packets in the event.
    pub packets: u64,
    /// Distinct destination addresses targeted (exact or sketched).
    pub distinct_dsts: u64,
    /// Distinct /128 source addresses observed within the aggregated source.
    pub distinct_srcs: u64,
    /// Packet counts per (protocol, destination port), sorted by key.
    pub ports: Vec<((Transport, u16), u64)>,
    /// The targeted destination addresses, if the detector was configured to
    /// retain them (needed for targeting analysis; off for IDS deployments).
    pub dsts: Option<Vec<u128>>,
}

impl ScanEvent {
    /// Scan duration in milliseconds (zero for single-burst scans).
    pub fn duration_ms(&self) -> u64 {
        self.end_ms - self.start_ms
    }

    /// Number of distinct (protocol, port) services targeted.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Packet count on the most-targeted service.
    pub fn top_port(&self) -> Option<((Transport, u16), u64)> {
        self.ports.iter().max_by_key(|(_, n)| *n).copied()
    }

    /// The paper's footnote-9 single/multi-port classification.
    pub fn port_class(&self) -> PortClass {
        classify_ports(self.ports.iter().map(|&(_, n)| n), self.packets)
    }

    /// Whether the event targets the given service at all.
    pub fn targets(&self, proto: Transport, port: u16) -> bool {
        self.ports
            .binary_search_by_key(&(proto, port), |&(k, _)| k)
            .is_ok()
    }
}

/// A set of scan events plus the summary statistics the paper's Table 1
/// reports per aggregation level.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanReport {
    /// All detected events, in flush order (≈ end-time order).
    pub events: Vec<ScanEvent>,
}

impl ScanReport {
    /// Wraps a list of events.
    pub fn new(events: Vec<ScanEvent>) -> Self {
        ScanReport { events }
    }

    /// Number of scans (events) — Table 1 "scans".
    pub fn scans(&self) -> usize {
        self.events.len()
    }

    /// Total packets attributed to scanning — Table 1 "packets".
    pub fn packets(&self) -> u64 {
        self.events.iter().map(|e| e.packets).sum()
    }

    /// Distinct scan sources — Table 1 "sources".
    pub fn sources(&self) -> usize {
        self.source_set().len()
    }

    /// The distinct source prefixes.
    pub fn source_set(&self) -> HashSet<Ipv6Prefix> {
        self.events.iter().map(|e| e.source).collect()
    }

    /// Events overlapping the half-open time range `[start, end)`.
    ///
    /// An event overlaps if any of its packets could fall in the range,
    /// i.e. `start_ms < end && end_ms >= start`.
    pub fn in_range(&self, start: u64, end: u64) -> impl Iterator<Item = &ScanEvent> {
        self.events
            .iter()
            .filter(move |e| e.start_ms < end && e.end_ms >= start)
    }

    /// Sorted scan durations in milliseconds.
    pub fn durations_ms(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self.events.iter().map(ScanEvent::duration_ms).collect();
        d.sort_unstable();
        d
    }

    /// Total packets per source, descending — the concentration input for
    /// Fig. 3.
    pub fn packets_by_source(&self) -> Vec<(Ipv6Prefix, u64)> {
        use std::collections::HashMap;
        let mut m: HashMap<Ipv6Prefix, u64> = HashMap::new();
        for e in &self.events {
            *m.entry(e.source).or_default() += e.packets;
        }
        let mut v: Vec<_> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: ScanReport) {
        self.events.extend(other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str, start: u64, end: u64, packets: u64) -> ScanEvent {
        ScanEvent {
            source: src.parse().unwrap(),
            agg: AggLevel::L64,
            start_ms: start,
            end_ms: end,
            packets,
            distinct_dsts: 100,
            distinct_srcs: 1,
            ports: vec![((Transport::Tcp, 22), packets)],
            dsts: None,
        }
    }

    #[test]
    fn report_totals() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 10, 500),
            ev("2001:db8::/64", 100, 110, 300),
            ev("2001:db8:1::/64", 0, 5, 200),
        ]);
        assert_eq!(r.scans(), 3);
        assert_eq!(r.packets(), 1000);
        assert_eq!(r.sources(), 2);
    }

    #[test]
    fn in_range_is_overlap_semantics() {
        let r = ScanReport::new(vec![ev("2001:db8::/64", 50, 150, 10)]);
        assert_eq!(r.in_range(0, 51).count(), 1); // starts before end of range
        assert_eq!(r.in_range(0, 50).count(), 0); // half-open: excluded
        assert_eq!(r.in_range(150, 200).count(), 1); // last packet at 150
        assert_eq!(r.in_range(151, 200).count(), 0);
        assert_eq!(r.in_range(100, 120).count(), 1); // straddles
    }

    #[test]
    fn packets_by_source_descends() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 1, 10),
            ev("2001:db8:1::/64", 0, 1, 99),
            ev("2001:db8::/64", 2, 3, 5),
        ]);
        let v = r.packets_by_source();
        assert_eq!(v[0].1, 99);
        assert_eq!(v[1].1, 15);
    }

    #[test]
    fn event_accessors() {
        let e = ev("2001:db8::/64", 5, 105, 42);
        assert_eq!(e.duration_ms(), 100);
        assert_eq!(e.num_ports(), 1);
        assert_eq!(e.top_port().unwrap().0, (Transport::Tcp, 22));
        assert!(e.targets(Transport::Tcp, 22));
        assert!(!e.targets(Transport::Udp, 22));
        assert!(!e.targets(Transport::Tcp, 23));
    }

    #[test]
    fn durations_sorted() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 500, 1),
            ev("2001:db8::/64", 0, 100, 1),
            ev("2001:db8::/64", 0, 300, 1),
        ]);
        assert_eq!(r.durations_ms(), vec![100, 300, 500]);
    }
}
