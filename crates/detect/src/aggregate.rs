//! Scan-source aggregation levels.
//!
//! The central methodological knob of the paper (§2.2): whether to treat
//! each 128-bit source address independently or to aggregate all packets
//! from a covering prefix before applying the scan definition. Too specific
//! misses spread scanners (AS#18 sourcing from an entire /32); too coarse
//! conflates distinct actors and innocent hosts (the AS#6 cloud provider
//! handing out prefixes more specific than /96).

use lumen6_addr::Ipv6Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A source aggregation level: the prefix length sources are truncated to
/// before detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AggLevel(u8);

impl AggLevel {
    /// No aggregation: each /128 source address stands alone.
    pub const L128: AggLevel = AggLevel(128);
    /// /64 aggregation, the paper's primary reporting level.
    pub const L64: AggLevel = AggLevel(64);
    /// /48 aggregation — the smallest Internet-routable IPv6 entity.
    pub const L48: AggLevel = AggLevel(48);
    /// /32 aggregation — a typical RIR allocation for an entire network.
    pub const L32: AggLevel = AggLevel(32);

    /// The three levels the paper reports throughout (Table 1, Fig. 2, ...).
    pub const PAPER_LEVELS: [AggLevel; 3] = [AggLevel::L128, AggLevel::L64, AggLevel::L48];

    /// An arbitrary level; clamped to 0..=128.
    pub fn new(len: u8) -> Self {
        AggLevel(len.min(128))
    }

    /// The prefix length.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a prefix length, not a container size
    pub fn len(&self) -> u8 {
        self.0
    }

    /// Aggregates a source address to this level.
    #[inline]
    pub fn source_of(&self, addr: u128) -> Ipv6Prefix {
        Ipv6Prefix::new(addr, self.0)
    }
}

impl fmt::Display for AggLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}", self.0)
    }
}

impl From<u8> for AggLevel {
    fn from(len: u8) -> Self {
        AggLevel::new(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_of_truncates() {
        let a: u128 = "2001:db8:1:2:3:4:5:6"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        assert_eq!(AggLevel::L64.source_of(a).to_string(), "2001:db8:1:2::/64");
        assert_eq!(AggLevel::L48.source_of(a).to_string(), "2001:db8:1::/48");
        assert_eq!(AggLevel::L128.source_of(a).bits(), a);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(AggLevel::L64.to_string(), "/64");
        assert_eq!(AggLevel::new(96).to_string(), "/96");
    }

    #[test]
    fn clamped_construction() {
        assert_eq!(AggLevel::new(200).len(), 128);
        assert_eq!(AggLevel::from(48u8), AggLevel::L48);
    }

    #[test]
    fn ordering_coarser_is_smaller() {
        assert!(AggLevel::L32 < AggLevel::L48);
        assert!(AggLevel::L48 < AggLevel::L64);
        assert!(AggLevel::L64 < AggLevel::L128);
    }
}
