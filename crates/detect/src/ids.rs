//! A complete streaming IDS assembled from the pipeline stages.
//!
//! [`Ids`] is the operational integration the paper's discussion points
//! toward: packets stream in; per-epoch the engine
//!
//! 1. applies a lightweight artifact screen (the 5-duplicate rule over the
//!    epoch buffer),
//! 2. runs adaptive-aggregation analysis to resolve each actor at the right
//!    prefix level,
//! 3. offers the alerts to the collateral-guarded [`Blocklist`], and
//! 4. reports everything as [`IdsAction`]s for the operator's audit log.
//!
//! Between epochs, [`Ids::is_blocked`] answers "is this source currently
//! blocked?" in O(prefix length) — the enforcement fast path.

use crate::adaptive::{AdaptiveConfig, AdaptiveIds, Alert};
use crate::blocklist::{Blocklist, BlocklistConfig, Decision};
use crate::prefilter::{ArtifactFilter, ArtifactFilterConfig};
use lumen6_trace::PacketRecord;
use serde::{Deserialize, Serialize};

/// IDS engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdsConfig {
    /// Analysis epoch length: buffered packets are analyzed and flushed
    /// whenever this much time has passed. Defaults to one day.
    pub epoch_ms: u64,
    /// Artifact screening applied to each epoch buffer.
    pub prefilter: ArtifactFilterConfig,
    /// Adaptive-aggregation analysis parameters.
    pub adaptive: AdaptiveConfig,
    /// Blocklist admission policy.
    pub blocklist: BlocklistConfig,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            epoch_ms: lumen6_trace::DAY_MS,
            prefilter: ArtifactFilterConfig::default(),
            adaptive: AdaptiveConfig::default(),
            blocklist: BlocklistConfig::default(),
        }
    }
}

/// One entry of the per-epoch audit log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IdsAction {
    /// An adaptive alert was raised.
    Alerted(Alert),
    /// The blocklist admitted or rejected an alert.
    BlocklistDecision(Decision),
    /// Artifact screening removed this many packets from the epoch.
    ArtifactsRemoved(u64),
    /// Expired blocklist entries dropped at epoch end.
    Expired(usize),
}

/// Per-engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdsStats {
    /// Packets observed.
    pub packets: u64,
    /// Packets dropped because their source was blocked at arrival.
    pub dropped: u64,
    /// Epochs analyzed.
    pub epochs: u64,
    /// Alerts raised in total.
    pub alerts: u64,
    /// Blocklist admissions in total.
    pub blocked: u64,
}

/// The streaming IDS engine. Feed time-ordered packets via [`Ids::push`];
/// analysis runs automatically at epoch boundaries (or force it with
/// [`Ids::flush`]).
///
/// ```
/// use lumen6_detect::ids::{Ids, IdsConfig};
/// use lumen6_trace::PacketRecord;
///
/// let mut ids = Ids::new(IdsConfig::default());
/// for i in 0..200u64 {
///     ids.push(&PacketRecord::tcp(i * 100, 0xbad, 0xd000 + i as u128, 1, 22, 60));
/// }
/// let actions = ids.flush(lumen6_trace::DAY_MS);
/// assert!(!actions.is_empty());
/// assert!(ids.is_blocked(0xbad, lumen6_trace::DAY_MS + 1));
/// ```
#[derive(Debug)]
pub struct Ids {
    config: IdsConfig,
    buffer: Vec<PacketRecord>,
    epoch_start: Option<u64>,
    blocklist: Blocklist,
    stats: IdsStats,
}

impl Ids {
    /// Creates an engine.
    pub fn new(config: IdsConfig) -> Ids {
        let blocklist = Blocklist::new(config.blocklist.clone());
        Ids {
            config,
            buffer: Vec::new(),
            epoch_start: None,
            blocklist,
            stats: IdsStats::default(),
        }
    }

    /// Feeds one packet. Returns the epoch's actions when the packet's
    /// timestamp closes an epoch (empty vector otherwise).
    ///
    /// Packets from currently-blocked sources are counted as dropped and do
    /// not enter the analysis buffer (they are already handled).
    pub fn push(&mut self, r: &PacketRecord) -> Vec<IdsAction> {
        self.stats.packets += 1;
        let mut actions = Vec::new();
        let start = *self.epoch_start.get_or_insert(r.ts_ms);
        if r.ts_ms.saturating_sub(start) >= self.config.epoch_ms {
            actions = self.analyze_epoch(r.ts_ms);
            self.epoch_start = Some(r.ts_ms);
        }
        if self.blocklist.check(r.src, r.ts_ms) {
            self.stats.dropped += 1;
        } else {
            self.buffer.push(*r);
        }
        actions
    }

    /// Forces analysis of the current buffer (end of stream).
    pub fn flush(&mut self, now_ms: u64) -> Vec<IdsAction> {
        self.analyze_epoch(now_ms)
    }

    /// Whether a source address is currently blocked (does not count hits).
    pub fn is_blocked(&mut self, addr: u128, now_ms: u64) -> bool {
        self.blocklist.check(addr, now_ms)
    }

    /// Engine counters.
    pub fn stats(&self) -> IdsStats {
        self.stats
    }

    /// The live blocklist entries with hit counts.
    pub fn blocklist_entries(&self) -> Vec<(lumen6_addr::Ipv6Prefix, u64)> {
        self.blocklist.entries()
    }

    fn analyze_epoch(&mut self, now_ms: u64) -> Vec<IdsAction> {
        let mut actions = Vec::new();
        if self.buffer.is_empty() {
            return actions;
        }
        self.stats.epochs += 1;
        let buffer = std::mem::take(&mut self.buffer);

        // 1. Artifact screen.
        let filter = ArtifactFilter::new(self.config.prefilter.clone());
        let (clean, report) = filter.filter(&buffer);
        if report.removed_packets > 0 {
            actions.push(IdsAction::ArtifactsRemoved(report.removed_packets));
        }

        // 2. Adaptive aggregation.
        let alerts = AdaptiveIds::new(self.config.adaptive.clone()).analyze(&clean);
        self.stats.alerts += alerts.len() as u64;

        // 3. Blocklist admission.
        let decisions = self.blocklist.ingest(now_ms, &alerts);
        for a in alerts {
            actions.push(IdsAction::Alerted(a));
        }
        for d in decisions {
            if matches!(d, Decision::Blocked(_)) {
                self.stats.blocked += 1;
            }
            actions.push(IdsAction::BlocklistDecision(d));
        }

        // 4. Expiry.
        let expired = self.blocklist.expire(now_ms);
        if expired > 0 {
            actions.push(IdsAction::Expired(expired));
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_trace::DAY_MS;

    fn scan_burst(src: u128, t0: u64, n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::tcp(t0 + i * 100, src, 0xd000 + u128::from(i), 1, 22, 60))
            .collect()
    }

    #[test]
    fn scanner_gets_blocked_and_subsequent_traffic_dropped() {
        let mut ids = Ids::new(IdsConfig::default());
        let scanner: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0001;
        for r in scan_burst(scanner, 0, 200) {
            assert!(ids.push(&r).is_empty(), "no epoch boundary yet");
        }
        // Next day's packet closes the epoch.
        let trigger = PacketRecord::tcp(DAY_MS + 1, scanner, 0xffff, 1, 22, 60);
        let actions = ids.push(&trigger);
        assert!(actions
            .iter()
            .any(|a| matches!(a, IdsAction::Alerted(al) if al.prefix.contains_addr(scanner))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, IdsAction::BlocklistDecision(Decision::Blocked(_)))));
        // Scanner traffic now drops on arrival.
        let before = ids.stats().dropped;
        ids.push(&PacketRecord::tcp(DAY_MS + 2, scanner, 0xfffe, 1, 22, 60));
        assert_eq!(ids.stats().dropped, before + 1);
        assert!(ids.is_blocked(scanner, DAY_MS + 3));
        // An unrelated host is unaffected.
        assert!(!ids.is_blocked(0x3fff_0000_0000_0000_0000_0000_0000_0001, DAY_MS + 3));
    }

    #[test]
    fn artifacts_do_not_produce_blocks() {
        let mut ids = Ids::new(IdsConfig::default());
        // SMTP-fallback artifact: 50 repeats to one (dst, port).
        for i in 0..50u64 {
            ids.push(&PacketRecord::tcp(i * 1000, 7, 0xbeef, 1, 25, 80));
        }
        let actions = ids.flush(DAY_MS);
        assert!(actions
            .iter()
            .any(|a| matches!(a, IdsAction::ArtifactsRemoved(n) if *n == 50)));
        assert!(!actions.iter().any(|a| matches!(a, IdsAction::Alerted(_))));
        assert!(ids.blocklist_entries().is_empty());
    }

    #[test]
    fn blocks_expire_and_traffic_resumes_buffering() {
        let mut ids = Ids::new(IdsConfig {
            blocklist: BlocklistConfig {
                ttl_ms: 2 * DAY_MS,
                ..Default::default()
            },
            ..Default::default()
        });
        let scanner: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0001;
        for r in scan_burst(scanner, 0, 200) {
            ids.push(&r);
        }
        ids.flush(DAY_MS);
        assert!(ids.is_blocked(scanner, DAY_MS + 1));
        // After TTL, an epoch analysis expires the entry.
        assert!(!ids.is_blocked(scanner, 4 * DAY_MS));
        // Feed one benign packet then flush to trigger expiry accounting.
        ids.push(&PacketRecord::tcp(4 * DAY_MS, 9, 0xaaaa, 1, 443, 60));
        let actions = ids.flush(5 * DAY_MS);
        assert!(actions.iter().any(|a| matches!(a, IdsAction::Expired(1))));
    }

    #[test]
    fn stats_accumulate() {
        let mut ids = Ids::new(IdsConfig::default());
        let scanner: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0001;
        for r in scan_burst(scanner, 0, 150) {
            ids.push(&r);
        }
        ids.flush(DAY_MS);
        let s = ids.stats();
        assert_eq!(s.packets, 150);
        assert_eq!(s.epochs, 1);
        assert_eq!(s.alerts, 1);
        assert_eq!(s.blocked, 1);
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let mut ids = Ids::new(IdsConfig::default());
        assert!(ids.flush(DAY_MS).is_empty());
        assert_eq!(ids.stats().epochs, 0);
    }
}
