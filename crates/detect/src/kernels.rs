//! Shared column kernels for the batched detection paths.
//!
//! Both hot ingest paths — the sequential grouped batch path
//! ([`ScanDetector::observe_batch`](crate::ScanDetector::observe_batch)) and
//! the sharded router
//! ([`ShardedDetector::observe_batch`](crate::ShardedDetector::observe_batch))
//! — start from the same question about the `src` column of a
//! [`RecordBatch`](lumen6_trace::RecordBatch): *which aggregated source does
//! each row belong to?* This module hoists the u128 prefix-mask and routing
//! math into plain column-in/column-out kernels so the answer is computed in
//! one tight pass per batch (a single AND against a precomputed mask, or one
//! memoized hash per source change) instead of being re-derived row by row
//! behind a `PacketRecord` gather.
//!
//! The kernels write into caller-owned scratch vectors that are cleared and
//! refilled, never reallocated in steady state — the same reuse discipline
//! as [`RecordBatch`](lumen6_trace::RecordBatch) itself.

use crate::aggregate::AggLevel;
use lumen6_addr::cast::{high64, low64};

/// The network mask for a prefix length: the top `len` bits set.
/// Semantics match `Ipv6Prefix::new` (len 0 masks everything away, lengths
/// above 128 clamp to a full /128 mask).
#[inline]
#[must_use]
pub fn level_mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else if len >= 128 {
        u128::MAX
    } else {
        !(u128::MAX >> len)
    }
}

/// Masks a source column down to `level` in one vectorizable pass:
/// `out[i] = src[i] & mask(level)`. The result bits equal
/// `level.source_of(src[i]).bits()` for every row. `out` is cleared first
/// and reused across batches.
pub fn aggregate_column(src: &[u128], level: AggLevel, out: &mut Vec<u128>) {
    let m = level_mask(level.len());
    out.clear();
    out.extend(src.iter().map(|&s| s & m));
}

/// Seed-free 64-bit mixer (SplitMix64 finalizer). Shard routing must be
/// deterministic across runs, so no `RandomState`.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard owning `src` when routing on `coarsest` across `shards`
/// workers. Shared by the live router, the column kernel below, and
/// snapshot restore, so a checkpoint re-partitions exactly as the stream
/// routes.
#[inline]
#[must_use]
pub fn route(coarsest: AggLevel, shards: usize, src: u128) -> usize {
    let bits = src & level_mask(coarsest.len());
    let h = mix64(high64(bits) ^ low64(bits).rotate_left(32) ^ u64::from(coarsest.len()));
    (h % shards.max(1) as u64) as usize
}

/// Computes the owning shard for every row of a source column:
/// `out[i] = route(coarsest, shards, src[i])`. A last-source memo skips the
/// mask-and-hash for consecutive same-source rows — the dominant shape of
/// bursty scan traffic — making the pass one compare per row in the best
/// case. `out` is cleared first and reused across batches.
pub fn route_column(src: &[u128], coarsest: AggLevel, shards: usize, out: &mut Vec<u32>) {
    out.clear();
    out.reserve(src.len());
    let mut last: Option<(u128, u32)> = None;
    for &s in src {
        let sh = match last {
            Some((p, sh)) if p == s => sh,
            _ => {
                let sh = route(coarsest, shards, s) as u32;
                last = Some((s, sh));
                sh
            }
        };
        out.push(sh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_addr::Ipv6Prefix;

    #[test]
    fn level_mask_matches_prefix_new() {
        let addr: u128 = 0x2001_0db8_1234_5678_9abc_def0_1122_3344;
        for len in [0u8, 1, 32, 48, 64, 96, 127, 128] {
            assert_eq!(
                addr & level_mask(len),
                Ipv6Prefix::new(addr, len).bits(),
                "/{len}"
            );
        }
        assert_eq!(level_mask(200), u128::MAX);
    }

    #[test]
    fn aggregate_column_matches_source_of() {
        let srcs: Vec<u128> = (0..64u128)
            .map(|i| (0x2001_0db8_0000_0000u128 + i) << 64 | (i * 7))
            .collect();
        let mut out = Vec::new();
        for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48, AggLevel::L32] {
            aggregate_column(&srcs, lvl, &mut out);
            assert_eq!(out.len(), srcs.len());
            for (i, &s) in srcs.iter().enumerate() {
                assert_eq!(out[i], lvl.source_of(s).bits(), "{lvl} row {i}");
            }
        }
    }

    #[test]
    fn aggregating_a_masked_column_narrows() {
        // Coarsening an already-masked column equals masking the raw one:
        // the kernels compose, so multi-level passes can narrow columns.
        let srcs: Vec<u128> = (0..32u128).map(|i| i << 60 | 0xabc).collect();
        let (mut l64, mut l48a, mut l48b) = (Vec::new(), Vec::new(), Vec::new());
        aggregate_column(&srcs, AggLevel::L64, &mut l64);
        aggregate_column(&l64, AggLevel::L48, &mut l48a);
        aggregate_column(&srcs, AggLevel::L48, &mut l48b);
        assert_eq!(l48a, l48b);
    }

    #[test]
    fn route_column_matches_scalar_route() {
        let srcs: Vec<u128> = (0..500u128)
            .map(|i| ((i % 13) << 64) | (i * 0x9e37))
            .collect();
        let mut out = Vec::new();
        for shards in [1usize, 2, 4, 7] {
            route_column(&srcs, AggLevel::L48, shards, &mut out);
            assert_eq!(out.len(), srcs.len());
            for (i, &s) in srcs.iter().enumerate() {
                assert_eq!(out[i] as usize, route(AggLevel::L48, shards, s));
                assert!((out[i] as usize) < shards);
            }
        }
    }

    #[test]
    fn route_is_level_consistent() {
        // Sources equal at the coarsest level route identically regardless
        // of finer bits — the invariant that lets one shard own all levels'
        // state for a source.
        let base: u128 = 0x2001_0db8_0001_0000 << 64;
        for host in 0..1_000u128 {
            assert_eq!(
                route(AggLevel::L48, 7, base | host),
                route(AggLevel::L48, 7, base),
            );
            assert_eq!(
                route(AggLevel::L48, 7, base | (host << 64)),
                route(AggLevel::L48, 7, base),
            );
        }
    }
}
