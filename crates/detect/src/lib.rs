//! Large-scale IPv6 scan detection — the paper's core methodology as a
//! reusable library.
//!
//! The pipeline stages, in the order the paper applies them (§2):
//!
//! 1. **Artifact prefiltering** ([`prefilter`]): remove CDN connection
//!    artifacts — /64 sources whose daily traffic is >30% "5-duplicate"
//!    packets (same destination IP and port hit more than 5 times in a day).
//! 2. **Source aggregation** ([`aggregate`]): treat the traffic source as
//!    the /128 address itself or the covering /64, /48 (or any) prefix.
//!    Aggregation happens *before* detection, so a /48 can qualify as a scan
//!    source even when none of its /64s does.
//! 3. **Scan eventization** ([`detector`]): a *scan* is a source targeting
//!    at least `min_dsts` (default 100) distinct destination addresses with
//!    packet inter-arrival never exceeding `timeout` (default 3 600 s).
//! 4. **Characterization** ([`portclass`]): single-port vs multi-port scan
//!    tagging via the fraction of packets on the most common port
//!    (footnote 9 of the paper).
//!
//! Additional detectors and machinery:
//!
//! - [`mawi`]: the extended Fukuda–Heidemann detector used for the public
//!   MAWI traces (§4): per-port scans with a packets-per-destination cap and
//!   a packet-length entropy criterion, merged per source.
//! - [`multi`]: one-pass simultaneous detection at several aggregation
//!   levels (an IDS cannot afford one trace pass per level).
//! - [`parallel`]: the sharded parallel pipeline — partitions the stream by
//!   the coarsest configured source prefix across worker threads and merges
//!   deterministically, producing output identical to [`multi`].
//! - [`adaptive`]: the adaptive-aggregation IDS sketched in the paper's
//!   discussion (§5): start non-aggregated, promote to coarser prefixes when
//!   sibling density indicates a spread source, and report the collateral
//!   damage a blocklist entry at that aggregation would cause.
//! - [`sketch`]: a from-scratch HyperLogLog for memory-bounded distinct
//!   destination counting (the production-deployment variant of the exact
//!   `HashSet` the offline analysis uses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod aggregate;
pub mod blocklist;
pub mod detector;
pub mod event;
pub mod fingerprint;
pub mod fxhash;
pub mod ids;
pub mod kernels;
pub mod mawi;
pub mod multi;
pub mod parallel;
pub mod portclass;
pub mod prefilter;
pub mod session;
pub mod sketch;
pub mod snapshot;

pub use aggregate::AggLevel;
pub use blocklist::{Blocklist, BlocklistConfig};
pub use detector::{ScanDetector, ScanDetectorConfig};
pub use event::{ScanEvent, ScanReport};
pub use fingerprint::Fingerprint;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{Ids, IdsAction, IdsConfig};
pub use mawi::{MawiConfig, MawiDetector, MawiScan};
pub use parallel::{detect_multi_sharded, ShardPlan, ShardedDetector};
pub use portclass::{classify_ports, PortClass};
pub use prefilter::{ArtifactFilter, ArtifactFilterConfig, FilterReport};
pub use session::{
    Backend, Checkpoint, CheckpointPolicy, Detect, DetectorBuilder, ReorderBuffer, Session,
    SessionConfig, SessionError, SessionOutcome, SessionReport, Step, DEFAULT_SESSION_BATCH,
};
pub use sketch::{HyperLogLog, SketchConfig};
pub use snapshot::{DetectorSnapshot, LevelState, SnapshotError};

/// One-line import for the unified detection API: the [`Detect`] trait,
/// the [`DetectorBuilder`], session/checkpoint types, and the configuration
/// types they take.
pub mod prelude {
    pub use crate::aggregate::AggLevel;
    pub use crate::detector::{ScanDetector, ScanDetectorConfig};
    pub use crate::event::{ScanEvent, ScanReport};
    pub use crate::multi::MultiLevelDetector;
    pub use crate::parallel::{ShardPlan, ShardedDetector};
    pub use crate::session::{
        Backend, Checkpoint, CheckpointPolicy, Detect, DetectorBuilder, ReorderBuffer, Session,
        SessionConfig, SessionError, SessionOutcome, SessionReport, Step,
    };
    pub use crate::sketch::SketchConfig;
    pub use crate::snapshot::{DetectorSnapshot, LevelState, SnapshotError};
    pub use lumen6_trace::{FileStreamSource, MaterializedSource, Source};
}
