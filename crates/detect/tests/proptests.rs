//! Property tests for detector invariants: conservation, event separation,
//! and monotonicity in the scan-definition parameters.

use lumen6_detect::detector::detect;
use lumen6_detect::{AggLevel, ScanDetectorConfig};
use lumen6_trace::PacketRecord;
use proptest::prelude::*;
use std::collections::HashMap;

/// Generates a random but time-sorted workload with a handful of sources and
/// destinations, deltas small enough that both split and no-split cases occur.
fn arb_workload() -> impl Strategy<Value = Vec<PacketRecord>> {
    proptest::collection::vec((0u64..200_000, 0u8..6, 0u16..300, 1u16..5), 1..300).prop_map(
        |steps| {
            let mut ts = 0u64;
            steps
                .into_iter()
                .map(|(dt, src, dst, port)| {
                    ts += dt;
                    PacketRecord::tcp(
                        ts,
                        (u128::from(src) << 64) | 1,
                        u128::from(dst),
                        40_000,
                        port,
                        60,
                    )
                })
                .collect()
        },
    )
}

fn cfg(min_dsts: u64, timeout_ms: u64) -> ScanDetectorConfig {
    ScanDetectorConfig {
        agg: AggLevel::L64,
        min_dsts,
        timeout_ms,
        keep_dsts: true,
        sketch: None,
    }
}

/// Interleaves records one-per-source while preserving each source's own
/// order — consecutive rows almost always route to *different* shards,
/// defeating the columnar router's last-source memo and maximally
/// fragmenting the per-shard staging buffers.
fn round_robin_by_source(recs: &[PacketRecord]) -> Vec<PacketRecord> {
    let mut groups: Vec<(u128, std::collections::VecDeque<PacketRecord>)> = Vec::new();
    for r in recs {
        match groups.iter_mut().find(|(s, _)| *s == r.src) {
            Some((_, g)) => g.push_back(*r),
            None => groups.push((r.src, std::iter::once(*r).collect())),
        }
    }
    let mut out = Vec::with_capacity(recs.len());
    while out.len() < recs.len() {
        for (_, g) in &mut groups {
            if let Some(r) = g.pop_front() {
                out.push(r);
            }
        }
    }
    out
}

/// The three adversarial arrival orders the batch-routed sharded
/// differential tests sweep. Each preserves every source's internal time
/// order (what detection state depends on) while stressing a different
/// router behavior.
fn apply_ordering(recs: &[PacketRecord], ordering: usize) -> Vec<PacketRecord> {
    match ordering {
        // Every row shares one source: all sub-batches land on one shard
        // and the other shards only ever see flush/finish control messages.
        0 => recs
            .iter()
            .map(|r| PacketRecord {
                src: recs[0].src,
                ..*r
            })
            .collect(),
        // Round-robin across sources: worst case for the routing memo.
        1 => round_robin_by_source(recs),
        // Stable-sorted by source: the stream arrives source-clustered, so
        // each flush window routes long runs to a single shard (worst-case
        // imbalance within a window).
        _ => {
            let mut v = recs.to_vec();
            v.sort_by_key(|r| r.src);
            v
        }
    }
}

proptest! {
    /// With min_dsts = 1, every packet belongs to exactly one event.
    #[test]
    fn conservation_at_min_dsts_one(recs in arb_workload(), timeout in 1_000u64..100_000) {
        let report = detect(&recs, cfg(1, timeout));
        let total: u64 = report.events.iter().map(|e| e.packets).sum();
        prop_assert_eq!(total, recs.len() as u64);
        // Per-event port histograms also conserve packets.
        for e in &report.events {
            let by_port: u64 = e.ports.iter().map(|(_, n)| n).sum();
            prop_assert_eq!(by_port, e.packets);
        }
    }

    /// Qualifying events never contain more packets than the input, and
    /// distinct_dsts is bounded by packets.
    #[test]
    fn events_are_bounded(recs in arb_workload()) {
        let report = detect(&recs, cfg(10, 50_000));
        let total: u64 = report.events.iter().map(|e| e.packets).sum();
        prop_assert!(total <= recs.len() as u64);
        for e in &report.events {
            prop_assert!(e.distinct_dsts <= e.packets);
            prop_assert!(e.distinct_srcs <= e.packets);
            prop_assert!(e.start_ms <= e.end_ms);
            prop_assert_eq!(e.dsts.as_ref().unwrap().len() as u64, e.distinct_dsts);
        }
    }

    /// Same-source events are separated by more than the timeout.
    #[test]
    fn event_separation(recs in arb_workload(), timeout in 1_000u64..100_000) {
        let report = detect(&recs, cfg(1, timeout));
        let mut per_source: HashMap<_, Vec<(u64, u64)>> = HashMap::new();
        for e in &report.events {
            per_source.entry(e.source).or_default().push((e.start_ms, e.end_ms));
        }
        for spans in per_source.values_mut() {
            spans.sort();
            for w in spans.windows(2) {
                prop_assert!(w[1].0 > w[0].1 + timeout,
                    "events {:?} and {:?} closer than timeout {}", w[0], w[1], timeout);
            }
        }
    }

    /// Lowering min_dsts can only add scans (superset of sources).
    #[test]
    fn min_dsts_monotone(recs in arb_workload()) {
        let strict = detect(&recs, cfg(50, 50_000));
        let loose = detect(&recs, cfg(5, 50_000));
        prop_assert!(loose.scans() >= strict.scans());
        let loose_sources = loose.source_set();
        for s in strict.source_set() {
            prop_assert!(loose_sources.contains(&s));
        }
    }

    /// Raising the timeout can only merge runs: every source detected with a
    /// short timeout is detected with a longer one.
    #[test]
    fn timeout_monotone_in_sources(recs in arb_workload()) {
        let short = detect(&recs, cfg(20, 5_000));
        let long = detect(&recs, cfg(20, 500_000));
        let long_sources = long.source_set();
        for s in short.source_set() {
            prop_assert!(long_sources.contains(&s));
        }
        // Scan *events* can only shrink or stay equal in number when runs merge.
        prop_assert!(long.scans() <= short.scans() || short.scans() == 0);
    }

    /// Coarser aggregation never loses scan packets when every run
    /// qualifies (min_dsts = 1): the same packets regroup into fewer sources.
    #[test]
    fn aggregation_conserves_packets_at_min_one(recs in arb_workload()) {
        let fine = detect(&recs, ScanDetectorConfig { agg: AggLevel::L128, ..cfg(1, 50_000) });
        let coarse = detect(&recs, ScanDetectorConfig { agg: AggLevel::L48, ..cfg(1, 50_000) });
        prop_assert_eq!(fine.packets(), coarse.packets());
        prop_assert!(coarse.sources() <= fine.sources());
    }

    /// Artifact prefilter invariants: kept + removed = input, and kept
    /// packets are exactly the input minus removed-source-day packets
    /// (order preserved).
    #[test]
    fn prefilter_conserves_and_preserves_order(recs in arb_workload()) {
        use lumen6_detect::ArtifactFilter;
        let (kept, report) = ArtifactFilter::default().filter(&recs);
        prop_assert_eq!(kept.len() as u64 + report.removed_packets, recs.len() as u64);
        prop_assert_eq!(report.input_packets, recs.len() as u64);
        prop_assert!(kept.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        // Removed-by-service totals match the removed packet count.
        let by_service: u64 = report.removed_by_service.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(by_service, report.removed_packets);
        // Idempotence: filtering the kept stream removes nothing new
        // (sources that survived were below the duplicate fraction, and
        // removal never changes a surviving source's own packets).
        let (kept2, report2) = ArtifactFilter::default().filter(&kept);
        prop_assert_eq!(kept2.len(), kept.len());
        prop_assert_eq!(report2.removed_packets, 0);
    }

    /// The sharded parallel pipeline is exactly equivalent to the
    /// sequential multi-level detector — same events, same order, same
    /// reports — for any workload, shard count, and batch geometry.
    #[test]
    fn sharded_equals_sequential(
        recs in arb_workload(),
        shards in 1usize..9,
        batch in 1usize..600,
        depth in 1usize..5,
    ) {
        use lumen6_detect::multi::detect_multi;
        use lumen6_detect::{detect_multi_sharded, ShardPlan};
        let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
        let base = cfg(5, 20_000);
        let seq = detect_multi(&recs, &levels, base.clone());
        let par = detect_multi_sharded(&recs, &levels, base, ShardPlan { shards, batch, depth });
        prop_assert_eq!(par, seq);
    }

    /// Sharded single-level detection with destination retention and
    /// sketched counters also matches the sequential run exactly.
    #[test]
    fn sharded_equals_sequential_with_sketch(recs in arb_workload(), shards in 1usize..6) {
        use lumen6_detect::multi::detect_multi;
        use lumen6_detect::{detect_multi_sharded, ShardPlan};
        let base = ScanDetectorConfig { sketch: Some((16, 12).into()), ..cfg(3, 30_000) };
        let levels = [AggLevel::L64];
        let seq = detect_multi(&recs, &levels, base.clone());
        let par = detect_multi_sharded(&recs, &levels, base, ShardPlan { shards, batch: 17, depth: 2 });
        prop_assert_eq!(par, seq);
    }

    /// The streaming detector with flush_idle produces the same qualifying
    /// events as the batch run (GC must never change results).
    #[test]
    fn flush_idle_is_transparent(recs in arb_workload()) {
        use lumen6_detect::ScanDetector;
        let config = cfg(5, 20_000);
        let batch = detect(&recs, config.clone());

        let mut det = ScanDetector::new(config);
        let mut events = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            if let Some(e) = det.observe(r) {
                events.push(e);
            }
            if i % 37 == 0 {
                events.extend(det.flush_idle(r.ts_ms));
            }
        }
        events.extend(det.finish());
        events.sort_by_key(|e| (e.start_ms, e.source));
        let mut batch_events = batch.events.clone();
        batch_events.sort_by_key(|e| (e.start_ms, e.source));
        prop_assert_eq!(events, batch_events);
    }

    /// The columnar batch path is exactly equivalent to per-record observe
    /// across all three backends — single-level, multi-level, and sharded:
    /// same snapshots, same reports (events in the same order), for any
    /// workload and batch geometry.
    #[test]
    fn batched_equals_per_record_all_backends(
        recs in arb_workload(),
        chunk in 1usize..400,
    ) {
        use lumen6_detect::{Backend, DetectorBuilder, ShardPlan};
        use lumen6_trace::RecordBatch;
        let base = cfg(5, 20_000);
        let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
        let builders = [
            (DetectorBuilder::new(base.clone()), Backend::Sequential),
            (
                DetectorBuilder::new(base.clone()).levels(&levels),
                Backend::Sequential,
            ),
            (
                DetectorBuilder::new(base).levels(&levels),
                Backend::Sharded(ShardPlan {
                    shards: 3,
                    batch: 64,
                    depth: 2,
                }),
            ),
        ];
        for (builder, backend) in builders {
            let mut per = builder.build(backend);
            for r in &recs {
                per.observe(r);
            }
            let mut bat = builder.build(backend);
            for part in recs.chunks(chunk) {
                let b: RecordBatch = part.iter().copied().collect();
                bat.observe_batch(&b);
            }
            prop_assert_eq!(per.state(), bat.state());
            prop_assert_eq!(per.finish(), bat.finish());
        }
    }

    /// A checkpoint written mid-batch is byte-identical to one written by
    /// per-record ingest at the same stream position, and resuming from it
    /// reproduces the uninterrupted per-record report exactly.
    #[test]
    fn checkpoint_resume_byte_identical_across_batch_sizes(
        recs in arb_workload(),
        batch in 2usize..300,
        every in 10u64..120,
    ) {
        use lumen6_detect::{
            Backend, CheckpointPolicy, DetectorBuilder, Session, SessionConfig, SessionOutcome,
        };
        use lumen6_trace::TraceWriter;
        use std::io::Write as _;
        use std::sync::atomic::{AtomicU64, Ordering};

        static CASE: AtomicU64 = AtomicU64::new(0);
        let id = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "lumen6-ckpt-prop-{}-{id}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.l6tr");
        let mut w = TraceWriter::new(std::io::BufWriter::new(
            std::fs::File::create(&trace).unwrap(),
        ))
        .unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.finish().unwrap().flush().unwrap();

        let levels = [AggLevel::L128, AggLevel::L64];
        let builder = DetectorBuilder::new(cfg(5, 20_000)).levels(&levels);

        // Uninterrupted per-record reference.
        let reference = match Session::new(
            builder.clone(),
            Backend::Sequential,
            SessionConfig { batch: 1, ..Default::default() },
        )
        .run(&trace)
        .unwrap()
        {
            SessionOutcome::Finished(rep) => rep,
            SessionOutcome::Stopped { .. } => unreachable!("no checkpoint policy"),
        };

        let mut reports = Vec::new();
        let mut first_checkpoints = Vec::new();
        for b in [1usize, batch] {
            let ck = dir.join(format!("ck-{b}"));
            let stop_cfg = SessionConfig {
                checkpoint: Some(CheckpointPolicy {
                    path: ck.clone(),
                    every_records: every,
                    stop_after: Some(1),
                }),
                batch: b,
                ..Default::default()
            };
            let report = match Session::new(builder.clone(), Backend::Sequential, stop_cfg)
                .run(&trace)
                .unwrap()
            {
                SessionOutcome::Stopped { .. } => {
                    first_checkpoints.push(std::fs::read(&ck).unwrap());
                    // Resume (the checkpoint file is probed automatically).
                    let resume_cfg = SessionConfig {
                        checkpoint: Some(CheckpointPolicy {
                            path: ck,
                            every_records: every,
                            stop_after: None,
                        }),
                        batch: b,
                        ..Default::default()
                    };
                    match Session::new(builder.clone(), Backend::Sequential, resume_cfg)
                        .run(&trace)
                        .unwrap()
                    {
                        SessionOutcome::Finished(rep) => rep,
                        SessionOutcome::Stopped { .. } => unreachable!("no stop_after"),
                    }
                }
                // Stream shorter than one checkpoint interval.
                SessionOutcome::Finished(rep) => rep,
            };
            reports.push(report);
        }
        if first_checkpoints.len() == 2 {
            prop_assert_eq!(
                &first_checkpoints[0],
                &first_checkpoints[1],
                "mid-batch checkpoint differs from per-record checkpoint"
            );
        }
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0].reports, &reference.reports);
        prop_assert_eq!(reports[0].records, reference.records);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Out-of-order tolerance: feeding any within-watermark shuffle of a
    /// workload through the reorder buffer yields exactly the sorted-stream
    /// report, with nothing dropped. Arrival order is a jitter-sort: each
    /// record's sort key is its timestamp plus a jitter below half the
    /// watermark, so two records only ever swap when their true timestamps
    /// are within the watermark of each other.
    #[test]
    fn reorder_buffer_recovers_sorted_report(
        recs in arb_workload(),
        jitter_seed in 0u64..1_000_000,
        watermark in 1_000u64..50_000,
    ) {
        use lumen6_detect::{Backend, DetectorBuilder, ReorderBuffer};
        let config = cfg(5, 20_000);
        let sorted_report = detect(&recs, config.clone());

        let mut arrival: Vec<(u64, usize)> = recs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                // Cheap deterministic per-record jitter in [0, watermark/2).
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ jitter_seed;
                (r.ts_ms + h % (watermark / 2).max(1), i)
            })
            .collect();
        arrival.sort_unstable();

        let mut buf = ReorderBuffer::new(watermark);
        let mut det = DetectorBuilder::new(config).build(Backend::Sequential);
        let mut ready = Vec::new();
        for &(_, i) in &arrival {
            buf.push(recs[i], &mut ready);
            for r in ready.drain(..) {
                det.observe(&r);
            }
        }
        buf.drain(&mut ready);
        for r in ready.drain(..) {
            det.observe(&r);
        }
        prop_assert_eq!(buf.late_dropped(), 0);
        let reports = det.finish();
        let got = &reports[&AggLevel::L64];
        prop_assert_eq!(&got.events, &sorted_report.events);
    }
}

// The grid tests below sweep 12 shard×batch combinations (and a
// three-session checkpoint round-trip) *inside* each case, so each case
// covers far more executions than a single property run suggests.
proptest! {
    /// The batch-routed columnar sharded pipeline is differentially equal
    /// to the sequential multi-level detector — same mid-stream state, same
    /// final state, same reports — over the full shards {1,2,4,8} × batch
    /// {1,7,8192} grid under all three adversarial arrival orders.
    #[test]
    fn batch_routed_sharded_grid_matches_sequential(
        recs in arb_workload(),
        ordering in 0usize..3,
    ) {
        use lumen6_detect::{Backend, DetectorBuilder, ShardPlan};
        use lumen6_trace::RecordBatch;

        let recs = apply_ordering(&recs, ordering);
        let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
        let base = cfg(3, 20_000);
        let half = recs.len() / 2;

        let mut seq = DetectorBuilder::new(base.clone())
            .levels(&levels)
            .build(Backend::Sequential);
        let mut staged = RecordBatch::with_capacity(recs.len());
        staged.extend(recs[..half].iter().copied());
        seq.observe_batch(&staged);
        let seq_mid = seq.state();
        staged.clear();
        staged.extend(recs[half..].iter().copied());
        seq.observe_batch(&staged);
        let seq_end = seq.state();
        let seq_report = seq.finish();

        for shards in [1usize, 2, 4, 8] {
            for batch in [1usize, 7, 8192] {
                let plan = ShardPlan { shards, batch, depth: 2 };
                let mut par = DetectorBuilder::new(base.clone())
                    .levels(&levels)
                    .build(Backend::Sharded(plan));
                let mut b = RecordBatch::with_capacity(batch.min(recs.len()));
                for part in recs[..half].chunks(batch) {
                    b.clear();
                    b.extend(part.iter().copied());
                    par.observe_batch(&b);
                }
                let par_mid = par.state();
                prop_assert_eq!(
                    &par_mid, &seq_mid,
                    "mid-stream state diverged: shards={} batch={} ordering={}",
                    shards, batch, ordering
                );
                for part in recs[half..].chunks(batch) {
                    b.clear();
                    b.extend(part.iter().copied());
                    par.observe_batch(&b);
                }
                let par_end = par.state();
                prop_assert_eq!(
                    &par_end, &seq_end,
                    "final state diverged: shards={} batch={} ordering={}",
                    shards, batch, ordering
                );
                let par_report = par.finish();
                prop_assert_eq!(
                    &par_report, &seq_report,
                    "report diverged: shards={} batch={} ordering={}",
                    shards, batch, ordering
                );
            }
        }
    }

    /// A checkpoint written by a sharded session is byte-identical to one
    /// written by a sequential session at the same stream position — under
    /// any shard count, sub-batch size, and adversarial arrival order —
    /// and resuming the sharded session reproduces the uninterrupted
    /// sequential report exactly.
    #[test]
    fn sharded_checkpoint_bytes_match_sequential(
        recs in arb_workload(),
        shards in 1usize..9,
        batch_ix in 0usize..3,
        ordering in 0usize..3,
        every in 10u64..120,
    ) {
        use lumen6_detect::{
            Backend, CheckpointPolicy, DetectorBuilder, Session, SessionConfig, SessionOutcome,
            ShardPlan,
        };
        use lumen6_trace::TraceWriter;
        use std::io::Write as _;
        use std::sync::atomic::{AtomicU64, Ordering};

        static CASE: AtomicU64 = AtomicU64::new(0);
        let id = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "lumen6-shck-prop-{}-{id}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let batch = [1usize, 7, 8192][batch_ix];
        // The trace codec delta-encodes timestamps, so a session's input is
        // necessarily time-sorted: keep the adversarial *source* arrival
        // order but reassign the workload's own timestamps in sorted order.
        let mut recs = apply_ordering(&recs, ordering);
        let mut ts: Vec<u64> = recs.iter().map(|r| r.ts_ms).collect();
        ts.sort_unstable();
        for (r, t) in recs.iter_mut().zip(ts) {
            r.ts_ms = t;
        }
        let trace = dir.join("t.l6tr");
        let mut w = TraceWriter::new(std::io::BufWriter::new(
            std::fs::File::create(&trace).unwrap(),
        ))
        .unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.finish().unwrap().flush().unwrap();

        let levels = [AggLevel::L128, AggLevel::L64];
        let builder = DetectorBuilder::new(cfg(5, 20_000)).levels(&levels);
        let plan = ShardPlan { shards, batch, depth: 2 };

        // Uninterrupted sequential reference.
        let reference = match Session::new(
            builder.clone(),
            Backend::Sequential,
            SessionConfig { batch: 1, ..Default::default() },
        )
        .run(&trace)
        .unwrap()
        {
            SessionOutcome::Finished(rep) => rep,
            SessionOutcome::Stopped { .. } => unreachable!("no checkpoint policy"),
        };

        let mut checkpoints = Vec::new();
        let mut reports = Vec::new();
        for (backend, b) in [
            (Backend::Sequential, 1usize),
            (Backend::Sharded(plan), batch),
        ] {
            let ck = dir.join(format!("ck-{b}-{}", checkpoints.len()));
            let stop_cfg = SessionConfig {
                checkpoint: Some(CheckpointPolicy {
                    path: ck.clone(),
                    every_records: every,
                    stop_after: Some(1),
                }),
                batch: b,
                ..Default::default()
            };
            let report = match Session::new(builder.clone(), backend, stop_cfg)
                .run(&trace)
                .unwrap()
            {
                SessionOutcome::Stopped { .. } => {
                    checkpoints.push(std::fs::read(&ck).unwrap());
                    let resume_cfg = SessionConfig {
                        checkpoint: Some(CheckpointPolicy {
                            path: ck,
                            every_records: every,
                            stop_after: None,
                        }),
                        batch: b,
                        ..Default::default()
                    };
                    match Session::new(builder.clone(), backend, resume_cfg)
                        .run(&trace)
                        .unwrap()
                    {
                        SessionOutcome::Finished(rep) => rep,
                        SessionOutcome::Stopped { .. } => unreachable!("no stop_after"),
                    }
                }
                // Stream shorter than one checkpoint interval.
                SessionOutcome::Finished(rep) => rep,
            };
            reports.push(report);
        }
        if checkpoints.len() == 2 {
            prop_assert_eq!(
                &checkpoints[0],
                &checkpoints[1],
                "sharded checkpoint bytes differ from sequential \
                 (shards={} batch={} ordering={})",
                shards, batch, ordering
            );
        }
        prop_assert_eq!(&reports[0].reports, &reference.reports);
        prop_assert_eq!(&reports[1].reports, &reference.reports);
        prop_assert_eq!(reports[1].records, reference.records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
