//! Integration tests for the fault-tolerant streaming session layer:
//! snapshot/restore across all three backends, out-of-order tolerance,
//! checkpoint durability, and kill-resume determinism.

use lumen6_detect::prelude::*;
use lumen6_detect::DEFAULT_SESSION_BATCH;
use lumen6_trace::{PacketRecord, TraceWriter};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

/// A per-test temp directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "lumen6-session-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A sorted workload with scans at several aggregation levels: one heavy
/// /128, a spread /64 (100 distinct /128 sources, one destination each),
/// and background noise that never qualifies.
fn workload() -> Vec<PacketRecord> {
    let spread: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
    let heavy: u128 = 0x2001_0db9_0000_0000_0000_0000_0000_0001;
    let noise: u128 = 0x2001_0dbc_0000_0000_0000_0000_0000_0007;
    let mut recs: Vec<PacketRecord> = (0..100u64)
        .map(|i| {
            PacketRecord::tcp(
                i * 1_000,
                spread + u128::from(i),
                0xa000 + u128::from(i),
                1,
                22,
                60,
            )
        })
        .collect();
    recs.extend(
        (0..150u64).map(|i| PacketRecord::tcp(i * 900, heavy, 0xb000 + u128::from(i), 1, 443, 60)),
    );
    // Two bursts from the heavy source separated by more than the timeout,
    // so an event closes mid-stream.
    recs.extend((0..120u64).map(|i| {
        PacketRecord::tcp(
            8_000_000 + i * 500,
            heavy,
            0xc000 + u128::from(i),
            1,
            443,
            60,
        )
    }));
    recs.extend((0..40u64).map(|i| PacketRecord::tcp(i * 2_000, noise, 0xd000, 1, 80, 60)));
    lumen6_trace::sort_by_time(&mut recs);
    recs
}

fn write_trace(path: &std::path::Path, recs: &[PacketRecord]) {
    let mut w = TraceWriter::new(BufWriter::new(File::create(path).unwrap())).unwrap();
    for r in recs {
        w.append(r).unwrap();
    }
    w.finish().unwrap().flush().unwrap();
}

fn base_config() -> ScanDetectorConfig {
    ScanDetectorConfig {
        min_dsts: 50,
        ..Default::default()
    }
}

/// Reports serialized to canonical JSON, for byte-level comparison.
fn report_json(reports: &BTreeMap<AggLevel, ScanReport>) -> String {
    let per_level: Vec<String> = reports
        .iter()
        .map(|(lvl, r)| format!("{lvl}:{}", serde_json::to_string(&r.events).unwrap()))
        .collect();
    per_level.join("\n")
}

fn builders() -> Vec<(&'static str, DetectorBuilder, Backend)> {
    let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
    vec![
        (
            "sequential-single",
            DetectorBuilder::new(base_config()),
            Backend::Sequential,
        ),
        (
            "sequential-multi",
            DetectorBuilder::new(base_config()).levels(&levels),
            Backend::Sequential,
        ),
        (
            "sharded",
            DetectorBuilder::new(base_config()).levels(&levels),
            Backend::Sharded(ShardPlan::with_shards(3)),
        ),
    ]
}

#[test]
fn all_backends_agree_through_the_trait() {
    let recs = workload();
    let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
    let mut outputs = Vec::new();
    for backend in [
        Backend::Sequential,
        Backend::Sharded(ShardPlan::with_shards(3)),
    ] {
        let mut det = DetectorBuilder::new(base_config())
            .levels(&levels)
            .build(backend);
        for r in &recs {
            det.observe(r);
        }
        outputs.push(report_json(&det.finish()));
    }
    assert_eq!(outputs[0], outputs[1], "sequential vs sharded");
}

#[test]
fn snapshot_roundtrip_every_backend() {
    let recs = workload();
    for (name, builder, backend) in builders() {
        // Uninterrupted reference.
        let mut reference = builder.build(backend);
        for r in &recs {
            reference.observe(r);
        }
        let expect = report_json(&reference.finish());

        // Snapshot mid-stream, restore, continue.
        let mid = recs.len() / 2;
        let mut first = builder.build(backend);
        for r in &recs[..mid] {
            first.observe(r);
        }
        let snap = first.snapshot();
        drop(first);
        let mut resumed = builder.restore(backend, &snap).unwrap();
        assert_eq!(resumed.observed(), mid as u64, "{name}: observed count");
        for r in &recs[mid..] {
            resumed.observe(r);
        }
        assert_eq!(report_json(&resumed.finish()), expect, "{name}");
    }
}

#[test]
fn snapshot_roundtrip_with_sketch_and_kept_dsts() {
    let recs = workload();
    for (tag, cfg) in [
        (
            "sketch",
            ScanDetectorConfig {
                min_dsts: 50,
                sketch: Some(SketchConfig::spill_at(16)),
                ..Default::default()
            },
        ),
        (
            "keep-dsts",
            ScanDetectorConfig {
                min_dsts: 50,
                keep_dsts: true,
                ..Default::default()
            },
        ),
    ] {
        let builder = DetectorBuilder::new(cfg);
        let mut reference = builder.build(Backend::Sequential);
        for r in &recs {
            reference.observe(r);
        }
        let expect = report_json(&reference.finish());

        let mid = recs.len() / 3;
        let mut first = builder.build(Backend::Sequential);
        for r in &recs[..mid] {
            first.observe(r);
        }
        let snap = first.snapshot();
        let mut resumed = builder.restore(Backend::Sequential, &snap).unwrap();
        for r in &recs[mid..] {
            resumed.observe(r);
        }
        assert_eq!(report_json(&resumed.finish()), expect, "{tag}");
    }
}

#[test]
fn snapshots_are_portable_across_backends_and_shard_counts() {
    let recs = workload();
    let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
    let builder = DetectorBuilder::new(base_config()).levels(&levels);

    let mut reference = builder.build(Backend::Sequential);
    for r in &recs {
        reference.observe(r);
    }
    let expect = report_json(&reference.finish());

    let mid = recs.len() / 2;
    // Snapshot taken by a sharded run...
    let mut first = builder.build(Backend::Sharded(ShardPlan::with_shards(2)));
    for r in &recs[..mid] {
        first.observe(r);
    }
    let snap = first.snapshot();
    // ...restores into a sequential run, and into a different shard count.
    for (name, backend) in [
        ("sequential", Backend::Sequential),
        ("sharded-5", Backend::Sharded(ShardPlan::with_shards(5))),
    ] {
        let mut resumed = builder.restore(backend, &snap).unwrap();
        for r in &recs[mid..] {
            resumed.observe(r);
        }
        assert_eq!(
            report_json(&resumed.finish()),
            expect,
            "restore into {name}"
        );
    }
}

#[test]
fn flush_idle_is_report_neutral() {
    let recs = workload();
    for (name, builder, backend) in builders() {
        let mut plain = builder.build(backend);
        for r in &recs {
            plain.observe(r);
        }
        let expect = report_json(&plain.finish());

        // Aggressive flushing at every packet must not change the report.
        let mut flushed = builder.build(backend);
        for r in &recs {
            flushed.flush_idle(r.ts_ms);
            flushed.observe(r);
        }
        assert_eq!(report_json(&flushed.finish()), expect, "{name}");
    }
}

#[test]
fn flush_idle_closes_idle_runs() {
    // After the heavy source's first burst times out, a flush must retire
    // its run from live state (the event is held as pending, not lost).
    let cfg = base_config();
    let timeout = cfg.timeout_ms;
    let mut det = DetectorBuilder::new(cfg).build(Backend::Sequential);
    let heavy: u128 = 0x2001_0db9_0000_0000_0000_0000_0000_0001;
    for i in 0..150u64 {
        det.observe(&PacketRecord::tcp(
            i * 900,
            heavy,
            u128::from(i),
            1,
            443,
            60,
        ));
    }
    let last_ts = 149 * 900;
    det.flush_idle(last_ts + timeout + 1);
    let state = &det.state()[0];
    assert!(state.runs.is_empty(), "idle run still open after flush");
    assert_eq!(state.pending.len(), 1, "closed event must be pending");
    let reports = det.finish();
    assert_eq!(reports[&AggLevel::L64].scans(), 1);
}

// ---------------------------------------------------------------------------
// Out-of-order tolerance
// ---------------------------------------------------------------------------

fn rec_at(ts: u64, tag: u128) -> PacketRecord {
    PacketRecord::tcp(ts, 7, tag, 1, 22, 60)
}

#[test]
fn reorder_releases_in_timestamp_order() {
    let mut buf = ReorderBuffer::new(1_000);
    let mut out = Vec::new();
    for &ts in &[5_000u64, 4_500, 4_200, 6_000, 5_500, 7_500] {
        buf.push(rec_at(ts, u128::from(ts)), &mut out);
    }
    buf.drain(&mut out);
    let times: Vec<u64> = out.iter().map(|r| r.ts_ms).collect();
    assert_eq!(times, vec![4_200, 4_500, 5_000, 5_500, 6_000, 7_500]);
    assert_eq!(buf.late_dropped(), 0);
}

#[test]
fn reorder_at_watermark_is_kept() {
    // Lateness exactly equal to the watermark is still admissible.
    let mut buf = ReorderBuffer::new(1_000);
    let mut out = Vec::new();
    buf.push(rec_at(10_000, 1), &mut out);
    buf.push(rec_at(9_000, 2), &mut out); // exactly max_ts - watermark
    buf.drain(&mut out);
    assert_eq!(buf.late_dropped(), 0);
    let times: Vec<u64> = out.iter().map(|r| r.ts_ms).collect();
    assert_eq!(times, vec![9_000, 10_000]);
}

#[test]
fn reorder_beyond_watermark_is_dropped_and_counted() {
    let mut buf = ReorderBuffer::new(1_000);
    let mut out = Vec::new();
    buf.push(rec_at(10_000, 1), &mut out);
    buf.push(rec_at(8_999, 2), &mut out); // 1 ms beyond the watermark
    buf.push(rec_at(5_000, 3), &mut out); // far beyond
    buf.drain(&mut out);
    assert_eq!(buf.late_dropped(), 2);
    let times: Vec<u64> = out.iter().map(|r| r.ts_ms).collect();
    assert_eq!(times, vec![10_000]);
}

#[test]
fn zero_watermark_is_pure_passthrough() {
    let mut buf = ReorderBuffer::new(0);
    let mut out = Vec::new();
    for &ts in &[5_000u64, 1_000, 9_000, 3] {
        buf.push(rec_at(ts, u128::from(ts)), &mut out);
    }
    assert_eq!(out.len(), 4, "nothing buffered");
    assert_eq!(buf.late_dropped(), 0, "nothing dropped");
    let times: Vec<u64> = out.iter().map(|r| r.ts_ms).collect();
    assert_eq!(times, vec![5_000, 1_000, 9_000, 3], "original order kept");
}

#[test]
fn reorder_state_roundtrip_preserves_release_order() {
    let mut buf = ReorderBuffer::new(10_000);
    let mut out = Vec::new();
    for &ts in &[5_000u64, 4_000, 4_000, 6_000, 5_500] {
        buf.push(rec_at(ts, u128::from(out.len() as u64)), &mut out);
    }
    assert!(out.is_empty(), "all within watermark, all buffered");
    let mut direct = Vec::new();
    let restored_state = buf.state();
    buf.drain(&mut direct);

    let mut restored = ReorderBuffer::from_state(&restored_state);
    let mut via_snapshot = Vec::new();
    restored.drain(&mut via_snapshot);
    assert_eq!(direct, via_snapshot);
}

/// The central out-of-order guarantee: shuffling a stream within the
/// watermark, then feeding it through the reorder buffer, yields exactly
/// the sorted-stream report with nothing dropped.
#[test]
fn within_watermark_shuffle_yields_sorted_report() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let watermark = 60_000u64;
    let sorted = workload();

    let mut reference = DetectorBuilder::new(base_config()).build(Backend::Sequential);
    for r in &sorted {
        reference.observe(r);
    }
    let expect = report_json(&reference.finish());

    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Jitter-sort: perturb each timestamp by < watermark/2 and sort by
        // the perturbed key. Any two records swap only if their true
        // timestamps are within the watermark of each other, so the
        // arrival order is a valid within-watermark shuffle.
        let mut arrival: Vec<(u64, usize)> = sorted
            .iter()
            .enumerate()
            .map(|(i, r)| (r.ts_ms + rng.gen_range(0..watermark / 2), i))
            .collect();
        arrival.sort_unstable();

        let mut buf = ReorderBuffer::new(watermark);
        let mut det = DetectorBuilder::new(base_config()).build(Backend::Sequential);
        let mut ready = Vec::new();
        for &(_, i) in &arrival {
            buf.push(sorted[i], &mut ready);
            for r in ready.drain(..) {
                det.observe(&r);
            }
        }
        buf.drain(&mut ready);
        for r in ready.drain(..) {
            det.observe(&r);
        }
        assert_eq!(buf.late_dropped(), 0, "seed {seed}: nothing may drop");
        assert_eq!(report_json(&det.finish()), expect, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

fn sample_checkpoint() -> Checkpoint {
    let mut det = DetectorBuilder::new(base_config()).build(Backend::Sequential);
    for r in workload().iter().take(100) {
        det.observe(r);
    }
    Checkpoint {
        position: lumen6_trace::TracePosition {
            offset: 1_234,
            prev_ts: 99_000,
        },
        records_done: 100,
        decode_skipped: 2,
        detector: det.snapshot(),
        reorder: ReorderBuffer::new(5_000).state(),
        checkpoints_written: 3,
        last_flush_ms: 42,
    }
}

#[test]
fn checkpoint_save_load_roundtrip() {
    let dir = TempDir::new("ck-roundtrip");
    let path = dir.path("state.l6ck");
    let ck = sample_checkpoint();
    ck.save(&path).unwrap();
    let back = Checkpoint::load(&path).unwrap();
    assert_eq!(back, ck);
}

#[test]
fn checkpoint_detects_corruption() {
    let dir = TempDir::new("ck-corrupt");
    let path = dir.path("state.l6ck");
    sample_checkpoint().save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one byte in the body (past the header line).
    let body_start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    bytes[body_start + 10] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    match Checkpoint::load(&path) {
        Err(SessionError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn checkpoint_rejects_bad_magic_and_truncation() {
    let dir = TempDir::new("ck-frame");
    let path = dir.path("state.l6ck");
    std::fs::write(&path, "NOPE v1 0 0\n{}").unwrap();
    assert!(matches!(
        Checkpoint::load(&path),
        Err(SessionError::Corrupt(_))
    ));
    let saved = {
        let p = dir.path("ok.l6ck");
        sample_checkpoint().save(&p).unwrap();
        std::fs::read_to_string(&p).unwrap()
    };
    std::fs::write(&path, &saved[..saved.len() - 7]).unwrap();
    assert!(matches!(
        Checkpoint::load(&path),
        Err(SessionError::Corrupt(_))
    ));
}

// ---------------------------------------------------------------------------
// Sessions over trace files
// ---------------------------------------------------------------------------

fn session_report_json(rep: &SessionReport) -> String {
    serde_json::to_string(rep).unwrap()
}

#[test]
fn session_finishes_without_checkpointing() {
    let dir = TempDir::new("plain");
    let trace = dir.path("t.l6tr");
    let recs = workload();
    write_trace(&trace, &recs);
    let builder = DetectorBuilder::new(base_config());
    let outcome = Session::new(
        builder.clone(),
        Backend::Sequential,
        SessionConfig::default(),
    )
    .run(&trace)
    .unwrap();
    let SessionOutcome::Finished(rep) = outcome else {
        panic!("expected Finished");
    };
    assert_eq!(rep.records, recs.len() as u64);
    assert_eq!(rep.late_dropped, 0);
    assert_eq!(rep.decode_skipped, 0);
    assert_eq!(rep.checkpoints_written, 0);

    let mut direct = builder.build(Backend::Sequential);
    for r in &recs {
        direct.observe(r);
    }
    assert_eq!(report_json(&rep.reports), report_json(&direct.finish()));
}

/// Kill-and-resume in process: stop after each checkpoint in turn, resume,
/// and require the final report to be byte-identical to an uninterrupted
/// session, whatever the interruption point and even when the backend
/// changes across the restart.
#[test]
fn kill_resume_is_byte_identical() {
    let dir = TempDir::new("kill-resume");
    let trace = dir.path("t.l6tr");
    let recs = workload();
    write_trace(&trace, &recs);
    let every = 100u64;
    let total_ckpts = recs.len() as u64 / every;
    assert!(total_ckpts >= 3, "workload too small to interrupt");

    let config = |path: PathBuf, stop_after: Option<u64>| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path,
            every_records: every,
            stop_after,
        }),
        ..Default::default()
    };

    let builder = DetectorBuilder::new(base_config());
    let sharded = Backend::Sharded(ShardPlan::with_shards(2));

    // Uninterrupted reference (with the same checkpoint cadence, so the
    // checkpoint counters in the report line up).
    let reference = Session::new(
        builder.clone(),
        Backend::Sequential,
        config(dir.path("ref.l6ck"), None),
    )
    .run(&trace)
    .unwrap();
    let SessionOutcome::Finished(expect) = reference else {
        panic!("reference must finish");
    };
    let expect = session_report_json(&expect);

    for stop_at in 1..=total_ckpts {
        let ck = dir.path(&format!("stop{stop_at}.l6ck"));
        let outcome = Session::new(
            builder.clone(),
            Backend::Sequential,
            config(ck.clone(), Some(stop_at)),
        )
        .run(&trace)
        .unwrap();
        match outcome {
            SessionOutcome::Stopped {
                checkpoints_written,
                records_done,
            } => {
                assert_eq!(checkpoints_written, stop_at);
                assert_eq!(records_done, stop_at * every);
            }
            SessionOutcome::Finished(_) => panic!("stop {stop_at}: expected Stopped"),
        }
        // Resume with a *different* backend to also prove portability.
        let resumed = Session::new(builder.clone(), sharded, config(ck, None))
            .run(&trace)
            .unwrap();
        let SessionOutcome::Finished(rep) = resumed else {
            panic!("stop {stop_at}: resume must finish");
        };
        assert_eq!(session_report_json(&rep), expect, "stop after {stop_at}");
    }
}

#[test]
fn double_interruption_still_matches() {
    let dir = TempDir::new("double-kill");
    let trace = dir.path("t.l6tr");
    let recs = workload();
    write_trace(&trace, &recs);
    let builder = DetectorBuilder::new(base_config());
    let ck = dir.path("state.l6ck");
    let config = |stop_after| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path: ck.clone(),
            every_records: 64,
            stop_after,
        }),
        ..Default::default()
    };

    let reference = Session::new(
        builder.clone(),
        Backend::Sequential,
        SessionConfig {
            checkpoint: Some(CheckpointPolicy {
                path: dir.path("ref.l6ck"),
                every_records: 64,
                stop_after: None,
            }),
            ..Default::default()
        },
    )
    .run(&trace)
    .unwrap();
    let SessionOutcome::Finished(expect) = reference else {
        panic!("reference must finish");
    };

    // First run stops after 1 checkpoint; second run (resuming) stops after
    // 2 more; third finishes.
    assert!(matches!(
        Session::new(builder.clone(), Backend::Sequential, config(Some(1)))
            .run(&trace)
            .unwrap(),
        SessionOutcome::Stopped { .. }
    ));
    assert!(matches!(
        Session::new(builder.clone(), Backend::Sequential, config(Some(3)))
            .run(&trace)
            .unwrap(),
        SessionOutcome::Stopped {
            checkpoints_written: 3,
            ..
        }
    ));
    let SessionOutcome::Finished(rep) = Session::new(builder, Backend::Sequential, config(None))
        .run(&trace)
        .unwrap()
    else {
        panic!("final run must finish");
    };
    assert_eq!(session_report_json(&rep), session_report_json(&expect));
}

// ---------------------------------------------------------------------------
// Sessions over generic sources
// ---------------------------------------------------------------------------

/// The same session run through three different sources — the trace file,
/// a `FileStreamSource` built explicitly, and an in-memory
/// `MaterializedSource` — must produce byte-identical reports.
#[test]
fn run_source_matches_run_for_every_source_kind() {
    let dir = TempDir::new("source-kinds");
    let trace = dir.path("t.l6tr");
    let recs = workload();
    write_trace(&trace, &recs);
    for (name, builder, backend) in builders() {
        let via_path = Session::new(builder.clone(), backend, SessionConfig::default())
            .run(&trace)
            .unwrap();
        let SessionOutcome::Finished(via_path) = via_path else {
            panic!("{name}: path run must finish");
        };

        let mut file_src = FileStreamSource::open(&trace).unwrap().permissive(true);
        let via_file = Session::new(builder.clone(), backend, SessionConfig::default())
            .run_source(&mut file_src)
            .unwrap();
        let SessionOutcome::Finished(via_file) = via_file else {
            panic!("{name}: file-source run must finish");
        };

        let mut mat_src = MaterializedSource::new(recs.clone());
        let via_mem = Session::new(builder.clone(), backend, SessionConfig::default())
            .run_source(&mut mat_src)
            .unwrap();
        let SessionOutcome::Finished(via_mem) = via_mem else {
            panic!("{name}: materialized run must finish");
        };

        let expect = session_report_json(&via_path);
        assert_eq!(session_report_json(&via_file), expect, "{name}: file src");
        assert_eq!(session_report_json(&via_mem), expect, "{name}: mem src");
    }
}

/// Kill-resume through `run_source` with record-index positions: stopping a
/// materialized-source session at every checkpoint and resuming must match
/// the uninterrupted run byte for byte — the same guarantee the file-offset
/// path has always had.
#[test]
fn kill_resume_over_materialized_source_is_byte_identical() {
    let dir = TempDir::new("source-kill-resume");
    let recs = workload();
    let every = 100u64;
    let total_ckpts = recs.len() as u64 / every;
    let builder = DetectorBuilder::new(base_config());
    let config = |path: PathBuf, stop_after: Option<u64>| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path,
            every_records: every,
            stop_after,
        }),
        ..Default::default()
    };

    let mut reference_src = MaterializedSource::new(recs.clone());
    let reference = Session::new(
        builder.clone(),
        Backend::Sequential,
        config(dir.path("ref.l6ck"), None),
    )
    .run_source(&mut reference_src)
    .unwrap();
    let SessionOutcome::Finished(expect) = reference else {
        panic!("reference must finish");
    };
    let expect = session_report_json(&expect);

    for stop_at in 1..=total_ckpts {
        let ck = dir.path(&format!("stop{stop_at}.l6ck"));
        let mut first = MaterializedSource::new(recs.clone());
        let outcome = Session::new(
            builder.clone(),
            Backend::Sequential,
            config(ck.clone(), Some(stop_at)),
        )
        .run_source(&mut first)
        .unwrap();
        assert!(matches!(outcome, SessionOutcome::Stopped { .. }));
        // Resume with a brand-new source instance, as a restarted process
        // would.
        let mut second = MaterializedSource::new(recs.clone());
        let resumed = Session::new(builder.clone(), Backend::Sequential, config(ck, None))
            .run_source(&mut second)
            .unwrap();
        let SessionOutcome::Finished(rep) = resumed else {
            panic!("stop {stop_at}: resume must finish");
        };
        assert_eq!(session_report_json(&rep), expect, "stop after {stop_at}");
    }
}

#[test]
fn session_flush_idle_cadence_is_report_neutral() {
    let dir = TempDir::new("flush-cadence");
    let trace = dir.path("t.l6tr");
    let recs = workload();
    write_trace(&trace, &recs);
    let builder = DetectorBuilder::new(base_config());

    let plain = Session::new(
        builder.clone(),
        Backend::Sequential,
        SessionConfig::default(),
    )
    .run(&trace)
    .unwrap();
    let SessionOutcome::Finished(plain) = plain else {
        panic!()
    };
    for every in [1_000u64, 100_000, 3_600_000] {
        let flushed = Session::new(
            builder.clone(),
            Backend::Sequential,
            SessionConfig {
                flush_idle_every_ms: every,
                ..Default::default()
            },
        )
        .run(&trace)
        .unwrap();
        let SessionOutcome::Finished(flushed) = flushed else {
            panic!()
        };
        assert_eq!(
            report_json(&flushed.reports),
            report_json(&plain.reports),
            "flush every {every} ms"
        );
    }
}

// ---------------------------------------------------------------------------
// Re-entrant stepping (the serve daemon's driving API)
// ---------------------------------------------------------------------------

/// Drives a session to completion one `step` at a time, exactly as the
/// serve daemon's worker loop does.
fn step_to_finish(session: &mut Session, src: &mut dyn Source) -> SessionReport {
    loop {
        match session.step(src).unwrap() {
            Step::Ingested(_) | Step::Pending => {}
            Step::Finished(rep) => return rep,
            Step::Stopped { .. } => panic!("unexpected Stopped without stop_after"),
        }
    }
}

/// A step-driven session must be indistinguishable from a `run_source`
/// driven one: byte-identical final report *and* byte-identical checkpoint
/// files, across every backend. This is the contract that lets the daemon
/// interleave many tenants without perturbing any single tenant's output.
#[test]
fn step_driven_session_matches_run_source() {
    let dir = TempDir::new("step-differential");
    let recs = workload();
    let config = |path: PathBuf| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path,
            every_records: 100,
            stop_after: None,
        }),
        ..Default::default()
    };

    for (name, builder, backend) in builders() {
        let ck_ref = dir.path(&format!("{name}-ref.l6ck"));
        let mut ref_src = MaterializedSource::new(recs.clone());
        let outcome = Session::new(builder.clone(), backend, config(ck_ref.clone()))
            .run_source(&mut ref_src)
            .unwrap();
        let SessionOutcome::Finished(expect) = outcome else {
            panic!("{name}: reference must finish");
        };

        let ck_step = dir.path(&format!("{name}-step.l6ck"));
        let mut session = Session::new(builder.clone(), backend, config(ck_step.clone()));
        let mut src = MaterializedSource::new(recs.clone());
        let rep = step_to_finish(&mut session, &mut src);

        assert_eq!(
            session_report_json(&rep),
            session_report_json(&expect),
            "{name}: stepped report differs from run_source"
        );
        assert_eq!(
            std::fs::read(&ck_step).unwrap(),
            std::fs::read(&ck_ref).unwrap(),
            "{name}: final checkpoint bytes differ"
        );
    }
}

/// `checkpoint_now` writes an off-grid drain checkpoint (one extra beyond
/// the periodic grid), and a fresh session resumed from it reproduces the
/// uninterrupted run's detection output exactly.
#[test]
fn checkpoint_now_off_grid_drain_resumes_cleanly() {
    let dir = TempDir::new("ckpt-now");
    let recs = workload();
    let builder = DetectorBuilder::new(base_config());
    let ck = dir.path("drain.l6ck");
    let config = |path: PathBuf, batch: usize| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path,
            every_records: 100,
            stop_after: None,
        }),
        batch,
        ..Default::default()
    };

    let mut ref_src = MaterializedSource::new(recs.clone());
    let outcome = Session::new(
        builder.clone(),
        Backend::Sequential,
        config(dir.path("ref.l6ck"), DEFAULT_SESSION_BATCH),
    )
    .run_source(&mut ref_src)
    .unwrap();
    let SessionOutcome::Finished(expect) = outcome else {
        panic!("reference must finish");
    };

    // Small batches land the session off the 100-record grid; a graceful
    // drain must still capture that exact position.
    let mut session = Session::new(builder.clone(), Backend::Sequential, config(ck.clone(), 7));
    let mut src = MaterializedSource::new(recs.clone());
    for _ in 0..10 {
        assert!(matches!(session.step(&mut src).unwrap(), Step::Ingested(_)));
    }
    assert_eq!(session.records_done(), 70);
    assert_ne!(session.records_done() % 100, 0, "must be off-grid");
    assert!(session.checkpoint_now(&mut src).unwrap());
    drop(session);

    let mut resumed_src = MaterializedSource::new(recs.clone());
    let outcome = Session::new(
        builder.clone(),
        Backend::Sequential,
        config(ck, DEFAULT_SESSION_BATCH),
    )
    .run_source(&mut resumed_src)
    .unwrap();
    let SessionOutcome::Finished(rep) = outcome else {
        panic!("resumed run must finish");
    };
    // The drain checkpoint is one extra write beyond the periodic grid;
    // everything the detector *saw* must be unchanged.
    assert_eq!(report_json(&rep.reports), report_json(&expect.reports));
    assert_eq!(rep.records, expect.records);
    assert_eq!(rep.late_dropped, expect.late_dropped);
    assert_eq!(rep.decode_skipped, expect.decode_skipped);
    assert_eq!(rep.checkpoints_written, expect.checkpoints_written + 1);

    // Without a checkpoint policy there is nowhere to drain to.
    let mut bare = Session::new(builder, Backend::Sequential, SessionConfig::default());
    let mut bare_src = MaterializedSource::new(recs);
    bare.step(&mut bare_src).unwrap();
    assert!(!bare.checkpoint_now(&mut bare_src).unwrap());
}

/// `report_now` mid-stream must not perturb the live pipeline: repeated
/// calls agree with each other, and the session still finishes with a
/// report byte-identical to a never-published run.
#[test]
fn report_now_is_non_destructive_mid_stream() {
    let recs = workload();
    let builder = DetectorBuilder::new(base_config());

    let mut ref_src = MaterializedSource::new(recs.clone());
    let outcome = Session::new(
        builder.clone(),
        Backend::Sequential,
        SessionConfig::default(),
    )
    .run_source(&mut ref_src)
    .unwrap();
    let SessionOutcome::Finished(expect) = outcome else {
        panic!("reference must finish");
    };

    let mut session = Session::new(
        builder,
        Backend::Sequential,
        SessionConfig {
            batch: 64,
            ..Default::default()
        },
    );
    let mut src = MaterializedSource::new(recs);
    for _ in 0..3 {
        session.step(&mut src).unwrap();
    }
    let r1 = session.report_now().unwrap();
    let r2 = session.report_now().unwrap();
    assert_eq!(session_report_json(&r1), session_report_json(&r2));
    assert_eq!(r1.records, session.records_done());

    let rep = step_to_finish(&mut session, &mut src);
    assert_eq!(
        session_report_json(&rep),
        session_report_json(&expect),
        "mid-stream publication changed the final report"
    );
}

/// `load_newest` prefers the main checkpoint but falls back to the `.prev`
/// generation when the main file is corrupt — the crash-recovery path the
/// daemon leans on after a torn write.
#[test]
fn load_newest_prefers_main_and_falls_back_to_prev() {
    let dir = TempDir::new("ck-prev");
    let path = dir.path("state.l6ck");

    let older = sample_checkpoint();
    older.save(&path).unwrap();
    let mut newer = sample_checkpoint();
    newer.records_done = 150;
    newer.checkpoints_written = 4;
    newer.save(&path).unwrap();

    assert!(Checkpoint::prev_path(&path).exists());
    assert_eq!(Checkpoint::load_newest(&path).unwrap(), newer);

    // Corrupt the main file: fall back to the previous generation.
    let mut bytes = std::fs::read(&path).unwrap();
    let body_start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    bytes[body_start + 10] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(Checkpoint::load_newest(&path).unwrap(), older);

    // Both generations gone bad: the corruption surfaces.
    std::fs::remove_file(Checkpoint::prev_path(&path)).unwrap();
    assert!(matches!(
        Checkpoint::load_newest(&path),
        Err(SessionError::Corrupt(_))
    ));
}
