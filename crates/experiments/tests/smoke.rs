//! Smoke coverage of every experiment: each must render non-empty output on
//! a reduced world without panicking, and its headline lines must be
//! present. (The full-window numbers live in EXPERIMENTS.md; this guards
//! the machinery itself.)

use lumen6_experiments::{run_cdn, run_mawi, CdnLab, MawiLab, CDN_EXPERIMENTS, MAWI_EXPERIMENTS};
use std::sync::OnceLock;

fn cdn() -> &'static CdnLab {
    static LAB: OnceLock<CdnLab> = OnceLock::new();
    LAB.get_or_init(|| CdnLab::small(3))
}

fn mawi() -> &'static MawiLab {
    static LAB: OnceLock<MawiLab> = OnceLock::new();
    LAB.get_or_init(|| {
        MawiLab::build(
            lumen6_mawi::MawiConfig {
                seed: 3,
                ..lumen6_mawi::MawiConfig::small()
            },
            Some(&cdn().world),
        )
    })
}

#[test]
fn every_cdn_experiment_renders() {
    for name in CDN_EXPERIMENTS {
        let out = run_cdn(name, cdn()).unwrap_or_else(|| panic!("{name} not dispatched"));
        assert!(out.starts_with("## "), "{name} lacks a heading:\n{out}");
        // ext_portshift legitimately reports "no change point" on windows
        // that end before May 2021 — two lines is its valid minimum.
        assert!(out.lines().count() >= 2, "{name} output too small:\n{out}");
    }
}

#[test]
fn every_mawi_experiment_renders() {
    for name in MAWI_EXPERIMENTS {
        let out = run_mawi(name, mawi()).unwrap_or_else(|| panic!("{name} not dispatched"));
        assert!(out.starts_with("## "), "{name} lacks a heading:\n{out}");
        assert!(out.lines().count() >= 3, "{name} output too small:\n{out}");
    }
}

#[test]
fn unknown_experiment_is_none() {
    assert!(run_cdn("not_an_experiment", cdn()).is_none());
    assert!(run_mawi("not_an_experiment", mawi()).is_none());
}

#[test]
fn headline_claims_present_in_reduced_world() {
    // Table 2 renders all ranks and the share lines.
    let t2 = run_cdn("table2", cdn()).unwrap();
    assert!(t2.contains("top-5 AS share"));
    assert!(t2.contains("Datacenter (CN)"));
    // Sensitivity names the AS#18 blow-up.
    let sens = run_cdn("sensitivity", cdn()).unwrap();
    assert!(sens.contains("AS#18"));
    // The MAWI share experiment confirms cross-vantage identity.
    let f6 = run_mawi("fig6", mawi()).unwrap();
    assert!(
        f6.contains("most active source is the CDN fleet's AS#1 source: true"),
        "{f6}"
    );
}

#[test]
fn csv_export_writes_all_series() {
    let dir = std::env::temp_dir().join(format!("lumen6-exp-csv-{}", std::process::id()));
    let cdn_files = lumen6_experiments::csv_out::export_cdn(cdn(), &dir).expect("cdn csv");
    assert_eq!(cdn_files.len(), 6);
    let mawi_files = lumen6_experiments::csv_out::export_mawi(mawi(), &dir).expect("mawi csv");
    assert_eq!(mawi_files.len(), 3);
    for f in cdn_files.iter().chain(&mawi_files) {
        let content = std::fs::read_to_string(dir.join(f)).expect("file written");
        assert!(content.lines().count() >= 1, "{f} is empty");
        assert!(
            content.lines().next().unwrap().contains(','),
            "{f} lacks a CSV header"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
