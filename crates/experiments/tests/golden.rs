//! Golden-output tests for the experiments harness.
//!
//! Each test renders one paper artifact (Table 1, Fig. 2, Fig. 5) from a
//! small fixed-seed lab and compares it against the expected output
//! committed as JSON under `tests/golden/` at the repository root. The
//! goldens pin the *full rendered text*, so any behavioral drift in the
//! generators, the artifact filter, or the detection pipeline shows up as
//! a reviewable diff rather than a silently shifted number.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p lumen6-experiments --test golden
//! ```

use lumen6_detect::AggLevel;
use lumen6_experiments::{cdn, mawi_exp, CdnLab, DetectMode, MawiLab};
use lumen6_mawi::MawiConfig;
use lumen6_scanners::FleetConfig;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The committed golden file format: the experiment output plus enough
/// metadata to regenerate it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Golden {
    /// Experiment name (`table1`, `fig2`, `fig5`).
    experiment: String,
    /// World seed the lab was built with.
    seed: u64,
    /// Human description of the fixture configuration.
    config: String,
    /// The full rendered experiment output.
    output: String,
}

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Compares `got` against the committed golden, printing a line diff on
/// mismatch. With `GOLDEN_BLESS=1`, rewrites the golden instead.
fn check_golden(experiment: &str, seed: u64, config: &str, output: &str) {
    let path = golden_dir().join(format!("{experiment}.json"));
    let got = Golden {
        experiment: experiment.to_string(),
        seed,
        config: config.to_string(),
        output: output.to_string(),
    };
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        let json = serde_json::to_string_pretty(&got).expect("golden serializes");
        std::fs::write(&path, json + "\n").expect("write golden");
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun with GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    let want: Golden = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("corrupt golden {}: {e:?}", path.display()));
    if got == want {
        return;
    }
    // A reviewable diff: metadata first, then the first diverging lines.
    let mut msg = format!("golden mismatch for {experiment} ({})\n", path.display());
    if (got.seed, got.config.as_str()) != (want.seed, want.config.as_str()) {
        msg += &format!(
            "fixture drift: golden was seed {} / {:?}, test ran seed {} / {:?}\n",
            want.seed, want.config, got.seed, got.config
        );
    }
    let got_lines: Vec<&str> = got.output.lines().collect();
    let want_lines: Vec<&str> = want.output.lines().collect();
    let n = got_lines.len().max(want_lines.len());
    let mut shown = 0;
    for i in 0..n {
        let g = got_lines.get(i).copied().unwrap_or("<missing>");
        let w = want_lines.get(i).copied().unwrap_or("<missing>");
        if g != w {
            msg += &format!("line {}:\n  expected: {w}\n  got:      {g}\n", i + 1);
            shown += 1;
            if shown >= 10 {
                msg += "...(further differences elided)\n";
                break;
            }
        }
    }
    msg += "re-bless with GOLDEN_BLESS=1 if the change is intentional";
    panic!("{msg}");
}

const SEED: u64 = 42;
const CDN_CONFIG: &str = "FleetConfig::small, end_day 21, sequential backend";
const MAWI_CONFIG: &str = "MawiConfig::small, end_day 14, sequential backend";

fn cdn_lab() -> CdnLab {
    CdnLab::build_with(
        FleetConfig {
            seed: SEED,
            end_day: 21,
            ..FleetConfig::small()
        },
        DetectMode::Sequential,
    )
}

fn mawi_lab() -> MawiLab {
    MawiLab::build_with(
        MawiConfig {
            seed: SEED,
            end_day: 14,
            ..MawiConfig::small()
        },
        None,
        DetectMode::Sequential,
    )
}

#[test]
fn table1_matches_golden() {
    let lab = cdn_lab();
    check_golden("table1", SEED, CDN_CONFIG, &cdn::table1_totals(&lab));
}

#[test]
fn fig2_matches_golden() {
    let lab = cdn_lab();
    check_golden("fig2", SEED, CDN_CONFIG, &cdn::fig2_weekly_sources(&lab));
}

#[test]
fn fig5_matches_golden() {
    let lab = mawi_lab();
    check_golden(
        "fig5",
        SEED,
        MAWI_CONFIG,
        &mawi_exp::fig5_daily_sources(&lab),
    );
}

fn cdn_lab_at_intensity(intensity: f64) -> CdnLab {
    CdnLab::build_with(
        FleetConfig {
            seed: SEED,
            end_day: 21,
            intensity,
            ..FleetConfig::small()
        },
        DetectMode::Sequential,
    )
}

/// The intensity-invariant "shape" of the paper's headline artifacts:
/// Table 1 with the packets column dropped (packet totals scale with
/// intensity by construction) plus the full Fig. 2 rendering, which only
/// counts sources and therefore must not move at all.
fn intensity_shape(lab: &CdnLab) -> String {
    let mut out = String::from("## Table 1 shape (packets column elided)\n");
    for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        let r = &lab.reports[&lvl];
        let ases = lab.world.registry.distinct_origin_ases(
            r.source_set().iter().map(lumen6_addr::Ipv6Prefix::bits),
            true,
        );
        writeln!(
            out,
            "{lvl}: scans={} sources={} ases={ases}",
            r.scans(),
            r.sources()
        )
        .unwrap();
    }
    out.push('\n');
    out + &cdn::fig2_weekly_sources(lab)
}

/// `--intensity` scales packet *volume* without distorting the detected
/// structure: scans, sources, source ASes, and the Fig. 2 weekly source
/// series are byte-identical across 1x and 10x (and 100x when
/// `GOLDEN_INTENSITY_100X` is set — the deep-CI tier runs it; it is too
/// slow for the default suite). The 1x shape is additionally pinned as a
/// golden so drift is reviewable.
#[test]
fn intensity_scales_volume_not_shape() {
    let base = cdn_lab_at_intensity(1.0);
    let shape = intensity_shape(&base);
    check_golden(
        "shape_intensity",
        SEED,
        "FleetConfig::small, end_day 21, sequential backend, intensity sweep {1, 10, 100}x",
        &shape,
    );

    let lab10 = cdn_lab_at_intensity(10.0);
    assert_eq!(
        intensity_shape(&lab10),
        shape,
        "10x intensity distorted the Table 1 / Fig. 2 shape"
    );
    // Volume must genuinely scale: ~10x the packets per detected scan.
    let (p1, p10) = (
        base.reports[&AggLevel::L64].packets(),
        lab10.reports[&AggLevel::L64].packets(),
    );
    assert!(
        p10 > 5 * p1,
        "10x intensity should multiply packet volume: {p1} -> {p10}"
    );

    if std::env::var_os("GOLDEN_INTENSITY_100X").is_some() {
        assert_eq!(
            intensity_shape(&cdn_lab_at_intensity(100.0)),
            shape,
            "100x intensity distorted the Table 1 / Fig. 2 shape"
        );
    }
}

/// The golden fixture is backend-independent: the sharded pipeline renders
/// byte-identical artifacts, so the goldens also pin cross-backend
/// equivalence at the experiment level.
#[test]
fn table1_is_backend_independent() {
    let seq = cdn::table1_totals(&cdn_lab());
    let sharded = cdn::table1_totals(&CdnLab::build_with(
        FleetConfig {
            seed: SEED,
            end_day: 21,
            ..FleetConfig::small()
        },
        DetectMode::default(),
    ));
    assert_eq!(seq, sharded);
}
