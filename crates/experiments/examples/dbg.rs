use lumen6_detect::{detector::detect, AggLevel, ArtifactFilter, ScanDetectorConfig};
use lumen6_scanners::{FleetConfig, World};
fn main() {
    let world = World::build(FleetConfig::default());
    let trace = world.cdn_trace();
    let (filtered, freport) = ArtifactFilter::default().filter(&trace);
    println!("trace {} filtered {}", trace.len(), filtered.len());
    let r64 = detect(&filtered, ScanDetectorConfig::paper(AggLevel::L64));
    let r128 = detect(&filtered, ScanDetectorConfig::paper(AggLevel::L128));
    for t in &world.fleet.truth {
        let raw = trace
            .iter()
            .filter(|r| t.prefix.contains_addr(r.src))
            .count();
        let kept = filtered
            .iter()
            .filter(|r| t.prefix.contains_addr(r.src))
            .count();
        let s64: std::collections::HashSet<_> = r64
            .events
            .iter()
            .filter(|e| t.prefix.contains(&e.source))
            .map(|e| e.source)
            .collect();
        let s128: std::collections::HashSet<_> = r128
            .events
            .iter()
            .filter(|e| t.prefix.contains(&e.source))
            .map(|e| e.source)
            .collect();
        println!(
            "AS{:<2} raw={:<7} kept={:<7} src64={:<4} src128={}",
            t.rank,
            raw,
            kept,
            s64.len(),
            s128.len()
        );
    }
    println!("filter removed {} pkts", freport.removed_packets);
}
