//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--small] [--seed N] [--csv DIR] <experiment>|all
//! ```
//!
//! CDN experiments: fig1 table1 sensitivity fig2 fig3 table2 durations fig4
//! table3 targets fig8 a1 a4. MAWI experiments: fig5 fig6 icmpv6 fig7
//! hitlist. `all` runs everything on one shared world.

use lumen6_experiments::{run_cdn, run_mawi, CdnLab, MawiLab, CDN_EXPERIMENTS, MAWI_EXPERIMENTS};

fn usage() -> ! {
    eprintln!("usage: experiments [--small] [--seed N] [--csv DIR] <experiment>|all");
    eprintln!("CDN:  {}", CDN_EXPERIMENTS.join(" "));
    eprintln!("MAWI: {}", MAWI_EXPERIMENTS.join(" "));
    std::process::exit(2);
}

fn main() {
    let mut small = false;
    let mut seed = 42u64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--csv" => {
                csv_dir = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ));
            }
            "--help" | "-h" => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        usage();
    }
    if names.iter().any(|n| n == "all") {
        names = CDN_EXPERIMENTS
            .iter()
            .chain(MAWI_EXPERIMENTS)
            .map(|s| s.to_string())
            .collect();
    }

    let needs_cdn = names.iter().any(|n| CDN_EXPERIMENTS.contains(&n.as_str()));
    let needs_mawi = names.iter().any(|n| MAWI_EXPERIMENTS.contains(&n.as_str()));
    for n in &names {
        if !CDN_EXPERIMENTS.contains(&n.as_str()) && !MAWI_EXPERIMENTS.contains(&n.as_str()) {
            eprintln!("unknown experiment: {n}");
            usage();
        }
    }

    let cdn = needs_cdn.then(|| {
        eprintln!("# building CDN lab (seed {seed}, {}) ...", if small { "small" } else { "full 439 days" });
        if small {
            CdnLab::small(seed)
        } else {
            CdnLab::full(seed)
        }
    });
    let mawi = needs_mawi.then(|| {
        eprintln!("# building MAWI lab ...");
        let mut cfg = lumen6_mawi::MawiConfig {
            seed,
            ..Default::default()
        };
        if small {
            cfg = lumen6_mawi::MawiConfig {
                seed,
                ..lumen6_mawi::MawiConfig::small()
            };
        }
        MawiLab::build(cfg, cdn.as_ref().map(|lab| &lab.world))
    });

    if let Some(dir) = csv_dir.as_ref() {
        if let Some(lab) = cdn.as_ref() {
            match lumen6_experiments::csv_out::export_cdn(lab, dir) {
                Ok(files) => eprintln!("# wrote {} CDN CSV files to {}", files.len(), dir.display()),
                Err(e) => eprintln!("# CSV export failed: {e}"),
            }
        }
        if let Some(lab) = mawi.as_ref() {
            match lumen6_experiments::csv_out::export_mawi(lab, dir) {
                Ok(files) => eprintln!("# wrote {} MAWI CSV files to {}", files.len(), dir.display()),
                Err(e) => eprintln!("# CSV export failed: {e}"),
            }
        }
    }

    for name in &names {
        let text = if let Some(lab) = cdn.as_ref() {
            run_cdn(name, lab)
        } else {
            None
        }
        .or_else(|| mawi.as_ref().and_then(|lab| run_mawi(name, lab)));
        match text {
            Some(t) => println!("{t}"),
            None => eprintln!("skipping {name}: lab not built"),
        }
    }
}
