//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--small] [--seed N] [--csv DIR] [--threads N] [--sequential]
//!             [--trace FILE] [--metrics-out FILE.json] <experiment>|all
//! ```
//!
//! CDN experiments: fig1 table1 sensitivity fig2 fig3 table2 durations fig4
//! table3 targets fig8 a1 a4. MAWI experiments: fig5 fig6 icmpv6 fig7
//! hitlist. `all` runs everything on one shared world.
//!
//! Detection runs on the sharded parallel pipeline by default (one shard
//! per core). `--threads N` pins the shard count, `--sequential` falls back
//! to the single-threaded reference pipeline; output is identical either
//! way. `--trace FILE` streams a previously recorded L6TR trace from disk
//! in bounded memory instead of materializing the CDN trace — only the
//! stream-safe experiments (`table1`, `fig2`) run in that mode.

use lumen6_experiments::{
    run_cdn, run_mawi, CdnLab, DetectMode, MawiLab, CDN_EXPERIMENTS, MAWI_EXPERIMENTS,
};

/// CDN experiments that consume only `reports` + `world` metadata and are
/// therefore valid on a streaming lab (no resident trace).
const STREAM_SAFE: &[&str] = &["table1", "fig2"];

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--small] [--seed N] [--csv DIR] [--threads N] [--sequential] [--trace FILE] [--metrics-out FILE.json] <experiment>|all"
    );
    eprintln!("CDN:  {}", CDN_EXPERIMENTS.join(" "));
    eprintln!("MAWI: {}", MAWI_EXPERIMENTS.join(" "));
    eprintln!(
        "--trace FILE limits CDN experiments to: {}",
        STREAM_SAFE.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut small = false;
    let mut seed = 42u64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut sequential = false;
    let mut trace_file: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--csv" => {
                csv_dir = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ));
            }
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--sequential" => sequential = true,
            "--trace" => {
                trace_file = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ));
            }
            "--metrics-out" => {
                metrics_out = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ));
            }
            "--help" | "-h" => usage(),
            name => names.push(name.to_string()),
        }
    }
    let mode = DetectMode::from_flags(threads, sequential);
    if names.is_empty() {
        usage();
    }
    if names.iter().any(|n| n == "all") {
        names = CDN_EXPERIMENTS
            .iter()
            .chain(MAWI_EXPERIMENTS)
            .map(std::string::ToString::to_string)
            .collect();
    }

    for n in &names {
        if !CDN_EXPERIMENTS.contains(&n.as_str()) && !MAWI_EXPERIMENTS.contains(&n.as_str()) {
            eprintln!("unknown experiment: {n}");
            usage();
        }
    }
    if trace_file.is_some() {
        // Streaming labs never materialize the trace, so experiments that
        // read it directly cannot run; drop them with a warning.
        names.retain(|n| {
            let ok = !CDN_EXPERIMENTS.contains(&n.as_str()) || STREAM_SAFE.contains(&n.as_str());
            if !ok {
                eprintln!("skipping {n}: not available with --trace (needs the resident trace)");
            }
            ok
        });
        if names.is_empty() {
            usage();
        }
    }
    let needs_cdn = names.iter().any(|n| CDN_EXPERIMENTS.contains(&n.as_str()));
    let needs_mawi = names.iter().any(|n| MAWI_EXPERIMENTS.contains(&n.as_str()));

    let cdn = needs_cdn.then(|| {
        let fleet = if small {
            lumen6_scanners::FleetConfig {
                seed,
                ..lumen6_scanners::FleetConfig::small()
            }
        } else {
            lumen6_scanners::FleetConfig {
                seed,
                ..Default::default()
            }
        };
        if let Some(path) = trace_file.as_ref() {
            eprintln!("# streaming CDN trace from {} ...", path.display());
            match CdnLab::from_trace_file(path, fleet, mode) {
                Ok(lab) => lab,
                Err(e) => {
                    eprintln!("cannot stream {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        } else {
            eprintln!(
                "# building CDN lab (seed {seed}, {}) ...",
                if small { "small" } else { "full 439 days" }
            );
            CdnLab::build_with(fleet, mode)
        }
    });
    let mawi = needs_mawi.then(|| {
        eprintln!("# building MAWI lab ...");
        let mut cfg = lumen6_mawi::MawiConfig {
            seed,
            ..Default::default()
        };
        if small {
            cfg = lumen6_mawi::MawiConfig {
                seed,
                ..lumen6_mawi::MawiConfig::small()
            };
        }
        MawiLab::build_with(cfg, cdn.as_ref().map(|lab| &lab.world), mode)
    });

    if let Some(dir) = csv_dir.as_ref() {
        if let Some(lab) = cdn.as_ref() {
            match lumen6_experiments::csv_out::export_cdn(lab, dir) {
                Ok(files) => {
                    eprintln!("# wrote {} CDN CSV files to {}", files.len(), dir.display());
                }
                Err(e) => eprintln!("# CSV export failed: {e}"),
            }
        }
        if let Some(lab) = mawi.as_ref() {
            match lumen6_experiments::csv_out::export_mawi(lab, dir) {
                Ok(files) => eprintln!(
                    "# wrote {} MAWI CSV files to {}",
                    files.len(),
                    dir.display()
                ),
                Err(e) => eprintln!("# CSV export failed: {e}"),
            }
        }
    }

    for name in &names {
        let text = if let Some(lab) = cdn.as_ref() {
            run_cdn(name, lab)
        } else {
            None
        }
        .or_else(|| mawi.as_ref().and_then(|lab| run_mawi(name, lab)));
        match text {
            Some(t) => println!("{t}"),
            None => eprintln!("skipping {name}: lab not built"),
        }
    }

    if let Some(path) = metrics_out.as_ref() {
        let snap = lumen6_obs::MetricsRegistry::global().snapshot();
        let json = serde_json::to_string_pretty(&snap).expect("metrics snapshot serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("# metrics -> {}", path.display());
        println!("{}", snap.summary_table());
    }
}
