//! Experiment harness: regenerates every table and figure of the paper from
//! the simulated world.
//!
//! Each experiment is a function taking a prepared lab ([`CdnLab`] or
//! [`MawiLab`]) and returning the rendered report text; the `experiments`
//! binary dispatches on a subcommand. The per-experiment index lives in
//! DESIGN.md; measured-vs-paper numbers are recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdn;
pub mod csv_out;
pub mod ext;
pub mod mawi_exp;

use lumen6_detect::{
    AggLevel, ArtifactFilter, ArtifactFilterConfig, DetectorBuilder, FilterReport,
    ScanDetectorConfig, ScanReport, Session, SessionConfig, SessionError, SessionOutcome,
};
use lumen6_mawi::{MawiConfig, MawiWorld};
use lumen6_scanners::{scale_intensity, FleetConfig, World};
use lumen6_trace::PacketRecord;
use std::collections::BTreeMap;

pub use lumen6_detect::parallel::ShardPlan;

/// Which detection backend the labs run — the detect crate's execution
/// [`Backend`](lumen6_detect::Backend), re-exported under the harness's
/// historical name. Labs hand it straight to
/// [`DetectorBuilder::build`](lumen6_detect::DetectorBuilder::build), the
/// single dispatch point shared with `lumen6 detect`.
pub use lumen6_detect::Backend as DetectMode;

fn run_mode(
    mode: DetectMode,
    records: &[PacketRecord],
    levels: &[AggLevel],
    base: ScanDetectorConfig,
) -> BTreeMap<AggLevel, ScanReport> {
    let mut det = DetectorBuilder::new(base).levels(levels).build(mode);
    for r in records {
        det.observe(r);
    }
    det.finish()
}

/// The prepared CDN-side experiment context: world, traces, and the three
/// per-level scan reports (destinations retained at /64 for the targeting
/// analyses).
pub struct CdnLab {
    /// The simulated world (registry, telescope, fleet ground truth).
    pub world: World,
    /// The raw firewall-logged trace (before artifact filtering).
    pub trace: Vec<PacketRecord>,
    /// The artifact-filtered trace the detection pipeline runs on.
    pub filtered: Vec<PacketRecord>,
    /// What the artifact filter removed (Appendix A.1).
    pub filter_report: FilterReport,
    /// Scan reports at /128, /64, /48 (and /32 for the AS#18 analysis).
    pub reports: BTreeMap<AggLevel, ScanReport>,
}

impl CdnLab {
    /// Builds the lab with the default (sharded) detection backend.
    pub fn build(config: FleetConfig) -> CdnLab {
        CdnLab::build_with(config, DetectMode::default())
    }

    /// Builds the lab: generates the trace, filters artifacts, runs
    /// detection at the paper's three levels plus /32 using the given
    /// backend. Sequential and sharded modes produce identical reports.
    pub fn build_with(config: FleetConfig, mode: DetectMode) -> CdnLab {
        let world = World::build(config);
        let trace = world.cdn_trace();
        // The A.1 duplicate threshold is a *volume-relative* cutoff ("the
        // same (dst, port) more than 5 times per day"), unlike the
        // detector's structural thresholds (distinct destinations, idle
        // timeout), which intensity leaves untouched. Scaling it with the
        // configured intensity keeps the filter's removal decisions
        // bit-identical at integer intensities: every per-(source, dst,
        // port) daily count is exactly `intensity` times its 1x value, so
        // `count > 5 * intensity` holds iff the 1x count exceeded 5.
        let prefilter = ArtifactFilter::new(ArtifactFilterConfig {
            dup_threshold: scale_intensity(
                ArtifactFilterConfig::default().dup_threshold,
                world.config().intensity,
            ),
            ..Default::default()
        });
        let (filtered, filter_report) = prefilter.filter(&trace);
        let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48, AggLevel::L32];
        let mut reports = run_mode(
            mode,
            &filtered,
            &levels,
            ScanDetectorConfig {
                keep_dsts: false,
                ..Default::default()
            },
        );
        // Re-run /64 with destination retention (needed by `targets`/`a4`).
        let mut with_dsts = run_mode(
            mode,
            &filtered,
            &[AggLevel::L64],
            ScanDetectorConfig::paper(AggLevel::L64).with_dsts(),
        );
        reports.insert(
            AggLevel::L64,
            with_dsts.remove(&AggLevel::L64).unwrap_or_default(),
        );
        CdnLab {
            world,
            trace,
            filtered,
            filter_report,
            reports,
        }
    }

    /// Builds a lab by streaming an L6TR trace from disk in bounded memory
    /// through a strict (abort-on-decode-error) [`Session`]; the full trace
    /// is never resident.
    ///
    /// The artifact prefilter and the destination-retaining /64 pass both
    /// need state proportional to the trace, so this constructor skips
    /// them: `trace` and `filtered` stay empty, `filter_report` is empty,
    /// and `reports[L64]` carries no destination sets. Only experiments
    /// that consume `reports` plus `world` metadata — `table1` and `fig2`
    /// — are meaningful on a lab built this way.
    pub fn from_trace_file(
        path: &std::path::Path,
        config: FleetConfig,
        mode: DetectMode,
    ) -> Result<CdnLab, lumen6_trace::CodecError> {
        let world = World::build(config);
        let levels = [AggLevel::L128, AggLevel::L64, AggLevel::L48, AggLevel::L32];
        let base = ScanDetectorConfig {
            keep_dsts: false,
            ..Default::default()
        };
        let session = Session::new(
            DetectorBuilder::new(base).levels(&levels),
            mode,
            SessionConfig {
                strict: true,
                ..Default::default()
            },
        );
        let reports = match session.run(path) {
            Ok(SessionOutcome::Finished(rep)) => rep.reports,
            // No checkpoint policy is configured, so the session can only
            // finish or fail.
            Ok(SessionOutcome::Stopped { .. }) => unreachable!("no checkpoint policy"),
            Err(SessionError::Codec(e)) => return Err(e),
            Err(SessionError::Io(e)) => return Err(lumen6_trace::CodecError::Io(e)),
            Err(e) => return Err(lumen6_trace::CodecError::Io(std::io::Error::other(e))),
        };
        Ok(CdnLab {
            world,
            trace: Vec::new(),
            filtered: Vec::new(),
            filter_report: FilterReport::default(),
            reports,
        })
    }

    /// The default full-window lab.
    pub fn full(seed: u64) -> CdnLab {
        CdnLab::build(FleetConfig {
            seed,
            ..Default::default()
        })
    }

    /// A reduced lab for quick runs and tests (6 weeks, small telescope).
    pub fn small(seed: u64) -> CdnLab {
        CdnLab::build(FleetConfig {
            seed,
            ..FleetConfig::small()
        })
    }

    /// The AS#18 allocation prefix (for the paper's exclusion rules).
    pub fn as18_prefix(&self) -> lumen6_addr::Ipv6Prefix {
        self.world
            .fleet
            .truth
            .iter()
            .find(|t| t.rank == 18)
            .expect("fleet always has 20 ASes")
            .prefix
    }
}

/// The prepared MAWI-side context.
pub struct MawiLab {
    /// The MAWI world.
    pub world: MawiWorld,
    /// The full link trace (windowed per day).
    pub trace: Vec<PacketRecord>,
    /// Detection backend; when parallel, per-day detection fans out across
    /// threads (days are independent).
    pub mode: DetectMode,
}

impl MawiLab {
    /// Builds the MAWI lab, sharing scanner identities with a CDN fleet
    /// when given.
    pub fn build(config: MawiConfig, cdn: Option<&World>) -> MawiLab {
        MawiLab::build_with(config, cdn, DetectMode::default())
    }

    /// Builds the MAWI lab with an explicit detection backend.
    pub fn build_with(config: MawiConfig, cdn: Option<&World>, mode: DetectMode) -> MawiLab {
        let world = MawiWorld::build(config, cdn.map(|w| &w.fleet));
        let trace = world.trace();
        MawiLab { world, trace, mode }
    }

    /// The default full-window MAWI lab.
    pub fn full(seed: u64, cdn: Option<&World>) -> MawiLab {
        MawiLab::build(
            MawiConfig {
                seed,
                ..Default::default()
            },
            cdn,
        )
    }
}

/// All CDN experiment names, in paper order.
pub const CDN_EXPERIMENTS: &[&str] = &[
    "fig1",
    "table1",
    "sensitivity",
    "fig2",
    "fig3",
    "table2",
    "durations",
    "fig4",
    "table3",
    "targets",
    "fig8",
    "a1",
    "a4",
    "ext_adaptive",
    "ext_fingerprint",
    "ext_tga",
    "ext_portshift",
    "ext_backscatter",
    "ext_seeds",
];

/// All MAWI experiment names, in paper order.
pub const MAWI_EXPERIMENTS: &[&str] = &["fig5", "fig6", "icmpv6", "fig7", "hitlist"];

/// Runs one CDN experiment by name.
pub fn run_cdn(name: &str, lab: &CdnLab) -> Option<String> {
    Some(match name {
        "fig1" => cdn::fig1_heatmap(lab),
        "table1" => cdn::table1_totals(lab),
        "sensitivity" => cdn::sensitivity(lab),
        "fig2" => cdn::fig2_weekly_sources(lab),
        "fig3" => cdn::fig3_weekly_packets(lab),
        "table2" => cdn::table2_top_as(lab),
        "durations" => cdn::durations(lab),
        "fig4" => cdn::fig4_port_buckets(lab),
        "table3" => cdn::table3_top_ports(lab),
        "targets" => cdn::targets(lab),
        "fig8" => cdn::fig8_port_buckets_aggs(lab),
        "a1" => cdn::a1_artifacts(lab),
        "a4" => cdn::a4_cloud_pair(lab),
        "ext_adaptive" => ext::ext_adaptive(lab),
        "ext_fingerprint" => ext::ext_fingerprint(lab),
        "ext_tga" => ext::ext_tga(lab),
        "ext_portshift" => ext::ext_portshift(lab),
        "ext_backscatter" => ext::ext_backscatter(lab),
        "ext_seeds" => ext::ext_seeds(lab),
        _ => return None,
    })
}

/// Runs one MAWI experiment by name.
pub fn run_mawi(name: &str, lab: &MawiLab) -> Option<String> {
    Some(match name {
        "fig5" => mawi_exp::fig5_daily_sources(lab),
        "fig6" => mawi_exp::fig6_share(lab),
        "icmpv6" => mawi_exp::icmpv6_days(lab),
        "fig7" => mawi_exp::fig7_hamming(lab),
        "hitlist" => mawi_exp::hitlist_overlap(lab),
        _ => return None,
    })
}
