//! CDN-side experiments: Figs. 1–4, 8; Tables 1–3; §2.2 sensitivity; §3.1
//! durations; §3.3 targeting; Appendices A.1 and A.4.

use crate::CdnLab;
use lumen6_analysis::{
    concentration, durations as dur, heatmap, portbuckets, series, stats, targeting, topas,
    topports,
};
use lumen6_detect::detector::detect;
use lumen6_detect::{AggLevel, ScanDetectorConfig};
use lumen6_report::{duration_human, pct, pkt_count, pkt_with_share, Table};
use lumen6_trace::{time, SimTime, DAY_MS};
use std::fmt::Write;

/// Fig. 1: heatmap of source /64s by (destinations, packets), over November
/// 2021 when the window covers it, otherwise over the whole trace.
pub fn fig1_heatmap(lab: &CdnLab) -> String {
    let (slice_label, slice): (&str, &[lumen6_trace::PacketRecord]) = {
        let (s, e) = time::month_range(2021, 11);
        let end_ms = lab.world.config().end_day * DAY_MS;
        if end_ms >= e {
            let lo = lab.trace.partition_point(|r| r.ts_ms < s);
            let hi = lab.trace.partition_point(|r| r.ts_ms < e);
            ("November 2021", &lab.trace[lo..hi])
        } else {
            ("full window", &lab.trace)
        }
    };
    let points = heatmap::source_points(slice, AggLevel::L64);
    let h = heatmap::Heatmap::build(&points, 24);
    let origin = h.mass_below(8, 512);
    let heavy = points.iter().filter(|p| p.dsts >= 100).count();

    let mut out = String::new();
    writeln!(out, "## Fig. 1 — source /64 heatmap ({slice_label})").unwrap();
    writeln!(out, "source /64s: {}", h.sources).unwrap();
    writeln!(
        out,
        "origin cluster (≤8 dsts, ≤64 pkts): {} ({})",
        origin,
        pct(stats::share(origin, h.sources))
    )
    .unwrap();
    writeln!(
        out,
        "heavy tail (≥100 dsts): {} ({})",
        heavy,
        pct(stats::share(heavy as u64, h.sources))
    )
    .unwrap();
    // Compact grid: 8×8 coarse view (log₂ bins pooled 3:1).
    writeln!(
        out,
        "\npackets \\ dsts (log₂-binned source counts, pooled 3:1):"
    )
    .unwrap();
    for by in (0..24).step_by(3).rev() {
        let mut row = String::new();
        for bx in (0..24).step_by(3) {
            let sum: u64 = (by..by + 3)
                .flat_map(|y| (bx..bx + 3).map(move |x| (y, x)))
                .map(|(y, x)| h.cells[y][x])
                .sum();
            write!(
                row,
                "{:>7}",
                if sum == 0 {
                    ".".into()
                } else {
                    sum.to_string()
                }
            )
            .unwrap();
        }
        writeln!(out, "2^{:>2} |{row}", by).unwrap();
    }
    out
}

/// Table 1: detected scans, packets, sources, and source ASes per
/// aggregation level.
pub fn table1_totals(lab: &CdnLab) -> String {
    let mut t = Table::new(vec!["aggregation", "scans", "packets", "sources", "ASes"]);
    for c in 1..=4 {
        t.align_right(c);
    }
    for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        let r = &lab.reports[&lvl];
        let ases = lab.world.registry.distinct_origin_ases(
            r.source_set().iter().map(lumen6_addr::Ipv6Prefix::bits),
            true,
        );
        t.row(vec![
            lvl.to_string(),
            r.scans().to_string(),
            pkt_count(r.packets()),
            r.sources().to_string(),
            ases.to_string(),
        ]);
    }
    format!(
        "## Table 1 — scan totals per source aggregation\n{}",
        t.render()
    )
}

/// §2.2 parameter sensitivity: timeout 3600/1800/900 s and min-dst 100 vs
/// 50 at /64 aggregation; reports the share of threshold-50 sources inside
/// AS#18.
pub fn sensitivity(lab: &CdnLab) -> String {
    let base = &lab.reports[&AggLevel::L64];
    let mut out = String::from("## §2.2 — parameter sensitivity (/64 aggregation)\n");
    let mut t = Table::new(vec![
        "configuration",
        "scans",
        "sources",
        "Δscans",
        "Δsources",
    ]);
    for c in 1..=4 {
        t.align_right(c);
    }
    t.row(vec![
        "timeout 3600s, ≥100 dsts (baseline)".into(),
        base.scans().to_string(),
        base.sources().to_string(),
        "—".into(),
        "—".into(),
    ]);
    let delta = |new: f64, old: f64| -> String {
        if old == 0.0 {
            "n/a".into()
        } else {
            format!("{:+.1}%", (new - old) / old * 100.0)
        }
    };
    for (label, timeout, min_dsts) in [
        ("timeout 1800s, ≥100 dsts", 1_800_000u64, 100u64),
        ("timeout 900s, ≥100 dsts", 900_000, 100),
        ("timeout 3600s, ≥50 dsts", 3_600_000, 50),
    ] {
        let r = detect(
            &lab.filtered,
            ScanDetectorConfig {
                agg: AggLevel::L64,
                timeout_ms: timeout,
                min_dsts,
                ..Default::default()
            },
        );
        t.row(vec![
            label.into(),
            r.scans().to_string(),
            r.sources().to_string(),
            delta(r.scans() as f64, base.scans() as f64),
            delta(r.sources() as f64, base.sources() as f64),
        ]);
        if min_dsts == 50 {
            let as18 = lab.as18_prefix();
            let new_sources: Vec<_> = r
                .source_set()
                .difference(&base.source_set())
                .copied()
                .collect();
            let in_as18 = new_sources.iter().filter(|s| as18.contains(s)).count();
            writeln!(
                out,
                "threshold-50 blow-up: {} new /64 sources, {} ({}) inside AS#18",
                new_sources.len(),
                in_as18,
                pct(stats::share(in_as18 as u64, new_sources.len() as u64))
            )
            .unwrap();
        }
    }
    out.push_str(&t.render());
    out
}

/// Fig. 2: weekly active scan sources per aggregation level, plus the
/// November-2021 /128 uptick check.
pub fn fig2_weekly_sources(lab: &CdnLab) -> String {
    let n_weeks = lab.world.config().end_day.div_ceil(7);
    let mut out = String::from("## Fig. 2 — weekly scan sources per aggregation\n");
    let mut all = Vec::new();
    for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        let s = series::series(&lab.reports[&lvl], series::Bucket::Weekly, n_weeks);
        writeln!(
            out,
            "{lvl}: median weekly sources = {}",
            series::median_sources(&s)
        )
        .unwrap();
        all.push((lvl, s));
    }
    // The /128 uptick: mean weekly /128 sources before vs after 2021-11-01.
    let nov = SimTime::from_date(2021, 11, 1).day_index() / 7;
    let s128 = &all[0].1;
    if (nov as usize) < s128.len() {
        let mean = |xs: &[series::SeriesPoint]| -> f64 {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().map(|p| p.sources as f64).sum::<f64>() / xs.len() as f64
            }
        };
        writeln!(
            out,
            "/128 uptick: mean weekly /128 sources {:.1} before 2021-11 vs {:.1} after (AS#9)",
            mean(&s128[..nov as usize]),
            mean(&s128[nov as usize..])
        )
        .unwrap();
    }
    writeln!(out, "\nweek  /128  /64  /48").unwrap();
    for w in 0..n_weeks as usize {
        writeln!(
            out,
            "{:>4}  {:>4}  {:>3}  {:>3}",
            w, all[0].1[w].sources, all[1].1[w].sources, all[2].1[w].sources
        )
        .unwrap();
    }
    out
}

/// Fig. 3: weekly scan packets (/64) and the top-2 source concentration.
pub fn fig3_weekly_packets(lab: &CdnLab) -> String {
    let n_weeks = lab.world.config().end_day.div_ceil(7);
    let r = &lab.reports[&AggLevel::L64];
    let shares = concentration::per_bucket_topk(r, series::Bucket::Weekly, n_weeks, 2);
    let mut out = String::from("## Fig. 3 — weekly scan packets and concentration (/64)\n");
    writeln!(
        out,
        "overall top-2 source share: {}",
        pct(concentration::overall_topk_share(r, 2))
    )
    .unwrap();
    writeln!(
        out,
        "mean weekly top-2 share: {}",
        pct(concentration::mean_topk_share(&shares))
    )
    .unwrap();
    writeln!(out, "\nweek  packets    top2-share  top-source").unwrap();
    for s in &shares {
        writeln!(
            out,
            "{:>4}  {:>9.0}  {:>10}  {}",
            s.bucket,
            s.packets,
            pct(s.topk_share),
            s.top_source.map(|p| p.to_string()).unwrap_or_default()
        )
        .unwrap();
    }
    out
}

/// Table 2: top-20 source ASes.
pub fn table2_top_as(lab: &CdnLab) -> String {
    let rows = topas::top_as_table(
        &lab.world.registry,
        &lab.reports[&AggLevel::L128],
        &lab.reports[&AggLevel::L64],
        &lab.reports[&AggLevel::L48],
        20,
    );
    let mut t = Table::new(vec![
        "rank",
        "AS type",
        "packets",
        "/48s",
        "/64s",
        "/128s",
        "paper(/48,/64,/128)",
    ]);
    for c in [0usize, 2, 3, 4, 5] {
        t.align_right(c);
    }
    for row in &rows {
        let paper = row
            .asn
            .and_then(|asn| lab.world.fleet.truth.iter().find(|tr| tr.asn == asn))
            .map(|tr| {
                format!(
                    "{} / {} / {}",
                    tr.paper_sources.0, tr.paper_sources.1, tr.paper_sources.2
                )
            })
            .unwrap_or_default();
        t.row(vec![
            format!("#{}", row.rank),
            row.descriptor.clone(),
            pkt_with_share(row.packets, row.share),
            row.sources_48.to_string(),
            row.sources_64.to_string(),
            row.sources_128.to_string(),
            paper,
        ]);
    }
    let mut out = format!(
        "## Table 2 — top source ASes by scan packets\n{}",
        t.render()
    );
    writeln!(
        out,
        "top-5 AS share: {}   top-10 AS share: {}",
        pct(topas::topk_as_share(&rows, 5)),
        pct(topas::topk_as_share(&rows, 10))
    )
    .unwrap();
    // §3.2: the AS#18 /32 aggregate captures ~3× the /48-attributed packets.
    let as18 = lab.as18_prefix();
    let at48: u64 = lab.reports[&AggLevel::L48]
        .events
        .iter()
        .filter(|e| as18.contains(&e.source))
        .map(|e| e.packets)
        .sum();
    let at32: u64 = lab.reports[&AggLevel::L32]
        .events
        .iter()
        .filter(|e| as18.contains(&e.source))
        .map(|e| e.packets)
        .sum();
    writeln!(
        out,
        "AS#18 packets in qualifying scans: {} at /48 vs {} at /32 aggregation ({:.1}×)",
        pkt_count(at48),
        pkt_count(at32),
        if at48 > 0 {
            at32 as f64 / at48 as f64
        } else {
            0.0
        }
    )
    .unwrap();
    out
}

/// §3.1 scan durations per aggregation level.
pub fn durations(lab: &CdnLab) -> String {
    let mut t = Table::new(vec!["aggregation", "scans", "median", "p90", "longest"]);
    for c in 1..=4 {
        t.align_right(c);
    }
    for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        let s = dur::summarize(&lab.reports[&lvl]);
        t.row(vec![
            lvl.to_string(),
            s.scans.to_string(),
            duration_human(s.median_ms),
            duration_human(s.p90_ms),
            duration_human(s.max_ms),
        ]);
    }
    format!("## §3.1 — scan durations\n{}", t.render())
}

/// Fig. 4: scans/sources/packets by ports-per-scan bucket (/64, AS#18
/// excluded per §3.3).
pub fn fig4_port_buckets(lab: &CdnLab) -> String {
    let as18 = lab.as18_prefix();
    let rows = portbuckets::port_buckets(&lab.reports[&AggLevel::L64], |s| as18.contains(s));
    let mut t = Table::new(vec!["ports per scan", "scans", "sources", "packets"]);
    for c in 1..=3 {
        t.align_right(c);
    }
    for r in &rows {
        t.row(vec![
            r.class.to_string(),
            pct(r.scans),
            pct(r.sources),
            pct(r.packets),
        ]);
    }
    format!(
        "## Fig. 4 — ports targeted per scan (/64, AS#18 excluded)\n{}",
        t.render()
    )
}

/// Table 3: top-10 ports by packets, scans, and source /64s (AS#18
/// excluded).
pub fn table3_top_ports(lab: &CdnLab) -> String {
    let as18 = lab.as18_prefix();
    let top = topports::top_ports(&lab.reports[&AggLevel::L64], 10, |s| as18.contains(s));
    let mut t = Table::new(vec![
        "rank", "by pkts", "%", "by scans", "%", "by /64s", "%",
    ]);
    t.align_right(0)
        .align_right(2)
        .align_right(4)
        .align_right(6);
    let fmt = |r: Option<&topports::PortRank>| -> (String, String) {
        match r {
            Some(r) => (
                format!("{}/{}", r.service.0.label(), r.service.1),
                pct(r.fraction),
            ),
            None => (String::new(), String::new()),
        }
    };
    for i in 0..10 {
        let (a, ap) = fmt(top.by_packets.get(i));
        let (b, bp) = fmt(top.by_scans.get(i));
        let (c, cp) = fmt(top.by_sources.get(i));
        t.row(vec![format!("#{}", i + 1), a, ap, b, bp, c, cp]);
    }
    format!(
        "## Table 3 — top targeted ports (/64, AS#18 excluded)\n{}",
        t.render()
    )
}

/// §3.3 targeted addresses: in-DNS vs not-in-DNS per source, plus the
/// nearby-prior-probe analysis.
pub fn targets(lab: &CdnLab) -> String {
    let dep = &lab.world.deployment;
    let as18 = lab.as18_prefix();
    let breakdowns = targeting::dns_breakdown(&lab.reports[&AggLevel::L64], |a| dep.is_in_dns(a));
    let (as18_rows, other): (Vec<_>, Vec<_>) = breakdowns
        .into_iter()
        .partition(|b| as18.contains(&b.source));
    let summary = targeting::summarize_dns(&other);
    let mut out = String::from("## §3.3 — targeted addresses (in DNS vs not in DNS)\n");
    writeln!(
        out,
        "/64 scan sources analyzed (AS#18 separate): {}",
        summary.sources
    )
    .unwrap();
    writeln!(
        out,
        "sources with ALL targets in DNS: {}",
        pct(summary.all_in_dns_frac)
    )
    .unwrap();
    writeln!(
        out,
        "sources with ≥33% not-in-DNS targets: {}",
        pct(summary.heavy_not_in_dns_frac)
    )
    .unwrap();
    writeln!(
        out,
        "rank correlation (scan size vs not-in-DNS fraction): {:+.2}",
        summary.size_vs_hidden_correlation
    )
    .unwrap();
    if !as18_rows.is_empty() {
        let hidden: u64 = as18_rows.iter().map(|b| b.not_in_dns).sum();
        let total: u64 = as18_rows
            .iter()
            .map(lumen6_analysis::targeting::SourceDns::total)
            .sum();
        writeln!(
            out,
            "AS#18: {} of its probed addresses not in DNS ({})",
            hidden,
            pct(stats::share(hidden, total))
        )
        .unwrap();
    }

    // Nearby-prior analysis over sources with ≥50% not-in-DNS targets.
    // Sample the sources with the heaviest not-in-DNS targeting (the paper
    // samples /64s that are at least 50% not-in-DNS; our fleet's explorer
    // sources sit in the 30-50% band, so take the top of the ranking).
    let mut ranked: Vec<_> = other
        .iter()
        .filter(|b| b.not_in_dns_frac() >= 0.25 && b.total() >= 50)
        .collect();
    ranked.sort_by(|a, b| b.not_in_dns_frac().total_cmp(&a.not_in_dns_frac()));
    let sample: Vec<_> = ranked.iter().map(|b| b.source).take(20).collect();
    let spans = [4u8, 8, 12, 16];
    let analysis = targeting::nearby_prior_analysis(
        &lab.filtered,
        &sample,
        AggLevel::L64,
        |a| dep.is_in_dns(a),
        &spans,
    );
    writeln!(
        out,
        "\nnearby-prior-probe analysis ({} sources with substantial not-in-DNS targeting):",
        analysis.len()
    )
    .unwrap();
    writeln!(
        out,
        "source                          hidden   /124   /120   /116   /112"
    )
    .unwrap();
    for n in analysis.iter().take(12) {
        writeln!(
            out,
            "{:<30}  {:>6}  {:>5}  {:>5}  {:>5}  {:>5}",
            n.source.to_string(),
            n.hidden_targets,
            pct(n.fraction(4)),
            pct(n.fraction(8)),
            pct(n.fraction(12)),
            pct(n.fraction(16))
        )
        .unwrap();
    }
    out
}

/// Fig. 8: ports-per-scan buckets at /128 (no aggregation) and /48.
pub fn fig8_port_buckets_aggs(lab: &CdnLab) -> String {
    let mut out = String::from("## Fig. 8 — ports per scan at /128 and /48 aggregation\n");
    for lvl in [AggLevel::L128, AggLevel::L48] {
        let rows = portbuckets::port_buckets(&lab.reports[&lvl], |_| false);
        let mut t = Table::new(vec!["ports per scan", "scans", "sources", "packets"]);
        for c in 1..=3 {
            t.align_right(c);
        }
        for r in &rows {
            t.row(vec![
                r.class.to_string(),
                pct(r.scans),
                pct(r.sources),
                pct(r.packets),
            ]);
        }
        writeln!(out, "\n{lvl} aggregation:\n{}", t.render()).unwrap();
    }
    out
}

/// Appendix A.1: what the artifact filter removed.
pub fn a1_artifacts(lab: &CdnLab) -> String {
    let r = &lab.filter_report;
    let mut out = String::from("## Appendix A.1 — CDN filtering artifacts\n");
    writeln!(
        out,
        "input {} packets, removed {} ({}) from {} source-days ({} distinct /64 sources)",
        pkt_count(r.input_packets),
        pkt_count(r.removed_packets),
        pct(r.removed_fraction()),
        r.removed_source_days,
        r.removed_sources
    )
    .unwrap();
    let mut t = Table::new(vec!["service", "removed packets", "removed sources"]);
    t.align_right(1).align_right(2);
    for ((proto, port), n) in r.top_services(6) {
        let srcs = r
            .removed_sources_by_service
            .iter()
            .find(|(s, _)| s == &(*proto, *port))
            .map(|(_, n)| *n)
            .unwrap_or(0);
        t.row(vec![
            format!("{}/{}", proto.label(), port),
            pkt_count(*n),
            srcs.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Appendix A.4: the AS#6 common-actor pair — near-identical target sets
/// across two /64s in different /48s.
pub fn a4_cloud_pair(lab: &CdnLab) -> String {
    let dep = &lab.world.deployment;
    // The pair actors' source /64s, from the fleet definition.
    let pair_64s: Vec<lumen6_addr::Ipv6Prefix> = lab
        .world
        .fleet
        .actors
        .iter()
        .filter(|a| a.name.starts_with("as6-a4-pair"))
        .map(|a| match &a.sources {
            lumen6_scanners::SourceSampler::Pool(pool) => lumen6_addr::Ipv6Prefix::new(pool[0], 64),
            _ => unreachable!("pair actors use pools"),
        })
        .collect();
    assert_eq!(pair_64s.len(), 2, "fleet defines exactly one A.4 pair");
    let mut out = String::from("## Appendix A.4 — AS#6 common-actor inference\n");
    let mut sets: Vec<Vec<u128>> = Vec::new();
    for p in &pair_64s {
        let events: Vec<_> = lab.reports[&AggLevel::L64]
            .events
            .iter()
            .filter(|e| e.source == *p)
            .collect();
        let mut targets: Vec<u128> = events
            .iter()
            .filter_map(|e| e.dsts.as_ref())
            .flatten()
            .copied()
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let in_dns = targets.iter().filter(|&&a| dep.is_in_dns(a)).count();
        let packets: u64 = events.iter().map(|e| e.packets).sum();
        let first = events.iter().map(|e| e.start_ms).min().unwrap_or(0);
        let last = events.iter().map(|e| e.end_ms).max().unwrap_or(0);
        writeln!(
            out,
            "{p}: scans={} packets={} targets={} in-DNS={} ({}) active day {}..{}",
            events.len(),
            packets,
            targets.len(),
            in_dns,
            pct(stats::share(in_dns as u64, targets.len() as u64)),
            first / DAY_MS,
            last / DAY_MS
        )
        .unwrap();
        sets.push(targets);
    }
    if sets.len() == 2 {
        writeln!(
            out,
            "target-set Jaccard similarity (intersection/union): {}",
            pct(stats::jaccard_sorted(&sets[0], &sets[1]))
        )
        .unwrap();
        // Different /48s — the "separate address space" observation.
        writeln!(
            out,
            "pair /64s in different /48s: {}",
            pair_64s[0].aggregate(48) != pair_64s[1].aggregate(48)
        )
        .unwrap();
    }
    out
}
