//! Extension experiments: the paper's §5 future-work directions, built and
//! evaluated on the simulated world.
//!
//! - `ext_adaptive` — the adaptive-aggregation IDS plus blocklist policy on
//!   real fleet traffic: who gets blocked, who is saved by the collateral
//!   guard.
//! - `ext_fingerprint` — traffic-feature clustering of scan events; purity
//!   against the ground-truth AS of each source, and the Appendix A.4
//!   same-actor verdict computed from behavior alone.
//! - `ext_tga` — target generation: learn the telescope's address structure
//!   from the DNS-exposed half, rediscover hidden (not-in-DNS) addresses.

use crate::CdnLab;
use lumen6_addr::EntropyProfile;
use lumen6_detect::adaptive::{AdaptiveConfig, AdaptiveIds};
use lumen6_detect::blocklist::{Blocklist, BlocklistConfig, Decision, RejectReason};
use lumen6_detect::{fingerprint, AggLevel};
use lumen6_report::{pct, Table};
use lumen6_scanners::tga;
use lumen6_trace::DAY_MS;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::fmt::Write;

/// Adaptive IDS + blocklist over one analysis window of fleet traffic.
pub fn ext_adaptive(lab: &CdnLab) -> String {
    // One 28-day window keeps per-host state bounded and mirrors an IDS
    // analysis epoch.
    let end = 28 * DAY_MS;
    let hi = lab.filtered.partition_point(|r| r.ts_ms < end);
    let mut window: Vec<lumen6_trace::PacketRecord> = lab.filtered[..hi].to_vec();

    // The firewall only sees unsolicited traffic, so AS#6's benign cloud
    // tenants are normally invisible. Model the §5 collateral scenario:
    // 300 of them emit a stray packet each (one destination apiece) inside
    // the scanners' /32 during the window — any coarse alert over that /32
    // now carries real collateral.
    let as6 = lab
        .world
        .fleet
        .truth
        .iter()
        .find(|t| t.rank == 6)
        .expect("fleet has 20 ASes")
        .prefix;
    let busy_dst = lab.world.deployment.machines()[0].client_facing;
    let mut rng = SmallRng::seed_from_u64(7);
    for i in 0..300u64 {
        let src = lumen6_addr::gen::random_in_prefix(&mut rng, as6);
        window.push(lumen6_trace::PacketRecord::udp(
            (i % 28) * DAY_MS + 1000,
            src,
            busy_dst,
            500,
            500,
            120,
        ));
    }
    lumen6_trace::sort_by_time(&mut window);
    let alerts = AdaptiveIds::new(AdaptiveConfig::default()).analyze(&window);

    let mut out = String::from("## Extension — adaptive-aggregation IDS + blocklist policy\n");
    writeln!(
        out,
        "analysis window: 28 days, {} packets (incl. 300 benign AS#6 tenants); {} alerts",
        window.len(),
        alerts.len()
    )
    .unwrap();
    let mut t = Table::new(vec![
        "prefix",
        "packets",
        "dsts",
        "srcs",
        "collateral",
        "subsumed",
        "AS",
    ]);
    for c in 1..=5 {
        t.align_right(c);
    }
    for a in alerts.iter().take(12) {
        let who = lab
            .world
            .registry
            .origin_asn(a.prefix.bits())
            .and_then(|asn| lab.world.fleet.truth.iter().find(|t| t.asn == asn))
            .map(|t| format!("#{}", t.rank))
            .unwrap_or_else(|| "?".into());
        t.row(vec![
            a.prefix.to_string(),
            a.packets.to_string(),
            a.distinct_dsts.to_string(),
            a.contributing_srcs.to_string(),
            a.collateral_srcs.to_string(),
            a.subsumed.len().to_string(),
            who,
        ]);
    }
    out.push_str(&t.render());

    // Blocklist policy: strict collateral bound first, then a loose bound
    // to expose the trade-off the paper warns about.
    for (label, max_collateral) in [("strict (≤8)", 8u64), ("loose (≤10000)", 10_000)] {
        let mut bl = Blocklist::new(BlocklistConfig {
            max_collateral,
            ..Default::default()
        });
        let decisions = bl.ingest(end, &alerts);
        let blocked = decisions
            .iter()
            .filter(|d| matches!(d, Decision::Blocked(_)))
            .count();
        let collateral_rejects = decisions
            .iter()
            .filter(|d| matches!(d, Decision::Rejected(_, RejectReason::TooMuchCollateral)))
            .count();
        writeln!(
            out,
            "policy {label}: {blocked} blocked, {collateral_rejects} rejected for collateral ({} other rejects)",
            decisions.len() - blocked - collateral_rejects
        )
        .unwrap();
        if max_collateral <= 8 {
            for d in &decisions {
                if let Decision::Rejected(p, RejectReason::TooMuchCollateral) = d {
                    writeln!(out, "  collateral guard saved: {p}").unwrap();
                }
            }
        }
    }
    out
}

/// Behavior-based clustering of scan events and the A.4 inference.
pub fn ext_fingerprint(lab: &CdnLab) -> String {
    let report = &lab.reports[&AggLevel::L64];
    let clusters = fingerprint::cluster(&report.events, 0.10);

    // Purity: fraction of each cluster's events whose source AS equals the
    // cluster's majority AS, weighted by cluster size.
    let asn_of = |idx: usize| -> Option<u32> {
        lab.world
            .registry
            .origin_asn(report.events[idx].source.bits())
    };
    let mut weighted_pure = 0usize;
    let mut total = 0usize;
    for c in &clusters {
        let mut counts: HashMap<Option<u32>, usize> = HashMap::new();
        for &m in &c.members {
            *counts.entry(asn_of(m)).or_default() += 1;
        }
        let majority = counts.values().copied().max().unwrap_or(0);
        weighted_pure += majority;
        total += c.members.len();
    }

    let mut out = String::from("## Extension — traffic-feature fingerprinting of scans\n");
    writeln!(
        out,
        "{} /64 scan events clustered into {} behavior groups ({} scanning ASes in the fleet)",
        report.events.len(),
        clusters.len(),
        lab.world.fleet.truth.len()
    )
    .unwrap();
    writeln!(
        out,
        "cluster purity (events matching their cluster's majority AS): {}",
        pct(weighted_pure as f64 / total.max(1) as f64)
    )
    .unwrap();

    // The A.4 pair by behavior alone.
    let pair: Vec<_> = lab
        .world
        .fleet
        .actors
        .iter()
        .filter(|a| a.name.starts_with("as6-a4-pair"))
        .map(|a| match &a.sources {
            lumen6_scanners::SourceSampler::Pool(p) => lumen6_addr::Ipv6Prefix::new(p[0], 64),
            _ => unreachable!("pair actors use pools"),
        })
        .collect();
    let events_of = |p: &lumen6_addr::Ipv6Prefix| -> Vec<&lumen6_detect::ScanEvent> {
        report.events.iter().filter(|e| e.source == *p).collect()
    };
    let a = events_of(&pair[0]);
    let b = events_of(&pair[1]);
    writeln!(
        out,
        "A.4 pair same-actor verdict (behavior only, no prefix relation): {}",
        fingerprint::same_actor(&a, &b, 0.15)
    )
    .unwrap();
    // Control: the pair vs AS#18 (single-port, half-hidden targeting).
    let as18 = lab.as18_prefix();
    let control: Vec<_> = report
        .events
        .iter()
        .filter(|e| as18.contains(&e.source))
        .take(40)
        .collect();
    writeln!(
        out,
        "control (pair vs AS#18 behavior): {}",
        fingerprint::same_actor(&a, &control, 0.15)
    )
    .unwrap();
    out
}

/// DNS-backscatter cross-check: detect the fleet's scanners from the
/// reverse-zone authority's viewpoint, with no access to the scan traffic.
pub fn ext_backscatter(lab: &CdnLab) -> String {
    use lumen6_backscatter::{generate_backscatter, BackscatterConfig, BackscatterDetector};
    // One month of victim-side traffic drives the PTR-query stream.
    let end = 31 * DAY_MS;
    let hi = lab.trace.partition_point(|r| r.ts_ms < end);
    let queries = generate_backscatter(&lab.trace[..hi], &BackscatterConfig::default(), 5);
    let detected = BackscatterDetector::default().detect(&queries);

    let mut out = String::from(
        "## Extension — DNS-backscatter cross-check (Fukuda–Heidemann vantage)
",
    );
    writeln!(
        out,
        "{} PTR queries at the reverse-zone authority; {} sources flagged (≥20 distinct resolvers)",
        queries.len(),
        detected.len()
    )
    .unwrap();
    let mut t = Table::new(vec!["source /64", "queriers", "queries", "ground truth"]);
    t.align_right(1).align_right(2);
    let mut hits = 0usize;
    for d in detected.iter().take(10) {
        let who = lab
            .world
            .fleet
            .truth
            .iter()
            .find(|tr| tr.prefix.contains(&d.source))
            .map(|tr| {
                hits += 1;
                format!("AS#{}", tr.rank)
            })
            .unwrap_or_else(|| "not a scanner (!)".into());
        t.row(vec![
            d.source.to_string(),
            d.queriers.to_string(),
            d.queries.to_string(),
            who,
        ]);
    }
    out.push_str(&t.render());
    let precision = detected
        .iter()
        .filter(|d| {
            lab.world
                .fleet
                .truth
                .iter()
                .any(|tr| tr.prefix.contains(&d.source))
        })
        .count();
    writeln!(
        out,
        "precision: {} of {} flagged sources are ground-truth scanners",
        precision,
        detected.len()
    )
    .unwrap();
    out
}

/// Seed robustness: the headline results must not be artifacts of one RNG
/// stream. Builds three reduced worlds with different seeds and compares
/// the topline shapes.
pub fn ext_seeds(_lab: &CdnLab) -> String {
    let mut out = String::from(
        "## Extension — seed robustness (three reduced 12-week worlds)
",
    );
    let mut t = Table::new(vec![
        "seed",
        "/64 scans",
        "/64 sources",
        "/48 sources",
        "top-2 share",
        "all-in-DNS",
    ]);
    for c in 1..=5 {
        t.align_right(c);
    }
    for seed in [1u64, 7, 1234] {
        let mut cfg = lumen6_scanners::FleetConfig::small();
        cfg.seed = seed;
        cfg.end_day = 84;
        let lab = CdnLab::build(cfg);
        let r64 = &lab.reports[&AggLevel::L64];
        let r48 = &lab.reports[&lumen6_detect::AggLevel::L48];
        let as18 = lab.as18_prefix();
        let dep = &lab.world.deployment;
        let rows: Vec<_> = lumen6_analysis::targeting::dns_breakdown(r64, |a| dep.is_in_dns(a))
            .into_iter()
            .filter(|b| !as18.contains(&b.source))
            .collect();
        let summary = lumen6_analysis::targeting::summarize_dns(&rows);
        t.row(vec![
            seed.to_string(),
            r64.scans().to_string(),
            r64.sources().to_string(),
            r48.sources().to_string(),
            pct(lumen6_analysis::concentration::overall_topk_share(r64, 2)),
            pct(summary.all_in_dns_frac),
        ]);
    }
    out.push_str(&t.render());
    writeln!(
        out,
        "shape checks across seeds: /48 sources > /64 sources and top-2 dominance hold in every world"
    )
    .unwrap();
    out
}

/// Strategy-shift detection: recover AS#1's May-2021 port switch from the
/// trace alone (no ground-truth peek).
pub fn ext_portshift(lab: &CdnLab) -> String {
    let as1 = lab.world.fleet.truth[0].prefix;
    let weeks = lab.world.config().end_day.div_ceil(7) as usize;
    let sets = lumen6_analysis::changepoint::service_sets_per_bucket(
        &lab.filtered,
        as1,
        lumen6_trace::WEEK_MS,
        weeks,
    );
    let mut out = String::from(
        "## Extension — port-strategy change-point detection (AS#1)
",
    );
    match lumen6_analysis::changepoint::detect_port_shift(&sets, 4, 0.5) {
        Some(shift) => {
            let day = shift.bucket as u64 * 7;
            let label = lumen6_trace::SimTime(day * DAY_MS).date_label();
            writeln!(
                out,
                "detected switch in week {} (≈ {label}): {} ports -> {} ports",
                shift.bucket, shift.ports_before, shift.ports_after
            )
            .unwrap();
            writeln!(
                out,
                "regime coherence {:.2} / {:.2}, cross-similarity {:.2}",
                shift.before_coherence, shift.after_coherence, shift.cross_similarity
            )
            .unwrap();
            writeln!(
                out,
                "ground truth: the fleet switches AS#1 on 2021-05-27 (week 20)"
            )
            .unwrap();
        }
        None => writeln!(out, "no change point found (window may not cover May 2021)").unwrap(),
    }
    out
}

/// Target generation: rediscovering not-in-DNS telescope addresses.
pub fn ext_tga(lab: &CdnLab) -> String {
    let dep = &lab.world.deployment;
    let seeds: Vec<u128> = dep.dns_hitlist();
    let seed_set: HashSet<u128> = seeds.iter().copied().collect();
    let responders: HashSet<u128> = dep.all_addrs().into_iter().collect();

    let profile = EntropyProfile::from_addrs(seeds.iter().copied());
    let model = tga::IidModel::learn(&seeds);
    let tree = tga::PrefixTree::learn(&seeds);
    let nets = tree.networks();

    let mut rng = SmallRng::seed_from_u64(99);
    let n = 200_000;
    let candidates = model.generate(&mut rng, &nets, &seed_set, n);
    let hit = tga::evaluate_hit_rate(&candidates, &seed_set, &responders);
    let baseline = tga::random_baseline(&mut rng, &nets, n);
    let base_hit = tga::evaluate_hit_rate(&baseline, &seed_set, &responders);

    // How many *hidden* (not-in-DNS) addresses did the model uncover?
    let discovered: HashSet<u128> = candidates
        .iter()
        .copied()
        .filter(|c| !seed_set.contains(c) && responders.contains(c))
        .collect();
    let hidden_total = responders.len() - seed_set.len();

    let mut out =
        String::from("## Extension — target generation (how scanners find non-DNS targets)\n");
    writeln!(
        out,
        "seed set: {} DNS-exposed addresses over {} /64s",
        seeds.len(),
        tree.len()
    )
    .unwrap();
    writeln!(out, "seed entropy signature: {}", profile.signature()).unwrap();
    writeln!(
        out,
        "seed IID entropy: {:.2} bits/nibble",
        profile.iid_entropy()
    )
    .unwrap();
    writeln!(
        out,
        "learned model: hit rate {} over {n} candidates (random-IID baseline: {})",
        pct(hit),
        pct(base_hit)
    )
    .unwrap();
    writeln!(
        out,
        "hidden addresses discovered: {} of {} not-in-DNS telescope addresses ({})",
        discovered.len(),
        hidden_total,
        pct(discovered.len() as f64 / hidden_total.max(1) as f64)
    )
    .unwrap();
    writeln!(
        out,
        "-> structured address plans make \"non-DNS\" targets guessable, the paper's §5 concern"
    )
    .unwrap();
    out
}
