//! CSV export of the figure series — so the paper's plots can be
//! regenerated with any plotting tool (`experiments --csv DIR ...`).

use crate::{CdnLab, MawiLab};
use lumen6_addr::HammingDistribution;
use lumen6_analysis::{concentration, heatmap, portbuckets, series};
use lumen6_detect::{AggLevel, MawiConfig as FhConfig, MawiDetector};
use lumen6_mawi::split_days;
use lumen6_report::to_csv;
use lumen6_trace::SimTime;
use std::io;
use std::path::Path;

fn write(dir: &Path, name: &str, content: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(name), content)
}

/// Writes every CDN figure series into `dir`.
pub fn export_cdn(lab: &CdnLab, dir: &Path) -> io::Result<Vec<String>> {
    let mut written = Vec::new();
    let n_weeks = lab.world.config().end_day.div_ceil(7);

    // fig1: heatmap cells.
    let points = heatmap::source_points(&lab.trace, AggLevel::L64);
    let h = heatmap::Heatmap::build(&points, 24);
    let mut rows = Vec::new();
    for (y, row) in h.cells.iter().enumerate() {
        for (x, &n) in row.iter().enumerate() {
            if n > 0 {
                rows.push(vec![
                    h.dst_edges[x].to_string(),
                    h.pkt_edges[y].to_string(),
                    n.to_string(),
                ]);
            }
        }
    }
    write(
        dir,
        "fig1_heatmap.csv",
        &to_csv(&["dsts_bin", "pkts_bin", "sources"], &rows),
    )?;
    written.push("fig1_heatmap.csv".into());

    // fig2: weekly sources per aggregation.
    let mut per_level = Vec::new();
    for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        per_level.push(series::series(
            &lab.reports[&lvl],
            series::Bucket::Weekly,
            n_weeks,
        ));
    }
    let rows: Vec<Vec<String>> = (0..n_weeks as usize)
        .map(|w| {
            vec![
                w.to_string(),
                per_level[0][w].sources.to_string(),
                per_level[1][w].sources.to_string(),
                per_level[2][w].sources.to_string(),
            ]
        })
        .collect();
    write(
        dir,
        "fig2_weekly_sources.csv",
        &to_csv(&["week", "s128", "s64", "s48"], &rows),
    )?;
    written.push("fig2_weekly_sources.csv".into());

    // fig3: weekly packets and top-2 share.
    let shares = concentration::per_bucket_topk(
        &lab.reports[&AggLevel::L64],
        series::Bucket::Weekly,
        n_weeks,
        2,
    );
    let rows: Vec<Vec<String>> = shares
        .iter()
        .map(|s| {
            vec![
                s.bucket.to_string(),
                format!("{:.0}", s.packets),
                format!("{:.4}", s.topk_share),
            ]
        })
        .collect();
    write(
        dir,
        "fig3_weekly_packets.csv",
        &to_csv(&["week", "packets", "top2_share"], &rows),
    )?;
    written.push("fig3_weekly_packets.csv".into());

    // fig4 + fig8: port buckets per aggregation.
    let as18 = lab.as18_prefix();
    for (name, lvl, exclude) in [
        ("fig4_ports_64.csv", AggLevel::L64, true),
        ("fig8_ports_128.csv", AggLevel::L128, false),
        ("fig8_ports_48.csv", AggLevel::L48, false),
    ] {
        let rows_pb =
            portbuckets::port_buckets(&lab.reports[&lvl], |s| exclude && as18.contains(s));
        let rows: Vec<Vec<String>> = rows_pb
            .iter()
            .map(|r| {
                vec![
                    r.class.label().to_string(),
                    format!("{:.4}", r.scans),
                    format!("{:.4}", r.sources),
                    format!("{:.4}", r.packets),
                ]
            })
            .collect();
        write(
            dir,
            name,
            &to_csv(&["bucket", "scans", "sources", "packets"], &rows),
        )?;
        written.push(name.into());
    }
    Ok(written)
}

/// Writes every MAWI figure series into `dir`.
pub fn export_mawi(lab: &MawiLab, dir: &Path) -> io::Result<Vec<String>> {
    let mut written = Vec::new();
    let (start, end) = (lab.world.config().start_day, lab.world.config().end_day);

    // fig5 + fig6: daily sources (both thresholds) and packets/top shares.
    let strict = MawiDetector::new(FhConfig::paper(AggLevel::L64));
    let loose = MawiDetector::new(FhConfig::loose(AggLevel::L64));
    let mut rows5 = Vec::new();
    let mut rows6 = Vec::new();
    for (day, slice) in split_days(&lab.trace, start, end) {
        let s = strict.detect(slice);
        let l = loose.detect(slice);
        rows5.push(vec![
            day.to_string(),
            s.len().to_string(),
            l.len().to_string(),
        ]);
        let mut pkts: Vec<u64> = s.iter().map(|x| x.packets).collect();
        pkts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = pkts.iter().sum();
        let share = |k: usize| {
            if total == 0 {
                0.0
            } else {
                pkts.iter().take(k).sum::<u64>() as f64 / total as f64
            }
        };
        rows6.push(vec![
            day.to_string(),
            total.to_string(),
            format!("{:.4}", share(1)),
            format!("{:.4}", share(2)),
            format!("{:.4}", share(3)),
        ]);
    }
    write(
        dir,
        "fig5_daily_sources.csv",
        &to_csv(&["day", "min100", "min5"], &rows5),
    )?;
    written.push("fig5_daily_sources.csv".into());
    write(
        dir,
        "fig6_daily_share.csv",
        &to_csv(&["day", "packets", "top1", "top2", "top3"], &rows6),
    )?;
    written.push("fig6_daily_share.csv".into());

    // fig7: Hamming weight histograms for the selected sources/days.
    let may27 = SimTime::from_date(2021, 5, 27).day_index();
    let dec24 = SimTime::from_date(2021, 12, 24).day_index();
    let jul6 = SimTime::from_date(2021, 7, 6).day_index();
    let mut rows = Vec::new();
    let mut add = |label: &str, day: u64, pred: &dyn Fn(&lumen6_trace::PacketRecord) -> bool| {
        if !(start..end).contains(&day) {
            return;
        }
        let (ws, we) = lumen6_mawi::capture_window(day);
        let d = HammingDistribution::from_addrs(
            lab.trace
                .iter()
                .filter(|r| r.ts_ms >= ws && r.ts_ms < we && pred(r))
                .map(|r| r.dst),
        );
        for (w, &c) in d.histogram().iter().enumerate() {
            if c > 0 {
                rows.push(vec![label.to_string(), w.to_string(), c.to_string()]);
            }
        }
    };
    let as1 = lab.world.as1_source;
    add("as1_may27", may27, &|r| r.src == as1);
    add("as1_may28", may27 + 1, &|r| r.src == as1);
    add("as3_jul6", jul6, &|r| {
        lab.world.jul6_prefix.contains_addr(r.src)
    });
    let dec_src = lab.world.dec24_source;
    add("cloud_dec24", dec24, &|r| r.src == dec_src);
    write(
        dir,
        "fig7_hamming.csv",
        &to_csv(&["series", "weight", "count"], &rows),
    )?;
    written.push("fig7_hamming.csv".into());
    Ok(written)
}
