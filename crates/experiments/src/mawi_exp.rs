//! MAWI-side experiments: Figs. 5–7, the §4 ICMPv6 findings, and the
//! Appendix A.2 hitlist-overlap analysis.

use crate::MawiLab;
use lumen6_addr::HammingDistribution;
use lumen6_analysis::{overlap, stats, targeting};
use lumen6_detect::{AggLevel, MawiConfig as FhConfig, MawiDetector, MawiScan};
use lumen6_mawi::split_days;
use lumen6_report::{pct, pkt_count, Table};
use lumen6_trace::{PacketRecord, SimTime};
use std::collections::HashMap;
use std::fmt::Write;

fn day_range(lab: &MawiLab) -> (u64, u64) {
    (lab.world.config().start_day, lab.world.config().end_day)
}

/// Per-day detection at one configuration. Days are independent, so when
/// the lab runs in a parallel [`crate::DetectMode`] they are detected
/// concurrently; order (and output) is identical either way.
fn daily_scans(lab: &MawiLab, agg: AggLevel, min_dsts: u64) -> Vec<(u64, Vec<MawiScan>)> {
    let det = MawiDetector::new(FhConfig {
        agg,
        min_dsts,
        ..Default::default()
    });
    let (s, e) = day_range(lab);
    let days = split_days(&lab.trace, s, e);
    if lab.mode.is_parallel() {
        rayon::parallel_map_slice(&days, &|(day, slice)| (*day, det.detect(slice)))
    } else {
        days.into_iter()
            .map(|(day, slice)| (day, det.detect(slice)))
            .collect()
    }
}

/// Fig. 5: daily scan sources per aggregation and destination threshold.
pub fn fig5_daily_sources(lab: &MawiLab) -> String {
    let mut out = String::from("## Fig. 5 — MAWI daily scan sources (aggregation × min-dst)\n");
    let mut t = Table::new(vec!["configuration", "median/day", "mean/day", "max/day"]);
    for c in 1..=3 {
        t.align_right(c);
    }
    let mut medians: HashMap<(u8, u64), f64> = HashMap::new();
    for agg in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        for min in [100u64, 5] {
            let days = daily_scans(lab, agg, min);
            let mut counts: Vec<u64> = days.iter().map(|(_, s)| s.len() as u64).collect();
            counts.sort_unstable();
            let median = stats::median_sorted(&counts);
            let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
            medians.insert((agg.len(), min), median as f64);
            t.row(vec![
                format!("{agg}, ≥{min} dsts"),
                median.to_string(),
                format!("{mean:.1}"),
                counts.last().copied().unwrap_or(0).to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    let strict = medians.get(&(64, 100)).copied().unwrap_or(0.0);
    let loose = medians.get(&(64, 5)).copied().unwrap_or(0.0);
    if strict > 0.0 {
        writeln!(
            out,
            "threshold 5 vs 100 at /64: {loose:.0} vs {strict:.0} median daily sources ({:.1}×)",
            loose / strict
        )
        .unwrap();
    }
    out
}

/// Fig. 6: daily scan packets and top-1/2/3 source shares.
pub fn fig6_share(lab: &MawiLab) -> String {
    let days = daily_scans(lab, AggLevel::L64, 100);
    let mut out = String::from("## Fig. 6 — MAWI daily packets and top-source shares (/64)\n");
    let mut total_by_source: HashMap<lumen6_addr::Ipv6Prefix, u64> = HashMap::new();
    let mut daily_top1 = Vec::new();
    let mut daily_top3 = Vec::new();
    let mut total_packets = 0u64;
    for (_, scans) in &days {
        let mut v: Vec<u64> = scans.iter().map(|s| s.packets).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let day_total: u64 = v.iter().sum();
        total_packets += day_total;
        if day_total > 0 {
            daily_top1.push(v[0] as f64 / day_total as f64);
            daily_top3.push(v.iter().take(3).sum::<u64>() as f64 / day_total as f64);
        }
        for s in scans {
            *total_by_source.entry(s.source).or_default() += s.packets;
        }
    }
    let mut ranked: Vec<(lumen6_addr::Ipv6Prefix, u64)> = total_by_source.into_iter().collect();
    ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    writeln!(
        out,
        "days analyzed: {}   scan packets: {}",
        days.len(),
        pkt_count(total_packets)
    )
    .unwrap();
    if let Some((top, pkts)) = ranked.first() {
        writeln!(
            out,
            "most active source: {top} with {} ({} of all scan packets)",
            pkt_count(*pkts),
            pct(stats::share(*pkts, total_packets))
        )
        .unwrap();
        writeln!(
            out,
            "most active source is the CDN fleet's AS#1 source: {}",
            top.contains_addr(lab.world.as1_source)
        )
        .unwrap();
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    writeln!(
        out,
        "mean daily top-1 share: {}   mean daily top-3 share: {}",
        pct(mean(&daily_top1)),
        pct(mean(&daily_top3))
    )
    .unwrap();
    out
}

/// §4 ICMPv6 scans: prevalence, dominance, and the two peak events.
pub fn icmpv6_days(lab: &MawiLab) -> String {
    let days = daily_scans(lab, AggLevel::L64, 100);
    let mut out = String::from("## §4 — ICMPv6 scanning in the MAWI traces\n");
    let mut days_with_icmp = 0usize;
    let mut days_icmp_majority = 0usize;
    let mut peak: (u64, u64) = (0, 0); // (day, icmpv6 packets)
    for (day, scans) in &days {
        let icmp: Vec<&MawiScan> = scans.iter().filter(|s| s.is_icmpv6()).collect();
        if !icmp.is_empty() {
            days_with_icmp += 1;
            if icmp.len() * 2 > scans.len() {
                days_icmp_majority += 1;
            }
            let pkts: u64 = icmp.iter().map(|s| s.packets).sum();
            if pkts > peak.1 {
                peak = (*day, pkts);
            }
        }
    }
    writeln!(
        out,
        "days with large-scale ICMPv6 scans: {} of {}",
        days_with_icmp,
        days.len()
    )
    .unwrap();
    writeln!(
        out,
        "days where ICMPv6 sources are the majority of scan sources: {days_icmp_majority}"
    )
    .unwrap();
    let label = SimTime(peak.0 * lumen6_trace::DAY_MS).date_label();
    let kpps = peak.1 as f64 / (lumen6_mawi::WINDOW_LEN_MS as f64 / 1000.0) / 1000.0;
    writeln!(
        out,
        "largest ICMPv6 peak: {label} with {} packets in the 15-min window ({kpps:.1} kpps)",
        pkt_count(peak.1)
    )
    .unwrap();
    // The July 6 event: count the /128 source addresses inside the /124
    // (the paper: "the top scan source consists of 7 source IPs from the
    // same /124 prefix").
    let jul6 = SimTime::from_date(2021, 7, 6).day_index();
    let (ws, we) = lumen6_mawi::capture_window(jul6);
    let lo = lab.trace.partition_point(|r| r.ts_ms < ws);
    let hi = lab.trace.partition_point(|r| r.ts_ms < we);
    let srcs: std::collections::HashSet<u128> = lab.trace[lo..hi]
        .iter()
        .filter(|r| lab.world.jul6_prefix.contains_addr(r.src))
        .map(|r| r.src)
        .collect();
    writeln!(
        out,
        "2021-07-06: {} source IPs from the AS#3 /124 ({})",
        srcs.len(),
        lab.world.jul6_prefix
    )
    .unwrap();
    out
}

/// Per-day targets of one source (by /128 address containment).
fn targets_of<'a>(
    trace: &'a [PacketRecord],
    day: u64,
    src: u128,
) -> impl Iterator<Item = u128> + 'a {
    let (s, e) = lumen6_mawi::capture_window(day);
    let lo = trace.partition_point(|r| r.ts_ms < s);
    let hi = trace.partition_point(|r| r.ts_ms < e);
    trace[lo..hi]
        .iter()
        .filter(move |r| r.src == src)
        .map(|r| r.dst)
}

/// Fig. 7: Hamming-weight distributions of target IIDs for the selected
/// sources and dates.
pub fn fig7_hamming(lab: &MawiLab) -> String {
    let may27 = SimTime::from_date(2021, 5, 27).day_index();
    let may28 = may27 + 1;
    let jul6 = SimTime::from_date(2021, 7, 6).day_index();
    let dec24 = SimTime::from_date(2021, 12, 24).day_index();
    let jul6_src = lab.world.jul6_prefix.first_addr() | 1;

    let mut out = String::from("## Fig. 7 — Hamming weight of target IIDs (MAWI)\n");
    let mut t = Table::new(vec![
        "source / date",
        "targets",
        "mean HW",
        "median",
        "random?",
    ]);
    for c in 1..=3 {
        t.align_right(c);
    }
    let mut dists: Vec<(String, HammingDistribution)> = Vec::new();
    for (label, day, src) in [
        ("AS#1 2021-05-27 (hitlist day)", may27, lab.world.as1_source),
        ("AS#1 2021-05-28", may28, lab.world.as1_source),
        ("AS#3 2021-07-06 (ICMPv6)", jul6, jul6_src),
        ("Cloud 2021-12-24 (ICMPv6)", dec24, lab.world.dec24_source),
    ] {
        // For the July-6 event, collect over all seven /124 sources.
        let targets: Vec<u128> = if day == jul6 {
            let (s, e) = lumen6_mawi::capture_window(day);
            let lo = lab.trace.partition_point(|r| r.ts_ms < s);
            let hi = lab.trace.partition_point(|r| r.ts_ms < e);
            lab.trace[lo..hi]
                .iter()
                .filter(|r| lab.world.jul6_prefix.contains_addr(r.src))
                .map(|r| r.dst)
                .collect()
        } else {
            targets_of(&lab.trace, day, src).collect()
        };
        let d = HammingDistribution::from_addrs(targets.iter().copied());
        t.row(vec![
            label.to_string(),
            d.total().to_string(),
            format!("{:.1}", d.mean()),
            d.median().to_string(),
            if d.looks_random() {
                "yes (Gaussian)"
            } else {
                "no (structured)"
            }
            .to_string(),
        ]);
        dists.push((label.to_string(), d));
    }
    out.push_str(&t.render());
    // Coarse PMF rows (8-weight buckets).
    writeln!(out, "\nPMF over weight buckets [0-8) [8-16) ... [56-64]:").unwrap();
    for (label, d) in &dists {
        if d.total() == 0 {
            continue;
        }
        let pmf = d.pmf();
        let mut row = String::new();
        for b in 0..8 {
            let sum: f64 = pmf[b * 8..(b + 1) * 8].iter().sum();
            write!(row, " {:>5.1}%", sum * 100.0).unwrap();
        }
        writeln!(out, "{label:<32}{row}").unwrap();
    }
    // Target closeness (§4): median targets per destination /64.
    let as1_targets: Vec<u128> = targets_of(&lab.trace, may28, lab.world.as1_source).collect();
    let dec_targets: Vec<u128> = targets_of(&lab.trace, dec24, lab.world.dec24_source).collect();
    writeln!(
        out,
        "\nmedian targets per destination /64: AS#1 = {}, Dec-24 scanner = {}",
        targeting::targets_per_dst64(&as1_targets),
        targeting::targets_per_dst64(&dec_targets)
    )
    .unwrap();
    out
}

/// Appendix A.2: overlap of per-day target sets with the public hitlist.
pub fn hitlist_overlap(lab: &MawiLab) -> String {
    let hitlist: std::collections::HashSet<u128> = lab.world.hitlist.iter().copied().collect();
    let may27 = SimTime::from_date(2021, 5, 27).day_index();
    let dec24 = SimTime::from_date(2021, 12, 24).day_index();
    let jul6 = SimTime::from_date(2021, 7, 6).day_index();
    let mut out = String::from("## Appendix A.2 — IPv6-hitlist overlap of target sets\n");
    let mut t = Table::new(vec![
        "source / date",
        "unique targets",
        "in hitlist",
        "overlap",
    ]);
    for c in 1..=3 {
        t.align_right(c);
    }
    for (label, day, src) in [
        ("AS#1 2021-05-26", may27 - 1, lab.world.as1_source),
        ("AS#1 2021-05-27 (switch day)", may27, lab.world.as1_source),
        ("AS#1 2021-05-28", may27 + 1, lab.world.as1_source),
        ("Cloud 2021-12-24", dec24, lab.world.dec24_source),
    ] {
        let targets: Vec<u128> = targets_of(&lab.trace, day, src).collect();
        let o = overlap::hitlist_overlap(targets.iter(), &hitlist);
        t.row(vec![
            label.to_string(),
            o.targets.to_string(),
            o.in_hitlist.to_string(),
            pct(o.fraction()),
        ]);
    }
    // July 6: all seven sources.
    let (s, e) = lumen6_mawi::capture_window(jul6);
    let lo = lab.trace.partition_point(|r| r.ts_ms < s);
    let hi = lab.trace.partition_point(|r| r.ts_ms < e);
    let jul_targets: Vec<u128> = lab.trace[lo..hi]
        .iter()
        .filter(|r| lab.world.jul6_prefix.contains_addr(r.src))
        .map(|r| r.dst)
        .collect();
    let o = overlap::hitlist_overlap(jul_targets.iter(), &hitlist);
    t.row(vec![
        "AS#3 2021-07-06 (/124 pool)".into(),
        o.targets.to_string(),
        o.in_hitlist.to_string(),
        pct(o.fraction()),
    ]);
    out.push_str(&t.render());
    out
}
