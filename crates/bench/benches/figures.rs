//! Per-figure/table regeneration benchmarks: the analysis stage that turns
//! detected scans into each of the paper's artifacts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lumen6_analysis::{
    concentration, durations, heatmap, overlap, portbuckets, series, targeting, topas, topports,
};
use lumen6_bench::{CdnFixture, MawiFixture};
use lumen6_detect::{detector::detect, AggLevel, ScanDetectorConfig};

fn figures(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let r128 = detect(&fx.filtered, ScanDetectorConfig::paper(AggLevel::L128));
    let r64 = detect(
        &fx.filtered,
        ScanDetectorConfig::paper(AggLevel::L64).with_dsts(),
    );
    let r48 = detect(&fx.filtered, ScanDetectorConfig::paper(AggLevel::L48));
    let as18 = fx
        .world
        .fleet
        .truth
        .iter()
        .find(|t| t.rank == 18)
        .expect("AS18 exists")
        .prefix;

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_heatmap", |b| {
        b.iter(|| {
            let pts = heatmap::source_points(black_box(&fx.trace), AggLevel::L64);
            heatmap::Heatmap::build(&pts, 24)
        });
    });
    g.bench_function("fig2_weekly_sources", |b| {
        b.iter(|| series::series(black_box(&r64), series::Bucket::Weekly, 3));
    });
    g.bench_function("fig3_weekly_packets_concentration", |b| {
        b.iter(|| {
            let s = concentration::per_bucket_topk(black_box(&r64), series::Bucket::Weekly, 3, 2);
            concentration::mean_topk_share(&s)
        });
    });
    g.bench_function("table2_top_as", |b| {
        b.iter(|| {
            topas::top_as_table(
                black_box(&fx.world.registry),
                black_box(&r128),
                black_box(&r64),
                black_box(&r48),
                20,
            )
        });
    });
    g.bench_function("durations_summary", |b| {
        b.iter(|| durations::summarize(black_box(&r64)));
    });
    g.bench_function("fig4_port_buckets", |b| {
        b.iter(|| portbuckets::port_buckets(black_box(&r64), |s| as18.contains(s)));
    });
    g.bench_function("table3_top_ports", |b| {
        b.iter(|| topports::top_ports(black_box(&r64), 10, |s| as18.contains(s)));
    });
    g.bench_function("fig8_port_buckets_128_48", |b| {
        b.iter(|| {
            (
                portbuckets::port_buckets(black_box(&r128), |_| false),
                portbuckets::port_buckets(black_box(&r48), |_| false),
            )
        });
    });
    g.bench_function("targets_dns_breakdown", |b| {
        b.iter(|| {
            let bd =
                targeting::dns_breakdown(black_box(&r64), |a| fx.world.deployment.is_in_dns(a));
            targeting::summarize_dns(&bd)
        });
    });
    g.finish();

    // MAWI-side artifacts.
    let mx = MawiFixture::new();
    let mut g = c.benchmark_group("figures_mawi");
    g.sample_size(10);
    g.bench_function("fig7_hamming", |b| {
        b.iter(|| {
            lumen6_addr::HammingDistribution::from_addrs(black_box(&mx.trace).iter().map(|r| r.dst))
        });
    });
    let hitlist: std::collections::HashSet<u128> = mx.world.hitlist.iter().copied().collect();
    let targets: Vec<u128> = mx.trace.iter().map(|r| r.dst).collect();
    g.bench_function("hitlist_overlap", |b| {
        b.iter(|| overlap::hitlist_overlap(black_box(&targets).iter(), &hitlist));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite to a few minutes; these are
    // comparative benchmarks, not microsecond-precision regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = figures
}
criterion_main!(benches);
