//! Microbenchmarks of the data-structure substrate: trie LPM vs linear
//! scan, HyperLogLog vs exact sets, trace codec, prefix math.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumen6_addr::{Ipv6Prefix, PrefixTrie};
use lumen6_detect::HyperLogLog;
use lumen6_trace::codec::{decode, encode};
use lumen6_trace::PacketRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Longest-prefix match: binary trie vs linear scan over a routing table of
/// growing size (the netmodel attribution ablation).
fn trie_lpm(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut g = c.benchmark_group("trie_lpm");
    for &n in &[100usize, 1_000, 10_000] {
        let entries: Vec<(Ipv6Prefix, usize)> = (0..n)
            .map(|i| {
                let len = [32u8, 48, 64][i % 3];
                (Ipv6Prefix::new(rng.gen(), len), i)
            })
            .collect();
        let mut trie = PrefixTrie::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
        }
        let queries: Vec<u128> = (0..1_000).map(|_| rng.gen()).collect();
        g.throughput(Throughput::Elements(queries.len() as u64));
        g.bench_with_input(BenchmarkId::new("trie", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .filter(|&&q| trie.longest_match(black_box(q)).is_some())
                    .count()
            });
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .filter(|&&q| {
                        PrefixTrie::linear_longest_match(&entries, black_box(q)).is_some()
                    })
                    .count()
            });
        });
    }
    g.finish();
}

/// Distinct-destination counting: exact HashSet vs HyperLogLog.
fn hll_vs_exact(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let items: Vec<u128> = (0..100_000).map(|_| rng.gen()).collect();
    let mut g = c.benchmark_group("hll_vs_exact");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.sample_size(20);
    g.bench_function("exact_hashset", |b| {
        b.iter(|| {
            let mut set = std::collections::HashSet::new();
            for &x in &items {
                set.insert(black_box(x));
            }
            set.len()
        });
    });
    for p in [10u8, 12, 14] {
        g.bench_function(format!("hll_p{p}"), |b| {
            b.iter(|| {
                let mut h = HyperLogLog::new(p);
                for &x in &items {
                    h.insert(black_box(x));
                }
                h.estimate()
            });
        });
    }
    g.finish();
}

/// Trace codec throughput.
fn codec(c: &mut Criterion) {
    let records: Vec<PacketRecord> = (0..100_000u64)
        .map(|i| PacketRecord::tcp(i * 13, (i as u128) << 1, 0xbeef + i as u128, 40_000, 22, 60))
        .collect();
    let bytes = encode(&records).expect("encodes");
    let mut g = c.benchmark_group("trace_codec");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.sample_size(20);
    g.bench_function("encode", |b| {
        b.iter(|| encode(black_box(&records)).unwrap().len());
    });
    g.bench_function("decode", |b| {
        b.iter(|| decode(black_box(&bytes)).unwrap().len());
    });
    g.finish();
}

/// Prefix aggregation and Hamming weight, the per-packet hot path.
fn prefix_math(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let addrs: Vec<u128> = (0..10_000).map(|_| rng.gen()).collect();
    let mut g = c.benchmark_group("prefix_math");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("aggregate_64", |b| {
        b.iter(|| {
            addrs
                .iter()
                .map(|&a| Ipv6Prefix::new(black_box(a), 64).bits())
                .fold(0u128, |acc, x| acc ^ x)
        });
    });
    g.bench_function("hamming_weight", |b| {
        b.iter(|| {
            addrs
                .iter()
                .map(|&a| lumen6_addr::hamming_weight_iid(black_box(a)))
                .sum::<u32>()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite to a few minutes; these are
    // comparative benchmarks, not microsecond-precision regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = trie_lpm, hll_vs_exact, codec, prefix_math
}
criterion_main!(benches);
