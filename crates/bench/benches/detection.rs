//! Detection-pipeline benchmarks: Table 1 (per-level detection), the §2.2
//! sensitivity sweep, the artifact prefilter, and the MAWI detector.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumen6_bench::{CdnFixture, MawiFixture};
use lumen6_detect::{
    detector::detect, AggLevel, ArtifactFilter, MawiConfig as FhConfig, MawiDetector,
    ScanDetectorConfig,
};

/// Table 1: full scan detection at each aggregation level.
fn table1_detection(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("table1_detection");
    g.throughput(Throughput::Elements(fx.filtered.len() as u64));
    g.sample_size(10);
    for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        g.bench_with_input(BenchmarkId::from_parameter(lvl), &lvl, |b, &lvl| {
            b.iter(|| detect(black_box(&fx.filtered), ScanDetectorConfig::paper(lvl)));
        });
    }
    g.finish();
}

/// §2.2: timeout and destination-threshold sensitivity sweep.
fn sensitivity_sweep(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("sensitivity_sweep");
    g.sample_size(10);
    for (label, timeout_ms, min_dsts) in [
        ("t3600_d100", 3_600_000u64, 100u64),
        ("t1800_d100", 1_800_000, 100),
        ("t900_d100", 900_000, 100),
        ("t3600_d50", 3_600_000, 50),
        ("t3600_d5", 3_600_000, 5),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                detect(
                    black_box(&fx.filtered),
                    ScanDetectorConfig {
                        agg: AggLevel::L64,
                        timeout_ms,
                        min_dsts,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();
}

/// Appendix A.1: the 5-duplicate artifact prefilter.
fn a1_prefilter(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("a1_prefilter");
    g.throughput(Throughput::Elements(fx.trace.len() as u64));
    g.sample_size(10);
    g.bench_function("filter", |b| {
        b.iter(|| ArtifactFilter::default().filter(black_box(&fx.trace)));
    });
    g.finish();
}

/// Figs. 5/6 substrate: per-window MAWI (Fukuda–Heidemann-extended)
/// detection at both destination thresholds.
fn mawi_detection(c: &mut Criterion) {
    let fx = MawiFixture::new();
    let days = lumen6_mawi::split_days(&fx.trace, 0, 21);
    let mut g = c.benchmark_group("fig5_mawi_detection");
    g.sample_size(10);
    for min in [100u64, 5] {
        let det = MawiDetector::new(FhConfig {
            agg: AggLevel::L64,
            min_dsts: min,
            ..Default::default()
        });
        g.bench_function(format!("min_dsts_{min}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for (_, slice) in &days {
                    total += det.detect(black_box(slice)).len();
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite to a few minutes; these are
    // comparative benchmarks, not microsecond-precision regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = table1_detection,
    sensitivity_sweep,
    a1_prefilter,
    mawi_detection
}
criterion_main!(benches);
