//! Detection-pipeline benchmarks: Table 1 (per-level detection), the §2.2
//! sensitivity sweep, the artifact prefilter, the MAWI detector, and the
//! sharded-parallel / streaming-decode comparisons (machine-readable
//! results land in `BENCH_detection.json` at the workspace root).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumen6_bench::{CdnFixture, MawiFixture};
use lumen6_detect::multi::{detect_multi, MultiLevelDetector};
use lumen6_detect::parallel::{detect_multi_sharded, ShardPlan};
use lumen6_detect::{
    detector::detect, AggLevel, ArtifactFilter, Backend, DetectorBuilder, MawiConfig as FhConfig,
    MawiDetector, ReorderBuffer, ScanDetectorConfig, Session, SessionConfig, SessionOutcome,
    SessionReport,
};
use lumen6_scanners::{FleetSource, ParallelFleetSource};
use lumen6_trace::codec::{decode, decode_chunks, encode};
use lumen6_trace::{MaterializedSource, PacketRecord, RecordBatch, Source};
use std::time::Instant;

/// The multi-level workload both pipeline benches run: the paper's three
/// aggregation levels over the filtered CDN trace.
const LEVELS: [AggLevel; 3] = [AggLevel::L128, AggLevel::L64, AggLevel::L48];

/// Shard counts the tentpole comparison sweeps.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Records per columnar batch on the batched ingest paths.
const BATCH: usize = 8_192;

/// Sequential multi-level detection over a resident slice via the batched
/// columnar hot path — what the detection pipeline now runs.
fn detect_multi_batched(
    records: &[PacketRecord],
) -> std::collections::BTreeMap<AggLevel, lumen6_detect::ScanReport> {
    let mut det = MultiLevelDetector::new(&LEVELS, ScanDetectorConfig::default());
    let mut batch = RecordBatch::with_capacity(BATCH);
    for part in records.chunks(BATCH) {
        batch.clear();
        batch.extend(part.iter().copied());
        det.observe_batch(&batch);
    }
    det.finish()
}

/// Table 1: full scan detection at each aggregation level.
fn table1_detection(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("table1_detection");
    g.throughput(Throughput::Elements(fx.filtered.len() as u64));
    g.sample_size(10);
    for lvl in [AggLevel::L128, AggLevel::L64, AggLevel::L48] {
        g.bench_with_input(BenchmarkId::from_parameter(lvl), &lvl, |b, &lvl| {
            b.iter(|| detect(black_box(&fx.filtered), ScanDetectorConfig::paper(lvl)));
        });
    }
    g.finish();
}

/// §2.2: timeout and destination-threshold sensitivity sweep.
fn sensitivity_sweep(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("sensitivity_sweep");
    g.sample_size(10);
    for (label, timeout_ms, min_dsts) in [
        ("t3600_d100", 3_600_000u64, 100u64),
        ("t1800_d100", 1_800_000, 100),
        ("t900_d100", 900_000, 100),
        ("t3600_d50", 3_600_000, 50),
        ("t3600_d5", 3_600_000, 5),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                detect(
                    black_box(&fx.filtered),
                    ScanDetectorConfig {
                        agg: AggLevel::L64,
                        timeout_ms,
                        min_dsts,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();
}

/// Appendix A.1: the 5-duplicate artifact prefilter.
fn a1_prefilter(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("a1_prefilter");
    g.throughput(Throughput::Elements(fx.trace.len() as u64));
    g.sample_size(10);
    g.bench_function("filter", |b| {
        b.iter(|| ArtifactFilter::default().filter(black_box(&fx.trace)));
    });
    g.finish();
}

/// Figs. 5/6 substrate: per-window MAWI (Fukuda–Heidemann-extended)
/// detection at both destination thresholds.
fn mawi_detection(c: &mut Criterion) {
    let fx = MawiFixture::new();
    let days = lumen6_mawi::split_days(&fx.trace, 0, 21);
    let mut g = c.benchmark_group("fig5_mawi_detection");
    g.sample_size(10);
    for min in [100u64, 5] {
        let det = MawiDetector::new(FhConfig {
            agg: AggLevel::L64,
            min_dsts: min,
            ..Default::default()
        });
        g.bench_function(format!("min_dsts_{min}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for (_, slice) in &days {
                    total += det.detect(black_box(slice)).len();
                }
                total
            });
        });
    }
    g.finish();
}

/// Tentpole comparison: sequential multi-level detection vs the sharded
/// parallel pipeline at 1/2/4/8 shards on the same workload.
fn sharded_vs_sequential(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("sharded_vs_sequential");
    g.throughput(Throughput::Elements(fx.filtered.len() as u64));
    g.sample_size(10);
    g.bench_function("sequential_per_record", |b| {
        b.iter(|| {
            detect_multi(
                black_box(&fx.filtered),
                &LEVELS,
                ScanDetectorConfig::default(),
            )
        });
    });
    g.bench_function("sequential_batched", |b| {
        b.iter(|| detect_multi_batched(black_box(&fx.filtered)));
    });
    for shards in SHARD_COUNTS {
        g.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &s| {
            b.iter(|| {
                detect_multi_sharded(
                    black_box(&fx.filtered),
                    &LEVELS,
                    ScanDetectorConfig::default(),
                    ShardPlan::with_shards(s),
                )
            });
        });
    }
    g.finish();
}

/// Streaming chunked decode into a reused [`RecordBatch`] vs materializing
/// the whole trace up front, both feeding the same batched sequential
/// detector — the two sides differ only in decode strategy.
fn streaming_vs_materialized(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let bytes = encode(&fx.filtered).expect("encode fixture trace");
    let mut g = c.benchmark_group("streaming_vs_materialized");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.sample_size(10);
    g.bench_function("materialized", |b| {
        b.iter(|| {
            let records = decode(black_box(&bytes)).expect("decode");
            detect_multi_batched(&records)
        });
    });
    g.bench_function("streaming", |b| {
        b.iter(|| {
            let mut chunks = decode_chunks(black_box(&bytes[..]), BATCH).expect("header");
            let mut det = MultiLevelDetector::new(&LEVELS, ScanDetectorConfig::default());
            let mut batch = RecordBatch::with_capacity(BATCH);
            while let Some(res) = chunks.next_batch(&mut batch) {
                res.expect("chunk");
                det.observe_batch(&batch);
            }
            det.finish()
        });
    });
    g.finish();
}

/// Runs a sequential detection [`Session`] to completion over `src` and
/// returns its report — the fused-pipeline unit of work.
fn run_session(src: &mut dyn Source) -> SessionReport {
    let det = DetectorBuilder::new(ScanDetectorConfig::default()).levels(&LEVELS);
    match Session::new(det, Backend::Sequential, SessionConfig::default())
        .run_source(src)
        .expect("session runs")
    {
        SessionOutcome::Finished(rep) => rep,
        SessionOutcome::Stopped { .. } => unreachable!("no checkpoint stop configured"),
    }
}

/// Tentpole comparison: the fused generator→detector pipeline (a
/// [`Session`] pulling batches straight from [`FleetSource`], no resident
/// trace) vs materialize-then-stream (generate the full trace, then stream
/// it from memory through the same session). Both sides include generation,
/// so the delta is exactly the cost/benefit of fusing.
fn fused_pipeline(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("fused_pipeline");
    g.throughput(Throughput::Elements(fx.trace.len() as u64));
    g.sample_size(10);
    g.bench_function("materialize_then_stream", |b| {
        b.iter(|| {
            let trace = fx.world.cdn_trace();
            let mut src = MaterializedSource::new(trace);
            black_box(run_session(&mut src))
        });
    });
    g.bench_function("fused", |b| {
        b.iter(|| {
            let mut src = FleetSource::new(fx.world.clone());
            black_box(run_session(&mut src))
        });
    });
    // Parallel fused generation: same pipeline, generation spread over N
    // worker threads feeding a deterministic k-way merge. Output is
    // byte-identical to `fused`; only the wall clock should move.
    for gen_threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("parallel_fused", gen_threads),
            &gen_threads,
            |b, &n| {
                b.iter(|| {
                    let mut src = ParallelFleetSource::new(fx.world.clone(), n);
                    black_box(run_session(&mut src))
                });
            },
        );
    }
    g.finish();
}

/// Median wall-clock seconds over `n` runs of `f`.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Drives the fixture through the session-layer ingest surface (the
/// [`Detect`](lumen6_detect::Detect) trait behind [`DetectorBuilder`], with
/// a pass-through reorder buffer and staged batches) — what `lumen6
/// detect` runs.
fn session_drive(fx: &CdnFixture) {
    let mut det = DetectorBuilder::new(ScanDetectorConfig::default())
        .levels(&LEVELS)
        .build(Backend::Sequential);
    let mut buf = ReorderBuffer::new(0);
    let mut ready = Vec::new();
    let mut staged = RecordBatch::with_capacity(BATCH);
    for r in &fx.filtered {
        buf.push(*r, &mut ready);
        for r in ready.drain(..) {
            staged.push(r);
            if staged.len() >= BATCH {
                det.observe_batch(&staged);
                staged.clear();
            }
        }
    }
    if !staged.is_empty() {
        det.observe_batch(&staged);
    }
    black_box(det.finish());
}

/// Writes `BENCH_detection.json` at the workspace root: throughput of the
/// sequential and sharded pipelines, the session-layer overhead, the
/// streaming-vs-materialized decode comparison, and the measured host core
/// count (shard speedups are bounded by it — a single-core host shows
/// parity, not gains). `bench_guard` compares a fresh measurement against
/// this committed baseline.
fn emit_bench_json(_c: &mut Criterion) {
    let fx = CdnFixture::new();
    let records = fx.filtered.len();
    let bytes = encode(&fx.filtered).expect("encode fixture trace");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    const RUNS: usize = 5;

    let sequential_s = median_secs(RUNS, || {
        black_box(detect_multi_batched(&fx.filtered));
    });
    let per_record_s = median_secs(RUNS, || {
        black_box(detect_multi(
            &fx.filtered,
            &LEVELS,
            ScanDetectorConfig::default(),
        ));
    });
    let session_s = median_secs(RUNS, || session_drive(&fx));
    let mut sharded = Vec::new();
    for shards in SHARD_COUNTS {
        let secs = median_secs(RUNS, || {
            black_box(detect_multi_sharded(
                &fx.filtered,
                &LEVELS,
                ScanDetectorConfig::default(),
                ShardPlan::with_shards(shards),
            ));
        });
        sharded.push((shards, secs));
    }
    let mut fused_records = 0u64;
    let fused_s = median_secs(RUNS, || {
        let mut src = FleetSource::new(fx.world.clone());
        fused_records = run_session(&mut src).records;
    });
    const PARFUSED_THREADS: usize = 4;
    let parfused_s = median_secs(RUNS, || {
        let mut src = ParallelFleetSource::new(fx.world.clone(), PARFUSED_THREADS);
        black_box(run_session(&mut src));
    });
    let materialized_s = median_secs(RUNS, || {
        let recs = decode(&bytes).expect("decode");
        black_box(detect_multi_batched(&recs));
    });
    let streaming_s = median_secs(RUNS, || {
        let mut chunks = decode_chunks(&bytes[..], BATCH).expect("header");
        let mut det = MultiLevelDetector::new(&LEVELS, ScanDetectorConfig::default());
        let mut batch = RecordBatch::with_capacity(BATCH);
        while let Some(res) = chunks.next_batch(&mut batch) {
            res.expect("chunk");
            det.observe_batch(&batch);
        }
        black_box(det.finish());
    });

    let sharded_json: Vec<String> = sharded
        .iter()
        .map(|&(n, s)| {
            format!(
                "    {{\"shards\": {n}, \"seconds\": {s:.6}, \"records_per_s\": {:.0}, \"speedup\": {:.3}}}",
                records as f64 / s,
                sequential_s / s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"detection\",\n  \"host_cores\": {cores},\n  \"records\": {records},\n  \"trace_bytes\": {},\n  \"levels\": [\"/128\", \"/64\", \"/48\"],\n  \"batch\": {BATCH},\n  \"sequential\": {{\"seconds\": {sequential_s:.6}, \"records_per_s\": {:.0}}},\n  \"sequential_per_record\": {{\"seconds\": {per_record_s:.6}, \"records_per_s\": {:.0}, \"batched_speedup\": {:.3}}},\n  \"session\": {{\"seconds\": {session_s:.6}, \"records_per_s\": {:.0}, \"overhead_vs_sequential\": {:.4}}},\n  \"fused\": {{\"seconds\": {fused_s:.6}, \"records\": {fused_records}, \"records_per_s\": {:.0}}},\n  \"parallel_fused\": {{\"seconds\": {parfused_s:.6}, \"gen_threads\": {PARFUSED_THREADS}, \"records_per_s\": {:.0}, \"speedup_vs_fused\": {:.3}}},\n  \"sharded\": [\n{}\n  ],\n  \"streaming_vs_materialized\": {{\n    \"materialized_seconds\": {materialized_s:.6},\n    \"streaming_seconds\": {streaming_s:.6},\n    \"mib_per_s_streaming\": {:.3}\n  }},\n  \"note\": \"sequential is the batched columnar path the pipeline runs; sharded routes columnar sub-batches (kernel route_column + column scatter) to shard workers; speedup is bounded by host_cores — on a single-core host expect parity with sequential, not gains; fused is generation+detection end-to-end (FleetSource -> Session, no resident trace), so its record count and throughput are not comparable to the detect-only rows; parallel_fused is the same fused pipeline with generation spread over gen_threads worker threads and a deterministic merge — byte-identical output, speedup bounded by host_cores\"\n}}\n",
        bytes.len(),
        records as f64 / sequential_s,
        records as f64 / per_record_s,
        per_record_s / sequential_s,
        records as f64 / session_s,
        session_s / sequential_s - 1.0,
        fused_records as f64 / fused_s,
        fused_records as f64 / parfused_s,
        fused_s / parfused_s,
        sharded_json.join(",\n"),
        bytes.len() as f64 / streaming_s / (1u64 << 20) as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detection.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite to a few minutes; these are
    // comparative benchmarks, not microsecond-precision regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = table1_detection,
    sensitivity_sweep,
    a1_prefilter,
    mawi_detection,
    sharded_vs_sequential,
    streaming_vs_materialized,
    fused_pipeline,
    emit_bench_json
}
criterion_main!(benches);
