//! Design-choice ablations called out in DESIGN.md:
//!
//! - one-pass simultaneous multi-level detection vs one pass per level;
//! - adaptive aggregation vs fixed-mask detection on the two adversarial
//!   workloads (the /32-spread AS#18 actor and the multi-tenant cloud);
//! - sketched vs exact destination counting inside the detector.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lumen6_bench::CdnFixture;
use lumen6_detect::adaptive::{AdaptiveConfig, AdaptiveIds};
use lumen6_detect::multi::detect_multi;
use lumen6_detect::{detector::detect, AggLevel, ScanDetectorConfig};

/// One pass maintaining all three levels vs three passes.
fn multi_vs_single_pass(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("multilevel_ablation");
    g.sample_size(10);
    g.bench_function("single_pass_all_levels", |b| {
        b.iter(|| {
            detect_multi(
                black_box(&fx.filtered),
                &AggLevel::PAPER_LEVELS,
                ScanDetectorConfig::default(),
            )
        });
    });
    g.bench_function("one_pass_per_level", |b| {
        b.iter(|| {
            AggLevel::PAPER_LEVELS
                .iter()
                .map(|&lvl| detect(black_box(&fx.filtered), ScanDetectorConfig::paper(lvl)).scans())
                .sum::<usize>()
        });
    });
    g.finish();
}

/// Adaptive aggregation vs fixed /64 on the full mixed workload.
fn adaptive_vs_fixed(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("adaptive_vs_fixed");
    g.sample_size(10);
    g.bench_function("fixed_64", |b| {
        b.iter(|| {
            detect(
                black_box(&fx.filtered),
                ScanDetectorConfig::paper(AggLevel::L64),
            )
            .scans()
        });
    });
    g.bench_function("adaptive", |b| {
        b.iter(|| {
            AdaptiveIds::new(AdaptiveConfig::default())
                .analyze(black_box(&fx.filtered))
                .len()
        });
    });
    g.finish();
}

/// Exact destination sets vs HyperLogLog spill inside the streaming
/// detector.
fn sketch_vs_exact_detector(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("sketch_vs_exact_detector");
    g.sample_size(10);
    g.bench_function("exact", |b| {
        b.iter(|| {
            detect(
                black_box(&fx.filtered),
                ScanDetectorConfig::paper(AggLevel::L64),
            )
            .scans()
        });
    });
    g.bench_function("sketched_spill_256_p12", |b| {
        b.iter(|| {
            let mut cfg = ScanDetectorConfig::paper(AggLevel::L64);
            cfg.sketch = Some((256, 12).into());
            detect(black_box(&fx.filtered), cfg).scans()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite to a few minutes; these are
    // comparative benchmarks, not microsecond-precision regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = multi_vs_single_pass,
    adaptive_vs_fixed,
    sketch_vs_exact_detector
}
criterion_main!(benches);
