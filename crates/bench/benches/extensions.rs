//! Benchmarks of the extension modules: fingerprint clustering, target
//! generation, blocklist throughput, and the full streaming IDS.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lumen6_bench::CdnFixture;
use lumen6_detect::adaptive::{AdaptiveConfig, AdaptiveIds};
use lumen6_detect::blocklist::{Blocklist, BlocklistConfig};
use lumen6_detect::ids::{Ids, IdsConfig};
use lumen6_detect::{detector::detect, fingerprint, AggLevel, ScanDetectorConfig};
use lumen6_scanners::tga;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn fingerprint_clustering(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let report = detect(
        &fx.filtered,
        ScanDetectorConfig::paper(AggLevel::L64).with_dsts(),
    );
    let mut g = c.benchmark_group("ext_fingerprint");
    g.throughput(Throughput::Elements(report.events.len() as u64));
    g.sample_size(10);
    g.bench_function("cluster", |b| {
        b.iter(|| fingerprint::cluster(black_box(&report.events), 0.10).len());
    });
    g.finish();
}

fn tga_generation(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let seeds = fx.world.deployment.dns_hitlist();
    let seed_set: HashSet<u128> = seeds.iter().copied().collect();
    let model = tga::IidModel::learn(&seeds);
    let nets = tga::PrefixTree::learn(&seeds).networks();
    let mut g = c.benchmark_group("ext_tga");
    g.throughput(Throughput::Elements(50_000));
    g.sample_size(10);
    g.bench_function("learn", |b| {
        b.iter(|| tga::IidModel::learn(black_box(&seeds)).iid_entropy());
    });
    g.bench_function("generate_50k", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| model.generate(&mut rng, &nets, &seed_set, 50_000).len());
    });
    g.finish();
}

fn blocklist_throughput(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let alerts = AdaptiveIds::new(AdaptiveConfig::default()).analyze(&fx.filtered);
    let addrs: Vec<u128> = fx.filtered.iter().map(|r| r.src).take(100_000).collect();
    let mut g = c.benchmark_group("ext_blocklist");
    g.sample_size(10);
    g.bench_function("ingest_alerts", |b| {
        b.iter(|| {
            let mut bl = Blocklist::new(BlocklistConfig::default());
            bl.ingest(0, black_box(&alerts)).len()
        });
    });
    let mut bl = Blocklist::new(BlocklistConfig::default());
    bl.ingest(0, &alerts);
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("check_100k", |b| {
        b.iter(|| addrs.iter().filter(|&&a| bl.check(black_box(a), 1)).count());
    });
    g.finish();
}

fn streaming_ids(c: &mut Criterion) {
    let fx = CdnFixture::new();
    let mut g = c.benchmark_group("ext_streaming_ids");
    g.throughput(Throughput::Elements(fx.trace.len() as u64));
    g.sample_size(10);
    g.bench_function("full_pipeline", |b| {
        b.iter(|| {
            let mut ids = Ids::new(IdsConfig::default());
            for r in &fx.trace {
                ids.push(black_box(r));
            }
            ids.flush(u64::MAX / 2);
            ids.stats().alerts
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite to a few minutes; these are
    // comparative benchmarks, not microsecond-precision regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = fingerprint_clustering,
    tga_generation,
    blocklist_throughput,
    streaming_ids
}
criterion_main!(benches);
