//! Shared fixtures for the benchmark suite: pre-built small worlds and
//! traces so individual benches measure the pipeline stage, not world
//! generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lumen6_detect::ArtifactFilter;
use lumen6_mawi::{MawiConfig, MawiWorld};
use lumen6_scanners::{FleetConfig, World};
use lumen6_trace::PacketRecord;

/// A bench-sized CDN fixture: 3 weeks, small telescope.
pub struct CdnFixture {
    /// The world (registry, deployment, fleet).
    pub world: World,
    /// Raw captured trace.
    pub trace: Vec<PacketRecord>,
    /// Artifact-filtered trace.
    pub filtered: Vec<PacketRecord>,
}

impl CdnFixture {
    /// Builds the fixture (deterministic, seed 42).
    pub fn new() -> CdnFixture {
        let mut cfg = FleetConfig::small();
        cfg.end_day = 21;
        let world = World::build(cfg);
        let trace = world.cdn_trace();
        let (filtered, _) = ArtifactFilter::default().filter(&trace);
        CdnFixture {
            world,
            trace,
            filtered,
        }
    }
}

impl Default for CdnFixture {
    fn default() -> Self {
        Self::new()
    }
}

/// A bench-sized MAWI fixture: 3 weeks of daily windows.
pub struct MawiFixture {
    /// The MAWI world.
    pub world: MawiWorld,
    /// The windowed link trace.
    pub trace: Vec<PacketRecord>,
}

impl MawiFixture {
    /// Builds the fixture.
    pub fn new() -> MawiFixture {
        let mut cfg = MawiConfig::small();
        cfg.end_day = 21;
        let world = MawiWorld::build(cfg, None);
        let trace = world.trace();
        MawiFixture { world, trace }
    }
}

impl Default for MawiFixture {
    fn default() -> Self {
        Self::new()
    }
}
