//! Bench regression guard for CI.
//!
//! Re-measures sequential multi-level detection throughput on the standard
//! bench fixture and compares it against the committed baseline in
//! `BENCH_detection.json`. Exits non-zero when:
//!
//! - sequential throughput regressed more than the tolerance (default 10%,
//!   override with `BENCH_GUARD_TOLERANCE=0.25`), or
//! - the session-layer ingest (the `Detect`-trait drive `lumen6 detect`
//!   uses) costs more than the allowed overhead over raw sequential
//!   detection (default 5%, override with `BENCH_GUARD_SESSION_OVERHEAD`).
//!
//! Run with `cargo run --release -p lumen6-bench --bin bench_guard`; a debug
//! build measures debug-build throughput, which is meaningless against a
//! release baseline.

use lumen6_bench::CdnFixture;
use lumen6_detect::multi::detect_multi;
use lumen6_detect::{AggLevel, DetectorBuilder, ReorderBuffer, ScanDetectorConfig};
use serde::value::Value;
use std::time::Instant;

const LEVELS: [AggLevel; 3] = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
const RUNS: usize = 5;

/// Median wall-clock seconds over `RUNS` runs of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::UInt(n) => Some(n as f64),
        Value::Int(n) => Some(n as f64),
        Value::Float(f) => Some(f),
        _ => None,
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detection.json");
    let baseline: Value = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text).expect("BENCH_detection.json parses"),
        Err(e) => {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline_rps = baseline
        .get("sequential")
        .and_then(|s| s.get("records_per_s"))
        .and_then(as_f64)
        .expect("baseline sequential.records_per_s");
    let tolerance = env_f64("BENCH_GUARD_TOLERANCE", 0.10);
    let max_overhead = env_f64("BENCH_GUARD_SESSION_OVERHEAD", 0.05);

    let fx = CdnFixture::new();
    let records = fx.filtered.len() as f64;

    let sequential_s = median_secs(|| {
        std::hint::black_box(detect_multi(
            &fx.filtered,
            &LEVELS,
            ScanDetectorConfig::default(),
        ));
    });
    let session_s = median_secs(|| {
        let mut det = DetectorBuilder::new(ScanDetectorConfig::default())
            .levels(&LEVELS)
            .sequential()
            .build();
        let mut buf = ReorderBuffer::new(0);
        let mut ready = Vec::new();
        for r in &fx.filtered {
            buf.push(*r, &mut ready);
            for r in ready.drain(..) {
                det.observe(&r);
            }
        }
        std::hint::black_box(det.finish());
    });

    let current_rps = records / sequential_s;
    let overhead = session_s / sequential_s - 1.0;
    println!(
        "bench_guard: sequential {current_rps:.0} rec/s (baseline {baseline_rps:.0}, \
         tolerance {:.0}%)",
        tolerance * 100.0
    );
    println!(
        "bench_guard: session drive {:.0} rec/s, overhead {:+.1}% (limit {:.0}%)",
        records / session_s,
        overhead * 100.0,
        max_overhead * 100.0
    );

    let mut failed = false;
    if current_rps < baseline_rps * (1.0 - tolerance) {
        eprintln!(
            "bench_guard: FAIL — sequential throughput regressed {:.1}% (allowed {:.1}%)",
            (1.0 - current_rps / baseline_rps) * 100.0,
            tolerance * 100.0
        );
        failed = true;
    }
    if overhead > max_overhead {
        eprintln!(
            "bench_guard: FAIL — session-layer overhead {:.1}% exceeds {:.1}%",
            overhead * 100.0,
            max_overhead * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
