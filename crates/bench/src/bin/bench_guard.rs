//! Bench regression guard for CI.
//!
//! Re-measures the batched columnar detection hot path on the standard
//! bench fixture and compares it against the committed baseline in
//! `BENCH_detection.json`. Exits non-zero when:
//!
//! - sequential (batched) throughput regressed more than the tolerance
//!   (default 10%, override with `BENCH_GUARD_TOLERANCE=0.25`),
//! - the session-layer ingest (the `Detect`-trait staged-batch drive
//!   `lumen6 detect` uses) costs more than the allowed overhead over raw
//!   sequential detection (default 5%, override with
//!   `BENCH_GUARD_SESSION_OVERHEAD`), or
//! - streaming chunked decode is slower than materialize-then-detect by
//!   more than the parity tolerance (default 10%, override with
//!   `BENCH_GUARD_STREAM_TOLERANCE`) — both sides feed the same batched
//!   detector, so the comparison isolates decode strategy, or
//! - the batch-routed sharded pipeline at 4 shards fails to reach the
//!   required speedup over sequential (default 1.5x, override with
//!   `BENCH_GUARD_SHARDED_SPEEDUP`). This gate only runs on multi-core
//!   hosts: on a single core the sharded pipeline is sequential work plus
//!   routing overhead, so the gate is skipped with an explicit log line, or
//! - the fused generator→detector pipeline (`FleetSource` feeding a
//!   detection `Session` with no resident trace) falls below the required
//!   end-to-end throughput (default 10k rec/s — deliberately relaxed so a
//!   loaded single-core CI host passes; override with
//!   `BENCH_GUARD_FUSED_MIN_RPS`). Fused throughput includes generation,
//!   so it is gated on an absolute floor rather than compared against the
//!   detect-only baseline, or
//! - the parallel fused pipeline (`ParallelFleetSource` at 4 generator
//!   threads, byte-identical output) fails to reach the required speedup
//!   over the single-threaded fused pipeline (default 1.5x, override with
//!   `BENCH_GUARD_PARFUSED_SPEEDUP`). Like the sharded gate this only runs
//!   on multi-core hosts — on one core parallel generation is the same
//!   work plus channel traffic, so the gate is skipped with a log line, or
//! - a single fused tenant hosted by the `lumen6 serve` daemon (one
//!   worker, mid-run publication disabled) runs more than the allowed
//!   overhead slower than the identical `RunConfig` driven raw through
//!   `Session::run_source` (default 10%, override with
//!   `BENCH_GUARD_SERVE_OVERHEAD`) — the scheduling, locking, and spool
//!   bookkeeping a tenant pays for living inside the daemon.
//!
//! Run with `cargo run --release -p lumen6-bench --bin bench_guard`; a debug
//! build measures debug-build throughput, which is meaningless against a
//! release baseline.

use lumen6_bench::CdnFixture;
use lumen6_detect::multi::MultiLevelDetector;
use lumen6_detect::parallel::{detect_multi_sharded, ShardPlan};
use lumen6_detect::{
    AggLevel, Backend, DetectorBuilder, ReorderBuffer, ScanDetectorConfig, Session, SessionConfig,
    SessionOutcome,
};
use lumen6_scanners::{FleetSource, ParallelFleetSource};
use lumen6_serve::{Daemon, RunConfig, ServeConfig, TenantSpec};
use lumen6_trace::codec::{decode, decode_chunks, encode};
use lumen6_trace::{PacketRecord, RecordBatch};
use serde::value::Value;
use std::time::Instant;

const LEVELS: [AggLevel; 3] = [AggLevel::L128, AggLevel::L64, AggLevel::L48];
const RUNS: usize = 5;
/// Records per columnar batch — matches the `detection` bench.
const BATCH: usize = 8_192;

/// Median wall-clock seconds over `RUNS` runs of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Batched sequential multi-level detection over a resident slice — the
/// same hot path `emit_bench_json` measures for the baseline.
fn detect_batched(records: &[PacketRecord]) {
    let mut det = MultiLevelDetector::new(&LEVELS, ScanDetectorConfig::default());
    let mut batch = RecordBatch::with_capacity(BATCH);
    for part in records.chunks(BATCH) {
        batch.clear();
        batch.extend(part.iter().copied());
        det.observe_batch(&batch);
    }
    std::hint::black_box(det.finish());
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::UInt(n) => Some(n as f64),
        Value::Int(n) => Some(n as f64),
        Value::Float(f) => Some(f),
        _ => None,
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detection.json");
    let baseline: Value = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text).expect("BENCH_detection.json parses"),
        Err(e) => {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline_rps = baseline
        .get("sequential")
        .and_then(|s| s.get("records_per_s"))
        .and_then(as_f64)
        .expect("baseline sequential.records_per_s");
    let tolerance = env_f64("BENCH_GUARD_TOLERANCE", 0.10);
    let max_overhead = env_f64("BENCH_GUARD_SESSION_OVERHEAD", 0.05);
    let stream_tolerance = env_f64("BENCH_GUARD_STREAM_TOLERANCE", 0.10);
    let min_sharded_speedup = env_f64("BENCH_GUARD_SHARDED_SPEEDUP", 1.5);
    let fused_min_rps = env_f64("BENCH_GUARD_FUSED_MIN_RPS", 10_000.0);
    let min_parfused_speedup = env_f64("BENCH_GUARD_PARFUSED_SPEEDUP", 1.5);
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let fx = CdnFixture::new();
    let records = fx.filtered.len() as f64;
    let bytes = encode(&fx.filtered).expect("encode fixture trace");

    let sequential_s = median_secs(|| detect_batched(&fx.filtered));
    let session_s = median_secs(|| {
        let mut det = DetectorBuilder::new(ScanDetectorConfig::default())
            .levels(&LEVELS)
            .build(Backend::Sequential);
        let mut buf = ReorderBuffer::new(0);
        let mut ready = Vec::new();
        let mut staged = RecordBatch::with_capacity(BATCH);
        for r in &fx.filtered {
            buf.push(*r, &mut ready);
            for r in ready.drain(..) {
                staged.push(r);
                if staged.len() >= BATCH {
                    det.observe_batch(&staged);
                    staged.clear();
                }
            }
        }
        if !staged.is_empty() {
            det.observe_batch(&staged);
        }
        std::hint::black_box(det.finish());
    });
    let materialized_s = median_secs(|| {
        let recs = decode(&bytes).expect("decode");
        detect_batched(&recs);
    });
    let streaming_s = median_secs(|| {
        let mut chunks = decode_chunks(&bytes[..], BATCH).expect("header");
        let mut det = MultiLevelDetector::new(&LEVELS, ScanDetectorConfig::default());
        let mut batch = RecordBatch::with_capacity(BATCH);
        while let Some(res) = chunks.next_batch(&mut batch) {
            res.expect("chunk");
            det.observe_batch(&batch);
        }
        std::hint::black_box(det.finish());
    });

    let mut fused_records = 0u64;
    let fused_s = median_secs(|| {
        let mut src = FleetSource::new(fx.world.clone());
        let det = DetectorBuilder::new(ScanDetectorConfig::default()).levels(&LEVELS);
        let outcome = Session::new(det, Backend::Sequential, SessionConfig::default())
            .run_source(&mut src)
            .expect("fused session runs");
        match outcome {
            SessionOutcome::Finished(rep) => fused_records = rep.records,
            SessionOutcome::Stopped { .. } => unreachable!("no checkpoint stop configured"),
        }
    });

    // Parallel fused gate: same fused workload, generation spread over 4
    // worker threads with the deterministic merge. Only measured where a
    // speedup is physically possible.
    let parfused_s = (host_cores > 1).then(|| {
        median_secs(|| {
            let mut src = ParallelFleetSource::new(fx.world.clone(), 4);
            let det = DetectorBuilder::new(ScanDetectorConfig::default()).levels(&LEVELS);
            let outcome = Session::new(det, Backend::Sequential, SessionConfig::default())
                .run_source(&mut src)
                .expect("parallel fused session runs");
            match outcome {
                SessionOutcome::Finished(rep) => {
                    assert_eq!(
                        rep.records, fused_records,
                        "parallel fused ingested a different record count than fused"
                    );
                }
                SessionOutcome::Stopped { .. } => unreachable!("no checkpoint stop configured"),
            }
        })
    });

    // Serve gate: the same fused run, once raw and once as the daemon's
    // only tenant. Both sides rebuild their world inside the timed region
    // and share the checkpoint cadence; leftover state is wiped between
    // runs so neither side can cheat by resuming finished work.
    let serve_overhead_limit = env_f64("BENCH_GUARD_SERVE_OVERHEAD", 0.10);
    let scratch = std::env::temp_dir().join(format!("lumen6-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("bench scratch dir");
    let raw_ck = scratch.join("raw.l6ck");
    // Long enough that the daemon's fixed per-run costs (thread setup,
    // the final spool publication) amortize the way they do in a
    // long-lived deployment; short runs measure mostly those constants.
    let bench_run = |checkpoint: Option<String>| RunConfig {
        fused: true,
        small: true,
        days: Some(90),
        sequential: true,
        checkpoint,
        ..RunConfig::default()
    };
    let mut serve_records = 0u64;
    let raw_s = median_secs(|| {
        let _ = std::fs::remove_file(&raw_ck);
        let run = bench_run(Some(raw_ck.to_string_lossy().into_owned()));
        let mut src = run.make_source().expect("fleet source");
        match run
            .make_session()
            .run_source(src.as_mut())
            .expect("raw run")
        {
            SessionOutcome::Finished(rep) => {
                // The daemon publishes its final report to the spool;
                // `detect` likewise emits its report. Persist on the raw
                // side too so the gate isolates *hosting* overhead, not
                // report serialization.
                let json = serde_json::to_string_pretty(&rep).expect("report serializes");
                std::fs::write(scratch.join("raw-report.json"), json).expect("write raw report");
                serve_records = rep.records;
            }
            SessionOutcome::Stopped { .. } => unreachable!("no stop_after configured"),
        }
    });
    let spool = scratch.join("spool");
    let serve_s = median_secs(|| {
        let _ = std::fs::remove_dir_all(&spool);
        let daemon = Daemon::new(ServeConfig {
            spool: spool.to_string_lossy().into_owned(),
            workers: 1,
            steps_per_slice: 64,
            publish_every_slices: u64::MAX,
            stop_file: None,
            tenants: vec![TenantSpec {
                name: "bench".into(),
                run: bench_run(None),
            }],
        })
        .expect("daemon builds");
        let summary = daemon.run().expect("daemon runs");
        assert!(!summary.any_failed(), "bench tenant failed");
    });
    let _ = std::fs::remove_dir_all(&scratch);

    let sharded_s = (host_cores > 1).then(|| {
        median_secs(|| {
            std::hint::black_box(detect_multi_sharded(
                &fx.filtered,
                &LEVELS,
                ScanDetectorConfig::default(),
                ShardPlan::with_shards(4),
            ));
        })
    });

    let current_rps = records / sequential_s;
    let overhead = session_s / sequential_s - 1.0;
    let stream_ratio = streaming_s / materialized_s - 1.0;
    println!(
        "bench_guard: sequential {current_rps:.0} rec/s (baseline {baseline_rps:.0}, \
         tolerance {:.0}%)",
        tolerance * 100.0
    );
    println!(
        "bench_guard: session drive {:.0} rec/s, overhead {:+.1}% (limit {:.0}%)",
        records / session_s,
        overhead * 100.0,
        max_overhead * 100.0
    );
    println!(
        "bench_guard: streaming decode {streaming_s:.6}s vs materialized \
         {materialized_s:.6}s, {:+.1}% (limit {:.0}%)",
        stream_ratio * 100.0,
        stream_tolerance * 100.0
    );

    let fused_rps = fused_records as f64 / fused_s;
    println!(
        "bench_guard: fused pipeline {fused_rps:.0} rec/s end-to-end \
         ({fused_records} records, floor {fused_min_rps:.0})"
    );
    let serve_overhead = serve_s / raw_s - 1.0;
    println!(
        "bench_guard: serve single-tenant {:.0} rec/s vs raw {:.0} rec/s, \
         overhead {:+.1}% (limit {:.0}%)",
        serve_records as f64 / serve_s,
        serve_records as f64 / raw_s,
        serve_overhead * 100.0,
        serve_overhead_limit * 100.0
    );

    let mut failed = false;
    if current_rps < baseline_rps * (1.0 - tolerance) {
        eprintln!(
            "bench_guard: FAIL — sequential throughput regressed {:.1}% (allowed {:.1}%)",
            (1.0 - current_rps / baseline_rps) * 100.0,
            tolerance * 100.0
        );
        failed = true;
    }
    if overhead > max_overhead {
        eprintln!(
            "bench_guard: FAIL — session-layer overhead {:.1}% exceeds {:.1}%",
            overhead * 100.0,
            max_overhead * 100.0
        );
        failed = true;
    }
    if stream_ratio > stream_tolerance {
        eprintln!(
            "bench_guard: FAIL — streaming decode {:.1}% slower than materialized \
             (allowed {:.1}%)",
            stream_ratio * 100.0,
            stream_tolerance * 100.0
        );
        failed = true;
    }
    if fused_rps < fused_min_rps {
        eprintln!(
            "bench_guard: FAIL — fused pipeline {fused_rps:.0} rec/s below the \
             {fused_min_rps:.0} rec/s floor"
        );
        failed = true;
    }
    if serve_overhead > serve_overhead_limit {
        eprintln!(
            "bench_guard: FAIL — serve daemon overhead {:.1}% over raw run_source \
             exceeds {:.1}%",
            serve_overhead * 100.0,
            serve_overhead_limit * 100.0
        );
        failed = true;
    }
    match parfused_s {
        None => println!(
            "bench_guard: parallel-fused gate SKIPPED (host_cores={host_cores}): one core \
             cannot speed up generation by splitting it across threads"
        ),
        Some(s) => {
            let speedup = fused_s / s;
            println!(
                "bench_guard: parallel fused (4 gen-threads) {:.0} rec/s, speedup \
                 {speedup:.2}x over fused (required {min_parfused_speedup:.2}x, \
                 host_cores={host_cores})",
                fused_records as f64 / s
            );
            if speedup < min_parfused_speedup {
                eprintln!(
                    "bench_guard: FAIL — parallel fused speedup {speedup:.2}x below \
                     required {min_parfused_speedup:.2}x at 4 gen-threads"
                );
                failed = true;
            }
        }
    }
    match sharded_s {
        None => println!(
            "bench_guard: sharded gate SKIPPED (host_cores={host_cores}): a single core \
             cannot show multi-core speedup — sharding is sequential work plus routing there"
        ),
        Some(s) => {
            let speedup = sequential_s / s;
            println!(
                "bench_guard: sharded 4-shard {:.0} rec/s, speedup {speedup:.2}x \
                 (required {min_sharded_speedup:.2}x, host_cores={host_cores})",
                records / s
            );
            if speedup < min_sharded_speedup {
                eprintln!(
                    "bench_guard: FAIL — sharded speedup {speedup:.2}x below required \
                     {min_sharded_speedup:.2}x at 4 shards"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
