//! Subprocess tests of the `lumen6-analyzer` binary: exit codes and the
//! machine-readable report, exactly as CI invokes it.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lumen6-analyzer"))
}

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn bad_fixtures_exit_nonzero_with_expected_lint_id() {
    for (file, as_crate, lint) in [
        ("l001_bad.rs", "detect", "L001"),
        ("l002_bad.rs", "cli", "L002"),
        ("l003_bad.rs", "scanners", "L003"),
        ("l005_bad.rs", "cli", "L005"),
        ("l006_bad.rs", "serve", "L006"),
        ("l007_bad.rs", "detect", "L007"),
        ("l008_bad.rs", "cli", "L008"),
        ("l009_bad.rs", "detect", "L009"),
        ("allow_bad.rs", "detect", "L000"),
    ] {
        let out = bin()
            .args(["--file", &fixture(file), "--as-crate", as_crate, "--json"])
            .output()
            .expect("spawn analyzer");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{file}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("\"{lint}\"")),
            "{file} report missing {lint}: {stdout}"
        );
    }
}

#[test]
fn good_fixtures_exit_zero() {
    for (file, as_crate) in [
        ("l001_good.rs", "detect"),
        ("l002_good.rs", "cli"),
        ("l003_good.rs", "scanners"),
        ("l005_good.rs", "cli"),
        ("l006_good.rs", "serve"),
        ("l007_good.rs", "detect"),
        ("l008_good.rs", "cli"),
        ("l009_good.rs", "detect"),
    ] {
        let out = bin()
            .args(["--file", &fixture(file), "--as-crate", as_crate])
            .output()
            .expect("spawn analyzer");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{file}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn l004_tree_exits_nonzero_with_l004() {
    let out = bin()
        .args(["--root", &fixture("l004_tree")])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("L004"));
}

#[test]
fn workspace_is_clean_via_cli() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = bin()
        .args(["--root", &root.display().to_string()])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace not clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn report_file_is_written_and_parses() {
    let dir = std::env::temp_dir().join("lumen6-analyzer-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let report = dir.join("report.json");
    let out = bin()
        .args([
            "--file",
            &fixture("l001_bad.rs"),
            "--as-crate",
            "detect",
            "--report",
            &report.display().to_string(),
        ])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(1));
    let text = std::fs::read_to_string(&report).expect("report written");
    assert!(text.contains("\"L001\"") && text.contains("\"files_scanned\""));
}

#[test]
fn usage_errors_exit_two() {
    let out = bin().arg("--bogus").output().expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_lints_names_all_nine() {
    let out = bin().arg("--list-lints").output().expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009",
    ] {
        assert!(stdout.contains(id), "missing {id}: {stdout}");
    }
}

#[test]
fn github_format_emits_error_annotations() {
    let out = bin()
        .args([
            "--file",
            &fixture("l007_bad.rs"),
            "--as-crate",
            "detect",
            "--format",
            "github",
        ])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let annotations: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("::error file="))
        .collect();
    assert_eq!(annotations.len(), 4, "stdout: {stdout}");
    assert!(
        annotations[0].contains("line=10") && annotations[0].contains("title=L007"),
        "stdout: {stdout}"
    );
}

#[test]
fn github_format_on_clean_input_exits_zero() {
    let out = bin()
        .args([
            "--file",
            &fixture("l007_good.rs"),
            "--as-crate",
            "detect",
            "--format",
            "github",
        ])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("::error"), "stdout: {stdout}");
}

#[test]
fn unknown_format_exits_two() {
    let out = bin()
        .args(["--format", "sarif"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2));
}
