//! Fixture-based self-tests: every known-bad snippet must trip exactly
//! its lint at the expected lines; known-good snippets must stay clean.

use lumen6_analyzer::{run, Options};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Runs single-file analysis of a fixture as if it lived in `as_crate`.
fn analyze(name: &str, as_crate: Option<&str>) -> lumen6_analyzer::Outcome {
    let opts = Options {
        root: PathBuf::from("."),
        bless_snapshot: false,
        force_bless: false,
        single_file: Some((fixture(name), as_crate.map(String::from))),
    };
    run(&opts).expect("fixture analyzes")
}

/// (lint, line) pairs of unsuppressed findings, sorted.
fn hits(outcome: &lumen6_analyzer::Outcome) -> Vec<(&'static str, u32)> {
    let mut v: Vec<(&'static str, u32)> =
        outcome.unsuppressed().map(|f| (f.lint, f.line)).collect();
    v.sort();
    v
}

#[test]
fn l001_bad_trips_each_panic_site() {
    let out = analyze("l001_bad.rs", Some("detect"));
    assert_eq!(hits(&out), vec![("L001", 4), ("L001", 5), ("L001", 7)]);
}

#[test]
fn l001_good_is_clean_with_suppressed_allows() {
    let out = analyze("l001_good.rs", Some("detect"));
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
    let suppressed: Vec<_> = out.findings.iter().filter(|f| f.suppressed).collect();
    assert_eq!(suppressed.len(), 2, "both allow forms must match");
    assert!(suppressed.iter().all(|f| f.reason.is_some()));
}

#[test]
fn l001_only_applies_to_library_crates() {
    // Same bad file, but attributed to the CLI crate: no findings.
    let out = analyze("l001_bad.rs", Some("cli"));
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
}

#[test]
fn l001_covers_mawi_and_report_crates() {
    // The panic-freedom scope includes the mawi and report library crates.
    for krate in ["mawi", "report"] {
        let out = analyze("l001_bad.rs", Some(krate));
        assert_eq!(
            hits(&out),
            vec![("L001", 4), ("L001", 5), ("L001", 7)],
            "crate {krate} must be in L001 scope"
        );
    }
}

#[test]
fn l002_bad_flags_partial_cmp_call() {
    let out = analyze("l002_bad.rs", None);
    assert_eq!(hits(&out), vec![("L002", 4)]);
}

#[test]
fn l002_good_allows_total_cmp_and_trait_impls() {
    let out = analyze("l002_good.rs", None);
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
}

#[test]
fn l003_bad_flags_wallclock_and_entropy() {
    let out = analyze("l003_bad.rs", Some("scanners"));
    assert_eq!(hits(&out), vec![("L003", 7), ("L003", 8), ("L003", 9)]);
}

#[test]
fn l003_good_is_clean_and_scoped() {
    assert_eq!(
        hits(&analyze("l003_good.rs", Some("scanners"))),
        Vec::<(&str, u32)>::new()
    );
    // The bad file is fine in a non-deterministic crate.
    assert_eq!(
        hits(&analyze("l003_bad.rs", Some("detect"))),
        Vec::<(&str, u32)>::new()
    );
}

#[test]
fn l005_bad_flags_scheme_violations() {
    let out = analyze("l005_bad.rs", None);
    assert_eq!(hits(&out), vec![("L005", 5), ("L005", 6), ("L005", 7)]);
}

#[test]
fn l005_good_is_clean() {
    assert_eq!(
        hits(&analyze("l005_good.rs", None)),
        Vec::<(&str, u32)>::new()
    );
}

#[test]
fn malformed_and_stale_allows_are_rejected() {
    let out = analyze("allow_bad.rs", Some("detect"));
    let got = hits(&out);
    // Three malformed directives (no reason / unknown lint / wrong
    // keyword), one stale directive, and the two unwraps the malformed
    // directives failed to suppress.
    assert_eq!(
        got,
        vec![
            ("L000", 5),
            ("L000", 7),
            ("L000", 9),
            ("L000", 14),
            ("L001", 6),
            ("L001", 8),
        ]
    );
}

#[test]
fn l004_fixture_tree_detects_unbumped_drift() {
    let opts = Options::workspace(fixture("l004_tree"));
    let out = run(&opts).expect("fixture tree analyzes");
    let l004: Vec<_> = out.unsuppressed().filter(|f| f.lint == "L004").collect();
    assert_eq!(l004.len(), 1, "findings: {:?}", out.findings);
    assert!(
        l004[0].message.contains("without a SNAPSHOT_VERSION bump"),
        "message: {}",
        l004[0].message
    );
    assert!(l004[0].message.contains("DetectorSnapshot"));
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance criterion: zero unsuppressed violations over the
    // actual workspace, and the committed fingerprint is current.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run(&Options::workspace(root)).expect("workspace analyzes");
    let bad: Vec<_> = out.unsuppressed().collect();
    assert!(bad.is_empty(), "unsuppressed violations: {bad:?}");
    assert!(
        out.files_scanned > 50,
        "walker must see the whole workspace"
    );
}
