//! Fixture-based self-tests: every known-bad snippet must trip exactly
//! its lint at the expected lines; known-good snippets must stay clean.

use lumen6_analyzer::{run, Options};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Runs single-file analysis of a fixture as if it lived in `as_crate`.
fn analyze(name: &str, as_crate: Option<&str>) -> lumen6_analyzer::Outcome {
    let opts = Options {
        root: PathBuf::from("."),
        bless_snapshot: false,
        force_bless: false,
        single_file: Some((fixture(name), as_crate.map(String::from))),
    };
    run(&opts).expect("fixture analyzes")
}

/// (lint, line) pairs of unsuppressed findings, sorted.
fn hits(outcome: &lumen6_analyzer::Outcome) -> Vec<(&'static str, u32)> {
    let mut v: Vec<(&'static str, u32)> =
        outcome.unsuppressed().map(|f| (f.lint, f.line)).collect();
    v.sort();
    v
}

#[test]
fn l001_bad_trips_each_panic_site() {
    let out = analyze("l001_bad.rs", Some("detect"));
    assert_eq!(hits(&out), vec![("L001", 4), ("L001", 5), ("L001", 7)]);
}

#[test]
fn l001_good_is_clean_with_suppressed_allows() {
    let out = analyze("l001_good.rs", Some("detect"));
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
    let suppressed: Vec<_> = out.findings.iter().filter(|f| f.suppressed).collect();
    assert_eq!(suppressed.len(), 2, "both allow forms must match");
    assert!(suppressed.iter().all(|f| f.reason.is_some()));
}

#[test]
fn l001_only_applies_to_library_crates() {
    // Same bad file, but attributed to the scanners simulation crate,
    // which is outside the panic-freedom scope: no findings.
    let out = analyze("l001_bad.rs", Some("scanners"));
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
}

#[test]
fn l001_covers_serve_and_cli_crates() {
    // The daemon and the CLI library half are long-running / scripted
    // surfaces; a panic there kills tenants or breaks pipelines.
    for krate in ["serve", "cli"] {
        let out = analyze("l001_bad.rs", Some(krate));
        assert_eq!(
            hits(&out),
            vec![("L001", 4), ("L001", 5), ("L001", 7)],
            "crate {krate} must be in L001 scope"
        );
    }
}

#[test]
fn l001_covers_mawi_and_report_crates() {
    // The panic-freedom scope includes the mawi and report library crates.
    for krate in ["mawi", "report"] {
        let out = analyze("l001_bad.rs", Some(krate));
        assert_eq!(
            hits(&out),
            vec![("L001", 4), ("L001", 5), ("L001", 7)],
            "crate {krate} must be in L001 scope"
        );
    }
}

#[test]
fn l002_bad_flags_partial_cmp_call() {
    let out = analyze("l002_bad.rs", None);
    assert_eq!(hits(&out), vec![("L002", 4)]);
}

#[test]
fn l002_good_allows_total_cmp_and_trait_impls() {
    let out = analyze("l002_good.rs", None);
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
}

#[test]
fn l003_bad_flags_wallclock_and_entropy() {
    let out = analyze("l003_bad.rs", Some("scanners"));
    assert_eq!(hits(&out), vec![("L003", 7), ("L003", 8), ("L003", 9)]);
}

#[test]
fn l003_good_is_clean_and_scoped() {
    assert_eq!(
        hits(&analyze("l003_good.rs", Some("scanners"))),
        Vec::<(&str, u32)>::new()
    );
    // The bad file is fine in a non-deterministic crate.
    assert_eq!(
        hits(&analyze("l003_bad.rs", Some("detect"))),
        Vec::<(&str, u32)>::new()
    );
}

#[test]
fn l005_bad_flags_scheme_violations() {
    let out = analyze("l005_bad.rs", None);
    assert_eq!(hits(&out), vec![("L005", 5), ("L005", 6), ("L005", 7)]);
}

#[test]
fn l005_good_is_clean() {
    assert_eq!(
        hits(&analyze("l005_good.rs", None)),
        Vec::<(&str, u32)>::new()
    );
}

/// Unsuppressed findings must be empty, and exactly one suppressed
/// finding with a recorded reason must remain (the audited exception
/// each good fixture carries).
fn assert_clean_with_one_audited(out: &lumen6_analyzer::Outcome) {
    assert_eq!(hits(out), Vec::<(&str, u32)>::new());
    let suppressed: Vec<_> = out.findings.iter().filter(|f| f.suppressed).collect();
    assert_eq!(suppressed.len(), 1, "findings: {:?}", out.findings);
    assert!(suppressed[0].reason.is_some());
}

#[test]
fn l006_bad_flags_guard_held_across_blocking() {
    // .recv() (line 14), thread::sleep (line 21), and a same-file call
    // that blocks transitively (line 34).
    let out = analyze("l006_bad.rs", Some("serve"));
    assert_eq!(hits(&out), vec![("L006", 14), ("L006", 21), ("L006", 34)]);
}

#[test]
fn l006_good_accepts_scoping_drop_and_condvar_wait() {
    assert_clean_with_one_audited(&analyze("l006_good.rs", Some("serve")));
}

#[test]
fn l006_is_scoped_to_daemon_crates() {
    // The same guard-across-recv file in the simulation crate is fine:
    // scanner models are not resident in the daemon process.
    let out = analyze("l006_bad.rs", Some("scanners"));
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
}

#[test]
fn l007_bad_flags_truncating_casts() {
    // Address field u128->u64, u64 param ->u32, .len() ->u32, and a
    // u128-suffixed literal binding ->usize.
    let out = analyze("l007_bad.rs", Some("detect"));
    assert_eq!(
        hits(&out),
        vec![("L007", 10), ("L007", 14), ("L007", 18), ("L007", 23)]
    );
}

#[test]
fn l007_good_accepts_exact_shift_mask_and_widening() {
    assert_clean_with_one_audited(&analyze("l007_good.rs", Some("detect")));
}

#[test]
fn l007_exempts_the_addr_crate() {
    // The cast helpers (low64/high64/sat_*) live in addr, deliberately
    // outside L007 scope, so they need no allows of their own.
    let out = analyze("l007_bad.rs", Some("addr"));
    assert_eq!(hits(&out), Vec::<(&str, u32)>::new());
}

#[test]
fn l008_bad_flags_direct_spool_writes() {
    let out = analyze("l008_bad.rs", Some("cli"));
    assert_eq!(hits(&out), vec![("L008", 5), ("L008", 9)]);
}

#[test]
fn l008_good_accepts_temp_plus_rename() {
    assert_clean_with_one_audited(&analyze("l008_good.rs", Some("cli")));
}

#[test]
fn l009_bad_flags_unbounded_growth_and_channels() {
    let out = analyze("l009_bad.rs", Some("detect"));
    assert_eq!(hits(&out), vec![("L009", 13), ("L009", 20), ("L009", 25)]);
}

#[test]
fn l009_good_accepts_cleared_bounded_and_local_state() {
    assert_clean_with_one_audited(&analyze("l009_good.rs", Some("detect")));
}

#[test]
fn malformed_and_stale_allows_are_rejected() {
    let out = analyze("allow_bad.rs", Some("detect"));
    let got = hits(&out);
    // Three malformed directives (no reason / unknown lint / wrong
    // keyword), one stale directive, and the two unwraps the malformed
    // directives failed to suppress.
    assert_eq!(
        got,
        vec![
            ("L000", 5),
            ("L000", 7),
            ("L000", 9),
            ("L000", 14),
            ("L001", 6),
            ("L001", 8),
        ]
    );
}

#[test]
fn l004_fixture_tree_detects_unbumped_drift() {
    let opts = Options::workspace(fixture("l004_tree"));
    let out = run(&opts).expect("fixture tree analyzes");
    let l004: Vec<_> = out.unsuppressed().filter(|f| f.lint == "L004").collect();
    assert_eq!(l004.len(), 1, "findings: {:?}", out.findings);
    assert!(
        l004[0].message.contains("without a SNAPSHOT_VERSION bump"),
        "message: {}",
        l004[0].message
    );
    assert!(l004[0].message.contains("DetectorSnapshot"));
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance criterion: zero unsuppressed violations over the
    // actual workspace, and the committed fingerprint is current.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run(&Options::workspace(root)).expect("workspace analyzes");
    let bad: Vec<_> = out.unsuppressed().collect();
    assert!(bad.is_empty(), "unsuppressed violations: {bad:?}");
    assert!(
        out.files_scanned > 50,
        "walker must see the whole workspace"
    );
}
