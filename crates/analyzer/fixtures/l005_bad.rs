//! L005 bad fixture: metric names violating the crate.subsystem.metric
//! scheme.

pub fn instrument(reg: &lumen6_obs::MetricsRegistry) {
    let _c = reg.counter("packets"); // line 5: single segment
    let _g = reg.gauge("Detect.Queue.Depth"); // line 6: uppercase
    let _h = reg.histogram("detect..latency_us"); // line 7: empty segment
}
