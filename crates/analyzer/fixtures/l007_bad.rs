//! L007 bad fixture: silently truncating casts on provably-wide
//! operands.

pub struct Flow {
    pub src: u128,
    pub dst: u128,
}

pub fn bucket(f: &Flow) -> u64 {
    f.src as u64 // line 10: 128-bit address field -> u64
}

pub fn shard(hits: u64) -> u32 {
    hits as u32 // line 14: u64 parameter -> u32
}

pub fn depth(v: &[u8]) -> u32 {
    v.len() as u32 // line 18: usize length -> u32
}

pub fn wide_literal() -> usize {
    let wide = 0x1_0000_0000u128;
    wide as usize // line 23: u128 binding -> usize
}
