//! L001 good fixture: typed errors, allowed escapes, and non-code
//! occurrences that must not trip the lint.

/// Doc comments may show `v.first().unwrap()` freely.
pub fn lookup(v: &[u64]) -> Result<u64, &'static str> {
    let first = v.first().ok_or("empty")?;
    let msg = "string containing .unwrap() and panic!( is not code";
    // A commented-out x.unwrap() is not code either.
    let _ = msg;
    Ok(*first)
}

pub fn invariant(v: &[u64]) -> u64 {
    // lumen6: allow(L001, slice is non-empty: the caller validated length above)
    *v.first().expect("non-empty")
}

pub fn trailing(v: &[u64]) -> u64 {
    *v.first().unwrap() // lumen6: allow(L001, same-line allow form)
}
