//! L007 good fixture: exact shift/mask narrowing, widening casts,
//! unknown widths, and one audited truncation.

pub fn high_half(bits: u128) -> u64 {
    (bits >> 64) as u64 // exact: only 64 bits remain after the shift
}

pub fn low_mask(x: u64) -> u16 {
    (x & 0xffff) as u16 // exact: the mask fits the target
}

pub fn widen(x: u32) -> u128 {
    x as u128 // widening is always safe
}

pub fn opaque_stays_silent(n: &Stats) -> u32 {
    n.tally() as u32 // width unknown: the lint makes no claim
}

pub fn audited_mix(x: u128) -> u64 {
    // lumen6: allow(L007, truncation is the point: the low half feeds the 64-bit mixer)
    x as u64
}
