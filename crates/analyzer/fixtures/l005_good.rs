//! L005 good fixture: scheme-conforming names, and a dynamic name (left
//! to the runtime validator).

pub fn instrument(reg: &lumen6_obs::MetricsRegistry, shard: usize) {
    let _c = reg.counter("detect.parallel.batches_sent");
    let _g = reg.gauge("trace.codec.buffer_depth");
    let _h = reg.histogram("detect.parallel.merge_us");
    let _t = reg.stage("detect.session.flush_us");
    // Dynamic names can't be checked at lint time; validate() covers them.
    let _d = reg.counter(&format!("detect.parallel.shard.{shard}.packets_routed"));
}
