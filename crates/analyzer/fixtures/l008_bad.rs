//! L008 bad fixture: spool writes a concurrent reader can observe
//! half-written.

pub fn spool(path: &str, body: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, body) // line 5: fs::write, no rename in scope
}

pub fn open_report(path: &str) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path) // line 9: File::create, no rename
}
