//! L003 bad fixture: wall-clock and OS entropy in (pretend) deterministic
//! simulation code.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let _t0 = Instant::now(); // line 7
    let _wall = SystemTime::now(); // line 8
    let mut rng = rand::thread_rng(); // line 9
    let _ = &mut rng;
    0
}
