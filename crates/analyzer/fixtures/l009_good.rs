//! L009 good fixture: cleared state, bounded channels, loop-local
//! scratch, and one audited flow-through buffer.

use std::sync::mpsc;

pub struct Tenant {
    pub backlog: Vec<u64>,
}

impl Tenant {
    pub fn run(&mut self, rx: &mpsc::Receiver<u64>) {
        while let Ok(v) = rx.recv() {
            self.backlog.push(v);
            if self.backlog.len() >= 1024 {
                self.backlog.clear();
            }
        }
    }
}

pub fn plumb() -> (mpsc::SyncSender<u64>, mpsc::Receiver<u64>) {
    mpsc::sync_channel(64) // bounded: backpressure reaches the producer
}

pub fn local_scratch(rx: &mpsc::Receiver<u64>) -> Vec<u64> {
    let mut got = Vec::new();
    while let Ok(v) = rx.recv() {
        got.push(v); // local binding: ownership returns to the caller
    }
    got
}

pub fn out_batch(out: &mut Vec<u64>, rx: &mpsc::Receiver<u64>) {
    while let Ok(v) = rx.recv() {
        // lumen6: allow(L009, flow-through buffer: the caller drains it after every call and the channel depth caps per-call volume)
        out.push(v);
    }
}
