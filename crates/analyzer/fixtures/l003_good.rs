//! L003 good fixture: simulated time threaded explicitly, seeded RNG.

pub struct Sim {
    now_ms: u64,
    rng_state: u64,
}

impl Sim {
    pub fn new(seed: u64) -> Sim {
        Sim {
            now_ms: 0,
            rng_state: seed,
        }
    }

    pub fn advance(&mut self, dt_ms: u64) -> u64 {
        self.now_ms += dt_ms;
        // xorshift: pure function of the seed, replays bit-identically.
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        self.now_ms
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_tests_may_use_instant() {
        let _t = std::time::Instant::now(); // not flagged: test module
    }
}
