//! L004 fixture: framing anchor.

pub const CHECKPOINT_MAGIC: &str = "L6CK";
