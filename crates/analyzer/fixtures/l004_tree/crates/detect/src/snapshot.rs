//! L004 fixture: a snapshot module whose shape drifted from the committed
//! fingerprint without a SNAPSHOT_VERSION bump.

use serde::{Deserialize, Serialize};

pub const SNAPSHOT_VERSION: u32 = 1;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    pub version: u32,
    pub levels: Vec<LevelState>,
    pub sneaky_new_field: u64, // added without bumping SNAPSHOT_VERSION
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelState {
    pub level: u8,
}
