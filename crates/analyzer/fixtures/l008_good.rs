//! L008 good fixture: the temp+rename publishing idiom, and one audited
//! process-private scratch file.

use std::io::Write;

pub fn publish(path: &str, body: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

pub fn publish_stream(path: &str, body: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(body)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

pub fn scratch(dir: &std::path::Path, body: &[u8]) -> std::io::Result<()> {
    // lumen6: allow(L008, scratch file is process-private and removed before exit; no reader can observe it)
    std::fs::write(dir.join("scratch.bin"), body)
}
