//! L006 good fixture: guards scoped or dropped before blocking, the
//! condvar consuming-wait idiom, and one audited exception.

use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn drain(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    let depth = {
        let guard = lock(state);
        guard.len()
    };
    if depth == 0 {
        if let Ok(v) = rx.recv() {
            lock(state).push(v);
        }
    }
}

pub fn wait_nonempty(state: &Mutex<Vec<u64>>, cv: &Condvar) -> usize {
    let mut guard = lock(state);
    while guard.is_empty() {
        // wait(guard) atomically releases the lock: not "held across".
        guard = cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
    }
    guard.len()
}

pub fn handoff(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    let guard = lock(state);
    let want = guard.is_empty();
    drop(guard);
    if want {
        let _ = rx.recv();
    }
}

pub fn audited(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) -> usize {
    let guard = lock(state);
    // lumen6: allow(L006, startup-only path: workers are not spawned yet, so no other thread can contend for this lock)
    let _ = rx.recv();
    guard.len()
}
