//! Suppression-hygiene fixture: every directive here is itself a
//! violation (L000).

pub fn f(v: &[u64]) -> u64 {
    // lumen6: allow(L001)
    let a = v.first().unwrap(); // the reasonless allow above does NOT suppress
    // lumen6: allow(L999, unknown lint id)
    let b = v.get(1).unwrap();
    // lumen6: allowed(L001, wrong keyword)
    *a + *b
}

pub fn stale(v: &[u64]) -> u64 {
    // lumen6: allow(L001, nothing on the next line violates L001)
    v.len() as u64
}
