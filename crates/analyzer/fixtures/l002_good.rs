//! L002 good fixture: total_cmp ordering, and a PartialOrd impl
//! definition (not a call) which must not be flagged.

pub fn top(rates: &mut [(u64, f64)]) {
    rates.sort_by(|a, b| b.1.total_cmp(&a.1));
}

pub struct Entry(u64);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.cmp(&other.0))
    }
}
