//! L009 bad fixture: unbounded channels and ever-growing resident state
//! in daemon loops.

use std::sync::mpsc;

pub struct Tenant {
    pub backlog: Vec<u64>,
}

impl Tenant {
    pub fn run(&mut self, rx: &mpsc::Receiver<u64>) {
        while let Ok(v) = rx.recv() {
            self.backlog.push(v); // line 13: grows forever, never cleared
        }
    }
}

pub fn ingest(events: &mut Vec<u64>, rx: &mpsc::Receiver<u64>) {
    while let Ok(v) = rx.recv() {
        events.push(v); // line 20: caller-visible state, never cleared
    }
}

pub fn plumb() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel() // line 25: unbounded channel in a daemon crate
}
