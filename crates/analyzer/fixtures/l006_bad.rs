//! L006 bad fixture: lock guards held across blocking boundaries in
//! (pretend) daemon code.

use std::sync::mpsc::Receiver;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn drain(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    let mut guard = lock(state);
    if let Ok(v) = rx.recv() { // line 14: .recv() with the guard live
        guard.push(v);
    }
}

pub fn backoff(state: &Mutex<Vec<u64>>) -> usize {
    let guard = lock(state);
    std::thread::sleep(Duration::from_millis(10)); // line 21: thread::sleep
    guard.len()
}

fn publish(path: &str, body: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

pub fn snapshot(state: &Mutex<Vec<u64>>, path: &str) -> std::io::Result<()> {
    let guard = lock(state);
    let body = format!("{}", guard.len());
    publish(path, body.as_bytes()) // line 34: transitive blocking I/O
}
