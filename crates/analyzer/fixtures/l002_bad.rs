//! L002 bad fixture: NaN-unsafe float ordering.

pub fn top(rates: &mut [(u64, f64)]) {
    rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap()); // line 4
}
