//! L001 bad fixture: panicking calls in (pretend) library-crate code.

pub fn lookup(v: &[u64]) -> u64 {
    let first = v.first().unwrap(); // line 4: .unwrap()
    let second = v.get(1).expect("second element"); // line 5: .expect()
    if *first > *second {
        panic!("out of order"); // line 7: panic!
    }
    *first
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1u64];
        assert_eq!(v.first().unwrap(), &1); // not flagged: test module
    }
}
