//! Token-level lints: L001 panic-freedom, L002 float-ordering, L003
//! determinism, L005 metric-name scheme.

use crate::ctx::FileCtx;
use crate::Finding;
use syn::TokenKind;

/// Library crates whose non-test code must be panic-free (L001). These are
/// the crates linked into long-running services; a panic there is an
/// outage, not a test failure.
pub const LIBRARY_CRATES: &[&str] = &[
    "detect", "trace", "analysis", "netmodel", "addr", "obs", "mawi", "report", "serve", "cli",
];

/// Crates whose whole point is seeded reproducibility (L003): simulation
/// output must be a pure function of the seed, never of wall-clock time or
/// OS entropy.
pub const DETERMINISTIC_CRATES: &[&str] = &["scanners", "telescope", "netmodel", "backscatter"];

pub(crate) fn finding(
    ctx: &FileCtx,
    lint: &'static str,
    code_idx: usize,
    message: String,
) -> Finding {
    let span = ctx.ct(code_idx).span;
    Finding {
        lint,
        file: ctx.rel_path.clone(),
        line: span.line,
        col: span.col,
        message,
        suppressed: false,
        reason: None,
    }
}

/// L001: no `.unwrap()` / `.expect(…)` / `panic!(…)` in non-test code of
/// library crates. Guards the panic classes PR 2 fixed by hand (NaN sorts,
/// corrupt-length pcap panics) from regressing in new forms.
pub fn l001(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let in_scope = ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| LIBRARY_CRATES.contains(&c));
    // Binary entry points may panic on startup misconfiguration; the
    // library half of the same crate may not.
    let entry_point = ctx.rel_path.ends_with("/main.rs") || ctx.rel_path.contains("/src/bin/");
    if !in_scope || ctx.is_test_file || entry_point {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.ct(i);
        if t.kind != TokenKind::Ident || ctx.in_test(t.span.line) {
            continue;
        }
        let prev_dot = i > 0 && ctx.ct(i - 1).is_punct('.');
        let next = ctx.code.get(i + 1).map(|_| ctx.ct(i + 1));
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next.is_some_and(|n| n.is_punct('(')) => {
                out.push(finding(
                    ctx,
                    "L001",
                    i,
                    format!(
                        ".{}() in library crate non-test code: return a typed \
                         error or restructure so the invariant is expressed \
                         without a panic path",
                        t.text
                    ),
                ));
            }
            "panic" if next.is_some_and(|n| n.is_punct('!')) => {
                out.push(finding(
                    ctx,
                    "L001",
                    i,
                    "panic!() in library crate non-test code: return a typed \
                     error instead"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// L002: no `.partial_cmp(…)` calls in non-test code — float comparisons
/// must use `total_cmp`, which is total over NaN. Locks in the PR 2 fixes
/// (targeting, concentration, topports, cdn) where
/// `partial_cmp().unwrap()` panicked on NaN rates from zero-duration
/// events.
pub fn l002(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_file {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.ct(i);
        if !t.is_ident("partial_cmp") || ctx.in_test(t.span.line) {
            continue;
        }
        let prev_dot = i > 0 && ctx.ct(i - 1).is_punct('.');
        let next_paren = ctx.code.get(i + 1).is_some() && ctx.ct(i + 1).is_punct('(');
        if prev_dot && next_paren {
            out.push(finding(
                ctx,
                "L002",
                i,
                ".partial_cmp() call: use f64::total_cmp for float ordering \
                 (total over NaN), or derive Ord for integer keys"
                    .to_string(),
            ));
        }
    }
}

/// L003: no `SystemTime::now` / `Instant::now` / `thread_rng` in the
/// deterministic simulation crates — synthetic traces must replay
/// bit-identically from a seed.
pub fn l003(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let in_scope = ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    if !in_scope || ctx.is_test_file {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.ct(i);
        if t.kind != TokenKind::Ident || ctx.in_test(t.span.line) {
            continue;
        }
        let qualified_now = |base: &str| {
            t.is_ident(base)
                && i + 3 < ctx.code.len()
                && ctx.ct(i + 1).is_punct(':')
                && ctx.ct(i + 2).is_punct(':')
                && ctx.ct(i + 3).is_ident("now")
        };
        if qualified_now("SystemTime") || qualified_now("Instant") {
            out.push(finding(
                ctx,
                "L003",
                i,
                format!(
                    "{}::now() in a deterministic simulation crate: thread \
                     simulated time through explicitly, seeded from the \
                     scenario config",
                    t.text
                ),
            ));
        } else if t.is_ident("thread_rng") {
            out.push(finding(
                ctx,
                "L003",
                i,
                "thread_rng() in a deterministic simulation crate: use a \
                 seeded SmallRng carried in the component state"
                    .to_string(),
            ));
        }
    }
}

/// L005: metric-name string literals passed to
/// `.counter/.gauge/.histogram/.stage(…)` must satisfy the `lumen6-obs`
/// `crate.subsystem.metric` scheme — at lint time, not first at runtime.
pub fn l005(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_file {
        return;
    }
    const METHODS: &[&str] = &["counter", "gauge", "histogram", "stage"];
    for i in 0..ctx.code.len() {
        let t = ctx.ct(i);
        if t.kind != TokenKind::Ident
            || !METHODS.contains(&t.text.as_str())
            || ctx.in_test(t.span.line)
        {
            continue;
        }
        let prev_dot = i > 0 && ctx.ct(i - 1).is_punct('.');
        if !prev_dot || i + 2 >= ctx.code.len() || !ctx.ct(i + 1).is_punct('(') {
            continue;
        }
        let arg = ctx.ct(i + 2);
        if arg.kind != TokenKind::Str {
            continue; // Name built dynamically — runtime validate() covers it.
        }
        let Some(name) = arg.str_value() else {
            continue;
        };
        if !lumen6_obs::valid_metric_name(&name) {
            out.push(finding(
                ctx,
                "L005",
                i + 2,
                format!(
                    "metric name {name:?} violates the crate.subsystem.metric \
                     scheme (≥2 dot-separated segments of [a-z0-9_])"
                ),
            ));
        }
    }
}
