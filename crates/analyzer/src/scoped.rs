//! Scope-aware lints L006–L009, built on [`crate::scope::ScopeTree`].
//!
//! These target the failure classes that kill a months-long telescope
//! soak rather than a unit test: a lock guard held across blocking I/O
//! (deadlock / tail-latency collapse under multi-tenant load), a
//! silently truncating cast on 128-bit address state (wrong /64
//! attribution, not a crash), a torn spool write observed by a reader
//! mid-`File::create`, and per-tenant state that only ever grows.

use crate::ctx::FileCtx;
use crate::lints::finding;
use crate::scope::{prim_width, rmatch_delim, BindKind, ScopeTree};
use crate::Finding;
use std::collections::BTreeSet;
use syn::TokenKind;

/// Crates running inside the long-lived daemon process where a held lock
/// can stall every tenant (L006).
pub const LOCK_DISCIPLINE_CRATES: &[&str] = &["serve", "obs", "detect"];

/// Crates carrying 128-bit address/counter state where a truncating cast
/// is a silent wrong-answer bug (L007).
pub const CAST_DISCIPLINE_CRATES: &[&str] = &["detect", "serve", "trace"];

/// Crates publishing spool/checkpoint files that concurrent readers poll
/// (L008).
pub const ATOMIC_WRITE_CRATES: &[&str] = &["serve", "detect", "cli"];

/// Crates whose loops are daemon-resident: unbounded growth there is a
/// slow OOM over a soak run (L009).
pub const BOUNDED_GROWTH_CRATES: &[&str] = &["serve", "detect"];

/// Methods that block the calling thread: channel ops, condvar waits,
/// thread joins, and file sync/flush-to-disk.
const BLOCKING_METHODS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "sync_all",
    "sync_data",
    "write_all",
    "sleep",
];

/// `std::fs` free functions that hit the filesystem.
const FS_FNS: &[&str] = &[
    "write",
    "read",
    "read_to_string",
    "rename",
    "copy",
    "remove_file",
    "create_dir_all",
    "read_dir",
    "metadata",
];

/// Growth methods L009 polices inside daemon-resident loops.
const GROWTH_METHODS: &[&str] = &["push", "extend", "push_back", "insert", "append"];

/// Evidence that a collection is periodically emptied or bounded.
const CLEAR_METHODS: &[&str] = &[
    "clear",
    "drain",
    "truncate",
    "retain",
    "pop",
    "pop_front",
    "pop_back",
    "remove",
    "swap_remove",
    "split_off",
    "dedup",
    "take",
];

fn in_crate(ctx: &FileCtx, crates: &[&str]) -> bool {
    ctx.crate_name
        .as_deref()
        .is_some_and(|c| crates.contains(&c))
}

/// Describes the blocking call starting at code index `i`, if any.
/// `blocked_fns` holds names of same-file functions already known to
/// block (transitively).
fn blocking_site(ctx: &FileCtx, i: usize, blocked_fns: &BTreeSet<String>) -> Option<String> {
    let t = ctx.ct(i);
    if t.kind != TokenKind::Ident {
        return None;
    }
    if i + 1 >= ctx.code.len() || !ctx.ct(i + 1).is_punct('(') {
        return None;
    }
    let prev_dot = i > 0 && ctx.ct(i - 1).is_punct('.');
    let prev_path = i > 1 && ctx.ct(i - 1).is_punct(':') && ctx.ct(i - 2).is_punct(':');
    let name = t.text.as_str();
    if prev_dot {
        if BLOCKING_METHODS.contains(&name) {
            return Some(format!(".{name}()"));
        }
        // `JoinHandle::join()` takes no arguments; `Path::join(p)` and
        // `slice::join(sep)` do — only the nullary form blocks.
        if name == "join" && i + 2 < ctx.code.len() && ctx.ct(i + 2).is_punct(')') {
            return Some(".join()".to_string());
        }
        return None;
    }
    if prev_path && i >= 3 {
        let base = ctx.ct(i - 3).text.as_str();
        let hit = (base == "fs" && FS_FNS.contains(&name))
            || (base == "File" && matches!(name, "create" | "open" | "create_new"))
            || (base == "thread" && name == "sleep");
        if hit {
            return Some(format!("{base}::{name}()"));
        }
        return None;
    }
    // Plain same-file call: transitively blocking functions count, so a
    // guard held across `publish(...)` is caught even though the actual
    // `fs::write` lives two calls down.
    if !prev_dot && !prev_path && name != "drop" && blocked_fns.contains(name) {
        return Some(format!("{name}() (does blocking I/O transitively)"));
    }
    None
}

/// Fixpoint over same-file functions: which ones (transitively) contain
/// a blocking call?
fn blocking_fns(ctx: &FileCtx, tree: &ScopeTree) -> BTreeSet<String> {
    let mut blocked: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for f in &tree.fns {
            if blocked.contains(&f.name) {
                continue;
            }
            let s = &tree.scopes[f.scope];
            for i in s.open + 1..s.close {
                if blocking_site(ctx, i, &blocked).is_some() {
                    blocked.insert(f.name.clone());
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return blocked;
        }
    }
}

/// L006: no lock guard held across a blocking boundary. A guard that is
/// an *argument* of the blocking call is exempt — that is the condvar
/// `wait(guard)` idiom, which atomically releases the lock.
pub fn l006(ctx: &FileCtx, tree: &ScopeTree, out: &mut Vec<Finding>) {
    if !in_crate(ctx, LOCK_DISCIPLINE_CRATES) || ctx.is_test_file {
        return;
    }
    let blocked = blocking_fns(ctx, tree);
    for b in tree.bindings.iter().filter(|b| b.kind == BindKind::Guard) {
        let decl_line = if b.decl < ctx.code.len() {
            ctx.ct(b.decl).span.line
        } else {
            0
        };
        if ctx.in_test(decl_line) {
            continue;
        }
        let close = tree.scopes[b.scope].close;
        let end = b.drop_at.unwrap_or(close).min(close);
        for i in b.decl + 1..end {
            let Some(desc) = blocking_site(ctx, i, &blocked) else {
                continue;
            };
            if ctx.in_test(ctx.ct(i).span.line) {
                continue;
            }
            // Consuming-wait exemption: guard passed into the call.
            if let Some(close_paren) = ctx.match_delim(i + 1, '(', ')') {
                if (i + 2..close_paren).any(|k| ctx.ct(k).is_ident(&b.name)) {
                    continue;
                }
            }
            out.push(finding(
                ctx,
                "L006",
                i,
                format!(
                    "lock guard `{}` (declared on line {decl_line}) is held \
                     across blocking call {desc}: drop or scope the guard \
                     first, or move the I/O out of the critical section",
                    b.name
                ),
            ));
        }
    }
}

/// L007: no truncating `as` cast where the operand's width is provably
/// wider than the target. `(x >> K) as T` and `(x & MASK) as T` that
/// keep only in-range bits are recognized as exact and allowed.
pub fn l007(ctx: &FileCtx, tree: &ScopeTree, out: &mut Vec<Finding>) {
    if !in_crate(ctx, CAST_DISCIPLINE_CRATES) || ctx.is_test_file {
        return;
    }
    for i in 1..ctx.code.len() {
        let t = ctx.ct(i);
        if !t.is_ident("as") || ctx.in_test(t.span.line) {
            continue;
        }
        let Some(target) = ctx.code.get(i + 1).map(|_| ctx.ct(i + 1)) else {
            continue;
        };
        let Some(tw) = prim_width(&target.text) else {
            continue;
        };
        if tw >= 128 {
            continue; // widening to u128 is always safe
        }
        let Some(ow) = tree.width_of_chain(ctx, i - 1) else {
            continue; // operand width unknown — stay silent
        };
        if ow > tw {
            out.push(finding(
                ctx,
                "L007",
                i,
                format!(
                    "possibly-truncating cast: {ow}-bit operand narrowed \
                     `as {}` — use the lumen6_addr::cast helpers \
                     (low64/high64/sat_u32/sat_u16), mask or shift the \
                     exact bits, or add a reasoned allow",
                    target.text
                ),
            ));
        }
    }
}

/// L008: `File::create` / `fs::write` in a publishing crate must live in
/// a function that also renames (the write-temp-then-rename idiom);
/// anything else can expose a torn file to a concurrent reader.
pub fn l008(ctx: &FileCtx, tree: &ScopeTree, out: &mut Vec<Finding>) {
    if !in_crate(ctx, ATOMIC_WRITE_CRATES) || ctx.is_test_file {
        return;
    }
    for i in 3..ctx.code.len() {
        let t = ctx.ct(i);
        if t.kind != TokenKind::Ident || ctx.in_test(t.span.line) {
            continue;
        }
        let prev_path = ctx.ct(i - 1).is_punct(':') && ctx.ct(i - 2).is_punct(':');
        if !prev_path || i + 1 >= ctx.code.len() || !ctx.ct(i + 1).is_punct('(') {
            continue;
        }
        let base = ctx.ct(i - 3).text.as_str();
        let name = t.text.as_str();
        let is_write = (base == "File" && matches!(name, "create" | "create_new"))
            || (base == "fs" && name == "write");
        if !is_write {
            continue;
        }
        let renames = tree.enclosing_fn(i).is_some_and(|f| {
            let s = &tree.scopes[f];
            (s.open + 1..s.close).any(|k| ctx.ct(k).is_ident("rename"))
        });
        if !renames {
            out.push(finding(
                ctx,
                "L008",
                i,
                format!(
                    "{base}::{name} outside a temp+rename function: a \
                     concurrent reader can observe a torn or empty file — \
                     write to a temp path and fs::rename into place, or add \
                     a reasoned allow",
                ),
            ));
        }
    }
}

/// L009: unbounded growth in daemon-resident code — `channel()` without
/// a bound, or `.push`/`.extend`/`.insert` inside a `loop`/`while` into
/// state reachable from outside the call (`self.…` or a parameter) with
/// no clear/drain/reassign evidence anywhere in the file.
pub fn l009(ctx: &FileCtx, tree: &ScopeTree, out: &mut Vec<Finding>) {
    if !in_crate(ctx, BOUNDED_GROWTH_CRATES) || ctx.is_test_file {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.ct(i);
        if t.kind != TokenKind::Ident || ctx.in_test(t.span.line) {
            continue;
        }
        if t.is_ident("channel") && !(i > 0 && ctx.ct(i - 1).is_punct('.')) {
            // Skip an optional `::<T>` turbofish to find the call parens.
            let mut k = i + 1;
            if k + 1 < ctx.code.len() && ctx.ct(k).is_punct(':') && ctx.ct(k + 1).is_punct(':') {
                k += 2;
                if k < ctx.code.len() && ctx.ct(k).is_punct('<') {
                    let mut depth = 0i32;
                    while k < ctx.code.len() {
                        if ctx.ct(k).is_punct('<') {
                            depth += 1;
                        } else if ctx.ct(k).is_punct('>') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    k += 1;
                }
            }
            if k < ctx.code.len() && ctx.ct(k).is_punct('(') {
                out.push(finding(
                    ctx,
                    "L009",
                    i,
                    "unbounded channel() in a daemon-resident crate: use \
                     sync_channel with an explicit depth so backpressure \
                     reaches the producer, or add a reasoned allow \
                     documenting the cap"
                        .to_string(),
                ));
            }
            continue;
        }
        if !GROWTH_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        let callish = i > 0
            && ctx.ct(i - 1).is_punct('.')
            && i + 1 < ctx.code.len()
            && ctx.ct(i + 1).is_punct('(');
        if !callish || tree.enclosing_loop(i).is_none() {
            continue;
        }
        let Some((root, owner)) = receiver_chain(ctx, i) else {
            continue; // computed receiver — cannot reason about it
        };
        let resident = if root == "self" {
            true
        } else {
            match tree.lookup(&root, i) {
                Some(b) => b.is_param,
                // Unresolved roots (statics, destructured patterns) are
                // skipped: flagging them would drown real findings.
                None => false,
            }
        };
        if !resident || clear_evidence(ctx, &owner) || (owner != root && clear_evidence(ctx, &root))
        {
            continue;
        }
        out.push(finding(
            ctx,
            "L009",
            i,
            format!(
                ".{}() into `{owner}` inside a daemon-resident loop with no \
                 clear/drain/truncate or reassignment in this file: bound it \
                 with a documented cap or add a reasoned allow",
                t.text
            ),
        ));
    }
}

/// Walks the dotted receiver chain backwards from the growth method at
/// code index `m`: returns (root identifier, identifier owning the
/// collection — the segment right before the method).
fn receiver_chain(ctx: &FileCtx, m: usize) -> Option<(String, String)> {
    let mut owner: Option<String> = None;
    let mut j = m - 1; // the `.` before the method
    loop {
        if j == 0 {
            return None;
        }
        let mut k = j - 1;
        // Skip an index expression `…[e]`.
        if ctx.ct(k).is_punct(']') {
            k = rmatch_delim(ctx, k, '[', ']')?;
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        let t = ctx.ct(k);
        let seg = match t.kind {
            TokenKind::Ident => t.text.clone(),
            // Tuple field like `.1` — transparent, keep walking.
            TokenKind::Number => String::new(),
            _ => return None,
        };
        if owner.is_none() && !seg.is_empty() {
            owner = Some(seg.clone());
        }
        if k == 0 || !ctx.ct(k - 1).is_punct('.') {
            if seg.is_empty() {
                return None;
            }
            return Some((seg.clone(), owner.unwrap_or(seg)));
        }
        j = k - 1;
    }
}

/// Does the file ever empty, shrink, or reassign collection `name`?
fn clear_evidence(ctx: &FileCtx, name: &str) -> bool {
    for k in 0..ctx.code.len() {
        let t = ctx.ct(k);
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name = …` reassignment (not `==`).
        if t.is_ident(name)
            && k + 1 < ctx.code.len()
            && ctx.ct(k + 1).is_punct('=')
            && !(k + 2 < ctx.code.len() && ctx.ct(k + 2).is_punct('='))
        {
            return true;
        }
        // `name.clear()`-family call.
        if CLEAR_METHODS.contains(&t.text.as_str())
            && k >= 2
            && ctx.ct(k - 1).is_punct('.')
            && ctx.ct(k - 2).is_ident(name)
            && k + 1 < ctx.code.len()
            && ctx.ct(k + 1).is_punct('(')
        {
            return true;
        }
    }
    false
}
