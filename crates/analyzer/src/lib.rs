//! `lumen6-analyzer`: the workspace static-analysis pass.
//!
//! Parses every crate in the workspace (via the vendored `syn` lexer) and
//! enforces project invariants as named, individually-suppressible lints:
//!
//! | lint | invariant |
//! |------|-----------|
//! | L001 | no `unwrap`/`expect`/`panic!` in non-test library-crate code |
//! | L002 | no `partial_cmp` calls — float ordering must use `total_cmp` |
//! | L003 | no wall-clock / OS entropy in deterministic simulation crates |
//! | L004 | snapshot format drift requires a `SNAPSHOT_VERSION` bump |
//! | L005 | metric-name literals must satisfy the `lumen6-obs` scheme |
//! | L006 | no lock guard held across a blocking boundary in daemon crates |
//! | L007 | no truncating `as` cast on provably-wider address/counter operands |
//! | L008 | spool/checkpoint writes must use the temp+rename publish idiom |
//! | L009 | no unbounded growth primitives in daemon-resident loops |
//!
//! L006–L009 run on a scope tree built over the token stream (see
//! [`scope`]): brace-matched scopes, guard/integer binding tables, and a
//! conservative expression-width resolver.
//!
//! A violation is suppressed by an inline comment on the same line or the
//! line above — the reason is mandatory and stale allows are rejected:
//!
//! ```text
//! // lumen6: allow(L001, length checked by the caller two lines up)
//! ```
//!
//! Run with `cargo run -p lumen6-analyzer`; exits non-zero when any
//! unsuppressed violation remains. `--json` emits the machine-readable
//! report CI archives.

pub mod ctx;
pub mod lints;
pub mod scope;
pub mod scoped;
pub mod snapshot;

use ctx::FileCtx;
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// A lint's identity and one-line summary (`--list-lints`).
pub struct LintInfo {
    /// Stable ID, e.g. `L001`.
    pub id: &'static str,
    /// What it enforces.
    pub summary: &'static str,
}

/// Every lint the analyzer knows, including L000 (suppression hygiene —
/// not itself suppressible).
pub const KNOWN_LINTS: &[LintInfo] = &[
    LintInfo {
        id: "L001",
        summary: "no unwrap/expect/panic! in non-test code of library crates",
    },
    LintInfo {
        id: "L002",
        summary: "no partial_cmp calls; float ordering must use total_cmp",
    },
    LintInfo {
        id: "L003",
        summary: "no SystemTime::now/Instant::now/thread_rng in deterministic sim crates",
    },
    LintInfo {
        id: "L004",
        summary: "snapshot-format changes require a SNAPSHOT_VERSION bump + re-bless",
    },
    LintInfo {
        id: "L005",
        summary: "metric-name literals must match the lumen6-obs crate.subsystem.metric scheme",
    },
    LintInfo {
        id: "L006",
        summary: "no lock guard held across a blocking boundary (channel/condvar/join/file I/O)",
    },
    LintInfo {
        id: "L007",
        summary: "no truncating `as` cast on provably-wider address/counter operands",
    },
    LintInfo {
        id: "L008",
        summary: "File::create/fs::write must live in a temp+rename publishing function",
    },
    LintInfo {
        id: "L009",
        summary: "no unbounded channels or ever-growing resident state in daemon loops",
    },
];

/// One diagnostic.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Lint ID (`L000`–`L009`).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// True when an allow directive matched.
    pub suppressed: bool,
    /// The allow directive's reason, when suppressed.
    pub reason: Option<String>,
}

/// Interns the `&'static str` lint ID for findings constructed from a
/// parsed directive ID.
pub fn lint_id(id: &str) -> Option<&'static str> {
    KNOWN_LINTS.iter().map(|l| l.id).find(|k| *k == id)
}

/// Analysis options.
pub struct Options {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Rewrite the snapshot fingerprint file instead of checking it.
    pub bless_snapshot: bool,
    /// Allow blessing without a `SNAPSHOT_VERSION` bump (wire-compatible
    /// refactors only).
    pub force_bless: bool,
    /// Lint a single file as if it lived in the named crate (fixture
    /// mode); skips L004.
    pub single_file: Option<(PathBuf, Option<String>)>,
}

impl Options {
    /// Workspace scan of `root` with checking semantics.
    pub fn workspace(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            bless_snapshot: false,
            force_bless: false,
            single_file: None,
        }
    }
}

/// Result of an analysis run.
#[derive(Debug, Serialize)]
pub struct Outcome {
    /// Every finding, suppressed ones included.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// True when `--bless-snapshot` rewrote the fingerprint file.
    pub blessed: bool,
}

impl Outcome {
    /// Findings that fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }
}

/// Relative path of the committed fingerprint file.
pub const FINGERPRINT_FILE: &str = "crates/analyzer/snapshot.fingerprint.json";

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            walk_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Classifies a workspace-relative path into (crate name, is-test-file).
fn classify(rel: &str) -> (Option<String>, bool) {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = (parts.len() > 2 && parts[0] == "crates").then(|| parts[1].to_string());
    let is_test = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    (crate_name, is_test)
}

fn lex_file(root: &Path, path: &Path, crate_override: Option<&str>) -> Result<FileCtx, String> {
    let src = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let (mut crate_name, is_test) = classify(&rel);
    if let Some(c) = crate_override {
        crate_name = Some(c.to_string());
    }
    FileCtx::new(rel.clone(), crate_name, is_test, &src)
        .map_err(|e| format!("{rel}: lex error {e}"))
}

fn run_token_lints(ctx: &mut FileCtx, findings: &mut Vec<Finding>) {
    let mut file_findings = Vec::new();
    lints::l001(ctx, &mut file_findings);
    lints::l002(ctx, &mut file_findings);
    lints::l003(ctx, &mut file_findings);
    lints::l005(ctx, &mut file_findings);
    let tree = scope::ScopeTree::build(ctx);
    scoped::l006(ctx, &tree, &mut file_findings);
    scoped::l007(ctx, &tree, &mut file_findings);
    scoped::l008(ctx, &tree, &mut file_findings);
    scoped::l009(ctx, &tree, &mut file_findings);
    ctx.apply_allows(&mut file_findings);
    findings.append(&mut file_findings);
}

/// Runs the analysis described by `opts`.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let mut findings = Vec::new();

    if let Some((path, as_crate)) = &opts.single_file {
        let mut ctx = lex_file(
            path.parent().unwrap_or(Path::new(".")),
            path,
            as_crate.as_deref(),
        )?;
        run_token_lints(&mut ctx, &mut findings);
        return Ok(Outcome {
            findings,
            files_scanned: 1,
            blessed: false,
        });
    }

    let root = &opts.root;
    let mut files = Vec::new();
    walk_rs(&root.join("crates"), &mut files);
    walk_rs(&root.join("src"), &mut files);
    walk_rs(&root.join("examples"), &mut files);
    walk_rs(&root.join("tests"), &mut files);
    if files.is_empty() {
        return Err(format!("no .rs files under {}", root.display()));
    }

    let mut ctxs = Vec::with_capacity(files.len());
    for f in &files {
        ctxs.push(lex_file(root, f, None)?);
    }

    // L004 first: it reads all files, before allows are consumed.
    let fp_path = root.join(FINGERPRINT_FILE);
    let mut blessed = false;
    match snapshot::compute(&ctxs) {
        Ok(current) => {
            let stored: Option<snapshot::SnapshotFingerprint> = fs::read_to_string(&fp_path)
                .ok()
                .and_then(|s| serde_json::from_str(&s).ok());
            if opts.bless_snapshot {
                if let Some(s) = &stored {
                    if s.snapshot_version == current.snapshot_version
                        && s.fingerprint != current.fingerprint
                        && !opts.force_bless
                    {
                        return Err(format!(
                            "refusing to bless: snapshot shape changed but \
                             SNAPSHOT_VERSION is still {} — bump it in \
                             crates/detect/src/snapshot.rs first, or pass \
                             --force-bless for a wire-compatible refactor",
                            current.snapshot_version
                        ));
                    }
                }
                let json = serde_json::to_string_pretty(&current)
                    .map_err(|e| format!("serialize fingerprint: {e}"))?;
                fs::write(&fp_path, json + "\n")
                    .map_err(|e| format!("write {}: {e}", fp_path.display()))?;
                blessed = true;
            } else {
                snapshot::l004(&current, stored.as_ref(), FINGERPRINT_FILE, &mut findings);
            }
        }
        Err(e) => findings.push(Finding {
            lint: "L004",
            file: FINGERPRINT_FILE.to_string(),
            line: 1,
            col: 1,
            message: format!("snapshot fingerprint anchors missing: {e}"),
            suppressed: false,
            reason: None,
        }),
    }

    let files_scanned = ctxs.len();
    for ctx in &mut ctxs {
        run_token_lints(ctx, &mut findings);
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    Ok(Outcome {
        findings,
        files_scanned,
        blessed,
    })
}

/// Renders the human diagnostics to a string.
pub fn render_human(out: &Outcome) -> String {
    let mut s = String::new();
    for f in &out.findings {
        if f.suppressed {
            continue;
        }
        s.push_str(&format!(
            "{} {}:{}:{} — {}\n",
            f.lint, f.file, f.line, f.col, f.message
        ));
    }
    let bad = out.unsuppressed().count();
    let sup = out.findings.len() - bad;
    s.push_str(&format!(
        "lumen6-analyzer: {bad} violation{} ({sup} suppressed) across {} files\n",
        if bad == 1 { "" } else { "s" },
        out.files_scanned
    ));
    s
}
