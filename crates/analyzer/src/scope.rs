//! Scope-aware structural layer over the token stream.
//!
//! The token lints (L001–L005) ask "does this token pattern appear"; the
//! concurrency/resource lints (L006–L009) need to ask *where*: is a lock
//! guard still live at this call, what is the declared width of this
//! operand, is this statement inside a daemon-resident loop. This module
//! builds that structure from the lexed tokens alone — no type checking,
//! no name resolution beyond lexical scoping — so every answer is
//! deliberately conservative: when a width or binding cannot be resolved,
//! the query returns `None` and the lint stays silent rather than guessing.
//!
//! Three layers:
//!
//! 1. a brace-matched **scope tree** ([`Scope`]) classifying each `{…}`
//!    as a `fn` body, a `loop`/`while` body, or a plain block;
//! 2. a **binding table** ([`Binding`]) of `let`-bound names and `fn`
//!    parameters, each tagged as a lock guard, an integer of known bit
//!    width, or opaque — with a live range ending at `drop(name)` or the
//!    end of the declaring scope;
//! 3. an **expression-width resolver** that walks a postfix chain (or a
//!    parenthesized group) backwards from a cast site, understanding
//!    literal suffixes, `uNN::from(…)`, `.len()`, width-preserving
//!    methods (`min`, `saturating_*`, …), and the two exactness idioms
//!    `(x >> K) as T` and `(x & MASK) as T`.

use crate::ctx::FileCtx;
use syn::TokenKind;

/// What kind of block a scope is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// A `fn` body.
    Fn,
    /// A `loop { … }` or `while … { … }` body — the daemon-resident
    /// shapes L009 polices. `for` bodies are plain blocks: their
    /// iteration count is bounded by the iterator they consume.
    Loop,
    /// Everything else (`if`, `match`, struct literals, free blocks).
    Block,
}

/// One brace-delimited scope; `open`/`close` index [`FileCtx::code`].
pub struct Scope {
    /// Block classification.
    pub kind: ScopeKind,
    /// Enclosing scope, if any.
    pub parent: Option<usize>,
    /// Code index of the `{`.
    pub open: usize,
    /// Code index of the matching `}`.
    pub close: usize,
    /// Function name for `Fn` scopes.
    pub fn_name: Option<String>,
}

/// What a tracked binding is known to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// A mutex/rwlock guard (`let g = m.lock()…`, `lock(&m)`, or a
    /// `MutexGuard`-family type ascription).
    Guard,
    /// An unsigned integer of the given bit width (usize counts as 64).
    Int(u32),
    /// Anything else.
    Other,
}

/// A `let` binding or `fn` parameter.
pub struct Binding {
    /// Bound name.
    pub name: String,
    /// Index of the scope it lives in.
    pub scope: usize,
    /// Code index from which the binding is usable (the statement's `;`
    /// for lets, the body `{` for parameters).
    pub decl: usize,
    /// Classification.
    pub kind: BindKind,
    /// True for `fn` parameters (state reachable from outside the call —
    /// what L009 treats as daemon-resident).
    pub is_param: bool,
    /// Code index of an explicit `drop(name)`, ending the live range.
    pub drop_at: Option<usize>,
}

/// A named function and its body scope.
pub struct FnInfo {
    /// Function name (unqualified).
    pub name: String,
    /// Index of its body scope.
    pub scope: usize,
}

/// The assembled structure for one file.
pub struct ScopeTree {
    /// All scopes, in order of their opening brace.
    pub scopes: Vec<Scope>,
    /// All tracked bindings, in source order.
    pub bindings: Vec<Binding>,
    /// All named functions.
    pub fns: Vec<FnInfo>,
}

/// Bit width of a primitive unsigned integer type name.
pub fn prim_width(name: &str) -> Option<u32> {
    Some(match name {
        "u8" => 8,
        "u16" => 16,
        "u32" => 32,
        "u64" | "usize" => 64,
        "u128" => 128,
        _ => return None,
    })
}

/// Methods that return the same integer type as their receiver, so the
/// receiver's width carries through the call.
const SAME_WIDTH_METHODS: &[&str] = &[
    "max",
    "min",
    "clamp",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "rotate_left",
    "rotate_right",
    "swap_bytes",
    "reverse_bits",
    "to_be",
    "to_le",
    "pow",
];

/// Struct fields holding full 128-bit IPv6 addresses throughout the
/// workspace; a truncating cast on these is exactly the wrong-answer bug
/// L007 exists to catch.
const ADDR_FIELDS: &[&str] = &["src", "dst"];

/// Type names that mark a binding as a lock guard.
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

impl ScopeTree {
    /// Builds the scope tree, parameter and `let` binding tables, and
    /// `drop()` live-range ends for one file.
    pub fn build(ctx: &FileCtx) -> ScopeTree {
        let mut tree = ScopeTree {
            scopes: Vec::new(),
            bindings: Vec::new(),
            fns: Vec::new(),
        };
        tree.build_scopes(ctx);
        tree.collect_fns();
        tree.collect_params(ctx);
        tree.collect_lets(ctx);
        tree.collect_drops(ctx);
        tree
    }

    fn build_scopes(&mut self, ctx: &FileCtx) {
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..ctx.code.len() {
            let t = ctx.ct(i);
            if t.is_punct('{') {
                let (kind, fn_name) = classify_brace(ctx, i);
                let idx = self.scopes.len();
                self.scopes.push(Scope {
                    kind,
                    parent: stack.last().copied(),
                    open: i,
                    close: ctx.code.len().saturating_sub(1),
                    fn_name,
                });
                stack.push(idx);
            } else if t.is_punct('}') {
                if let Some(idx) = stack.pop() {
                    self.scopes[idx].close = i;
                }
            }
        }
    }

    fn collect_fns(&mut self) {
        for (i, s) in self.scopes.iter().enumerate() {
            if s.kind == ScopeKind::Fn {
                if let Some(name) = &s.fn_name {
                    self.fns.push(FnInfo {
                        name: name.clone(),
                        scope: i,
                    });
                }
            }
        }
    }

    /// Innermost scope whose braces strictly contain code index `i`.
    pub fn scope_at(&self, i: usize) -> Option<usize> {
        self.scopes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.open < i && i < s.close)
            .max_by_key(|(_, s)| s.open)
            .map(|(idx, _)| idx)
    }

    /// Nearest enclosing `Fn` scope of code index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut cur = self.scope_at(i);
        while let Some(s) = cur {
            if self.scopes[s].kind == ScopeKind::Fn {
                return Some(s);
            }
            cur = self.scopes[s].parent;
        }
        None
    }

    /// Nearest enclosing `Loop` scope of code index `i`, stopping at the
    /// first `Fn` boundary (a loop in an outer function does not make a
    /// nested closure's body loop-resident).
    pub fn enclosing_loop(&self, i: usize) -> Option<usize> {
        let mut cur = self.scope_at(i);
        while let Some(s) = cur {
            match self.scopes[s].kind {
                ScopeKind::Loop => return Some(s),
                ScopeKind::Fn => return None,
                ScopeKind::Block => cur = self.scopes[s].parent,
            }
        }
        None
    }

    /// Innermost binding of `name` visible at code index `at`.
    pub fn lookup(&self, name: &str, at: usize) -> Option<&Binding> {
        self.bindings
            .iter()
            .filter(|b| {
                b.name == name && b.decl < at && {
                    let s = &self.scopes[b.scope];
                    s.open <= b.decl && at < s.close
                }
            })
            .max_by_key(|b| b.decl)
    }

    /// Parses `fn` parameter lists into guard/int bindings scoped to the
    /// function body.
    fn collect_params(&mut self, ctx: &FileCtx) {
        let mut params = Vec::new();
        for f in &self.fns {
            let body = &self.scopes[f.scope];
            // Walk back from the body `{` to the `fn` keyword, then
            // forward over `name`, optional generics, and the `(…)` list.
            let Some(fn_kw) = find_back(ctx, body.open, "fn") else {
                continue;
            };
            let mut k = fn_kw + 2; // past `fn name`
            if k < ctx.code.len() && ctx.ct(k).is_punct('<') {
                let Some(close) = skip_angles(ctx, k) else {
                    continue;
                };
                k = close + 1;
            }
            if k >= ctx.code.len() || !ctx.ct(k).is_punct('(') {
                continue;
            }
            let Some(close) = ctx.match_delim(k, '(', ')') else {
                continue;
            };
            let mut seg_start = k + 1;
            let mut depth = 0i32;
            for j in k + 1..=close {
                let t = ctx.ct(j);
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')')
                    || t.is_punct(']')
                    || t.is_punct('}')
                    || (t.is_punct('>') && !(j > 0 && ctx.ct(j - 1).is_punct('-')))
                {
                    depth -= 1;
                }
                if (t.is_punct(',') && depth == 0) || j == close {
                    if let Some(b) = parse_param(ctx, seg_start, j, f.scope, body.open) {
                        params.push(b);
                    }
                    seg_start = j + 1;
                }
            }
        }
        self.bindings.append(&mut params);
    }

    /// Records `let [mut] name [: ty] [= init];` bindings for plain
    /// identifier patterns (destructuring patterns are left untracked).
    fn collect_lets(&mut self, ctx: &FileCtx) {
        let mut i = 0;
        while i < ctx.code.len() {
            if !ctx.ct(i).is_ident("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if j < ctx.code.len() && ctx.ct(j).is_ident("mut") {
                j += 1;
            }
            let name_ok = j < ctx.code.len()
                && ctx.ct(j).kind == TokenKind::Ident
                && ctx.ct(j).text != "_"
                && !(j + 1 < ctx.code.len()
                    && (ctx.ct(j + 1).is_punct('(')
                        || ctx.ct(j + 1).is_punct('{')
                        || ctx.ct(j + 1).is_punct(':')
                            && j + 2 < ctx.code.len()
                            && ctx.ct(j + 2).is_punct(':')));
            if !name_ok {
                i += 1;
                continue;
            }
            let name = ctx.ct(j).text.clone();
            let mut k = j + 1;
            let mut ty: Option<(usize, usize)> = None;
            if k < ctx.code.len() && ctx.ct(k).is_punct(':') {
                let ty_lo = k + 1;
                k = skip_type(ctx, ty_lo);
                ty = Some((ty_lo, k));
            }
            let mut init: Option<(usize, usize)> = None;
            if k < ctx.code.len() && ctx.ct(k).is_punct('=') {
                let init_lo = k + 1;
                k = stmt_end(ctx, init_lo);
                init = Some((init_lo, k));
            }
            // `k` now indexes the terminating `;` (or the end of file).
            let decl = k.min(ctx.code.len().saturating_sub(1));
            let Some(scope) = self.scope_at(i) else {
                i = k + 1;
                continue;
            };
            let kind = self.classify_binding(ctx, ty, init);
            self.bindings.push(Binding {
                name,
                scope,
                decl,
                kind,
                is_param: false,
                drop_at: None,
            });
            i = k + 1;
        }
    }

    fn classify_binding(
        &self,
        ctx: &FileCtx,
        ty: Option<(usize, usize)>,
        init: Option<(usize, usize)>,
    ) -> BindKind {
        if let Some((lo, hi)) = ty {
            for k in lo..hi {
                if GUARD_TYPES.contains(&ctx.ct(k).text.as_str()) {
                    return BindKind::Guard;
                }
            }
            if let Some(w) = type_width(ctx, lo, hi) {
                return BindKind::Int(w);
            }
        }
        if let Some((lo, hi)) = init {
            // Only a `lock(…)` outside nested braces marks a guard: a
            // block initializer `let idx = { let g = lock(…); … }` binds
            // the block's value, not the guard.
            let mut braces = 0i32;
            for k in lo..hi {
                let t = ctx.ct(k);
                if t.is_punct('{') {
                    braces += 1;
                } else if t.is_punct('}') {
                    braces -= 1;
                } else if braces == 0
                    && (t.is_ident("lock") || t.is_ident("try_lock"))
                    && k + 1 < hi
                    && ctx.ct(k + 1).is_punct('(')
                {
                    return BindKind::Guard;
                }
            }
            if ty.is_none() {
                if let Some(w) = self.width_of_range(ctx, lo, hi) {
                    return BindKind::Int(w);
                }
            }
        }
        BindKind::Other
    }

    /// Ends guard live ranges at explicit `drop(name)` calls.
    fn collect_drops(&mut self, ctx: &FileCtx) {
        for i in 0..ctx.code.len().saturating_sub(3) {
            if ctx.ct(i).is_ident("drop")
                && ctx.ct(i + 1).is_punct('(')
                && ctx.ct(i + 2).kind == TokenKind::Ident
                && ctx.ct(i + 3).is_punct(')')
            {
                let name = ctx.ct(i + 2).text.clone();
                let target = self
                    .bindings
                    .iter_mut()
                    .filter(|b| b.name == name && b.decl < i && b.drop_at.is_none())
                    .max_by_key(|b| b.decl);
                if let Some(b) = target {
                    b.drop_at = Some(i);
                }
            }
        }
    }

    /// Is guard binding `b` live at code index `i` (declared before,
    /// same scope, not yet dropped)?
    pub fn live_at(&self, b: &Binding, i: usize) -> bool {
        let s = &self.scopes[b.scope];
        b.decl < i && i < s.close && b.drop_at.is_none_or(|d| i < d)
    }

    /// Bit width of the expression spanning code indices `[lo, hi)`, or
    /// `None` when it cannot be proven. For `x >> K` and `x & MASK`
    /// forms the result is the number of bits the *value* can occupy,
    /// which is what cast-exactness needs.
    pub fn width_of_range(&self, ctx: &FileCtx, mut lo: usize, hi: usize) -> Option<u32> {
        while lo < hi && (ctx.ct(lo).is_punct('&') || ctx.ct(lo).is_ident("mut")) {
            // Leading `&`/`&mut` borrow — width of the referent. But an
            // `&` that is a binary mask is handled below, so only strip
            // when the next token starts a chain.
            if ctx.ct(lo).is_punct('&') && lo + 1 < hi && ctx.ct(lo + 1).is_punct('&') {
                return None; // `&&` logical — boolean expression
            }
            lo += 1;
        }
        if lo >= hi {
            return None;
        }
        // A trailing top-level `as TYPE` fixes the width outright.
        let mut depth = 0i32;
        let mut last_as: Option<usize> = None;
        for k in lo..hi {
            let t = ctx.ct(k);
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_ident("as") {
                last_as = Some(k);
            }
        }
        if let Some(a) = last_as {
            if a + 1 < hi {
                return prim_width(&ctx.ct(a + 1).text);
            }
        }
        // Comparison / boolean operators at top level mean the value is
        // a bool, not an integer — refuse to guess.
        if has_top_level_bool_op(ctx, lo, hi) {
            return None;
        }
        // `expr & LITERAL` — the literal mask bounds the value bits
        // regardless of the operand's type width.
        if let Some(bits) = top_level_mask_bits(ctx, lo, hi) {
            return Some(bits);
        }
        // `expr >> LITERAL` — the shift discards that many high bits.
        if let Some((pos, k_shift)) = top_level_shift_right(ctx, lo, hi) {
            let lhs = self.width_of_range(ctx, lo, pos)?;
            return Some(lhs.saturating_sub(k_shift).max(1));
        }
        // Split on remaining top-level arithmetic; same-type operands
        // mean any resolvable segment names the width.
        let mut best: Option<u32> = None;
        let mut depth = 0i32;
        let mut seg_start = lo;
        let mut k = lo;
        while k <= hi {
            let at_end = k == hi;
            let is_split = !at_end && depth == 0 && is_arith_punct(ctx, k, lo);
            if at_end || is_split {
                if seg_start < k {
                    if let Some(w) = self.width_of_chain(ctx, k - 1) {
                        best = Some(best.map_or(w, |b: u32| b.max(w)));
                    }
                }
                seg_start = k + 1;
                if at_end {
                    break;
                }
                k += 1;
                continue;
            }
            let t = ctx.ct(k);
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            }
            k += 1;
        }
        best
    }

    /// Bit width of the postfix chain *ending* at code index `end`.
    pub fn width_of_chain(&self, ctx: &FileCtx, end: usize) -> Option<u32> {
        let t = ctx.ct(end);
        match t.kind {
            TokenKind::Number => number_suffix_width(&t.text),
            TokenKind::Ident => {
                if end > 0 && ctx.ct(end - 1).is_punct('.') {
                    // Field access: only the address fields are known.
                    return ADDR_FIELDS.contains(&t.text.as_str()).then_some(128);
                }
                if (t.is_ident("MAX") || t.is_ident("MIN"))
                    && end >= 3
                    && ctx.ct(end - 1).is_punct(':')
                    && ctx.ct(end - 2).is_punct(':')
                {
                    return prim_width(&ctx.ct(end - 3).text);
                }
                match self.lookup(&t.text, end)?.kind {
                    BindKind::Int(w) => Some(w),
                    _ => None,
                }
            }
            TokenKind::Punct if t.is_punct(')') => {
                let open = rmatch_delim(ctx, end, '(', ')')?;
                if open == 0 {
                    return self.width_of_range(ctx, open + 1, end);
                }
                let before = ctx.ct(open - 1);
                if before.kind == TokenKind::Ident {
                    if open >= 2 && ctx.ct(open - 2).is_punct('.') {
                        // Method call.
                        if before.is_ident("len") || before.is_ident("count") {
                            return Some(64);
                        }
                        if SAME_WIDTH_METHODS.contains(&before.text.as_str()) && open >= 3 {
                            return self.width_of_chain(ctx, open - 3);
                        }
                        return None;
                    }
                    if before.is_ident("from")
                        && open >= 4
                        && ctx.ct(open - 2).is_punct(':')
                        && ctx.ct(open - 3).is_punct(':')
                    {
                        return prim_width(&ctx.ct(open - 4).text);
                    }
                    return None; // plain function call — unknown
                }
                // Grouping parentheses.
                self.width_of_range(ctx, open + 1, end)
            }
            _ => None,
        }
    }
}

/// Classifies the `{` at code index `i` by walking its header backwards
/// to the previous statement boundary.
fn classify_brace(ctx: &FileCtx, i: usize) -> (ScopeKind, Option<String>) {
    let mut hdr: Vec<usize> = Vec::new(); // reversed (closest token first)
    let mut k = i;
    let mut steps = 0;
    while k > 0 && steps < 96 {
        k -= 1;
        steps += 1;
        let t = ctx.ct(k);
        if t.is_punct(')') || t.is_punct(']') {
            let (o, c) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            match rmatch_delim(ctx, k, o, c) {
                Some(open) => {
                    hdr.push(k);
                    hdr.push(open);
                    k = open;
                    continue;
                }
                None => break,
            }
        }
        // `,` is deliberately not a boundary: it appears inside return
        // types (`-> Result<A, B> {`), and fn detection must see past it.
        if t.is_punct(';')
            || t.is_punct('{')
            || t.is_punct('}')
            || t.is_punct('(')
            || t.is_punct('[')
        {
            break;
        }
        hdr.push(k);
    }
    // `fn NAME` anywhere in the header wins.
    for w in (0..hdr.len()).rev() {
        if ctx.ct(hdr[w]).is_ident("fn") && w > 0 {
            let name_tok = ctx.ct(hdr[w - 1]);
            if name_tok.kind == TokenKind::Ident {
                return (ScopeKind::Fn, Some(name_tok.text.clone()));
            }
        }
    }
    let has = |kw: &str| hdr.iter().any(|&h| ctx.ct(h).is_ident(kw));
    let item = ["impl", "struct", "enum", "trait", "mod", "union", "match"]
        .iter()
        .any(|kw| has(kw));
    if !item && (has("loop") || has("while")) {
        return (ScopeKind::Loop, None);
    }
    (ScopeKind::Block, None)
}

/// Backwards delimiter match: code index of the `open` matching the
/// `close` at `close_idx`.
pub fn rmatch_delim(ctx: &FileCtx, close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close_idx + 1;
    while k > 0 {
        k -= 1;
        let t = ctx.ct(k);
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Nearest preceding code index bearing the given keyword.
fn find_back(ctx: &FileCtx, from: usize, kw: &str) -> Option<usize> {
    (0..from).rev().take(96).find(|&k| ctx.ct(k).is_ident(kw))
}

/// Given the code index of a `<`, returns the index of its matching `>`
/// (angle-depth aware, skipping `->` arrows).
fn skip_angles(ctx: &FileCtx, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in open..ctx.code.len() {
        let t = ctx.ct(k);
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(k > 0 && ctx.ct(k - 1).is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Advances past a type (after `let name:`) to the `=` or `;` ending it.
fn skip_type(ctx: &FileCtx, lo: usize) -> usize {
    let mut depth = 0i32;
    let mut k = lo;
    while k < ctx.code.len() {
        let t = ctx.ct(k);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')')
            || t.is_punct(']')
            || (t.is_punct('>') && !(k > 0 && ctx.ct(k - 1).is_punct('-')))
        {
            depth -= 1;
        } else if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
            return k;
        }
        k += 1;
    }
    k
}

/// Advances past an initializer expression to its terminating `;` at
/// delimiter depth zero.
fn stmt_end(ctx: &FileCtx, lo: usize) -> usize {
    let mut depth = 0i32;
    let mut k = lo;
    while k < ctx.code.len() {
        let t = ctx.ct(k);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            return k;
        }
        k += 1;
    }
    k
}

/// Width from a single-primitive type ascription (ignoring `&`/`mut`).
fn type_width(ctx: &FileCtx, lo: usize, hi: usize) -> Option<u32> {
    let mut width = None;
    for k in lo..hi {
        let t = ctx.ct(k);
        if t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime {
            continue;
        }
        if t.kind == TokenKind::Ident {
            if width.is_some() {
                return None; // compound type — don't guess
            }
            width = Some(prim_width(&t.text)?);
        } else {
            return None;
        }
    }
    width
}

/// Width from a numeric literal's suffix (`42u64`, `0xffffu32`); `None`
/// for unsuffixed or signed/float literals.
fn number_suffix_width(text: &str) -> Option<u32> {
    for (suffix, w) in [
        ("u128", 128),
        ("usize", 64),
        ("u64", 64),
        ("u32", 32),
        ("u16", 16),
        ("u8", 8),
    ] {
        if text.ends_with(suffix) {
            return Some(w);
        }
    }
    None
}

/// Value of a numeric literal (decimal, hex, octal, binary, with `_`
/// separators and an optional width suffix).
fn number_value(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    // A type suffix, if present, starts at the first non-digit character
    // past the radix prefix and is dropped below.
    let (radix, digits) = if let Some(h) = t.strip_prefix("0x") {
        (16, h)
    } else if let Some(o) = t.strip_prefix("0o") {
        (8, o)
    } else if let Some(b) = t.strip_prefix("0b") {
        (2, b)
    } else {
        (10, t.as_str())
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u128::from_str_radix(&digits[..end], radix).ok()
}

/// Bits needed to represent `v` (0 needs 1 bit for our purposes).
fn bits_of(v: u128) -> u32 {
    (128 - v.leading_zeros()).max(1)
}

/// Is the code token at `k` a top-level arithmetic operator (split point
/// for width resolution)? Excludes a leading unary `-`/`&`.
fn is_arith_punct(ctx: &FileCtx, k: usize, lo: usize) -> bool {
    let t = ctx.ct(k);
    if k == lo {
        return false; // unary position
    }
    ['+', '-', '*', '/', '%', '|', '^', '&']
        .iter()
        .any(|&c| t.is_punct(c))
}

/// Any comparison / boolean operator at delimiter depth zero?
fn has_top_level_bool_op(ctx: &FileCtx, lo: usize, hi: usize) -> bool {
    let mut depth = 0i32;
    for k in lo..hi {
        let t = ctx.ct(k);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            let next = (k + 1 < hi).then(|| ctx.ct(k + 1));
            let prev = (k > lo).then(|| ctx.ct(k - 1));
            let double = |c: char| {
                next.is_some_and(|n| n.is_punct(c)) || prev.is_some_and(|p| p.is_punct(c))
            };
            if t.is_punct('=') && double('=') {
                return true;
            }
            if t.is_punct('&') && double('&') {
                return true;
            }
            if t.is_punct('|') && double('|') {
                return true;
            }
            if t.is_punct('!') && next.is_some_and(|n| n.is_punct('=')) {
                return true;
            }
            // Single `<`/`>` (not shifts `<<`/`>>`, arrows, or turbofish)
            // are comparisons.
            if t.is_punct('<') && !double('<') && !prev.is_some_and(|p| p.is_punct(':')) {
                return true;
            }
            if t.is_punct('>')
                && !double('>')
                && !prev.is_some_and(|p| p.is_punct('-') || p.is_punct('='))
            {
                return true;
            }
        }
    }
    false
}

/// For a top-level `expr & LITERAL` (or `LITERAL & expr`): the bit count
/// of the literal mask.
fn top_level_mask_bits(ctx: &FileCtx, lo: usize, hi: usize) -> Option<u32> {
    let mut depth = 0i32;
    for k in lo..hi {
        let t = ctx.ct(k);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('&') && k > lo {
            let lhs_lit = (k > lo && ctx.ct(k - 1).kind == TokenKind::Number)
                .then(|| number_value(&ctx.ct(k - 1).text))
                .flatten();
            let rhs_lit = (k + 1 < hi && ctx.ct(k + 1).kind == TokenKind::Number)
                .then(|| number_value(&ctx.ct(k + 1).text))
                .flatten();
            if let Some(v) = rhs_lit.or(lhs_lit) {
                return Some(bits_of(v));
            }
        }
    }
    None
}

/// For a top-level `expr >> LITERAL`: (index of the first `>`, shift
/// amount).
fn top_level_shift_right(ctx: &FileCtx, lo: usize, hi: usize) -> Option<(usize, u32)> {
    let mut depth = 0i32;
    for k in lo..hi.saturating_sub(2) {
        let t = ctx.ct(k);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0
            && t.is_punct('>')
            && ctx.ct(k + 1).is_punct('>')
            && ctx.ct(k + 2).kind == TokenKind::Number
        {
            let amount = number_value(&ctx.ct(k + 2).text)?;
            return Some((k, u32::try_from(amount).ok()?));
        }
    }
    None
}

/// Parses one `fn` parameter segment (`[mut] name: Type`) into a binding.
fn parse_param(
    ctx: &FileCtx,
    mut lo: usize,
    hi: usize,
    scope: usize,
    decl: usize,
) -> Option<Binding> {
    while lo < hi
        && (ctx.ct(lo).is_punct('&')
            || ctx.ct(lo).is_ident("mut")
            || ctx.ct(lo).kind == TokenKind::Lifetime)
    {
        lo += 1;
    }
    if lo >= hi || ctx.ct(lo).kind != TokenKind::Ident || ctx.ct(lo).is_ident("self") {
        return None;
    }
    let name = ctx.ct(lo).text.clone();
    if lo + 1 >= hi || !ctx.ct(lo + 1).is_punct(':') {
        return None;
    }
    let (ty_lo, ty_hi) = (lo + 2, hi);
    let mut kind = BindKind::Other;
    for k in ty_lo..ty_hi {
        if GUARD_TYPES.contains(&ctx.ct(k).text.as_str()) {
            kind = BindKind::Guard;
            break;
        }
    }
    if kind == BindKind::Other {
        if let Some(w) = type_width(ctx, ty_lo, ty_hi) {
            kind = BindKind::Int(w);
        }
    }
    Some(Binding {
        name,
        scope,
        decl,
        kind,
        is_param: true,
        drop_at: None,
    })
}
