//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p lumen6-analyzer                  # check the workspace
//! cargo run -p lumen6-analyzer -- --json        # machine-readable report
//! cargo run -p lumen6-analyzer -- --format github   # CI annotations
//! cargo run -p lumen6-analyzer -- --bless-snapshot
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed violations, 2 usage/internal error.

use lumen6_analyzer::{render_human, run, Options, Outcome, KNOWN_LINTS};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: lumen6-analyzer [options]
  --root DIR         workspace root (default: current directory)
  --json             print the machine-readable JSON report to stdout
  --format FMT       stdout format: human (default), github (Actions
                     ::error annotations, one per unsuppressed finding)
  --report FILE      also write the JSON report to FILE
  --bless-snapshot   record the current snapshot fingerprint (L004)
  --force-bless      bless even without a SNAPSHOT_VERSION bump
  --file PATH        lint one file instead of the workspace (skips L004)
  --as-crate NAME    with --file: treat it as part of crate NAME
  --list-lints       print the lint inventory and exit
  -h, --help         this help";

/// Stdout rendering of the outcome.
#[derive(PartialEq)]
enum Format {
    Human,
    Github,
}

/// Escapes a value for a GitHub Actions workflow command. Properties
/// (file names) additionally escape `:` and `,`; message bodies only
/// need `%`, CR, and LF.
fn gh_escape(s: &str, property: bool) -> String {
    let mut out = s
        .replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A");
    if property {
        out = out.replace(':', "%3A").replace(',', "%2C");
    }
    out
}

/// Prints one `::error` annotation per unsuppressed finding, then a
/// one-line summary. GitHub attaches each annotation to the named file
/// and line in the PR diff view.
fn render_github(outcome: &Outcome) {
    for f in outcome.unsuppressed() {
        println!(
            "::error file={},line={},col={},title={}::{}",
            gh_escape(&f.file, true),
            f.line,
            f.col,
            f.lint,
            gh_escape(&format!("{} {}", f.lint, f.message), false),
        );
    }
    let n = outcome.unsuppressed().count();
    println!(
        "lumen6-analyzer: {n} violations across {} files",
        outcome.files_scanned
    );
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut json = false;
    let mut report_path: Option<PathBuf> = None;
    let mut bless = false;
    let mut force_bless = false;
    let mut file: Option<PathBuf> = None;
    let mut as_crate: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--json" => json = true,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("github") => format = Format::Github,
                Some(other) => {
                    return usage_error(&format!("unknown --format {other:?}"));
                }
                None => return usage_error("--format needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage_error("--report needs a value"),
            },
            "--bless-snapshot" => bless = true,
            "--force-bless" => force_bless = true,
            "--file" => match args.next() {
                Some(v) => file = Some(PathBuf::from(v)),
                None => return usage_error("--file needs a value"),
            },
            "--as-crate" => match args.next() {
                Some(v) => as_crate = Some(v),
                None => return usage_error("--as-crate needs a value"),
            },
            "--list-lints" => {
                for l in KNOWN_LINTS {
                    println!("{}  {}", l.id, l.summary);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let opts = Options {
        root,
        bless_snapshot: bless,
        force_bless,
        single_file: file.map(|f| (f, as_crate)),
    };
    let outcome = match run(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lumen6-analyzer: error: {e}");
            return ExitCode::from(2);
        }
    };

    if json || report_path.is_some() {
        match serde_json::to_string_pretty(&outcome) {
            Ok(s) => {
                if json {
                    println!("{s}");
                }
                if let Some(p) = report_path {
                    if let Err(e) = std::fs::write(&p, s + "\n") {
                        eprintln!("lumen6-analyzer: error writing {}: {e}", p.display());
                        return ExitCode::from(2);
                    }
                }
            }
            Err(e) => {
                eprintln!("lumen6-analyzer: error serializing report: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !json {
        if format == Format::Github {
            render_github(&outcome);
        } else {
            print!("{}", render_human(&outcome));
        }
        if outcome.blessed {
            println!("snapshot fingerprint blessed");
        }
    }
    if outcome.unsuppressed().next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lumen6-analyzer: {msg}\n{USAGE}");
    ExitCode::from(2)
}
