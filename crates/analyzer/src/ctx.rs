//! Per-file analysis context: lexed tokens, test-code regions, and
//! `// lumen6: allow(...)` suppression directives.

use crate::{Finding, KNOWN_LINTS};
use syn::{Token, TokenKind};

/// A parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Lint ID being suppressed, e.g. `L001`.
    pub lint: String,
    /// The mandatory human reason.
    pub reason: String,
    /// Line the directive comment sits on.
    pub line: u32,
    /// The line the directive applies to besides its own: the next line
    /// containing code (so a directive can sit above the offending line).
    pub next_code_line: u32,
    /// Set during matching; unused directives are themselves a violation.
    pub used: bool,
}

/// Everything the token lints need to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Short crate directory name (`detect`, `trace`, …); `None` for the
    /// root package / loose files.
    pub crate_name: Option<String>,
    /// Whole file is test or bench code (under `tests/` or `benches/`).
    pub is_test_file: bool,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Suppression directives found in comments.
    pub allows: Vec<Allow>,
    /// Malformed-directive findings (L000), emitted unconditionally.
    pub directive_findings: Vec<Finding>,
}

impl FileCtx {
    /// Lexes `src` and precomputes regions and directives.
    pub fn new(
        rel_path: String,
        crate_name: Option<String>,
        is_test_file: bool,
        src: &str,
    ) -> Result<FileCtx, syn::LexError> {
        let tokens = syn::tokenize(src)?;
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut ctx = FileCtx {
            rel_path,
            crate_name,
            is_test_file,
            tokens,
            code,
            test_ranges: Vec::new(),
            allows: Vec::new(),
            directive_findings: Vec::new(),
        };
        ctx.find_test_ranges();
        ctx.find_allow_directives();
        Ok(ctx)
    }

    /// Token (by code index) helper.
    pub fn ct(&self, code_idx: usize) -> &Token {
        &self.tokens[self.code[code_idx]]
    }

    /// True if the given line is test code.
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Scans for `#[cfg(test)]` / `#[test]`-gated items and records the
    /// line span of each (attribute through end of item body).
    fn find_test_ranges(&mut self) {
        let mut i = 0;
        while i < self.code.len() {
            if self.ct(i).is_punct('#') && i + 1 < self.code.len() && self.ct(i + 1).is_punct('[') {
                let attr_start = i;
                let Some(close) = self.match_delim(i + 1, '[', ']') else {
                    break;
                };
                if self.attr_is_test(attr_start + 2, close) {
                    let start_line = self.ct(attr_start).span.line;
                    let end = self.item_end(close + 1);
                    let end_line = self.ct(end.min(self.code.len() - 1)).span.line;
                    self.test_ranges.push((start_line, end_line));
                    i = end + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
    }

    /// Does the attribute body (code indices `lo..hi`, exclusive of the
    /// closing `]`) gate test compilation? Matches `test`, `cfg(test)`,
    /// `cfg(any(test, …))` — but not `cfg_attr(…)` or `cfg(not(test))`.
    fn attr_is_test(&self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return false;
        }
        let first = self.ct(lo);
        if first.is_ident("test") {
            return true;
        }
        if !first.is_ident("cfg") {
            return false;
        }
        for k in lo + 1..hi {
            if self.ct(k).is_ident("test") {
                let negated =
                    k >= 2 && self.ct(k - 1).is_punct('(') && self.ct(k - 2).is_ident("not");
                if !negated {
                    return true;
                }
            }
        }
        false
    }

    /// Given the code index of an opening delimiter, returns the index of
    /// its matching closer.
    pub fn match_delim(&self, open_idx: usize, open: char, close: char) -> Option<usize> {
        let mut depth = 0usize;
        for k in open_idx..self.code.len() {
            let t = self.ct(k);
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    }

    /// From a code index just past an item's attributes, finds the code
    /// index ending the item: the brace matching its body's `{`, or a `;`
    /// at zero delimiter depth (e.g. `use …;`, tuple structs).
    fn item_end(&self, from: usize) -> usize {
        let mut k = from;
        // Skip any further attributes.
        while k + 1 < self.code.len() && self.ct(k).is_punct('#') && self.ct(k + 1).is_punct('[') {
            match self.match_delim(k + 1, '[', ']') {
                Some(c) => k = c + 1,
                None => return self.code.len() - 1,
            }
        }
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while k < self.code.len() {
            let t = self.ct(k);
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('{') {
                return self.match_delim(k, '{', '}').unwrap_or(self.code.len() - 1);
            } else if t.is_punct(';') && paren == 0 && bracket == 0 {
                return k;
            }
            k += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Parses `// lumen6: allow(LXXX, reason)` comments. Malformed
    /// directives (unknown lint, missing reason) become L000 findings.
    fn find_allow_directives(&mut self) {
        let mut directives = Vec::new();
        let mut bad = Vec::new();
        for t in &self.tokens {
            if t.kind != TokenKind::LineComment {
                continue;
            }
            let body = t.text.trim_start_matches('/').trim();
            let Some(rest) = body.strip_prefix("lumen6:") else {
                continue;
            };
            let rest = rest.trim();
            let parsed = rest
                .strip_prefix("allow(")
                .and_then(|r| r.strip_suffix(')'))
                .and_then(|inner| {
                    let (id, reason) = inner.split_once(',')?;
                    let id = id.trim();
                    let reason = reason.trim();
                    let id_ok = KNOWN_LINTS.iter().any(|l| l.id == id);
                    (id_ok && !reason.is_empty()).then(|| (id.to_string(), reason.to_string()))
                });
            match parsed {
                Some((lint, reason)) => directives.push(Allow {
                    lint,
                    reason,
                    line: t.span.line,
                    next_code_line: 0,
                    used: false,
                }),
                None => bad.push(Finding {
                    lint: "L000",
                    file: self.rel_path.clone(),
                    line: t.span.line,
                    col: t.span.col,
                    message: format!(
                        "malformed suppression {body:?}: expected \
                         `lumen6: allow(LNNN, reason)` with a known lint ID \
                         and a non-empty reason"
                    ),
                    suppressed: false,
                    reason: None,
                }),
            }
        }
        for d in &mut directives {
            d.next_code_line = self
                .code
                .iter()
                .map(|&i| self.tokens[i].span.line)
                .find(|&l| l > d.line)
                .unwrap_or(u32::MAX);
        }
        self.allows = directives;
        self.directive_findings = bad;
    }

    /// Applies suppression directives to `findings` (marking both sides),
    /// then appends an L000 finding for every directive that suppressed
    /// nothing — stale allows must not linger.
    pub fn apply_allows(&mut self, findings: &mut Vec<Finding>) {
        for f in findings.iter_mut() {
            if f.lint == "L000" {
                continue;
            }
            if let Some(d) = self
                .allows
                .iter_mut()
                .find(|d| d.lint == f.lint && (d.line == f.line || d.next_code_line == f.line))
            {
                d.used = true;
                f.suppressed = true;
                f.reason = Some(d.reason.clone());
            }
        }
        for d in self.allows.iter().filter(|d| !d.used) {
            findings.push(Finding {
                lint: "L000",
                file: self.rel_path.clone(),
                line: d.line,
                col: 1,
                message: format!(
                    "unused suppression for {}: no matching finding on this \
                     or the next code line — remove the stale allow",
                    d.lint
                ),
                suppressed: false,
                reason: None,
            });
        }
        findings.append(&mut self.directive_findings);
    }
}
