//! L004: snapshot-format drift guard.
//!
//! The checkpoint format (`DetectorSnapshot` + L6CK framing) is persisted
//! state: a field added, renamed, or re-typed without a
//! `SNAPSHOT_VERSION` bump silently corrupts resume-from-checkpoint.
//! This pass extracts the canonical shape of every `Serialize` type
//! reachable from `DetectorSnapshot`, fingerprints it, and compares
//! against the committed fingerprint file. A mismatch while the stored
//! `snapshot_version` equals the current one is a build failure.
//!
//! The run-summary JSON report (`SessionReport`, the `--report-out`
//! surface downstream tooling parses) is fingerprinted through the same
//! closure: it is a second reachability root, so renaming a `ScanEvent`
//! field or re-typing a report counter trips L004 exactly like checkpoint
//! drift does. The root is optional — a scan tree without a
//! `SessionReport` definition (reduced fixtures) fingerprints only the
//! checkpoint closure.
//!
//! The serve configuration schema (`RunConfig` / `ServeConfig`, the TOML
//! surface operators write manifests against and the daemon re-reads on
//! every restart) is a third pair of optional roots: a renamed or
//! re-typed config field silently orphans deployed manifests the same way
//! checkpoint drift orphans deployed checkpoints.

use crate::ctx::FileCtx;
use crate::Finding;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use syn::TokenKind;

/// Committed fingerprint state (JSON, human-reviewable: the per-type
/// canonical signatures make review diffs show *what* changed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotFingerprint {
    /// `SNAPSHOT_VERSION` at bless time.
    pub snapshot_version: u32,
    /// fnv1a64 over the canonical text, hex.
    pub fingerprint: String,
    /// Canonical signature per reachable type.
    pub types: BTreeMap<String, String>,
}

/// One `#[derive(…Serialize…)]` type definition found in source.
struct SerType {
    /// Canonical signature: attrs + body tokens joined by single spaces.
    sig: String,
    /// Identifiers referenced in the signature (for reachability).
    refs: Vec<String>,
}

/// Extracts all non-test `Serialize`-derived type definitions in a file.
fn collect_ser_types(ctx: &FileCtx, into: &mut BTreeMap<String, SerType>) {
    let mut i = 0;
    while i < ctx.code.len() {
        if !(ctx.ct(i).is_punct('#') && i + 1 < ctx.code.len() && ctx.ct(i + 1).is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(close) = ctx.match_delim(i + 1, '[', ']') else {
            break;
        };
        let attr_lo = i + 2;
        let is_ser_derive = attr_lo < close
            && ctx.ct(attr_lo).is_ident("derive")
            && (attr_lo..close).any(|k| ctx.ct(k).is_ident("Serialize"));
        if !is_ser_derive || ctx.in_test(ctx.ct(i).span.line) {
            i = close + 1;
            continue;
        }
        // Capture from just past the derive attr (keeping any #[serde(…)]
        // attrs — they change the wire format) through the item end.
        let mut k = close + 1;
        let mut sig_tokens: Vec<&str> = Vec::new();
        let mut name: Option<String> = None;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while k < ctx.code.len() {
            let t = ctx.ct(k);
            sig_tokens.push(&t.text);
            if name.is_none()
                && (t.is_ident("struct") || t.is_ident("enum"))
                && k + 1 < ctx.code.len()
            {
                name = Some(ctx.ct(k + 1).text.clone());
            }
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('{') {
                let end = ctx.match_delim(k, '{', '}').unwrap_or(ctx.code.len() - 1);
                for m in k + 1..=end.min(ctx.code.len() - 1) {
                    sig_tokens.push(&ctx.ct(m).text);
                }
                k = end;
                break;
            } else if t.is_punct(';') && paren == 0 && bracket == 0 {
                break;
            }
            k += 1;
        }
        if let Some(name) = name {
            let refs = {
                let mut v: Vec<String> = Vec::new();
                for m in close + 1..=k.min(ctx.code.len() - 1) {
                    let t = ctx.ct(m);
                    if t.kind == TokenKind::Ident {
                        v.push(t.text.clone());
                    }
                }
                v
            };
            into.insert(
                name,
                SerType {
                    sig: sig_tokens.join(" "),
                    refs,
                },
            );
        }
        i = k + 1;
    }
}

/// Finds `const NAME … = <literal>` and returns the literal token text.
fn const_literal(ctx: &FileCtx, name: &str) -> Option<String> {
    for i in 0..ctx.code.len() {
        if !ctx.ct(i).is_ident(name) {
            continue;
        }
        for k in i + 1..ctx.code.len().min(i + 8) {
            if ctx.ct(k).is_punct('=') {
                return Some(ctx.ct(k + 1).text.clone());
            }
        }
    }
    None
}

/// FNV-1a 64-bit (matches the checksum family the snapshot writer uses).
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Computes the current fingerprint from the scanned files. Returns the
/// fingerprint and the extracted `SNAPSHOT_VERSION`, or an error message
/// when the anchors can't be found.
pub fn compute(ctxs: &[FileCtx]) -> Result<SnapshotFingerprint, String> {
    let mut all: BTreeMap<String, SerType> = BTreeMap::new();
    for ctx in ctxs {
        collect_ser_types(ctx, &mut all);
    }
    if !all.contains_key("DetectorSnapshot") {
        return Err("DetectorSnapshot definition not found in scanned files".into());
    }
    // BFS over referenced identifiers that are themselves Serialize types,
    // from every persisted-format root: the checkpoint payload, the
    // run-summary JSON report, and the serve configuration schema.
    let mut reach: BTreeSet<String> = BTreeSet::new();
    let mut queue = vec!["DetectorSnapshot".to_string()];
    if all.contains_key("SessionReport") {
        queue.push("SessionReport".to_string());
    }
    for root in ["RunConfig", "ServeConfig"] {
        if all.contains_key(root) {
            queue.push(root.to_string());
        }
    }
    while let Some(name) = queue.pop() {
        if !reach.insert(name.clone()) {
            continue;
        }
        if let Some(t) = all.get(&name) {
            for r in &t.refs {
                if all.contains_key(r) && !reach.contains(r) {
                    queue.push(r.clone());
                }
            }
        }
    }
    let version_txt = ctxs
        .iter()
        .filter(|c| c.rel_path.ends_with("snapshot.rs"))
        .find_map(|c| const_literal(c, "SNAPSHOT_VERSION"))
        .ok_or("SNAPSHOT_VERSION const not found (crates/detect/src/snapshot.rs)")?;
    let snapshot_version: u32 = version_txt
        .parse()
        .map_err(|_| format!("SNAPSHOT_VERSION is not an integer literal: {version_txt}"))?;
    let magic = ctxs
        .iter()
        .filter(|c| c.rel_path.ends_with("session.rs"))
        .find_map(|c| const_literal(c, "CHECKPOINT_MAGIC"))
        .ok_or("CHECKPOINT_MAGIC const not found (crates/detect/src/session.rs)")?;

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for name in &reach {
        if let Some(t) = all.get(name) {
            types.insert(name.clone(), t.sig.clone());
        }
    }
    types.insert("__framing".into(), format!("magic={magic}"));

    let mut canon = String::new();
    for (name, sig) in &types {
        canon.push_str(name);
        canon.push_str(" := ");
        canon.push_str(sig);
        canon.push('\n');
    }
    Ok(SnapshotFingerprint {
        snapshot_version,
        fingerprint: format!("{:016x}", fnv1a64(canon.as_bytes())),
        types,
    })
}

/// Evaluates L004 against the committed fingerprint file contents (if
/// any); `file_rel` is the path reported in findings.
pub fn l004(
    current: &SnapshotFingerprint,
    stored: Option<&SnapshotFingerprint>,
    file_rel: &str,
    out: &mut Vec<Finding>,
) {
    let mk = |message: String| Finding {
        lint: "L004",
        file: file_rel.to_string(),
        line: 1,
        col: 1,
        message,
        suppressed: false,
        reason: None,
    };
    match stored {
        None => out.push(mk(format!(
            "snapshot fingerprint file missing: run `cargo run -p \
             lumen6-analyzer -- --bless-snapshot` to record the current \
             format (version {})",
            current.snapshot_version
        ))),
        Some(s) if s.fingerprint == current.fingerprint => {}
        Some(s) if s.snapshot_version == current.snapshot_version => {
            let changed: Vec<&String> = current
                .types
                .iter()
                .filter(|(k, v)| s.types.get(*k) != Some(v))
                .map(|(k, _)| k)
                .chain(s.types.keys().filter(|k| !current.types.contains_key(*k)))
                .collect();
            out.push(mk(format!(
                "serialized snapshot shape changed without a SNAPSHOT_VERSION \
                 bump (still {}): changed types {:?} — bump SNAPSHOT_VERSION \
                 in crates/detect/src/snapshot.rs, then re-bless",
                s.snapshot_version, changed
            )));
        }
        Some(s) => out.push(mk(format!(
            "SNAPSHOT_VERSION bumped {} -> {} but the fingerprint file is \
             stale: run `cargo run -p lumen6-analyzer -- --bless-snapshot` \
             and commit the result",
            s.snapshot_version, current.snapshot_version
        ))),
    }
}
