//! CDN connection-artifact generators (paper §2.1, Appendix A.1).
//!
//! Client-facing CDN addresses attract traffic that mimics scanning:
//!
//! - **SMTP fallback**: a mail server delivering to a domain hosted on the
//!   CDN without an MX record falls back to the AAAA record and retries the
//!   same (address, TCP/25) pair over and over. Because the CDN mapping
//!   process maps a client to a potentially large set of machines over
//!   time (footnote 7), the retries fan out across many destination IPs —
//!   a single source hitting many destinations, the signature of a scan.
//! - **IPsec/ISAKMP retries**: hosts sending ISAKMP (UDP/500) to every CDN
//!   machine they get mapped to.
//! - **NetBIOS-style chatter**: misconfigured web clients emitting name
//!   resolution with every outgoing connection.
//!
//! All generators repeat each (destination, port) pair far more than 5
//! times per day, so the paper's 5-duplicate filter removes them; they
//! exist to exercise that filter and to populate the dense low-destination
//! corner of Fig. 1.

use crate::deployment::CdnDeployment;
use lumen6_trace::{PacketRecord, Transport, DAY_MS, HOUR_MS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Artifact traffic mix over a time range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactConfig {
    /// Number of SMTP-fallback sources active per day.
    pub smtp_sources_per_day: usize,
    /// Number of ISAKMP retry sources active per day.
    pub isakmp_sources_per_day: usize,
    /// Number of NetBIOS-style chatter sources active per day.
    pub netbios_sources_per_day: usize,
    /// Machines a source is mapped to (destination fan-out).
    pub mapped_machines: usize,
    /// Retries per (destination, port) per day — must exceed 5 for the
    /// artifact filter to catch the behavior.
    pub retries_per_dst: u64,
}

impl Default for ArtifactConfig {
    fn default() -> Self {
        ArtifactConfig {
            smtp_sources_per_day: 28,
            isakmp_sources_per_day: 42,
            netbios_sources_per_day: 10,
            mapped_machines: 8,
            retries_per_dst: 12,
        }
    }
}

/// The CDN mapping process: the deterministic set of machines a client is
/// mapped to on a given day. Hash-based so a client's mapping is stable
/// within a day but drifts across days, growing the set of machines a
/// retrying client ends up contacting — the phenomenon of footnote 7.
pub fn mapped_machines(
    deployment: &CdnDeployment,
    client_src: u128,
    day: u64,
    count: usize,
) -> Vec<u128> {
    let machines = deployment.machines();
    if machines.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(count);
    let mut h = client_src ^ (u128::from(day) << 64) ^ 0x6d61_7070;
    for _ in 0..count {
        // splitmix-style step.
        h = h
            .wrapping_mul(0x9e37_79b9_7f4a_7c15_9e37_79b9_7f4a_7c15)
            .wrapping_add(0x5851_f42d_4c95_7f2d);
        let idx = ((h >> 64) as usize) % machines.len();
        out.push(machines[idx].client_facing);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Generates the artifact mix for the day range `[day_start, day_end)`.
///
/// Sources are minted fresh per day from residential-looking /64s outside
/// the CDN space (high bits 0x26xx, eyeball-style), so day-over-day they
/// look like a churning population.
pub fn generate(
    deployment: &CdnDeployment,
    config: &ArtifactConfig,
    day_start: u64,
    day_end: u64,
    seed: u64,
) -> Vec<PacketRecord> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa27f_ac75);
    let mut out = Vec::new();
    for day in day_start..day_end {
        let t0 = day * DAY_MS;
        for kind in 0..3 {
            let (count, proto, dport, len) = match kind {
                0 => (config.smtp_sources_per_day, Transport::Tcp, 25u16, 80u16),
                1 => (config.isakmp_sources_per_day, Transport::Udp, 500, 120),
                _ => (config.netbios_sources_per_day, Transport::Udp, 137, 92),
            };
            for _ in 0..count {
                // Residential-looking source /64 with a random host IID.
                let net64: u64 = 0x2600_0000_0000_0000 | (rng.gen::<u64>() & 0x00ff_ffff_ffff_0000);
                let src = ((net64 as u128) << 64) | u128::from(rng.gen::<u64>());
                let dsts = mapped_machines(deployment, src, day, config.mapped_machines);
                // Retries spread over the day.
                for dst in dsts {
                    let base = t0 + rng.gen_range(0..4 * HOUR_MS);
                    for k in 0..config.retries_per_dst {
                        let ts = base + k * rng.gen_range(60_000u64..120_000);
                        out.push(PacketRecord {
                            ts_ms: ts.min(t0 + DAY_MS - 1),
                            src,
                            dst,
                            proto,
                            sport: rng.gen_range(1024..65535),
                            dport,
                            len,
                        });
                    }
                }
            }
        }
    }
    lumen6_trace::sort_by_time(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;
    use lumen6_detect::{ArtifactFilter, ScanDetectorConfig};
    use lumen6_netmodel::InternetRegistry;

    fn deployment() -> CdnDeployment {
        let mut reg = InternetRegistry::new();
        CdnDeployment::build(&DeploymentConfig::tiny(), &mut reg, 1)
    }

    #[test]
    fn mapping_is_deterministic_and_bounded() {
        let dep = deployment();
        let a = mapped_machines(&dep, 42, 3, 8);
        let b = mapped_machines(&dep, 42, 3, 8);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 8);
        assert!(a.iter().all(|&d| dep.is_telescope_addr(d)));
    }

    #[test]
    fn mapping_drifts_across_days() {
        let dep = deployment();
        let d3 = mapped_machines(&dep, 42, 3, 8);
        let d4 = mapped_machines(&dep, 42, 4, 8);
        assert_ne!(d3, d4);
    }

    #[test]
    fn generated_artifacts_hit_telescope_on_artifact_ports() {
        let dep = deployment();
        let recs = generate(&dep, &ArtifactConfig::default(), 0, 2, 7);
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| dep.is_telescope_addr(r.dst)));
        assert!(recs.iter().all(|r| matches!(
            (r.proto, r.dport),
            (Transport::Tcp, 25) | (Transport::Udp, 500) | (Transport::Udp, 137)
        )));
        // Time-sorted and inside the window.
        assert!(recs.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        assert!(recs.iter().all(|r| r.ts_ms < 2 * DAY_MS));
    }

    #[test]
    fn artifact_filter_removes_the_bulk() {
        let dep = deployment();
        let recs = generate(&dep, &ArtifactConfig::default(), 0, 2, 7);
        let (kept, report) = ArtifactFilter::default().filter(&recs);
        assert!(
            report.removed_fraction() > 0.9,
            "only {}% removed",
            report.removed_fraction() * 100.0
        );
        assert!(kept.len() < recs.len() / 10);
        // The dominant removed services are the paper's A.1 pair.
        let top: Vec<_> = report.top_services(2).iter().map(|(s, _)| *s).collect();
        assert!(top.contains(&(Transport::Udp, 500)) || top.contains(&(Transport::Tcp, 25)));
    }

    #[test]
    fn artifacts_do_not_register_as_large_scale_scans() {
        // Even WITHOUT the artifact filter, the fan-out of a single artifact
        // source (≈ mapped_machines) stays far below the 100-destination
        // scan threshold; with the filter, nothing remains at all.
        let dep = deployment();
        let recs = generate(&dep, &ArtifactConfig::default(), 0, 1, 7);
        let report = lumen6_detect::detector::detect(&recs, ScanDetectorConfig::default());
        assert_eq!(report.scans(), 0);
    }

    #[test]
    fn empty_day_range_yields_nothing() {
        let dep = deployment();
        assert!(generate(&dep, &ArtifactConfig::default(), 5, 5, 7).is_empty());
    }
}
