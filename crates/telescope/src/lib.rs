//! CDN firewall telescope simulator.
//!
//! The paper's primary vantage point is the firewall of ~230,000 CDN
//! machines in over 700 ASes, logging unsolicited IPv6 packets on all ports
//! except TCP/80 and TCP/443 (and excluding ICMPv6). Each machine carries
//! *client-facing* addresses (returned in DNS responses) and *non
//! client-facing* addresses (never exposed via DNS), and a subset of the
//! telescope consists of 160,000 in-DNS / not-in-DNS address *pairs* that
//! are close in address space (often within a /123) — the instrument behind
//! the paper's targeting analysis (§3.3).
//!
//! This crate reproduces that instrument at configurable scale:
//!
//! - [`deployment::CdnDeployment`]: machines, their addresses, the DNS
//!   exposure registry, and the paired-address subset.
//! - [`capture::FirewallCapture`]: the capture filter (destination must be a
//!   telescope address; TCP/80, TCP/443 and ICMPv6 are dropped).
//! - [`artifacts`]: generators for the connection artifacts the paper has
//!   to filter out — SMTP fallback deliveries, IPsec/ISAKMP retries,
//!   NetBIOS-style chatter — which reach *many* machines because the CDN
//!   mapping process maps a client to a growing set of machines over time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod capture;
pub mod deployment;

pub use capture::{CaptureConfig, FirewallCapture};
pub use deployment::{CdnDeployment, DeploymentConfig};
