//! The CDN deployment: machines, addresses, DNS exposure, paired subset.

use lumen6_addr::{gen, Ipv6Prefix};
use lumen6_netmodel::{AsType, InternetRegistry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Scale and shape of the simulated CDN deployment.
///
/// The paper's real deployment (≈230,000 machines, >700 ASes, 160,000 DNS
/// address pairs) is scaled down by default to keep experiments fast; the
/// default is 1/100 scale. All structure is preserved: per-machine
/// client-facing and non-client-facing addresses, and a paired subset where
/// the two addresses of a pair sit within the same /123.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Number of CDN machines.
    pub machines: usize,
    /// Number of distinct hosting ASes machines are spread over.
    pub ases: usize,
    /// Number of in-DNS / not-in-DNS address pairs (the §3.3 instrument).
    pub dns_pairs: usize,
    /// Base ASN for the CDN hosting networks.
    pub base_asn: u32,
    /// Allocation slot base in the netmodel address plan (keeps CDN space
    /// disjoint from scanner-source space).
    pub base_slot: u32,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            machines: 2_300,
            ases: 70,
            dns_pairs: 1_600,
            base_asn: 20_000,
            base_slot: 5_000,
        }
    }
}

impl DeploymentConfig {
    /// A tiny deployment for unit tests.
    pub fn tiny() -> Self {
        DeploymentConfig {
            machines: 50,
            ases: 5,
            dns_pairs: 20,
            ..Default::default()
        }
    }
}

/// One CDN machine: a client-facing address (exposed via DNS) and a non
/// client-facing address (never in DNS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    /// Hosting AS.
    pub asn: u32,
    /// Client-facing address (in DNS).
    pub client_facing: u128,
    /// Non client-facing address (not in DNS).
    pub non_client_facing: u128,
}

/// The built deployment: the telescope.
#[derive(Debug, Clone)]
pub struct CdnDeployment {
    machines: Vec<Machine>,
    telescope: HashSet<u128>,
    in_dns: HashSet<u128>,
    pairs: Vec<(u128, u128)>,
    as_prefixes: Vec<(u32, Ipv6Prefix)>,
}

impl CdnDeployment {
    /// Builds a deterministic deployment, registering the hosting ASes and
    /// their prefixes in `registry`.
    pub fn build(config: &DeploymentConfig, registry: &mut InternetRegistry, seed: u64) -> Self {
        assert!(config.ases > 0, "need at least one hosting AS");
        assert!(config.machines >= config.ases, "fewer machines than ASes");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xcd15_cd15);

        // Hosting networks: one /32 per AS.
        let mut as_prefixes = Vec::with_capacity(config.ases);
        for i in 0..config.ases {
            let asn = config.base_asn + i as u32;
            let prefix = registry.register_with_allocation(
                asn,
                AsType::Cdn,
                "global",
                &format!("cdn-host-{i}"),
                config.base_slot + i as u32,
            );
            let prefix = prefix.expect("deployment slots fit the /32 allocation layout");
            as_prefixes.push((asn, prefix));
        }

        let mut machines = Vec::with_capacity(config.machines);
        let mut telescope = HashSet::with_capacity(config.machines * 2);
        let mut in_dns = HashSet::with_capacity(config.machines);
        for m in 0..config.machines {
            let (asn, net) = as_prefixes[m % as_prefixes.len()];
            // Each machine gets its own /64 inside the hosting /32; the two
            // addresses live in that /64 with server-like low IIDs.
            let m64 = net
                .nth_subnet(64, (m / as_prefixes.len()) as u128 + 1)
                .expect("machine subnet fits");
            let net64 = (m64.bits() >> 64) as u64;
            let client_facing = gen::low_byte_addr(&mut rng, net64);
            let mut non_client_facing = gen::low_weight_iid(&mut rng, net64, 6);
            while non_client_facing == client_facing {
                non_client_facing = gen::low_weight_iid(&mut rng, net64, 6);
            }
            machines.push(Machine {
                asn,
                client_facing,
                non_client_facing,
            });
            telescope.insert(client_facing);
            telescope.insert(non_client_facing);
            in_dns.insert(client_facing);
        }

        // Paired subset: one in-DNS address and one not-in-DNS address that
        // sit within the same /123 (the two differ only in the low 5 bits).
        let mut pairs = Vec::with_capacity(config.dns_pairs);
        for p in 0..config.dns_pairs {
            let (_, net) = as_prefixes[p % as_prefixes.len()];
            // Dedicated /64s past the machine range to avoid collisions.
            let p64 = net
                .nth_subnet(64, 1_000_000 + (p / as_prefixes.len()) as u128)
                .expect("pair subnet fits");
            let net64 = (p64.bits() >> 64) as u64;
            let exposed = gen::low_byte_addr(&mut rng, net64);
            let hidden = gen::nearby_addr(&mut rng, exposed, 5); // same /123
            telescope.insert(exposed);
            telescope.insert(hidden);
            in_dns.insert(exposed);
            pairs.push((exposed, hidden));
        }

        CdnDeployment {
            machines,
            telescope,
            in_dns,
            pairs,
            as_prefixes,
        }
    }

    /// All machines.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Whether `addr` is one of the telescope's addresses.
    pub fn is_telescope_addr(&self, addr: u128) -> bool {
        self.telescope.contains(&addr)
    }

    /// Whether `addr` is exposed via DNS (client-facing or an exposed pair
    /// member).
    pub fn is_in_dns(&self, addr: u128) -> bool {
        self.in_dns.contains(&addr)
    }

    /// The in-DNS / not-in-DNS address pairs (§3.3 instrument).
    pub fn pairs(&self) -> &[(u128, u128)] {
        &self.pairs
    }

    /// Every telescope address, sorted (deterministic iteration).
    pub fn all_addrs(&self) -> Vec<u128> {
        let mut v: Vec<u128> = self.telescope.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The DNS-exposed addresses, sorted — what a hitlist crawler harvesting
    /// DNS would learn about this CDN.
    pub fn dns_hitlist(&self) -> Vec<u128> {
        let mut v: Vec<u128> = self.in_dns.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of telescope addresses.
    pub fn telescope_size(&self) -> usize {
        self.telescope.len()
    }

    /// Hosting ASes and their allocated prefixes.
    pub fn as_prefixes(&self) -> &[(u32, Ipv6Prefix)] {
        &self.as_prefixes
    }

    /// A deterministic pseudo-random sample of `n` DNS-exposed addresses —
    /// what a scanner working from a DNS-derived hitlist would target.
    pub fn sample_hitlist(&self, n: usize, seed: u64) -> Vec<u128> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let all = self.dns_hitlist();
        if all.is_empty() {
            return Vec::new();
        }
        (0..n).map(|_| all[rng.gen_range(0..all.len())]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (CdnDeployment, InternetRegistry) {
        let mut reg = InternetRegistry::new();
        let dep = CdnDeployment::build(&DeploymentConfig::tiny(), &mut reg, 1);
        (dep, reg)
    }

    #[test]
    fn deployment_matches_config() {
        let (dep, _) = build();
        assert_eq!(dep.machines().len(), 50);
        assert_eq!(dep.pairs().len(), 20);
        // Two addresses per machine + two per pair, all distinct.
        assert_eq!(dep.telescope_size(), 50 * 2 + 20 * 2);
        assert_eq!(dep.as_prefixes().len(), 5);
    }

    #[test]
    fn client_facing_in_dns_non_client_facing_not() {
        let (dep, _) = build();
        for m in dep.machines() {
            assert!(dep.is_in_dns(m.client_facing));
            assert!(!dep.is_in_dns(m.non_client_facing));
            assert!(dep.is_telescope_addr(m.client_facing));
            assert!(dep.is_telescope_addr(m.non_client_facing));
        }
    }

    #[test]
    fn pairs_are_close_in_address_space() {
        let (dep, _) = build();
        for &(exposed, hidden) in dep.pairs() {
            assert!(dep.is_in_dns(exposed));
            assert!(!dep.is_in_dns(hidden));
            assert_ne!(exposed, hidden);
            // Within the same /123: only the low 5 bits differ.
            assert_eq!(exposed >> 5, hidden >> 5);
        }
    }

    #[test]
    fn machines_attributable_to_hosting_ases() {
        let (dep, reg) = build();
        for m in dep.machines() {
            assert_eq!(reg.origin_asn(m.client_facing), Some(m.asn));
            assert_eq!(reg.origin_asn(m.non_client_facing), Some(m.asn));
        }
        // Spread over all hosting ASes.
        let distinct: HashSet<u32> = dep.machines().iter().map(|m| m.asn).collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn deterministic_same_seed() {
        let mut r1 = InternetRegistry::new();
        let mut r2 = InternetRegistry::new();
        let a = CdnDeployment::build(&DeploymentConfig::tiny(), &mut r1, 9);
        let b = CdnDeployment::build(&DeploymentConfig::tiny(), &mut r2, 9);
        assert_eq!(a.all_addrs(), b.all_addrs());
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn different_seed_different_addresses() {
        let mut r1 = InternetRegistry::new();
        let mut r2 = InternetRegistry::new();
        let a = CdnDeployment::build(&DeploymentConfig::tiny(), &mut r1, 1);
        let b = CdnDeployment::build(&DeploymentConfig::tiny(), &mut r2, 2);
        assert_ne!(a.all_addrs(), b.all_addrs());
    }

    #[test]
    fn hitlist_is_exactly_dns_exposed() {
        let (dep, _) = build();
        let hitlist = dep.dns_hitlist();
        assert_eq!(hitlist.len(), 50 + 20);
        assert!(hitlist.iter().all(|&a| dep.is_in_dns(a)));
        assert!(hitlist.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_hitlist_draws_from_dns() {
        let (dep, _) = build();
        let sample = dep.sample_hitlist(200, 7);
        assert_eq!(sample.len(), 200);
        assert!(sample.iter().all(|&a| dep.is_in_dns(a)));
        // Deterministic.
        assert_eq!(sample, dep.sample_hitlist(200, 7));
    }

    #[test]
    fn server_style_addresses() {
        // Telescope addresses should have low-Hamming-weight IIDs (they are
        // servers), which is what makes hitlist scanners look structured.
        let (dep, _) = build();
        let mean_w: f64 = dep
            .all_addrs()
            .iter()
            .map(|&a| f64::from(lumen6_addr::hamming_weight_iid(a)))
            .sum::<f64>()
            / dep.telescope_size() as f64;
        assert!(mean_w < 8.0, "mean IID weight {mean_w}");
    }
}
