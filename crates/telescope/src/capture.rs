//! The firewall capture filter (paper §2.1).
//!
//! The CDN firewall logs *unsolicited incoming* packets destined to the
//! telescope's addresses, excluding TCP/80 and TCP/443 (the machines serve
//! real traffic there) and excluding ICMPv6 entirely. This module applies
//! exactly that filter to a generated world-traffic stream, producing the
//! dataset the detection pipeline runs on.

use crate::deployment::CdnDeployment;
use lumen6_trace::{PacketRecord, Transport};
use serde::{Deserialize, Serialize};

/// Which packets the firewall logger keeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureConfig {
    /// TCP destination ports that are served, hence never logged.
    pub served_tcp_ports: Vec<u16>,
    /// Whether ICMPv6 is excluded from collection (true at the CDN; false
    /// for the MAWI-style link vantage).
    pub drop_icmpv6: bool,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            served_tcp_ports: vec![80, 443],
            drop_icmpv6: true,
        }
    }
}

/// Per-run capture statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptureStats {
    /// Packets offered to the filter.
    pub offered: u64,
    /// Packets logged.
    pub logged: u64,
    /// Dropped: destination not a telescope address.
    pub dropped_foreign: u64,
    /// Dropped: served TCP port (80/443).
    pub dropped_served_port: u64,
    /// Dropped: ICMPv6.
    pub dropped_icmpv6: u64,
}

/// The firewall capture filter bound to a deployment.
#[derive(Debug, Clone)]
pub struct FirewallCapture<'a> {
    deployment: &'a CdnDeployment,
    config: CaptureConfig,
}

impl<'a> FirewallCapture<'a> {
    /// Creates a capture filter over the deployment.
    pub fn new(deployment: &'a CdnDeployment, config: CaptureConfig) -> Self {
        FirewallCapture { deployment, config }
    }

    /// Whether a single packet would be logged.
    pub fn logs(&self, r: &PacketRecord) -> bool {
        if self.config.drop_icmpv6 && r.proto == Transport::Icmpv6 {
            return false;
        }
        if r.proto == Transport::Tcp && self.config.served_tcp_ports.contains(&r.dport) {
            return false;
        }
        self.deployment.is_telescope_addr(r.dst)
    }

    /// Filters a stream, returning the logged packets and statistics.
    pub fn capture(&self, records: &[PacketRecord]) -> (Vec<PacketRecord>, CaptureStats) {
        let mut stats = CaptureStats::default();
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            stats.offered += 1;
            if self.config.drop_icmpv6 && r.proto == Transport::Icmpv6 {
                stats.dropped_icmpv6 += 1;
                continue;
            }
            if r.proto == Transport::Tcp && self.config.served_tcp_ports.contains(&r.dport) {
                stats.dropped_served_port += 1;
                continue;
            }
            if !self.deployment.is_telescope_addr(r.dst) {
                stats.dropped_foreign += 1;
                continue;
            }
            stats.logged += 1;
            out.push(*r);
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;
    use lumen6_netmodel::InternetRegistry;

    fn deployment() -> CdnDeployment {
        let mut reg = InternetRegistry::new();
        CdnDeployment::build(&DeploymentConfig::tiny(), &mut reg, 1)
    }

    #[test]
    fn served_ports_are_dropped() {
        let dep = deployment();
        let cap = FirewallCapture::new(&dep, CaptureConfig::default());
        let dst = dep.machines()[0].client_facing;
        assert!(!cap.logs(&PacketRecord::tcp(0, 1, dst, 1, 80, 60)));
        assert!(!cap.logs(&PacketRecord::tcp(0, 1, dst, 1, 443, 60)));
        assert!(cap.logs(&PacketRecord::tcp(0, 1, dst, 1, 22, 60)));
        // UDP on 80/443 IS logged (only TCP is served there).
        assert!(cap.logs(&PacketRecord::udp(0, 1, dst, 1, 443, 60)));
    }

    #[test]
    fn icmpv6_dropped_at_cdn_but_configurable() {
        let dep = deployment();
        let dst = dep.machines()[0].client_facing;
        let cap = FirewallCapture::new(&dep, CaptureConfig::default());
        assert!(!cap.logs(&PacketRecord::icmpv6_echo(0, 1, dst, 96)));
        let link = FirewallCapture::new(
            &dep,
            CaptureConfig {
                drop_icmpv6: false,
                ..Default::default()
            },
        );
        assert!(link.logs(&PacketRecord::icmpv6_echo(0, 1, dst, 96)));
    }

    #[test]
    fn foreign_destinations_dropped() {
        let dep = deployment();
        let cap = FirewallCapture::new(&dep, CaptureConfig::default());
        assert!(!cap.logs(&PacketRecord::tcp(0, 1, 0xdead_beef, 1, 22, 60)));
    }

    #[test]
    fn non_client_facing_addresses_are_part_of_the_telescope() {
        let dep = deployment();
        let cap = FirewallCapture::new(&dep, CaptureConfig::default());
        let hidden = dep.machines()[0].non_client_facing;
        assert!(cap.logs(&PacketRecord::tcp(0, 1, hidden, 1, 8080, 60)));
    }

    #[test]
    fn stats_account_for_every_packet() {
        let dep = deployment();
        let cap = FirewallCapture::new(&dep, CaptureConfig::default());
        let dst = dep.machines()[0].client_facing;
        let records = vec![
            PacketRecord::tcp(0, 1, dst, 1, 22, 60),     // logged
            PacketRecord::tcp(1, 1, dst, 1, 80, 60),     // served port
            PacketRecord::icmpv6_echo(2, 1, dst, 96),    // icmpv6
            PacketRecord::tcp(3, 1, 0xdead, 1, 22, 60),  // foreign
            PacketRecord::udp(4, 1, dst, 500, 500, 120), // logged
        ];
        let (logged, stats) = cap.capture(&records);
        assert_eq!(logged.len(), 2);
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.logged, 2);
        assert_eq!(stats.dropped_served_port, 1);
        assert_eq!(stats.dropped_icmpv6, 1);
        assert_eq!(stats.dropped_foreign, 1);
        assert_eq!(
            stats.logged + stats.dropped_foreign + stats.dropped_icmpv6 + stats.dropped_served_port,
            stats.offered
        );
    }
}
