//! Fused generation: a [`Source`] that synthesizes the firewall-logged CDN
//! trace directly from the fleet actors, in timestamp order, without ever
//! materializing the trace.
//!
//! [`World::cdn_trace`] expands every actor's full packet stream in memory,
//! merges, and filters — at paper scale (intensity ≥ 100×) that intermediate
//! trace runs to tens of gigabytes before the first record reaches a
//! detector. [`FleetSource`] produces the *identical* record sequence
//! incrementally: each actor holds only its not-yet-releasable packets
//! (roughly the one or two scanning sessions overlapping the merge
//! frontier), so peak memory is bounded by per-session packet budgets, not
//! by the trace length.
//!
//! # Equivalence
//!
//! The output is byte-identical to
//! `FirewallCapture::capture(merge_sorted(actor streams ++ artifacts ++
//! noise))` for the same [`FleetConfig`]:
//!
//! - Each actor's stream replays [`ScannerActor::generate_scaled`]
//!   draw-for-draw (same RNG seeding, same session expansion, same
//!   per-probe sampling order, same per-probe intensity repeats), and
//!   reproduces its stable time-sort with a (timestamp, emission index)
//!   heap — repeats of one probe are run-length-encoded in a single heap
//!   entry, so actor-side buffering does not grow with intensity. A packet
//!   is releasable once every not-yet-expanded session starts at or after
//!   its timestamp: later sessions can only contribute equal-or-later
//!   timestamps with larger emission indices, which a stable sort orders
//!   after it anyway.
//! - The cross-stream merge uses the same (timestamp, stream index) key as
//!   [`lumen6_trace::merge_sorted`], with actors at their fleet indices
//!   followed by the artifact and noise streams — the exact order
//!   `cdn_trace` pushes them.
//! - The capture filter is [`FirewallCapture::logs`] itself, applied
//!   per record.
//!
//! The artifact and noise streams *are* materialized up front: their
//! generators are opaque to this module and their size is independent of
//! `intensity`, so they do not affect the bounded-memory claim.
//!
//! # Positions
//!
//! [`Source::position`] offsets are *delivered* (post-filter) record
//! indices. [`Source::resume`] rebuilds the generators from the world's
//! seed and replays — generation is cheap relative to detection, and a
//! checkpoint resume happens at most once per run. Replayed packets are
//! re-counted by the `scanners.fleet.packets_emitted.*` telemetry, which
//! counts generation work actually performed in this process.

use crate::actor::ScannerActor;
use crate::fleet::World;
use crate::noise;
use lumen6_telescope::{artifacts, CaptureConfig, FirewallCapture};
use lumen6_trace::{CodecError, PacketRecord, RecordBatch, Source, TracePosition, Transport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::io;

/// A generated probe waiting in an actor's release heap. Ordered by
/// (timestamp, emission index) — exactly the order a stable time-sort of
/// the fully materialized stream would produce. Intensity repeats of one
/// probe are run-length-encoded in `reps` rather than stored as separate
/// entries: all copies share the timestamp and occupy consecutive emission
/// indices (`idx` is the first), so delivering them back-to-back from a
/// single entry reproduces the materialized order while keeping heap
/// memory intensity-invariant.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    ts: u64,
    idx: u64,
    /// Remaining copies to deliver (≥ 1 while queued).
    reps: u64,
    rec: PacketRecord,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.idx == other.idx
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.ts, self.idx).cmp(&(other.ts, other.idx))
    }
}

/// One actor's incremental packet generator.
///
/// Sessions are drawn eagerly at construction (they must be: the session
/// draws and the packet draws share one RNG, in that order), but packets
/// are expanded one session at a time, on demand.
#[derive(Debug, Clone)]
pub(crate) struct ActorStream {
    rng: SmallRng,
    /// Volume multiplier, applied per session at expansion time exactly as
    /// [`ScannerActor::generate_scaled`] applies it.
    intensity: f64,
    sessions: Vec<crate::actor::Session>,
    /// `suffix_min_start[i]` = earliest `start_ms` among `sessions[i..]`
    /// (`u64::MAX` past the end): the release horizon while `next_session
    /// == i`. No future packet can have a smaller timestamp.
    suffix_min_start: Vec<u64>,
    next_session: usize,
    emit_idx: u64,
    pub(crate) heap: BinaryHeap<Reverse<Pending>>,
    targets_buf: Vec<u128>,
}

impl ActorStream {
    /// Seeds the RNG and draws the session list exactly as
    /// [`ScannerActor::generate`] does.
    pub(crate) fn new(actor: &ScannerActor, seed: u64, intensity: f64) -> ActorStream {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a, as in generate()
        for b in actor.name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(actor.asn) << 32) ^ h);
        let sessions = actor.schedule.sessions(&mut rng);
        let mut suffix_min_start = vec![u64::MAX; sessions.len() + 1];
        for i in (0..sessions.len()).rev() {
            suffix_min_start[i] = suffix_min_start[i + 1].min(sessions[i].start_ms);
        }
        ActorStream {
            rng,
            intensity,
            sessions,
            suffix_min_start,
            next_session: 0,
            emit_idx: 0,
            heap: BinaryHeap::new(),
            targets_buf: Vec::with_capacity(2),
        }
    }

    /// Expands the next session's packets into the release heap, consuming
    /// RNG draws in exactly the order [`ScannerActor::generate_scaled`]
    /// does: the probe footprint is drawn at the base rate, and intensity
    /// repeats are distributed per probe (Bresenham) so the session total
    /// is exactly `scale_intensity(packets, intensity)`.
    fn expand_next_session(&mut self, actor: &ScannerActor) {
        let s = self.sessions[self.next_session];
        self.next_session += 1;
        let scaled = crate::fleet::scale_intensity(s.packets, self.intensity);
        let mut drawn = 0u64;
        let mut emitted = 0u64;
        while drawn < s.packets {
            self.targets_buf.clear();
            actor.targets.sample(&mut self.rng, &mut self.targets_buf);
            let base = s.start_ms + self.rng.gen_range(0..s.duration_ms);
            for (k, &dst) in self.targets_buf.iter().enumerate() {
                if drawn >= s.packets {
                    break;
                }
                let ts = base + (k as u64) * self.rng.gen_range(50u64..2_000);
                let (proto, dport) = actor.ports.sample(&mut self.rng, ts);
                let rec = PacketRecord {
                    ts_ms: ts,
                    src: actor.sources.sample(&mut self.rng, ts),
                    dst,
                    proto,
                    sport: if proto == Transport::Icmpv6 {
                        128
                    } else {
                        self.rng.gen_range(32_768..61_000)
                    },
                    dport,
                    len: actor.probe_len,
                };
                drawn += 1;
                let due = crate::fleet::emission_due(scaled, s.packets, drawn);
                let reps = due - emitted;
                if reps > 0 {
                    self.heap.push(Reverse(Pending {
                        ts,
                        idx: self.emit_idx,
                        reps,
                        rec,
                    }));
                    self.emit_idx += reps;
                }
                emitted = due;
            }
        }
    }

    /// Timestamp of this actor's next packet, expanding sessions until the
    /// heap top is confirmed releasable. `None` once exhausted.
    pub(crate) fn peek_ts(&mut self, actor: &ScannerActor) -> Option<u64> {
        loop {
            let horizon = self.suffix_min_start[self.next_session];
            match self.heap.peek() {
                Some(Reverse(p)) if p.ts <= horizon => return Some(p.ts),
                _ if self.next_session == self.sessions.len() => return None,
                _ => self.expand_next_session(actor),
            }
        }
    }

    /// Pops this actor's next packet (after confirming it, as
    /// [`peek_ts`](ActorStream::peek_ts) does). Delivers one copy of the
    /// top entry, dequeuing it only once its repeats are exhausted; the
    /// heap key is unchanged while copies remain, so the entry stays on
    /// top for the adjacent duplicates a stable sort would produce.
    pub(crate) fn pop(&mut self, actor: &ScannerActor) -> Option<PacketRecord> {
        self.peek_ts(actor)?;
        let mut top = self.heap.peek_mut()?;
        if top.0.reps > 1 {
            top.0.reps -= 1;
            Some(top.0.rec)
        } else {
            Some(std::collections::binary_heap::PeekMut::pop(top).0.rec)
        }
    }
}

/// Delivery cursor over a fixed (artifact or noise) stream: the stream is
/// materialized at its base (1×) size and intensity repeats are applied at
/// delivery time, mirroring the per-record repetition `cdn_trace` bakes
/// into the materialized trace. Invariant outside of delivery: either
/// `pos` is past the end, or `rem > 0` copies of `stream[pos]` remain due.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FixedCursor {
    pub(crate) pos: usize,
    pub(crate) rem: u64,
}

impl FixedCursor {
    /// Re-establishes the invariant after `rem` hits zero (or at init):
    /// advances `pos` past records whose repeat count is zero (fractional
    /// intensities drop records) and loads the next record's count.
    pub(crate) fn normalize(&mut self, base: u64, scaled: u64) {
        while self.rem == 0 && (self.pos as u64) < base {
            let i = self.pos as u64;
            self.rem = crate::fleet::emission_due(scaled, base, i + 1)
                - crate::fleet::emission_due(scaled, base, i);
            if self.rem == 0 {
                self.pos += 1;
            }
        }
    }
}

/// Materializes the fixed (artifact, noise) streams of a world at their
/// base (1×) size — shared between [`FleetSource`] and
/// [`crate::ParallelFleetSource`], whose cursors apply intensity repeats
/// at delivery time.
pub(crate) fn fixed_streams(world: &World) -> [Vec<PacketRecord>; 2] {
    let cfg = world.config();
    [
        artifacts::generate(
            &world.deployment,
            &cfg.artifacts,
            cfg.start_day,
            cfg.end_day,
            cfg.seed,
        ),
        noise::generate(
            &world.deployment.all_addrs(),
            cfg.noise_sources_per_day,
            cfg.start_day,
            cfg.end_day,
            cfg.seed,
        ),
    ]
}

/// A [`Source`] that generates the firewall-logged CDN trace of a [`World`]
/// on the fly. See the module docs for the equivalence argument and the
/// position semantics.
#[derive(Debug)]
pub struct FleetSource {
    world: World,
    capture: CaptureConfig,
    streams: Vec<ActorStream>,
    /// Materialized artifact and noise streams (base size — intensity
    /// repeats are applied by the cursors, so memory stays invariant).
    fixed: [Vec<PacketRecord>; 2],
    /// Scaled delivery totals for the fixed streams.
    fixed_scaled: [u64; 2],
    fixed_cur: [FixedCursor; 2],
    /// K-way merge frontier: (next timestamp, stream index), actors first,
    /// then artifacts, then noise — the `merge_sorted` key and order.
    merge: BinaryHeap<Reverse<(u64, usize)>>,
    delivered: u64,
    prev_ts: u64,
    /// Pre-filter emission counters (`scanners.fleet.packets_emitted.*`),
    /// one per distinct target-strategy kind plus artifacts and noise.
    counters: Vec<lumen6_obs::Counter>,
    /// Stream index → index into `counters`.
    counter_of_stream: Vec<usize>,
    /// Per-fill local accumulation, flushed to `counters` once per call.
    pending_counts: Vec<u64>,
}

impl FleetSource {
    /// Builds a fused source over `world` with the default capture filter
    /// (the same [`CaptureConfig`] [`World::cdn_trace`] applies).
    pub fn new(world: World) -> FleetSource {
        FleetSource::with_capture(world, CaptureConfig::default())
    }

    /// Builds a fused source with an explicit capture filter.
    pub fn with_capture(world: World, capture: CaptureConfig) -> FleetSource {
        use rayon::prelude::*;
        let cfg = world.config().clone();
        let streams: Vec<ActorStream> = world
            .fleet
            .actors
            .par_iter()
            .map(|a| ActorStream::new(a, cfg.seed, cfg.intensity))
            .collect();
        let fixed = fixed_streams(&world);
        let reg = lumen6_obs::MetricsRegistry::global();
        let mut counters = Vec::new();
        let mut index_of: std::collections::BTreeMap<&'static str, usize> = Default::default();
        let mut counter_of_stream = Vec::with_capacity(streams.len() + 2);
        for a in &world.fleet.actors {
            let kind = a.targets.kind();
            let idx = *index_of.entry(kind).or_insert_with(|| {
                counters.push(reg.counter(&format!("scanners.fleet.packets_emitted.{kind}")));
                counters.len() - 1
            });
            counter_of_stream.push(idx);
        }
        counters.push(reg.counter("scanners.fleet.packets_emitted.artifacts"));
        counter_of_stream.push(counters.len() - 1);
        counters.push(reg.counter("scanners.fleet.packets_emitted.noise"));
        counter_of_stream.push(counters.len() - 1);
        let pending_counts = vec![0; counters.len()];
        let fixed_scaled = [
            crate::fleet::scale_intensity(fixed[0].len() as u64, cfg.intensity),
            crate::fleet::scale_intensity(fixed[1].len() as u64, cfg.intensity),
        ];
        let mut src = FleetSource {
            world,
            capture,
            streams,
            fixed,
            fixed_scaled,
            fixed_cur: [FixedCursor::default(), FixedCursor::default()],
            merge: BinaryHeap::new(),
            delivered: 0,
            prev_ts: 0,
            counters,
            counter_of_stream,
            pending_counts,
        };
        src.prime_merge();
        src
    }

    /// The world this source generates from.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Records delivered (post-filter) so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// (Re)initializes the merge frontier from the current stream states.
    fn prime_merge(&mut self) {
        let FleetSource {
            world,
            streams,
            fixed,
            fixed_scaled,
            fixed_cur,
            merge,
            ..
        } = self;
        merge.clear();
        for (i, s) in streams.iter_mut().enumerate() {
            if let Some(ts) = s.peek_ts(&world.fleet.actors[i]) {
                merge.push(Reverse((ts, i)));
            }
        }
        for (fi, stream) in fixed.iter().enumerate() {
            fixed_cur[fi].normalize(stream.len() as u64, fixed_scaled[fi]);
            if let Some(r) = stream.get(fixed_cur[fi].pos) {
                merge.push(Reverse((r.ts_ms, streams.len() + fi)));
            }
        }
    }

    /// Rewinds to the beginning: regenerates every actor stream (same seed,
    /// same draws) and resets the merge frontier.
    fn rewind(&mut self) {
        use rayon::prelude::*;
        let seed = self.world.config().seed;
        let intensity = self.world.config().intensity;
        self.streams = self
            .world
            .fleet
            .actors
            .par_iter()
            .map(|a| ActorStream::new(a, seed, intensity))
            .collect();
        self.fixed_cur = [FixedCursor::default(), FixedCursor::default()];
        self.delivered = 0;
        self.prev_ts = 0;
        self.prime_merge();
    }

    /// Produces up to `max` *logged* records, appending to `out` when
    /// given (resume-skip passes `None` and discards). Returns how many
    /// logged records were produced; fewer than `max` means end of stream.
    fn produce(&mut self, mut out: Option<&mut RecordBatch>, max: usize) -> usize {
        let FleetSource {
            world,
            capture,
            streams,
            fixed,
            fixed_scaled,
            fixed_cur,
            merge,
            delivered,
            prev_ts,
            counters,
            counter_of_stream,
            pending_counts,
        } = self;
        let filter = FirewallCapture::new(&world.deployment, capture.clone());
        let mut produced = 0usize;
        while produced < max {
            let Some(Reverse((_, si))) = merge.pop() else {
                break;
            };
            let rec = if si < streams.len() {
                let actor = &world.fleet.actors[si];
                let Some(r) = streams[si].pop(actor) else {
                    continue; // unreachable: frontier entries are confirmed
                };
                if let Some(ts) = streams[si].peek_ts(actor) {
                    merge.push(Reverse((ts, si)));
                }
                r
            } else {
                let fi = si - streams.len();
                let cur = &mut fixed_cur[fi];
                let Some(&r) = fixed[fi].get(cur.pos) else {
                    continue; // unreachable, as above
                };
                cur.rem -= 1;
                if cur.rem == 0 {
                    cur.pos += 1;
                    cur.normalize(fixed[fi].len() as u64, fixed_scaled[fi]);
                }
                if let Some(next) = fixed[fi].get(cur.pos) {
                    merge.push(Reverse((next.ts_ms, si)));
                }
                r
            };
            pending_counts[counter_of_stream[si]] += 1;
            if filter.logs(&rec) {
                produced += 1;
                *delivered += 1;
                *prev_ts = rec.ts_ms;
                if let Some(batch) = out.as_deref_mut() {
                    batch.push(rec);
                }
            }
        }
        for (c, n) in counters.iter().zip(pending_counts.iter_mut()) {
            if *n > 0 {
                c.add(*n);
                *n = 0;
            }
        }
        produced
    }
}

impl Source for FleetSource {
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError> {
        out.clear();
        Ok(self.produce(Some(out), max))
    }

    fn position(&self) -> TracePosition {
        TracePosition {
            offset: self.delivered,
            prev_ts: self.prev_ts,
        }
    }

    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError> {
        self.rewind();
        let mut remaining = at.offset;
        while remaining > 0 {
            let step = usize::try_from(remaining).unwrap_or(usize::MAX).min(65_536);
            let n = self.produce(None, step);
            if n == 0 {
                return Err(CodecError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "resume offset {} beyond fleet stream of {} records",
                        at.offset, self.delivered
                    ),
                )));
            }
            remaining -= n as u64;
        }
        if at.offset > 0 && self.prev_ts != at.prev_ts {
            return Err(CodecError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "resume timestamp mismatch at offset {}: checkpoint recorded {} but the \
                     regenerated stream has {} (was the checkpoint taken against a different \
                     seed or fleet configuration?)",
                    at.offset, at.prev_ts, self.prev_ts
                ),
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use lumen6_telescope::DeploymentConfig;
    use proptest::prelude::*;

    fn tiny_config(seed: u64, intensity: f64, end_day: u64) -> FleetConfig {
        FleetConfig {
            seed,
            intensity,
            end_day,
            ..FleetConfig::small()
        }
    }

    fn drain(src: &mut FleetSource, max: usize) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        let mut batch = RecordBatch::new();
        loop {
            let n = src.fill(&mut batch, max).expect("fleet fill is infallible");
            if n == 0 {
                break;
            }
            out.extend(batch.iter());
        }
        out
    }

    #[test]
    fn fused_stream_is_byte_identical_to_materialized_cdn_trace() {
        let cfg = tiny_config(42, 1.0, 14);
        let expected = World::build(cfg.clone()).cdn_trace();
        assert!(expected.len() > 1_000, "trace too small to be meaningful");
        for max in [1, 97, 4096] {
            let mut src = FleetSource::new(World::build(cfg.clone()));
            assert_eq!(drain(&mut src, max), expected, "batch max={max}");
        }
    }

    #[test]
    fn fused_stream_matches_at_fractional_and_high_intensity() {
        for intensity in [0.3, 10.0] {
            let cfg = tiny_config(7, intensity, 7);
            let expected = World::build(cfg.clone()).cdn_trace();
            let mut src = FleetSource::new(World::build(cfg.clone()));
            assert_eq!(drain(&mut src, 512), expected, "intensity={intensity}");
        }
    }

    #[test]
    fn position_resume_continues_exactly() {
        let cfg = tiny_config(42, 1.0, 10);
        let full = {
            let mut src = FleetSource::new(World::build(cfg.clone()));
            drain(&mut src, 256)
        };
        assert!(full.len() > 500);
        let mut src = FleetSource::new(World::build(cfg.clone()));
        let mut batch = RecordBatch::new();
        let mut head = Vec::new();
        for _ in 0..3 {
            src.fill(&mut batch, 200).expect("fill");
            head.extend(batch.iter());
        }
        let pos = src.position();
        assert_eq!(pos.offset, 600);
        assert_eq!(pos.prev_ts, head.last().map_or(0, |r| r.ts_ms));
        // A brand-new source over a freshly built world resumes exactly.
        let mut fresh = FleetSource::new(World::build(cfg));
        fresh.resume(pos).expect("resume");
        head.extend(drain(&mut fresh, 333));
        assert_eq!(head, full);
    }

    #[test]
    fn resume_rejects_foreign_positions() {
        let cfg = tiny_config(42, 1.0, 7);
        let mut src = FleetSource::new(World::build(cfg.clone()));
        let n = drain(&mut src, 512).len() as u64;
        // Beyond the end of the stream.
        let mut s2 = FleetSource::new(World::build(cfg.clone()));
        assert!(s2
            .resume(TracePosition {
                offset: n + 1,
                prev_ts: 0,
            })
            .is_err());
        // Timestamp that contradicts the regenerated stream (e.g. a
        // checkpoint from a different seed).
        let mut s3 = FleetSource::new(World::build(cfg));
        assert!(s3
            .resume(TracePosition {
                offset: 10,
                prev_ts: u64::MAX,
            })
            .is_err());
    }

    #[test]
    fn peak_buffered_records_do_not_scale_with_trace_length() {
        // The streaming property that motivates the fused source: the
        // release heaps hold only the sessions overlapping the merge
        // frontier, so peak buffering is set by *concurrent* session
        // budgets, not by how many days the trace spans. Tripling the
        // window must not come close to tripling the peak.
        fn run(end_day: u64) -> (usize, u64) {
            let mut src = FleetSource::new(World::build(tiny_config(42, 1.0, end_day)));
            let mut batch = RecordBatch::new();
            let mut peak = 0usize;
            while src.fill(&mut batch, 1024).expect("fill") > 0 {
                let held: usize = src.streams.iter().map(|s| s.heap.len()).sum();
                peak = peak.max(held);
            }
            (peak, src.delivered())
        }
        let (peak_short, total_short) = run(14);
        let (peak_long, total_long) = run(42);
        assert!(
            total_long > total_short * 2,
            "window did not grow the trace: {total_short} → {total_long}"
        );
        assert!(
            peak_long < peak_short * 2,
            "peak buffering scaled with trace length: {peak_short} → {peak_long} \
             while the trace grew {total_short} → {total_long}"
        );
    }

    #[test]
    fn peak_buffered_entries_are_intensity_invariant() {
        // Intensity repeats are run-length-encoded in the release heaps:
        // driving the volume 25x must not change the number of buffered
        // entries at all (the footprint — and so the entry set — is
        // intensity-invariant by construction).
        // Single-record fills so every heap state is observed: the peak is
        // then an exact property of the entry sequence, not of where batch
        // boundaries happen to fall.
        fn run(intensity: f64) -> (usize, u64) {
            let mut src = FleetSource::new(World::build(tiny_config(42, intensity, 7)));
            let mut batch = RecordBatch::new();
            let mut peak = 0usize;
            while src.fill(&mut batch, 1).expect("fill") > 0 {
                let held: usize = src.streams.iter().map(|s| s.heap.len()).sum();
                peak = peak.max(held);
            }
            (peak, src.delivered())
        }
        let (peak_1x, total_1x) = run(1.0);
        let (peak_25x, total_25x) = run(25.0);
        assert!(
            total_25x > total_1x * 20,
            "volume did not scale: {total_1x} → {total_25x}"
        );
        // A partially-delivered entry stays resident until its last copy
        // (at 1x it would already be popped), so allow exactly that one.
        assert!(
            peak_25x <= peak_1x + 1,
            "heap entries must not scale with intensity: {peak_1x} → {peak_25x}"
        );
    }

    proptest! {
        /// Differential: for arbitrary seeds, intensities, and batch
        /// sizes, the fused stream is byte-identical to the materialized
        /// `cdn_trace()` of the same configuration.
        #[test]
        fn fused_matches_materialized_for_arbitrary_configs(
            seed in 0u64..1_000,
            intensity_milli in prop_oneof![Just(100u64), Just(800), Just(1_000), Just(3_000)],
            max in prop_oneof![Just(1usize), Just(64), Just(8_192)],
        ) {
            let cfg = FleetConfig {
                seed,
                intensity: intensity_milli as f64 / 1_000.0,
                end_day: 4,
                deployment: DeploymentConfig {
                    machines: 40,
                    ases: 5,
                    dns_pairs: 25,
                    ..Default::default()
                },
                noise_sources_per_day: 4,
                ..FleetConfig::small()
            };
            let expected = World::build(cfg.clone()).cdn_trace();
            let mut src = FleetSource::new(World::build(cfg));
            prop_assert_eq!(drain(&mut src, max), expected);
        }
    }
}
