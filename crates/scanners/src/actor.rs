//! The scanner actor: samplers plus a temporal schedule, generating a
//! packet stream.

use crate::fleet::{emission_due, scale_intensity};
use crate::samplers::{PortSampler, SourceSampler, TargetSampler};
use lumen6_trace::{PacketRecord, DAY_MS, HOUR_MS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// When an actor scans, and how hard.
///
/// Activity is organized in *sessions*: contiguous scanning episodes of
/// `session_hours`, with packets spread uniformly inside. Between sessions
/// the actor is silent, so with the paper's one-hour inter-arrival timeout
/// each session resolves into (at most) one scan event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// First active day (index from the epoch).
    pub start_day: u64,
    /// One past the last active day.
    pub end_day: u64,
    /// Expected scanning sessions per week (Poisson-ish via per-day
    /// Bernoulli draws; values ≥ 7 mean one session every day, plus
    /// extras).
    pub sessions_per_week: f64,
    /// Session length in hours.
    pub session_hours: f64,
    /// Packets emitted per session.
    pub packets_per_session: u64,
    /// If set, sessions start at exactly this millisecond offset within the
    /// day instead of a random time. Used to coordinate actors that must
    /// scan simultaneously (e.g. two /64s of one /48 whose *combined*
    /// traffic forms a single scan run).
    pub pin_start_ms_in_day: Option<u64>,
}

impl Schedule {
    /// A continuous scanner active every day of `[start_day, end_day)`.
    pub fn continuous(start_day: u64, end_day: u64, packets_per_day: u64) -> Schedule {
        Schedule {
            start_day,
            end_day,
            sessions_per_week: 7.0,
            session_hours: 20.0,
            packets_per_session: packets_per_day,
            pin_start_ms_in_day: None,
        }
    }

    /// A single burst on one day (the MAWI peak events).
    pub fn burst(day: u64, hours: f64, packets: u64) -> Schedule {
        Schedule {
            start_day: day,
            end_day: day + 1,
            sessions_per_week: 7.0,
            session_hours: hours,
            packets_per_session: packets,
            pin_start_ms_in_day: None,
        }
    }

    /// Expands the schedule into concrete sessions.
    pub fn sessions(&self, rng: &mut SmallRng) -> Vec<Session> {
        let mut out = Vec::new();
        let daily_prob = (self.sessions_per_week / 7.0).min(1.0);
        let extra = (self.sessions_per_week / 7.0 - 1.0).max(0.0);
        for day in self.start_day..self.end_day {
            let mut n = u64::from(rng.gen_bool(daily_prob));
            // Fractional surplus beyond one session per day.
            n += extra as u64 + u64::from(rng.gen_bool(extra.fract()));
            for _ in 0..n {
                let span = (self.session_hours * HOUR_MS as f64) as u64;
                let latest_start = DAY_MS.saturating_sub(span.min(DAY_MS)).max(1);
                let offset = match self.pin_start_ms_in_day {
                    Some(pin) => pin.min(latest_start - 1),
                    None => rng.gen_range(0..latest_start),
                };
                let start = day * DAY_MS + offset;
                out.push(Session {
                    start_ms: start,
                    duration_ms: span.max(1),
                    packets: self.packets_per_session,
                });
            }
        }
        out
    }
}

/// One concrete scanning episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    /// Episode start (ms since epoch).
    pub start_ms: u64,
    /// Episode length in ms.
    pub duration_ms: u64,
    /// Packets emitted.
    pub packets: u64,
}

/// A complete scanner actor.
///
/// Serializable: custom fleets can be defined as JSON and fed to the
/// `lumen6 generate custom --fleet` command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScannerActor {
    /// Human-readable name (e.g. `as1-datacenter-cn`).
    pub name: String,
    /// Origin AS number (for ground-truth bookkeeping).
    pub asn: u32,
    /// Source-address strategy.
    pub sources: SourceSampler,
    /// Target-address strategy.
    pub targets: TargetSampler,
    /// Port strategy.
    pub ports: PortSampler,
    /// Temporal schedule.
    pub schedule: Schedule,
    /// Probe packet length (constant per actor — scan probes are uniform,
    /// which is exactly what the MAWI detector's entropy criterion keys on).
    pub probe_len: u16,
}

impl ScannerActor {
    /// Generates this actor's complete packet stream, time-sorted, at the
    /// calibrated (1×) volume.
    ///
    /// Determinism: the stream is a pure function of the actor definition
    /// and `seed`.
    pub fn generate(&self, seed: u64) -> Vec<PacketRecord> {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates the packet stream with emitted volume scaled by
    /// `intensity`, over an *intensity-invariant probe footprint*.
    ///
    /// The probe sequence — targets, source addresses, ports, timestamps —
    /// is drawn at the schedule's calibrated base rate regardless of
    /// `intensity` (the RNG consumes the identical draw sequence at every
    /// intensity). Each drawn probe is then emitted a whole number of
    /// times, distributed evenly (Bresenham) so a session's total is
    /// exactly [`scale_intensity`]`(session.packets, intensity)`. Repeats
    /// share their probe's timestamp.
    ///
    /// This is what makes `intensity` a pure *volume* knob: distinct
    /// sources, distinct destinations, ports, and the inter-probe gap
    /// structure — everything threshold- and eventization-relevant in the
    /// detection pipeline — are identical at 1×, 10×, and 100×, while
    /// packet counts scale exactly. (Scaling the draw count instead would
    /// push deliberately sub-threshold actors over the 100-destination
    /// bar and let variable-source actors express more addresses,
    /// distorting Table 1 / Fig. 2 shapes.) At intensity 1.0 the output
    /// is bit-identical to the pre-scaling generator. Fractional
    /// intensities emit an evenly-spaced subset of the base footprint.
    pub fn generate_scaled(&self, seed: u64, intensity: f64) -> Vec<PacketRecord> {
        // Mix the actor's name into the seed: actors of the same AS (e.g.
        // the per-/128 mini-actors of a cloud) must have independent
        // streams, or they would scan the same days and probe the same
        // target sequences in lockstep.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in self.name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(self.asn) << 32) ^ h);
        let sessions = self.schedule.sessions(&mut rng);
        let mut out = Vec::new();
        let mut targets_buf = Vec::with_capacity(2);
        for s in &sessions {
            let scaled = scale_intensity(s.packets, intensity);
            let mut drawn = 0u64;
            let mut emitted = 0u64;
            while drawn < s.packets {
                targets_buf.clear();
                self.targets.sample(&mut rng, &mut targets_buf);
                // Offset within the session; follow-up (nearby) probes get
                // strictly later timestamps than their seed probe.
                let base = s.start_ms + rng.gen_range(0..s.duration_ms);
                for (k, &dst) in targets_buf.iter().enumerate() {
                    if drawn >= s.packets {
                        break;
                    }
                    let ts = base + (k as u64) * rng.gen_range(50u64..2_000);
                    let (proto, dport) = self.ports.sample(&mut rng, ts);
                    let rec = PacketRecord {
                        ts_ms: ts,
                        src: self.sources.sample(&mut rng, ts),
                        dst,
                        proto,
                        sport: if proto == lumen6_trace::Transport::Icmpv6 {
                            128
                        } else {
                            rng.gen_range(32_768..61_000)
                        },
                        dport,
                        len: self.probe_len,
                    };
                    drawn += 1;
                    // Cumulative emission due after `drawn` of `s.packets`
                    // base probes: rounds so the session total is exactly
                    // `scaled`, spreading repeats (or drops) evenly.
                    let due = emission_due(scaled, s.packets, drawn);
                    for _ in emitted..due {
                        out.push(rec);
                    }
                    emitted = due;
                }
            }
        }
        lumen6_trace::sort_by_time(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::IidMode;
    use lumen6_addr::Ipv6Prefix;
    use lumen6_trace::Transport;

    fn actor() -> ScannerActor {
        ScannerActor {
            name: "test".into(),
            asn: 64500,
            sources: SourceSampler::Single(0x5001),
            targets: TargetSampler::Hitlist((1..=400u128).map(|i| i << 8).collect()),
            ports: PortSampler::Single(Transport::Tcp, 22),
            schedule: Schedule::continuous(0, 7, 500),
            probe_len: 60,
        }
    }

    #[test]
    fn generates_scheduled_volume() {
        let recs = actor().generate(1);
        assert_eq!(recs.len(), 7 * 500);
        assert!(recs.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        assert!(recs.iter().all(|r| r.src == 0x5001 && r.dport == 22));
        assert!(recs.iter().all(|r| r.ts_ms < 8 * DAY_MS));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = actor().generate(9);
        let b = actor().generate(9);
        assert_eq!(a, b);
        let c = actor().generate(10);
        assert_ne!(a, c);
    }

    #[test]
    fn intensity_scales_volume_over_an_invariant_footprint() {
        let a = actor();
        let base = a.generate(3);
        // Integral upscale: every base probe repeated exactly 10×, at its
        // own timestamp — deduplicating adjacent repeats recovers the base
        // stream bit-for-bit.
        let up = a.generate_scaled(3, 10.0);
        assert_eq!(up.len(), base.len() * 10);
        let mut dedup = up.clone();
        dedup.dedup();
        assert_eq!(dedup, base);
        // Fractional downscale: an evenly-spaced subset of the base
        // footprint — no source or destination outside the 1× sets.
        let down = a.generate_scaled(3, 0.4);
        assert_eq!(down.len(), (base.len() * 2) / 5);
        let dsts: std::collections::HashSet<u128> = base.iter().map(|r| r.dst).collect();
        let srcs: std::collections::HashSet<u128> = base.iter().map(|r| r.src).collect();
        assert!(down.iter().all(|r| dsts.contains(&r.dst)));
        assert!(down.iter().all(|r| srcs.contains(&r.src)));
        // And 1.0 is the identity.
        assert_eq!(a.generate_scaled(3, 1.0), base);
    }

    #[test]
    fn schedule_window_respected() {
        let mut a = actor();
        a.schedule = Schedule::continuous(10, 12, 100);
        let recs = a.generate(1);
        assert!(recs
            .iter()
            .all(|r| r.ts_ms >= 10 * DAY_MS && r.ts_ms < 12 * DAY_MS));
    }

    #[test]
    fn burst_is_single_day() {
        let s = Schedule::burst(355, 0.25, 10_000); // Dec 22-ish, 15 minutes
        let mut rng = SmallRng::seed_from_u64(3);
        let sessions = s.sessions(&mut rng);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].packets, 10_000);
        assert!(sessions[0].duration_ms <= 15 * 60 * 1000);
    }

    #[test]
    fn sparse_schedule_produces_fewer_sessions() {
        let s = Schedule {
            start_day: 0,
            end_day: 70,
            sessions_per_week: 1.0,
            session_hours: 2.0,
            packets_per_session: 10,
            pin_start_ms_in_day: None,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let sessions = s.sessions(&mut rng);
        // ~10 expected over 10 weeks; allow wide tolerance.
        assert!((3..=25).contains(&sessions.len()), "{}", sessions.len());
    }

    #[test]
    fn actor_detected_by_pipeline() {
        // End-to-end sanity: a hitlist scanner shows up as scan events.
        let recs = actor().generate(4);
        let report = lumen6_detect::detector::detect(
            &recs,
            lumen6_detect::ScanDetectorConfig::paper(lumen6_detect::AggLevel::L128),
        );
        assert!(report.scans() >= 1);
        assert_eq!(report.sources(), 1);
        assert_eq!(report.packets(), recs.len() as u64);
    }

    #[test]
    fn random_iid_sweeper_has_gaussian_weights() {
        let mut a = actor();
        a.targets = TargetSampler::PrefixSweep {
            prefixes: vec!["2001:db8::/32".parse::<Ipv6Prefix>().unwrap()],
            iid: IidMode::Random,
            subnets_per_prefix: 1 << 16,
        };
        let recs = a.generate(2);
        let dist = lumen6_addr::HammingDistribution::from_addrs(recs.iter().map(|r| r.dst));
        assert!(dist.looks_random());
    }

    #[test]
    fn icmpv6_actor_emits_echo() {
        let mut a = actor();
        a.ports = PortSampler::Icmpv6Echo;
        let recs = a.generate(2);
        assert!(recs
            .iter()
            .all(|r| r.proto == Transport::Icmpv6 && r.sport == 128));
    }
}
