//! Scanner actor models.
//!
//! The paper characterizes real IPv6 scanning actors along four independent
//! axes, and this crate models each as a composable sampler:
//!
//! - **Source strategy** ([`samplers::SourceSampler`]): a single /128, a few
//!   addresses in one /64 (AS#2), low-bit variation (AS#9 varied the lowest
//!   7–9 bits), random addresses across an entire allocation (AS#18 used a
//!   whole /32), or multiple sub-prefixes (multi-tenant clouds).
//! - **Target strategy** ([`samplers::TargetSampler`]): DNS-derived hitlist
//!   sweeps, hitlist-seeded *nearby* exploration (probing the neighborhood
//!   of a known address, §3.3), mixes of in-DNS and not-in-DNS pair members,
//!   and prefix sweeps with structured (low Hamming weight) or uniformly
//!   random IIDs (§4, Fig. 7).
//! - **Port strategy** ([`samplers::PortSampler`]): one service, a fixed
//!   set, a wide sweep of the port space (AS#3 hit ~45 K TCP ports), or a
//!   mid-measurement strategy switch (AS#1 went from ~444 ports to 4 in
//!   May 2021).
//! - **Temporal pattern** ([`actor::Schedule`]): continuous scanning,
//!   activity windows (AS#9 only appears from November 2021 — the /128
//!   uptick in Fig. 2), and single-day bursts (the MAWI ICMPv6 peaks).
//!
//! [`fleet`] assembles calibrated actors reproducing the 20 source ASes of
//! the paper's Table 2 plus the MAWI-only ICMPv6 scanners, at configurable
//! scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod fleet;
pub mod fleet_source;
pub mod noise;
pub mod parallel_source;
pub mod samplers;
pub mod tga;

pub use actor::{ScannerActor, Schedule, Session};
pub use fleet::{scale_intensity, Fleet, FleetConfig, World};
pub use fleet_source::FleetSource;
pub use parallel_source::ParallelFleetSource;
pub use samplers::{IidMode, PortSampler, SourceSampler, TargetSampler};
