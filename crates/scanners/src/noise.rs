//! Low-volume background noise sources.
//!
//! The dense cluster near the origin of the paper's Fig. 1 heatmap: the
//! majority of source /64s contact very few destinations with very few
//! packets and are neither scans nor repetitive-enough artifacts — stray
//! unsolicited traffic. This generator mints ephemeral sources that send a
//! handful of packets to one or a few telescope addresses and disappear.

use lumen6_trace::{PacketRecord, Transport, DAY_MS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `sources_per_day` ephemeral noise sources for each day of
/// `[day_start, day_end)`, targeting addresses drawn from `telescope_addrs`.
pub fn generate(
    telescope_addrs: &[u128],
    sources_per_day: usize,
    day_start: u64,
    day_end: u64,
    seed: u64,
) -> Vec<PacketRecord> {
    assert!(!telescope_addrs.is_empty(), "need telescope addresses");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0153_e5e5);
    let mut out = Vec::new();
    for day in day_start..day_end {
        for _ in 0..sources_per_day {
            // Random source /64 anywhere in 2000::/3-ish space.
            let net64: u64 = 0x2000_0000_0000_0000 | (rng.gen::<u64>() >> 3);
            let src = ((net64 as u128) << 64) | u128::from(rng.gen::<u64>());
            let n_dsts = rng.gen_range(1..=5usize);
            let dsts: Vec<u128> = (0..n_dsts)
                .map(|_| telescope_addrs[rng.gen_range(0..telescope_addrs.len())])
                .collect();
            let packets = rng.gen_range(1..=20u64);
            let t0 = day * DAY_MS + rng.gen_range(0..DAY_MS - 3_600_000);
            for k in 0..packets {
                let dst = dsts[rng.gen_range(0..dsts.len())];
                let proto = if rng.gen_bool(0.7) {
                    Transport::Tcp
                } else {
                    Transport::Udp
                };
                out.push(PacketRecord {
                    ts_ms: t0 + k * rng.gen_range(1_000u64..60_000),
                    src,
                    dst,
                    proto,
                    sport: rng.gen_range(1024..65000),
                    dport: [53u16, 123, 161, 1900, 5060, 6881, 3074, 27015]
                        [rng.gen_range(0usize..8)],
                    len: rng.gen_range(40..1400),
                });
            }
        }
    }
    lumen6_trace::sort_by_time(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_low_volume_per_source() {
        let telescope: Vec<u128> = (1..=100u128).map(|i| i << 16).collect();
        let recs = generate(&telescope, 30, 0, 3, 11);
        assert!(!recs.is_empty());
        // Group by source: every source touches ≤ 5 destinations.
        let mut per_src: std::collections::HashMap<u128, std::collections::HashSet<u128>> =
            Default::default();
        for r in &recs {
            per_src.entry(r.src).or_default().insert(r.dst);
        }
        assert_eq!(per_src.len(), 90, "one entry per minted source");
        assert!(per_src.values().all(|d| d.len() <= 5));
        assert!(recs.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }

    #[test]
    fn noise_never_qualifies_as_scan() {
        let telescope: Vec<u128> = (1..=500u128).map(|i| i << 16).collect();
        let recs = generate(&telescope, 50, 0, 5, 7);
        let report =
            lumen6_detect::detector::detect(&recs, lumen6_detect::ScanDetectorConfig::default());
        assert_eq!(report.scans(), 0);
    }

    #[test]
    fn deterministic() {
        let telescope: Vec<u128> = (1..=10u128).collect();
        assert_eq!(
            generate(&telescope, 5, 0, 2, 3),
            generate(&telescope, 5, 0, 2, 3)
        );
    }

    #[test]
    #[should_panic(expected = "telescope addresses")]
    fn empty_telescope_panics() {
        generate(&[], 1, 0, 1, 0);
    }
}
