//! The calibrated scanner fleet: ground truth for the paper's Table 2.
//!
//! [`Fleet::paper`] builds scanner actors reproducing, at configurable
//! scale, the twenty source ASes of the paper's Table 2 together with their
//! distinguishing behaviors:
//!
//! - **AS#1** — Chinese datacenter, a single /128, 39% of scan packets,
//!   ~444 ports until 2021-05-27, then only TCP 22/3389/8080/8443.
//! - **AS#2** — Chinese datacenter, 5 addresses in one /64, ~635 ports,
//!   continuously active (its run never breaks: the >128-day scan).
//! - **AS#3** — US cybersecurity company, 12 addresses, sweeps ~45 K TCP
//!   ports.
//! - **AS#4–#8, #10–#12** — clouds/datacenters with tens to hundreds of
//!   /128 sources over a few /64s and /48s; each /128 scans in discrete
//!   episodes so it individually qualifies (Table 2's /128 column).
//! - **AS#6** — multi-tenant cloud with sub-/96 customer allocations;
//!   includes the Appendix A.4 pair: two /64s in *different* /48s with
//!   nearly identical target sets and a 3× packet ratio.
//! - **AS#9** — global transit; a security company varying the low 7–9
//!   source bits in two /64s, active only from November 2021 (the /128
//!   uptick of Fig. 2).
//! - **AS#18** — German cloud/transit; sources spread across an entire /32,
//!   one address per /64, probing only TCP/22, 50% not-in-DNS targets.
//!   Most of its /64s stay *below* 100 destinations (they surface when the
//!   threshold is relaxed to 50 — the §2.2 sensitivity blow-up), some /48s
//!   qualify although none of their /64s does, and only the /32 aggregate
//!   captures the full activity.
//!
//! Scale note: packet volumes are scaled so the whole 15-month trace is a
//! few hundred thousand to ~1.5 M packets. *Structure* (source counts per
//! aggregation) is preserved outright where feasible; AS#9, AS#11, and
//! AS#18 have their source counts reduced ~10× because each retained /128
//! must still emit enough packets to qualify individually. EXPERIMENTS.md
//! records the resulting distortions.

use crate::actor::{ScannerActor, Schedule};
use crate::noise;
use crate::samplers::{PortSampler, SourceSampler, TargetSampler};
use lumen6_addr::Ipv6Prefix;
use lumen6_netmodel::{AsType, InternetRegistry};
use lumen6_telescope::artifacts::{self, ArtifactConfig};
use lumen6_telescope::{CaptureConfig, CdnDeployment, DeploymentConfig, FirewallCapture};
use lumen6_trace::{PacketRecord, SimTime, Transport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fleet scale and window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Master seed.
    pub seed: u64,
    /// First simulated day (0 = 2021-01-01).
    pub start_day: u64,
    /// One past the last simulated day (439 = through 2022-03-15).
    pub end_day: u64,
    /// Multiplier on every actor's per-session packet budget (1.0 = the
    /// calibrated default; tests use less).
    pub intensity: f64,
    /// Telescope deployment shape.
    pub deployment: DeploymentConfig,
    /// Artifact traffic mix.
    pub artifacts: ArtifactConfig,
    /// Ephemeral noise sources per day.
    pub noise_sources_per_day: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            start_day: 0,
            end_day: 439,
            intensity: 1.0,
            deployment: DeploymentConfig::default(),
            artifacts: ArtifactConfig::default(),
            noise_sources_per_day: 60,
        }
    }
}

impl FleetConfig {
    /// A small, fast configuration for tests: 6 weeks, tiny telescope.
    pub fn small() -> Self {
        FleetConfig {
            end_day: 42,
            deployment: DeploymentConfig {
                machines: 400,
                ases: 20,
                dns_pairs: 300,
                ..Default::default()
            },
            artifacts: ArtifactConfig {
                smtp_sources_per_day: 8,
                isakmp_sources_per_day: 5,
                netbios_sources_per_day: 2,
                ..Default::default()
            },
            noise_sources_per_day: 15,
            ..Default::default()
        }
    }
}

/// Scales `base` by `factor` with *exact* integer arithmetic: the result is
/// `round(base × factor)` where `factor` is taken at its exact rational
/// value as an IEEE-754 double (mantissa × 2^exponent), the product is
/// formed in 128 bits, and rounding is explicit (half away from zero).
///
/// The previous implementation went through `(base as f64 * factor).round()
/// as u64`, which is lossy twice over: above 2^53 the `u64 → f64` conversion
/// silently drops low bits (a paper-scale packet budget scaled at intensity
/// 1.0 would not round-trip), and the `.max(1)` floor it carried inflated
/// totals at fractional intensities by promoting every zero-packet session
/// to one packet. This version is exact for every `base` at intensity 1.0
/// (identity), monotone in both arguments, and saturates at `u64::MAX`
/// instead of wrapping. Non-finite or non-positive factors scale to 0.
pub fn scale_intensity(base: u64, factor: f64) -> u64 {
    if base == 0 || !factor.is_finite() || factor <= 0.0 {
        return 0;
    }
    // Decompose the (positive, finite) double: value = mantissa × 2^exp.
    let bits = factor.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (mantissa, exp) = if raw_exp == 0 {
        (frac, -1074i64) // subnormal
    } else {
        (frac | (1u64 << 52), raw_exp - 1075)
    };
    let prod = u128::from(base) * u128::from(mantissa); // ≤ 2^117, exact
    if exp >= 0 {
        // Integral scale factor: shift up, saturating.
        if exp >= 128 || prod.leading_zeros() < exp as u32 {
            return u64::MAX;
        }
        u64::try_from(prod << exp).unwrap_or(u64::MAX)
    } else {
        let shift = -exp as u32;
        if shift >= 128 {
            return 0;
        }
        // Round half away from zero: add 2^(shift-1) before truncating.
        let half = 1u128 << (shift - 1);
        u64::try_from(prod.saturating_add(half) >> shift).unwrap_or(u64::MAX)
    }
}

/// Cumulative emission due after the first `drawn` of `base` probes when a
/// stream scales to `scaled` total packets: the Bresenham repeat schedule
/// shared by [`ScannerActor::generate_scaled`], the fixed-stream scaling in
/// [`World::cdn_trace`], and the fused [`crate::FleetSource`]. Monotone in
/// `drawn`, exactly `scaled` at `drawn == base`, and the identity when
/// `scaled == base`. Callers guarantee `base > 0`.
pub(crate) fn emission_due(scaled: u64, base: u64, drawn: u64) -> u64 {
    ((u128::from(scaled) * u128::from(drawn)) / u128::from(base)) as u64
}

/// Scales a materialized stream by per-record repetition: record `i` is
/// emitted `due(i+1) - due(i)` times in place, so the output length is
/// exactly `scale_intensity(len, intensity)`, order and timestamps are
/// preserved, and repeats are adjacent (as a stable time-sort would leave
/// them).
fn repeat_stream(stream: Vec<PacketRecord>, intensity: f64) -> Vec<PacketRecord> {
    let base = stream.len() as u64;
    if base == 0 {
        return stream;
    }
    let scaled = scale_intensity(base, intensity);
    if scaled == base {
        return stream;
    }
    let mut out = Vec::with_capacity(usize::try_from(scaled).unwrap_or(0));
    let mut emitted = 0u64;
    for (i, r) in stream.iter().enumerate() {
        let due = emission_due(scaled, base, i as u64 + 1);
        for _ in emitted..due {
            out.push(*r);
        }
        emitted = due;
    }
    out
}

/// Ground truth for one Table 2 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Table 2 rank (1-based).
    pub rank: usize,
    /// Assigned AS number.
    pub asn: u32,
    /// Network type.
    pub as_type: AsType,
    /// Country label.
    pub country: String,
    /// The paper's packet count for this AS, in millions (for comparison).
    pub paper_packets_m: f64,
    /// The paper's (/48, /64, /128) source counts.
    pub paper_sources: (u64, u64, u64),
    /// The AS's allocated prefix in the simulation.
    pub prefix: Ipv6Prefix,
}

/// The assembled fleet.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// All scanner actors (many ASes are modeled as multiple mini-actors).
    pub actors: Vec<ScannerActor>,
    /// Per-AS ground truth, rank order.
    pub truth: Vec<GroundTruth>,
}

/// The full simulated world: registry, telescope, fleet.
#[derive(Debug, Clone)]
pub struct World {
    /// AS registry and routing table (attribution substrate).
    pub registry: InternetRegistry,
    /// The CDN telescope.
    pub deployment: CdnDeployment,
    /// The scanner fleet.
    pub fleet: Fleet,
    config: FleetConfig,
}

/// Target-pool views of the telescope used when building actors.
#[derive(Debug, Clone)]
pub struct Pools {
    /// DNS-exposed telescope addresses.
    pub exposed: Vec<u128>,
    /// Telescope addresses never exposed via DNS.
    pub hidden: Vec<u128>,
    /// The in-DNS / not-in-DNS address pairs (for explorer actors).
    pub pairs: Vec<(u128, u128)>,
}

impl World {
    /// Builds the world: telescope, registry entries, calibrated fleet.
    pub fn build(config: FleetConfig) -> World {
        let mut registry = InternetRegistry::new();
        let deployment = CdnDeployment::build(&config.deployment, &mut registry, config.seed);
        let pools = Pools {
            exposed: deployment.dns_hitlist(),
            hidden: {
                let dns = deployment.dns_hitlist();
                let dns_set: std::collections::HashSet<u128> = dns.into_iter().collect();
                deployment
                    .all_addrs()
                    .into_iter()
                    .filter(|a| !dns_set.contains(a))
                    .collect()
            },
            pairs: deployment.pairs().to_vec(),
        };
        let fleet = Fleet::paper(&config, &mut registry, &pools);
        World {
            registry,
            deployment,
            fleet,
            config,
        }
    }

    /// The build configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Generates the complete *firewall-logged* CDN trace: scanner traffic
    /// plus artifacts plus noise, passed through the capture filter,
    /// time-sorted. This is the input to the paper's pipeline (prefilter →
    /// aggregate → detect).
    pub fn cdn_trace(&self) -> Vec<PacketRecord> {
        use rayon::prelude::*;
        // Actor generation dominates build time (thousands of mini-actors
        // over 439 days); each actor's stream is an independent pure
        // function of (actor, seed), so generate them in parallel.
        let mut streams: Vec<Vec<PacketRecord>> = self
            .fleet
            .actors
            .par_iter()
            .map(|actor| actor.generate_scaled(self.config.seed, self.config.intensity))
            .collect();
        // Per-strategy emission telemetry, aggregated once per build (not
        // per packet): `scanners.fleet.packets_emitted.<strategy>` counts
        // pre-capture-filter packets.
        {
            let mut per_kind: std::collections::BTreeMap<&'static str, u64> = Default::default();
            for (actor, stream) in self.fleet.actors.iter().zip(&streams) {
                *per_kind.entry(actor.targets.kind()).or_default() += stream.len() as u64;
            }
            let reg = lumen6_obs::MetricsRegistry::global();
            for (kind, n) in per_kind {
                reg.counter(&format!("scanners.fleet.packets_emitted.{kind}"))
                    .add(n);
            }
        }
        // Artifacts and noise scale with intensity by per-record repetition
        // too: the A.1 duplicate prefilter compares packet *counts* against
        // its threshold, so background streams must scale in lockstep with
        // the scanners (and with a threshold scaled the same way) for its
        // removal decisions — and hence the detected shape — to be
        // intensity-invariant.
        streams.push(repeat_stream(
            artifacts::generate(
                &self.deployment,
                &self.config.artifacts,
                self.config.start_day,
                self.config.end_day,
                self.config.seed,
            ),
            self.config.intensity,
        ));
        streams.push(repeat_stream(
            noise::generate(
                &self.deployment.all_addrs(),
                self.config.noise_sources_per_day,
                self.config.start_day,
                self.config.end_day,
                self.config.seed,
            ),
            self.config.intensity,
        ));
        {
            let reg = lumen6_obs::MetricsRegistry::global();
            let noise_len = streams.last().map_or(0, Vec::len) as u64;
            let artifacts_len = streams[streams.len() - 2].len() as u64;
            reg.counter("scanners.fleet.packets_emitted.artifacts")
                .add(artifacts_len);
            reg.counter("scanners.fleet.packets_emitted.noise")
                .add(noise_len);
        }
        let merged = lumen6_trace::merge_sorted(streams);
        let capture = FirewallCapture::new(&self.deployment, CaptureConfig::default());
        let (logged, _) = capture.capture(&merged);
        logged
    }
}

impl Fleet {
    /// Builds the calibrated Table 2 fleet. See the module docs.
    pub fn paper(config: &FleetConfig, registry: &mut InternetRegistry, pools: &Pools) -> Fleet {
        Builder {
            config,
            registry,
            pools,
            rng: SmallRng::seed_from_u64(config.seed ^ 0xf1ee_7000),
            actors: Vec::new(),
            truth: Vec::new(),
        }
        .build()
    }

    /// Total scheduled packets across all actors at the given intensity
    /// (ground-truth budget). Schedules carry the calibrated 1× budgets;
    /// intensity is applied per session at generation time, so it is a
    /// parameter here rather than baked into the schedules.
    pub fn scheduled_packets(&self, intensity: f64) -> u64 {
        // Approximation: sessions × packets, not expanded; used for sanity
        // checks and reporting only.
        self.actors
            .iter()
            .map(|a| {
                let days = a.schedule.end_day - a.schedule.start_day;
                let sessions = (days as f64 / 7.0 * a.schedule.sessions_per_week).round() as u64;
                sessions * scale_intensity(a.schedule.packets_per_session, intensity)
            })
            .sum()
    }
}

struct Builder<'a> {
    config: &'a FleetConfig,
    registry: &'a mut InternetRegistry,
    pools: &'a Pools,
    rng: SmallRng,
    actors: Vec<ScannerActor>,
    truth: Vec<GroundTruth>,
}

impl Builder<'_> {
    fn build(mut self) -> Fleet {
        self.as1();
        self.as2();
        self.as3();
        self.as4();
        self.as5();
        self.as6();
        self.as7();
        self.as8();
        self.as9();
        self.as10();
        self.as11();
        self.as12();
        self.small_as(
            13,
            AsType::Isp,
            "VN",
            2.5,
            (1, 1, 1),
            1,
            1,
            0.5,
            170,
            Some(23),
        );
        self.small_as(
            14,
            AsType::Datacenter,
            "CN",
            1.6,
            (1, 1, 2),
            1,
            2,
            0.35,
            130,
            None,
        );
        self.small_as(
            15,
            AsType::Research,
            "DE",
            1.1,
            (1, 1, 1),
            1,
            1,
            0.4,
            140,
            None,
        );
        self.small_as(
            16,
            AsType::Isp,
            "RU",
            0.9,
            (1, 1, 2),
            1,
            2,
            0.3,
            115,
            Some(5900),
        );
        self.small_as(
            17,
            AsType::University,
            "DE",
            0.8,
            (1, 1, 2),
            1,
            2,
            0.3,
            110,
            None,
        );
        self.as18();
        self.small_as(
            19,
            AsType::Isp,
            "RU",
            0.6,
            (1, 1, 1),
            1,
            1,
            0.25,
            115,
            Some(8081),
        );
        self.small_as(
            20,
            AsType::University,
            "DE",
            0.5,
            (1, 1, 1),
            1,
            1,
            0.2,
            105,
            None,
        );
        Fleet {
            actors: self.actors,
            truth: self.truth,
        }
    }

    /// Window length in days/weeks.
    #[allow(dead_code)]
    fn days(&self) -> u64 {
        self.config.end_day - self.config.start_day
    }

    #[allow(dead_code)]
    fn weeks(&self) -> f64 {
        self.days() as f64 / 7.0
    }

    /// The paper's full measurement window in weeks (439 days). Session
    /// budgets of episodic actors are expressed per *nominal* window, so
    /// packet shares stay window-invariant when experiments shorten the
    /// simulated range.
    fn nominal_weeks() -> f64 {
        439.0 / 7.0
    }

    fn asn(rank: usize) -> u32 {
        64_600 + rank as u32
    }

    fn register(
        &mut self,
        rank: usize,
        ty: AsType,
        country: &str,
        packets_m: f64,
        sources: (u64, u64, u64),
    ) -> Ipv6Prefix {
        let asn = Self::asn(rank);
        let prefix = self.registry.register_with_allocation(
            asn,
            ty,
            country,
            &format!("scan-as-{rank}"),
            rank as u32,
        );
        let prefix = prefix.expect("fleet ranks fit the allocation layout");
        self.truth.push(GroundTruth {
            rank,
            asn,
            as_type: ty,
            country: country.to_string(),
            paper_packets_m: packets_m,
            paper_sources: sources,
            prefix,
        });
        prefix
    }

    /// Target pool: mostly DNS-exposed, `hidden_frac` not-in-DNS.
    fn targets(&self, hidden_frac: f64) -> TargetSampler {
        TargetSampler::PairMix {
            exposed: self.pools.exposed.clone(),
            hidden: self.pools.hidden.clone(),
            hidden_frac,
        }
    }

    fn push(&mut self, actor: ScannerActor) {
        self.actors.push(actor);
    }

    // ------------------------------------------------------------------
    // The heavy hitters.
    // ------------------------------------------------------------------

    /// AS#1: Chinese datacenter, single /128, 39% of packets, 444 → 4 ports.
    fn as1(&mut self) {
        let prefix = self.register(1, AsType::Datacenter, "CN", 839.0, (1, 1, 1));
        let src = prefix.nth_subnet(64, 1).expect("subnet").bits() | 0x1;
        let switch = SimTime::from_date(2021, 5, 27).ms();
        self.push(ScannerActor {
            name: "as1-datacenter-cn".into(),
            asn: Self::asn(1),
            sources: SourceSampler::Single(src),
            targets: self.targets(0.15),
            ports: PortSampler::SwitchAt {
                at_ms: switch,
                before: Box::new(PortSampler::Set(
                    Transport::Tcp,
                    PortSampler::common_tcp_ports(444),
                )),
                after: Box::new(PortSampler::Set(Transport::Tcp, vec![22, 3389, 8080, 8443])),
            },
            schedule: Schedule::continuous(self.config.start_day, self.config.end_day, 1500),
            probe_len: 60,
        });
    }

    /// AS#2: Chinese datacenter, 5 /128s in one /64, ~635 ports, one
    /// unbroken >128-day scan (24 h sessions, no gaps).
    fn as2(&mut self) {
        let prefix = self.register(2, AsType::Datacenter, "CN", 744.0, (1, 1, 5));
        let net64 = (prefix.nth_subnet(64, 7).expect("subnet").bits() >> 64) as u64;
        self.push(ScannerActor {
            name: "as2-datacenter-cn".into(),
            asn: Self::asn(2),
            sources: SourceSampler::pool_in_64(net64, 5),
            targets: self.targets(0.10),
            ports: PortSampler::Set(Transport::Tcp, PortSampler::common_tcp_ports(635)),
            schedule: Schedule {
                start_day: self.config.start_day,
                end_day: self.config.end_day,
                sessions_per_week: 7.0,
                session_hours: 24.0,
                packets_per_session: 1300,
                pin_start_ms_in_day: None,
            },
            probe_len: 64,
        });
    }

    /// AS#3: US cybersecurity, 12 /128s, sweeps ~45 K TCP ports.
    ///
    /// The addresses take contiguous ~100-second turns inside each session
    /// (the `TimeSliced` sampler), so every /128 produces short runs that
    /// individually clear 100 destinations — matching the paper's Table 2
    /// (12 /128 sources) *and* its §3.1 observation that /128 scans are
    /// dominated by short ones (median 94 s).
    fn as3(&mut self) {
        let prefix = self.register(3, AsType::Cybersecurity, "US", 275.0, (1, 1, 12));
        let net64 = (prefix.nth_subnet(64, 3).expect("subnet").bits() >> 64) as u64;
        let pool: Vec<u128> = (1..=12u128)
            .map(|i| ((net64 as u128) << 64) | (0x10 + i))
            .collect();
        self.push(ScannerActor {
            name: "as3-cybersec-us".into(),
            asn: Self::asn(3),
            sources: SourceSampler::TimeSliced {
                pool,
                slice_ms: 100_000,
            },
            targets: self.targets(0.20),
            ports: PortSampler::UniformRange(Transport::Tcp, 45_000),
            schedule: Schedule {
                start_day: self.config.start_day,
                end_day: self.config.end_day,
                // Twice-weekly 20-minute bursts: 12 address turns of ~100 s
                // each, ~115 probes per turn.
                sessions_per_week: 2.0,
                session_hours: 0.34,
                packets_per_session: 1400,
                pin_start_ms_in_day: None,
            },
            probe_len: 60,
        });
    }

    // ------------------------------------------------------------------
    // Episodic multi-source clouds: modeled as mini-actors, one per /128,
    // so each /128 individually reaches the 100-destination bar (the
    // paper's Table 2 /128 columns).
    // ------------------------------------------------------------------

    /// Spreads `n128` mini-actors over `layout` = (48s, 64s): /64 subnets
    /// are distributed round-robin over the /48s, and /128s round-robin
    /// over the /64s.
    #[allow(clippy::too_many_arguments)]
    fn cloud_minis(
        &mut self,
        rank: usize,
        prefix: Ipv6Prefix,
        n48: u64,
        n64: u64,
        n128: u64,
        sessions_total: f64,
        pkts_per_session: u64,
        hidden_frac: f64,
        ports_lo: usize,
        ports_hi: usize,
        explore: Option<f64>,
    ) {
        let all_ports = PortSampler::common_tcp_ports(20);
        for i in 0..n128 {
            // Layout: /64 j of n64 lives in /48 (j mod n48); minis are
            // assigned to /64s round-robin, so exactly n64 distinct /64s
            // and n48 distinct /48s appear.
            let j = i % n64;
            let sub48 = prefix.nth_subnet(48, (j % n48) as u128 + 1).expect("48");
            let sub64 = sub48.nth_subnet(64, (j / n48) as u128 + 1).expect("64");
            // Deterministic host address with a structured IID.
            let src = sub64.bits() | (0x100 + i as u128);
            // Per-mini port subset: keeps Table 3's "no clear-cut top port"
            // effect — each /64 targets a different well-known blend.
            let n_ports = self.rng.gen_range(ports_lo..=ports_hi);
            let mut ports: Vec<u16> = all_ports.clone();
            for k in (1..ports.len()).rev() {
                ports.swap(k, self.rng.gen_range(0..=k));
            }
            ports.truncate(n_ports);
            // MSSQL probing is especially widespread across sources
            // (Table 3: TCP/1433 tops the per-/64 ranking).
            if !ports.contains(&1433) && self.rng.gen_bool(0.45) {
                ports[0] = 1433;
            }
            let jitter = self.rng.gen_range(0.75..1.3);
            let burst_hours = self.rng.gen_range(0.05..0.5);
            // Explorer actors discover targets via DNS and probe the hidden
            // pair partner afterwards (§3.3); the rest draw from the pools.
            let targets = match explore {
                Some(prob) => TargetSampler::PairExplore {
                    pairs: self.pools.pairs.clone(),
                    explore_prob: prob,
                },
                None => self.targets(hidden_frac),
            };
            self.push(ScannerActor {
                name: format!("as{rank}-mini-{i}"),
                asn: Self::asn(rank),
                sources: SourceSampler::Single(src),
                targets,
                ports: PortSampler::Set(Transport::Tcp, ports),
                schedule: Schedule {
                    start_day: self.config.start_day,
                    end_day: self.config.end_day,
                    sessions_per_week: sessions_total / Self::nominal_weeks(),
                    // Bursty episodes: a 150-destination sweep takes minutes,
                    // not hours (§3.1: /128 scans are dominated by short ones).
                    session_hours: burst_hours,
                    packets_per_session: (pkts_per_session as f64 * jitter) as u64,
                    pin_start_ms_in_day: None,
                },
                probe_len: 60,
            });
        }
    }

    /// AS#4: global cloud, 512 /128s over 2 /64s (2 /48s).
    fn as4(&mut self) {
        let prefix = self.register(4, AsType::Cloud, "US/global", 78.0, (2, 2, 512));
        self.cloud_minis(4, prefix, 2, 2, 512, 1.0, 140, 0.0, 3, 8, None);
    }

    /// AS#5: German cloud, 59 /64s over 3 /48s, one address each.
    fn as5(&mut self) {
        let prefix = self.register(5, AsType::Cloud, "DE", 48.0, (3, 59, 59));
        self.cloud_minis(5, prefix, 3, 59, 59, 1.5, 150, 0.0, 4, 12, None);
    }

    /// AS#6: multi-tenant global cloud (Appendix A.4): 205 /128s over 15
    /// /64s and 10 /48s, plus the near-identical pair of /64s in different
    /// /48s (one with 3× the probes of the other).
    fn as6(&mut self) {
        let prefix = self.register(6, AsType::Cloud, "US/global", 45.0, (10, 15, 205));
        self.cloud_minis(6, prefix, 10, 13, 175, 1.0, 120, 0.0, 3, 10, None);
        // The A.4 pair: tenants in /48 #11 and #12, same target blend
        // (identical hidden fraction, near-identical pools), full port
        // coverage, active across the whole window, 3× packet ratio.
        for (k, mult) in [(0u64, 1u64), (1, 3)] {
            let sub48 = prefix.nth_subnet(48, 11 + k as u128).expect("48");
            let sub64 = sub48.nth_subnet(64, 1).expect("64");
            self.push(ScannerActor {
                name: format!("as6-a4-pair-{k}"),
                asn: Self::asn(6),
                sources: SourceSampler::pool_in_64((sub64.bits() >> 64) as u64, 15),
                targets: self.targets(0.47),
                ports: PortSampler::Set(Transport::Tcp, PortSampler::common_tcp_ports(20)),
                schedule: Schedule {
                    start_day: self.config.start_day,
                    end_day: self.config.end_day,
                    sessions_per_week: 1.2,
                    session_hours: 6.0,
                    packets_per_session: 150 * mult,
                    pin_start_ms_in_day: None,
                },
                probe_len: 60,
            });
        }
    }

    /// AS#7: global cloud, 123 /128s over 9 /64s / 9 /48s.
    fn as7(&mut self) {
        let prefix = self.register(7, AsType::Cloud, "US/global", 39.0, (9, 9, 123));
        self.cloud_minis(7, prefix, 9, 9, 123, 1.0, 140, 0.0, 3, 9, Some(0.6));
    }

    /// AS#8: Chinese cloud, 53 /128s over 5 /64s / 5 /48s.
    fn as8(&mut self) {
        let prefix = self.register(8, AsType::Cloud, "CN", 30.0, (5, 5, 53));
        self.cloud_minis(8, prefix, 5, 5, 53, 1.2, 140, 0.0, 3, 8, None);
    }

    /// AS#9: global transit; a US security company varying the lowest 7–9
    /// source bits in two /64s. Active only from November 2021 — the Fig. 2
    /// /128-source uptick. Scaled: ~120 distinct /128s (paper: 956).
    fn as9(&mut self) {
        let prefix = self.register(9, AsType::Transit, "global", 11.0, (1, 2, 956));
        let start = SimTime::from_date(2021, 11, 1)
            .day_index()
            .clamp(self.config.start_day, self.config.end_day);
        let active_weeks = ((self.config.end_day - start) as f64 / 7.0).max(0.5);
        let sub48 = prefix.nth_subnet(48, 5).expect("48");
        for k in 0..2u64 {
            let sub64 = sub48.nth_subnet(64, 1 + k as u128).expect("64");
            // 60 mini /128s per /64, addresses spread across the low 9 bits
            // (the paper: "varying the lowest 7 - 9 bits"). Each mini is one
            // /128 reused across its own sessions, so it qualifies
            // individually — the Fig. 2 /128 uptick.
            for i in 0..60u64 {
                let src = sub64.bits() | u128::from(i * 8 + (k * 3) + 1); // low 9 bits
                self.push(ScannerActor {
                    name: format!("as9-sec-{k}-{i}"),
                    asn: Self::asn(9),
                    sources: SourceSampler::Single(src),
                    targets: self.targets(0.25),
                    ports: PortSampler::Set(Transport::Tcp, vec![22, 80, 443, 3389, 8080, 8443]),
                    schedule: Schedule {
                        start_day: start,
                        end_day: self.config.end_day,
                        // ~4 qualifying sessions per /128 over its active window.
                        sessions_per_week: 4.0 / active_weeks,
                        session_hours: 2.0,
                        packets_per_session: 150,
                        pin_start_ms_in_day: None,
                    },
                    probe_len: 60,
                });
            }
        }
    }

    /// AS#10: Chinese cloud, 7 /128s in one /64.
    fn as10(&mut self) {
        let prefix = self.register(10, AsType::Cloud, "CN", 10.0, (1, 1, 7));
        self.cloud_minis(10, prefix, 1, 1, 7, 2.0, 150, 0.0, 3, 8, None);
    }

    /// AS#11: global cloud, one /64 with many /128s (scaled 353 → 90).
    fn as11(&mut self) {
        let prefix = self.register(11, AsType::Cloud, "US/global", 4.7, (1, 1, 353));
        self.cloud_minis(11, prefix, 1, 1, 90, 1.0, 130, 0.0, 3, 8, None);
    }

    /// AS#12: Chinese datacenter, 19 /128s over 12 /64s / 9 /48s.
    fn as12(&mut self) {
        let prefix = self.register(12, AsType::Datacenter, "CN", 3.1, (9, 12, 19));
        self.cloud_minis(12, prefix, 9, 12, 19, 1.2, 140, 0.1, 3, 8, None);
    }

    /// Single-source (or two-address) tail actors, ranks 13–17 and 19–20.
    #[allow(clippy::too_many_arguments)]
    fn small_as(
        &mut self,
        rank: usize,
        ty: AsType,
        country: &str,
        packets_m: f64,
        sources: (u64, u64, u64),
        n64: u64,
        n128: u64,
        sessions_per_week: f64,
        pkts: u64,
        single_port: Option<u16>,
    ) {
        let prefix = self.register(rank, ty, country, packets_m, sources);
        for i in 0..n128 {
            let sub64 = prefix.nth_subnet(64, (i % n64) as u128 + 1).expect("64");
            let src = sub64.bits() | (0x20 + i as u128);
            self.push(ScannerActor {
                name: format!("as{rank}-{i}"),
                asn: Self::asn(rank),
                sources: SourceSampler::Single(src),
                targets: self.targets(0.0),
                ports: match single_port {
                    // Botnet-style single-vulnerability scanners do exist in
                    // the tail (Fig. 4's single-port bucket).
                    Some(p) => PortSampler::Single(Transport::Tcp, p),
                    None => PortSampler::Set(
                        Transport::Tcp,
                        vec![22, 23, 8080, 1433, 3389, 21, 8000, 110],
                    ),
                },
                schedule: Schedule {
                    start_day: self.config.start_day,
                    end_day: self.config.end_day,
                    sessions_per_week,
                    session_hours: 4.0,
                    packets_per_session: pkts,
                    pin_start_ms_in_day: None,
                },
                probe_len: 60,
            });
        }
    }

    /// AS#18: the /32-spread scanner. Three groups of one-address /64
    /// sources (scaled ~10× down from the paper's 1 057):
    ///
    /// - 106 "qualifying" /64s: one session each, ≥ 100 destinations.
    /// - 70 "paired" /48s: two /64s each with 60–90 destinations probing in
    ///   the same session window — the /48 qualifies, neither /64 does, so
    ///   detected /48s exceed detected /64s (Table 2 footnote).
    /// - 600 "solo" sub-threshold /64s (50–95 destinations): invisible at
    ///   the paper's threshold, they surface when it is relaxed to 50
    ///   (the §2.2 sensitivity blow-up) and in the /32 aggregate.
    fn as18(&mut self) {
        let alloc = self.register(18, AsType::CloudTransit, "DE", 0.6, (1092, 1057, 1057));
        // The scanning entity's /32 inside the provider allocation.
        let slash32 = alloc.nth_subnet(32, 0).expect("/32");
        let mut idx = 0u64;
        let window = (self.config.end_day - self.config.start_day).max(1);
        // Qualifying /64s: /48 indices 1..=106, one /64 each, one scan each
        // on a deterministic day (spread across the window).
        for q in 0..106u64 {
            let dsts = 125 + self.rng.gen_range(0u64..70);
            let day = self.config.start_day + q * window / 106 % window;
            let hour_ms = self.rng.gen_range(0..20u64) * 3_600_000;
            self.spawn_as18(slash32, idx, 1 + q as u128, 1, dsts, Some((day, hour_ms)));
            idx += 1;
        }
        // Paired /48s: indices 200..=269, two /64s each, sub-threshold
        // destinations; the pair probes in the SAME session window, so the
        // /48 aggregate qualifies although neither /64 does.
        for p in 0..70u64 {
            let day = self.config.start_day + self.rng.gen_range(0..window);
            let hour_ms = self.rng.gen_range(0..20u64) * 3_600_000;
            for h in 0..2u64 {
                let dsts = 62 + self.rng.gen_range(0u64..28);
                self.spawn_as18(
                    slash32,
                    idx,
                    200 + p as u128,
                    1 + h as u128,
                    dsts,
                    Some((day, hour_ms)),
                );
                idx += 1;
            }
        }
        // Solo sub-threshold /64s: /48 indices 1000.., 50–95 destinations,
        // one scan each on a deterministic day.
        for sol in 0..600u64 {
            let dsts = 52 + self.rng.gen_range(0u64..43);
            // Four solo sources probe per active day: individually below the
            // threshold, but the day's /32 aggregate comfortably qualifies —
            // which is why the /32 view captures far more of this actor's
            // traffic than the /48 view (§3.2: 3× in the paper).
            let day = self.config.start_day + (sol / 4) * window * 4 / 600 % window;
            let hour_ms = self.rng.gen_range(0..20u64) * 3_600_000;
            self.spawn_as18(
                slash32,
                idx,
                1000 + sol as u128,
                1,
                dsts,
                Some((day, hour_ms)),
            );
            idx += 1;
        }
    }

    /// One AS#18 mini source: a single address in its own /64, TCP/22 only,
    /// 50% not-in-DNS targets, one ~90-minute session in the window. The
    /// paired /48 group pins (day, start-time) so both /64s of a /48 scan
    /// simultaneously and their union forms one /48 run.
    fn spawn_as18(
        &mut self,
        slash32: Ipv6Prefix,
        idx: u64,
        sub48_idx: u128,
        sub64_idx: u128,
        dsts: u64,
        pin: Option<(u64, u64)>,
    ) {
        let sub48 = slash32.nth_subnet(48, sub48_idx).expect("48");
        let sub64 = sub48.nth_subnet(64, sub64_idx).expect("64");
        let src = sub64.bits() | u128::from(self.rng.gen_range(0x10u64..0xffff));
        // Targets are drawn from a large pool, so distinct destinations ≈
        // packets; emitting exactly `dsts` packets keeps the sub-threshold
        // groups strictly below the 100-destination bar.
        let pkts = dsts;
        let (start_day, end_day, pin_ms) = match pin {
            Some((d, ms)) => (d, d + 1, Some(ms)),
            None => (self.config.start_day, self.config.end_day, None),
        };
        // Pinned (single-day) minis scan exactly once on their day; the
        // rest spread their single session over the nominal window.
        let weeks = match pin {
            Some(_) => 1.0 / 7.0,
            None => Self::nominal_weeks(),
        };
        self.push(ScannerActor {
            name: format!("as18-{idx}"),
            asn: Self::asn(18),
            sources: SourceSampler::Single(src),
            targets: self.targets(0.5),
            ports: PortSampler::Single(Transport::Tcp, 22),
            schedule: Schedule {
                start_day,
                end_day,
                // One session over the (possibly pinned single-day) window.
                sessions_per_week: (1.0 / weeks).min(7.0),
                session_hours: 1.5,
                packets_per_session: pkts,
                pin_start_ms_in_day: pin_ms,
            },
            probe_len: 60,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_registers_all_20_ases() {
        let world = World::build(FleetConfig::small());
        assert_eq!(world.fleet.truth.len(), 20);
        let ranks: Vec<usize> = world.fleet.truth.iter().map(|t| t.rank).collect();
        assert_eq!(ranks, (1..=20).collect::<Vec<_>>());
        for t in &world.fleet.truth {
            assert_eq!(
                world.registry.origin_asn(t.prefix.first_addr() + 1),
                Some(t.asn)
            );
            assert_eq!(
                world.registry.as_info(t.asn).unwrap().descriptor(),
                format!("{} ({})", t.as_type.label(), t.country)
            );
        }
    }

    #[test]
    fn actor_sources_live_inside_their_as_prefix() {
        let world = World::build(FleetConfig::small());
        let mut rng = SmallRng::seed_from_u64(3);
        for actor in &world.fleet.actors {
            let truth = world
                .fleet
                .truth
                .iter()
                .find(|t| t.asn == actor.asn)
                .expect("actor AS registered");
            for _ in 0..5 {
                let src = actor.sources.sample(&mut rng, 0);
                assert!(
                    truth.prefix.contains_addr(src),
                    "{} source {:x} outside {}",
                    actor.name,
                    src,
                    truth.prefix
                );
            }
        }
    }

    #[test]
    fn cdn_trace_is_sorted_and_on_telescope() {
        let mut cfg = FleetConfig::small();
        cfg.end_day = 7;
        let world = World::build(cfg);
        let trace = world.cdn_trace();
        assert!(trace.len() > 10_000, "got {}", trace.len());
        assert!(trace.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        assert!(trace
            .iter()
            .all(|r| world.deployment.is_telescope_addr(r.dst)));
        // Capture filter applied: no served ports, no ICMPv6.
        assert!(trace
            .iter()
            .all(|r| !(r.proto == Transport::Tcp && (r.dport == 80 || r.dport == 443))));
        assert!(trace.iter().all(|r| r.proto != Transport::Icmpv6));
    }

    #[test]
    fn trace_is_deterministic() {
        let mut cfg = FleetConfig::small();
        cfg.end_day = 3;
        let a = World::build(cfg.clone()).cdn_trace();
        let b = World::build(cfg).cdn_trace();
        assert_eq!(a, b);
    }

    #[test]
    fn as1_dominates_packets() {
        let mut cfg = FleetConfig::small();
        cfg.end_day = 14;
        let world = World::build(cfg);
        let trace = world.cdn_trace();
        // Per-AS packet counts over the scanner fleet only (artifacts and
        // noise are not scan traffic). AS#18 is excluded: its fixed source
        // structure is preserved regardless of window length, so it
        // over-weights short test windows by design.
        let mut per_as: Vec<(usize, usize)> = world
            .fleet
            .truth
            .iter()
            .filter(|t| t.rank != 18)
            .map(|t| {
                (
                    t.rank,
                    trace
                        .iter()
                        .filter(|r| t.prefix.contains_addr(r.src))
                        .count(),
                )
            })
            .collect();
        let total: usize = per_as.iter().map(|(_, n)| n).sum();
        per_as.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        // The top two are AS#1 and AS#2 (in some order) and they dominate.
        let top2_ranks: Vec<usize> = per_as[..2].iter().map(|(r, _)| *r).collect();
        assert!(
            top2_ranks.contains(&1) && top2_ranks.contains(&2),
            "{per_as:?}"
        );
        let top2: usize = per_as[..2].iter().map(|(_, n)| n).sum();
        assert!(top2 * 2 > total, "top-2 {} of {}", top2, total);
    }

    #[test]
    fn as1_switches_ports_in_may() {
        let cfg = FleetConfig {
            deployment: DeploymentConfig::tiny(),
            start_day: 140,
            end_day: 154, // around 2021-05-27 (day 146)
            ..Default::default()
        };
        let world = World::build(cfg);
        let as1 = &world.fleet.actors[0];
        let recs = as1.generate(1);
        let switch = SimTime::from_date(2021, 5, 27).ms();
        let before: std::collections::HashSet<u16> = recs
            .iter()
            .filter(|r| r.ts_ms < switch)
            .map(|r| r.dport)
            .collect();
        let after: std::collections::HashSet<u16> = recs
            .iter()
            .filter(|r| r.ts_ms >= switch)
            .map(|r| r.dport)
            .collect();
        assert!(before.len() > 100, "{} ports before", before.len());
        assert_eq!(
            {
                let mut v: Vec<u16> = after.into_iter().collect();
                v.sort_unstable();
                v
            },
            vec![22, 3389, 8080, 8443]
        );
    }

    #[test]
    fn as9_only_active_from_november() {
        let world = World::build(FleetConfig::default());
        let nov1 = SimTime::from_date(2021, 11, 1).day_index();
        for a in world
            .fleet
            .actors
            .iter()
            .filter(|a| a.name.starts_with("as9-"))
        {
            assert_eq!(a.schedule.start_day, nov1);
        }
    }

    #[test]
    fn scale_intensity_is_exact_integer_arithmetic() {
        // Identity at 1.0 — including above 2^53, where the old f64
        // round-trip silently lost the low bits.
        assert_eq!(scale_intensity(1500, 1.0), 1500);
        let big = (1u64 << 53) + 1;
        assert_eq!(scale_intensity(big, 1.0), big);
        assert_eq!(
            ((big as f64 * 1.0).round() as u64),
            big - 1,
            "the f64 path this replaces really was lossy"
        );
        // Fractional downscale (the paper's 1:1250): no .max(1) floor, so
        // sub-packet sessions scale to zero instead of inflating totals.
        let down = 1.0 / 1250.0;
        assert_eq!(scale_intensity(1500, down), 1); // 1.2 -> 1
        assert_eq!(scale_intensity(1250, down), 1); // 1.0 -> 1
        assert_eq!(scale_intensity(150, down), 0); // 0.12 -> 0 (was 1)
        assert_eq!(scale_intensity(624, down), 0); // 0.4992 -> 0
        assert_eq!(scale_intensity(625, down), 1); // 0.5 rounds away from zero
                                                   // Integral upscale is exact multiplication.
        assert_eq!(scale_intensity(1500, 1250.0), 1_875_000);
        assert_eq!(scale_intensity(big, 4.0), big * 4);
        // Saturation and degenerate factors.
        assert_eq!(scale_intensity(u64::MAX, 2.0), u64::MAX);
        assert_eq!(scale_intensity(1, f64::MAX), u64::MAX);
        assert_eq!(scale_intensity(1500, 0.0), 0);
        assert_eq!(scale_intensity(1500, -1.0), 0);
        assert_eq!(scale_intensity(1500, f64::NAN), 0);
        assert_eq!(scale_intensity(0, 5.0), 0);
    }

    #[test]
    fn fleet_budget_pinned_at_reference_intensities() {
        // Schedules carry the calibrated 1x budgets; intensity scales the
        // budget at generation time (per session, exact integer
        // arithmetic). The schedules themselves are intensity-independent.
        let world = World::build(FleetConfig::small());
        let base = world.fleet.scheduled_packets(1.0);
        // Intensity 1250.0 is an exactly representable integer scale, so the
        // per-session budget scales exactly 1250x — no f64 drift.
        assert_eq!(world.fleet.scheduled_packets(1250.0), base * 1250);
        // At 1:1250 most mini-actor sessions round to zero packets; the old
        // .max(1) floor would have produced >= one packet per actor
        // (= actors.len() at minimum), inflating the downscaled total.
        let tiny = world.fleet.scheduled_packets(1.0 / 1250.0);
        let actors = world.fleet.actors.len() as u64;
        assert!(tiny < actors, "floor removed: {tiny} < {actors} actors");
        // Emission honors the scaled budget exactly: AS#1 is continuous at
        // 1500 packets/session, so record counts pin per-session scaling
        // through `generate_scaled` itself.
        let as1 = world
            .fleet
            .actors
            .iter()
            .find(|a| a.name == "as1-datacenter-cn")
            .expect("fleet has AS#1");
        let sessions = as1.generate(7).len() as u64 / 1500;
        assert!(sessions > 0);
        assert_eq!(as1.generate_scaled(7, 3.0).len() as u64, sessions * 4500);
        // scale_intensity(1500, 1/1250) = 1.2 -> 1 packet per session.
        assert_eq!(as1.generate_scaled(7, 1.0 / 1250.0).len() as u64, sessions);
    }

    #[test]
    fn as18_minis_use_one_address_per_64_across_the_32() {
        let world = World::build(FleetConfig::default());
        let as18: Vec<&ScannerActor> = world
            .fleet
            .actors
            .iter()
            .filter(|a| a.name.starts_with("as18-"))
            .collect();
        assert_eq!(as18.len(), 106 + 140 + 600);
        let mut prefixes64 = std::collections::HashSet::new();
        for a in &as18 {
            match a.sources {
                SourceSampler::Single(src) => {
                    assert!(prefixes64.insert(src >> 64), "one source per /64");
                }
                _ => panic!("AS18 minis are single-address"),
            }
            assert_eq!(a.ports, PortSampler::Single(Transport::Tcp, 22));
        }
    }
}
