//! Parallel fused generation: [`FleetSource`]'s actor expansion spread
//! across N generator threads with a deterministic k-way merge.
//!
//! [`FleetSource`](crate::FleetSource) is generation-bound: every record
//! costs several RNG draws, and a single thread expanding all actors caps
//! fused throughput well below what the detector backends can absorb.
//! [`ParallelFleetSource`] partitions the fleet's actors round-robin across
//! N worker threads. Each worker runs its actors' [`ActorStream`]s and a
//! *local* merge over them, emits time-sliced sorted runs (a
//! [`RecordBatch`] plus the per-record stream index) into a bounded
//! channel, and the consumer k-way-merges the lane heads together with the
//! materialized artifact/noise streams.
//!
//! # Determinism
//!
//! The output is byte-identical to [`FleetSource`](crate::FleetSource) for
//! the same [`World`], regardless of thread count or scheduling:
//!
//! - The sequential merge delivers records in ascending (timestamp, stream
//!   index) order, where the stream index is the actor's fleet position
//!   (artifacts and noise follow at indices A and A+1). That key is a total
//!   order over the *record sequence itself*, not over any runtime state.
//! - Every worker emits its own subset already sorted by that key (its
//!   local merge uses the same key restricted to its actors), so each lane
//!   is a sorted run of a disjoint subset.
//! - The consumer pops the smallest (timestamp, stream index) among the
//!   lane heads and the fixed-stream cursors. Merging disjoint sorted
//!   subsequences of one totally ordered sequence reconstructs that
//!   sequence exactly — no scheduling order can change which key is
//!   smallest.
//! - The capture filter ([`FirewallCapture::logs`]) is a pure per-record
//!   predicate, so applying it worker-side before the merge deletes the
//!   same records it would delete after, and cuts channel volume.
//!
//! The alternative design — routing each actor partition straight into a
//! shard of the sharded detector, skipping the merge — was rejected:
//! `ShardedDetector` shards by *aggregated source prefix*, which does not
//! align with actor identity (one actor's sources can span shards, and a
//! shard's sources span actors), so partition-aligned routing would change
//! observation order per shard and break byte-identity with the sequential
//! backends.
//!
//! # Bounded memory
//!
//! Worker-side buffering is the same per-actor release heaps as the fused
//! source. Channel-side buffering is bounded by construction: each lane
//! circulates exactly [`LANE_DEPTH`] recycled run buffers of at most
//! [`RUN_RECORDS`] records each — a worker that outruns the consumer
//! blocks waiting for a free buffer, it never allocates more. The
//! [`peak_buffered_records`](ParallelFleetSource::peak_buffered_records)
//! accessor (and its pinned test) covers all three tiers: worker heap
//! entries, records in flight in the channels, and the consumer-held lane
//! heads.
//!
//! # Telemetry
//!
//! Per-record accounting stays allocation- and atomic-free; counters are
//! flushed at run boundaries (`scanners.fleet.packets_emitted.*`, same
//! names as the sequential source). Pipeline health metrics:
//! `scanners.parallel.merge_stalls` (consumer blocked on an empty lane —
//! generation is the bottleneck), `scanners.parallel.recycle_stalls` is
//! implicit in its absence (a worker blocked for a free buffer shows up as
//! zero stalls and full channels), `scanners.parallel.channel_depth`
//! (runs in flight), and `scanners.parallel.buffered_records` (total
//! buffered across all tiers).

use crate::fleet::World;
use crate::fleet_source::{fixed_streams, ActorStream, FixedCursor};
use lumen6_telescope::{CaptureConfig, FirewallCapture};
use lumen6_trace::{CodecError, PacketRecord, RecordBatch, Source, TracePosition};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Records per emitted run: large enough to amortize channel traffic, small
/// enough that a lane's circulation set stays in cache.
const RUN_RECORDS: usize = 4_096;

/// Run buffers circulating per lane. Total channel-side buffering per lane
/// is `LANE_DEPTH * RUN_RECORDS` records, by construction.
const LANE_DEPTH: usize = 4;

/// One sorted run from a generator thread: filtered records plus the
/// per-record global stream index (the merge tie-break key).
#[derive(Debug)]
struct Run {
    recs: RecordBatch,
    si: Vec<u32>,
}

impl Run {
    fn new() -> Run {
        Run {
            recs: RecordBatch::with_capacity(RUN_RECORDS),
            si: Vec::with_capacity(RUN_RECORDS),
        }
    }
}

/// Shared occupancy accounting for one lane, updated at run boundaries
/// (never per record).
#[derive(Debug, Default)]
struct LaneStats {
    /// Runs currently in the data channel (sent minus received).
    runs_in_flight: AtomicU64,
    /// Filtered records currently in the data channel.
    records_in_flight: AtomicU64,
    /// Release-heap entries held worker-side, sampled per run.
    held_entries: AtomicU64,
}

/// Consumer-side state of one generator thread.
#[derive(Debug)]
struct Lane {
    data: Option<Receiver<Run>>,
    recycle: Option<SyncSender<Run>>,
    handle: Option<JoinHandle<()>>,
    stats: Arc<LaneStats>,
    head: Option<Run>,
    cursor: usize,
    done: bool,
}

/// Expands `actor_ids`' streams, locally merged by the global (timestamp,
/// stream index) key, and ships filtered sorted runs until exhausted or
/// the consumer disconnects.
fn generator_worker(
    world: Arc<World>,
    actor_ids: Vec<usize>,
    capture: CaptureConfig,
    data: SyncSender<Run>,
    recycle: Receiver<Run>,
    stats: Arc<LaneStats>,
) {
    let cfg = world.config();
    let (seed, intensity) = (cfg.seed, cfg.intensity);
    let mut streams: Vec<ActorStream> = actor_ids
        .iter()
        .map(|&ai| ActorStream::new(&world.fleet.actors[ai], seed, intensity))
        .collect();
    // Local merge frontier: (timestamp, global stream index, local
    // position). The global index orders; the position locates.
    let mut merge: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (pos, s) in streams.iter_mut().enumerate() {
        let ai = actor_ids[pos];
        if let Some(ts) = s.peek_ts(&world.fleet.actors[ai]) {
            merge.push(Reverse((ts, ai, pos)));
        }
    }
    // Pre-filter emission counters, one per distinct target-strategy kind
    // among this worker's actors — same names as the sequential source, so
    // totals are partition-invariant.
    let reg = lumen6_obs::MetricsRegistry::global();
    let mut counters: Vec<lumen6_obs::Counter> = Vec::new();
    let mut index_of: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let counter_of_pos: Vec<usize> = actor_ids
        .iter()
        .map(|&ai| {
            let kind = world.fleet.actors[ai].targets.kind();
            *index_of.entry(kind).or_insert_with(|| {
                counters.push(reg.counter(&format!("scanners.fleet.packets_emitted.{kind}")));
                counters.len() - 1
            })
        })
        .collect();
    let mut pending = vec![0u64; counters.len()];

    let filter = FirewallCapture::new(&world.deployment, capture);
    loop {
        // Bounded by construction: the only buffers are the LANE_DEPTH
        // runs circulating through the recycle channel.
        let Ok(mut run) = recycle.recv() else {
            return; // consumer dropped the lane
        };
        run.recs.clear();
        run.si.clear();
        while run.recs.len() < RUN_RECORDS {
            let Some(Reverse((_, ai, pos))) = merge.pop() else {
                break; // this worker's actors are exhausted
            };
            let actor = &world.fleet.actors[ai];
            let Some(rec) = streams[pos].pop(actor) else {
                continue; // unreachable: frontier entries are confirmed
            };
            if let Some(ts) = streams[pos].peek_ts(actor) {
                merge.push(Reverse((ts, ai, pos)));
            }
            pending[counter_of_pos[pos]] += 1;
            if filter.logs(&rec) {
                run.recs.push(rec);
                run.si.push(ai as u32);
            }
        }
        for (c, n) in counters.iter().zip(pending.iter_mut()) {
            if *n > 0 {
                c.add(*n);
                *n = 0;
            }
        }
        stats.held_entries.store(
            streams.iter().map(|s| s.heap.len() as u64).sum(),
            Ordering::Relaxed,
        );
        if run.recs.is_empty() {
            // Exhausted: dropping `data` disconnects the lane, which the
            // consumer reads as this lane's end of stream.
            return;
        }
        stats.runs_in_flight.fetch_add(1, Ordering::Relaxed);
        stats
            .records_in_flight
            .fetch_add(run.recs.len() as u64, Ordering::Relaxed);
        if data.send(run).is_err() {
            return; // consumer dropped the lane
        }
    }
}

/// A [`Source`] producing the same record sequence as
/// [`FleetSource`](crate::FleetSource) — byte-identical for any thread
/// count — with `ActorStream` expansion spread across generator threads.
/// See the module docs for the determinism argument.
#[derive(Debug)]
pub struct ParallelFleetSource {
    world: Arc<World>,
    capture: CaptureConfig,
    gen_threads: usize,
    lanes: Vec<Lane>,
    /// Materialized artifact and noise streams (base size; intensity
    /// repeats are applied by the cursors).
    fixed: [Vec<PacketRecord>; 2],
    fixed_scaled: [u64; 2],
    fixed_cur: [FixedCursor; 2],
    delivered: u64,
    prev_ts: u64,
    fixed_counters: [lumen6_obs::Counter; 2],
    fixed_pending: [u64; 2],
    merge_stalls: lumen6_obs::Counter,
    runs_merged: lumen6_obs::Counter,
    depth_gauge: lumen6_obs::Gauge,
    buffered_gauge: lumen6_obs::Gauge,
    threads_gauge: lumen6_obs::Gauge,
    peak_buffered: u64,
}

impl ParallelFleetSource {
    /// Builds a parallel fused source over `world` with the default
    /// capture filter. `gen_threads` is clamped to `1..=actor count`.
    pub fn new(world: World, gen_threads: usize) -> ParallelFleetSource {
        ParallelFleetSource::with_capture(world, CaptureConfig::default(), gen_threads)
    }

    /// Builds a parallel fused source with an explicit capture filter.
    pub fn with_capture(
        world: World,
        capture: CaptureConfig,
        gen_threads: usize,
    ) -> ParallelFleetSource {
        let world = Arc::new(world);
        let gen_threads = gen_threads.max(1).min(world.fleet.actors.len().max(1));
        let fixed = fixed_streams(&world);
        let intensity = world.config().intensity;
        let fixed_scaled = [
            crate::fleet::scale_intensity(fixed[0].len() as u64, intensity),
            crate::fleet::scale_intensity(fixed[1].len() as u64, intensity),
        ];
        let reg = lumen6_obs::MetricsRegistry::global();
        let mut src = ParallelFleetSource {
            world,
            capture,
            gen_threads,
            lanes: Vec::new(),
            fixed,
            fixed_scaled,
            fixed_cur: [FixedCursor::default(), FixedCursor::default()],
            delivered: 0,
            prev_ts: 0,
            fixed_counters: [
                reg.counter("scanners.fleet.packets_emitted.artifacts"),
                reg.counter("scanners.fleet.packets_emitted.noise"),
            ],
            fixed_pending: [0, 0],
            merge_stalls: reg.counter("scanners.parallel.merge_stalls"),
            runs_merged: reg.counter("scanners.parallel.runs_merged"),
            depth_gauge: reg.gauge("scanners.parallel.channel_depth"),
            buffered_gauge: reg.gauge("scanners.parallel.buffered_records"),
            threads_gauge: reg.gauge("scanners.parallel.gen_threads"),
            peak_buffered: 0,
        };
        src.start();
        src
    }

    /// The world this source generates from.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Records delivered (post-filter) so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Effective generator thread count (after clamping).
    pub fn gen_threads(&self) -> usize {
        self.gen_threads
    }

    /// Peak buffered records observed so far, across all tiers: worker
    /// release-heap entries, records in flight in the lane channels, and
    /// consumer-held lane heads. Sampled at fill boundaries; the pinned
    /// bounded-memory test asserts it does not scale with trace length.
    pub fn peak_buffered_records(&self) -> u64 {
        self.peak_buffered
    }

    /// Spawns the generator threads and primes the fixed-stream cursors.
    fn start(&mut self) {
        let actors = self.world.fleet.actors.len();
        let n = self.gen_threads;
        self.threads_gauge.set(n as i64);
        self.lanes = (0..n)
            .map(|k| {
                // Round-robin partition: balances the per-kind expansion
                // cost better than contiguous blocks, and keeps each
                // lane's id list ascending (so its runs are sorted runs
                // of a disjoint subset).
                let ids: Vec<usize> = (k..actors).step_by(n).collect();
                let (data_tx, data_rx) = sync_channel::<Run>(LANE_DEPTH);
                let (recycle_tx, recycle_rx) = sync_channel::<Run>(LANE_DEPTH);
                for _ in 0..LANE_DEPTH {
                    // Seed the circulation set. Capacity equals the buffer
                    // count, so recycling sends can never block.
                    let _ = recycle_tx.send(Run::new());
                }
                let stats = Arc::new(LaneStats::default());
                let worker_world = Arc::clone(&self.world);
                let worker_capture = self.capture.clone();
                let worker_stats = Arc::clone(&stats);
                let handle = std::thread::spawn(move || {
                    generator_worker(
                        worker_world,
                        ids,
                        worker_capture,
                        data_tx,
                        recycle_rx,
                        worker_stats,
                    );
                });
                Lane {
                    data: Some(data_rx),
                    recycle: Some(recycle_tx),
                    handle: Some(handle),
                    stats,
                    head: None,
                    cursor: 0,
                    done: false,
                }
            })
            .collect();
        self.fixed_cur = [FixedCursor::default(), FixedCursor::default()];
        for (fi, stream) in self.fixed.iter().enumerate() {
            self.fixed_cur[fi].normalize(stream.len() as u64, self.fixed_scaled[fi]);
        }
    }

    /// Disconnects all lanes and joins the generator threads. Dropping the
    /// channel endpoints unblocks workers stuck in `send` (data) or `recv`
    /// (recycle), so the joins cannot deadlock.
    fn shutdown(&mut self) {
        for lane in &mut self.lanes {
            lane.data = None;
            lane.recycle = None;
            lane.head = None;
        }
        for lane in &mut self.lanes {
            if let Some(h) = lane.handle.take() {
                let _ = h.join();
            }
        }
        self.lanes.clear();
    }

    /// Rewinds to the beginning: restarts the generator threads (same
    /// seed, same draws) and resets the fixed cursors.
    fn rewind(&mut self) {
        self.shutdown();
        self.delivered = 0;
        self.prev_ts = 0;
        self.start();
    }

    /// Ensures lane `li` has an unconsumed head record, blocking for the
    /// worker's next run when the current one is drained. Returns `false`
    /// once the lane is exhausted.
    fn ensure_head(&mut self, li: usize) -> bool {
        if self.lanes[li].done {
            return false;
        }
        loop {
            {
                let lane = &self.lanes[li];
                if let Some(run) = &lane.head {
                    if lane.cursor < run.recs.len() {
                        return true;
                    }
                }
            }
            // Drained (or never had) a head: recycle it, fetch the next.
            if let Some(run) = self.lanes[li].head.take() {
                self.lanes[li].cursor = 0;
                if let Some(tx) = &self.lanes[li].recycle {
                    let _ = tx.send(run); // worker gone: buffer just drops
                }
            }
            let next = {
                let lane = &self.lanes[li];
                match &lane.data {
                    None => None,
                    Some(rx) => match rx.try_recv() {
                        Ok(run) => Some(run),
                        Err(TryRecvError::Empty) => {
                            // Generation is behind the merge: the stall
                            // counter is the "generators are the
                            // bottleneck" occupancy signal.
                            self.merge_stalls.add(1);
                            rx.recv().ok()
                        }
                        Err(TryRecvError::Disconnected) => None,
                    },
                }
            };
            match next {
                Some(run) => {
                    self.runs_merged.add(1);
                    let lane = &mut self.lanes[li];
                    lane.stats.runs_in_flight.fetch_sub(1, Ordering::Relaxed);
                    lane.stats
                        .records_in_flight
                        .fetch_sub(run.recs.len() as u64, Ordering::Relaxed);
                    lane.head = Some(run);
                    lane.cursor = 0;
                    // Workers never send empty runs, so the next loop
                    // iteration returns true.
                }
                None => {
                    let lane = &mut self.lanes[li];
                    lane.done = true;
                    lane.data = None;
                    lane.recycle = None;
                    return false;
                }
            }
        }
    }

    /// Samples channel/heap occupancy into the gauges and the peak
    /// tracker. Called at fill boundaries, never per record.
    fn sample_buffering(&mut self) {
        let mut runs = 0u64;
        let mut buffered = 0u64;
        for lane in &self.lanes {
            runs += lane.stats.runs_in_flight.load(Ordering::Relaxed);
            buffered += lane.stats.records_in_flight.load(Ordering::Relaxed);
            buffered += lane.stats.held_entries.load(Ordering::Relaxed);
            if let Some(run) = &lane.head {
                buffered += (run.recs.len() - lane.cursor) as u64;
            }
        }
        self.depth_gauge.set(runs as i64);
        self.buffered_gauge.set(buffered as i64);
        self.peak_buffered = self.peak_buffered.max(buffered);
    }

    /// Produces up to `max` logged records, appending to `out` when given
    /// (resume-skip passes `None`). Returns how many were produced; fewer
    /// than `max` means end of stream.
    fn produce(&mut self, mut out: Option<&mut RecordBatch>, max: usize) -> usize {
        let world = Arc::clone(&self.world);
        // Consumer-side filter for the fixed streams only — actor records
        // arrive pre-filtered from the workers.
        let filter = FirewallCapture::new(&world.deployment, self.capture.clone());
        let actors = world.fleet.actors.len();
        let lanes = self.lanes.len();
        let mut produced = 0usize;
        while produced < max {
            // The candidate with the smallest (timestamp, stream index)
            // key is next — exactly the sequential merge order.
            let mut best: Option<(u64, u32, usize)> = None;
            for li in 0..lanes {
                if !self.ensure_head(li) {
                    continue;
                }
                let lane = &self.lanes[li];
                let Some(run) = &lane.head else { continue };
                let key = (run.recs.ts_ms()[lane.cursor], run.si[lane.cursor]);
                if best.is_none_or(|(ts, si, _)| key < (ts, si)) {
                    best = Some((key.0, key.1, li));
                }
            }
            for (fi, stream) in self.fixed.iter().enumerate() {
                if let Some(r) = stream.get(self.fixed_cur[fi].pos) {
                    let key = (r.ts_ms, (actors + fi) as u32);
                    if best.is_none_or(|(ts, si, _)| key < (ts, si)) {
                        best = Some((key.0, key.1, lanes + fi));
                    }
                }
            }
            let Some((_, _, src)) = best else {
                break; // all lanes and fixed streams exhausted
            };
            if src < lanes {
                let lane = &mut self.lanes[src];
                let Some(run) = &lane.head else {
                    continue; // unreachable: ensure_head confirmed it
                };
                let rec = run.recs.get(lane.cursor);
                lane.cursor += 1;
                produced += 1;
                self.delivered += 1;
                self.prev_ts = rec.ts_ms;
                if let Some(batch) = out.as_deref_mut() {
                    batch.push(rec);
                }
            } else {
                let fi = src - lanes;
                let cur = &mut self.fixed_cur[fi];
                let Some(&rec) = self.fixed[fi].get(cur.pos) else {
                    continue; // unreachable: the scan confirmed it
                };
                cur.rem -= 1;
                if cur.rem == 0 {
                    cur.pos += 1;
                    cur.normalize(self.fixed[fi].len() as u64, self.fixed_scaled[fi]);
                }
                self.fixed_pending[fi] += 1;
                if filter.logs(&rec) {
                    produced += 1;
                    self.delivered += 1;
                    self.prev_ts = rec.ts_ms;
                    if let Some(batch) = out.as_deref_mut() {
                        batch.push(rec);
                    }
                }
            }
        }
        for fi in 0..2 {
            if self.fixed_pending[fi] > 0 {
                self.fixed_counters[fi].add(self.fixed_pending[fi]);
                self.fixed_pending[fi] = 0;
            }
        }
        self.sample_buffering();
        produced
    }
}

impl Drop for ParallelFleetSource {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Source for ParallelFleetSource {
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError> {
        out.clear();
        Ok(self.produce(Some(out), max))
    }

    fn position(&self) -> TracePosition {
        TracePosition {
            offset: self.delivered,
            prev_ts: self.prev_ts,
        }
    }

    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError> {
        self.rewind();
        let mut remaining = at.offset;
        while remaining > 0 {
            let step = usize::try_from(remaining).unwrap_or(usize::MAX).min(65_536);
            let n = self.produce(None, step);
            if n == 0 {
                return Err(CodecError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "resume offset {} beyond fleet stream of {} records",
                        at.offset, self.delivered
                    ),
                )));
            }
            remaining -= n as u64;
        }
        if at.offset > 0 && self.prev_ts != at.prev_ts {
            return Err(CodecError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "resume timestamp mismatch at offset {}: checkpoint recorded {} but the \
                     regenerated stream has {} (was the checkpoint taken against a different \
                     seed or fleet configuration?)",
                    at.offset, at.prev_ts, self.prev_ts
                ),
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::fleet_source::FleetSource;
    use lumen6_telescope::DeploymentConfig;
    use proptest::prelude::*;

    fn tiny_config(seed: u64, intensity: f64, end_day: u64) -> FleetConfig {
        FleetConfig {
            seed,
            intensity,
            end_day,
            ..FleetConfig::small()
        }
    }

    fn drain(src: &mut dyn Source, max: usize) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        let mut batch = RecordBatch::new();
        loop {
            let n = src.fill(&mut batch, max).expect("fill is infallible");
            if n == 0 {
                break;
            }
            out.extend(batch.iter());
        }
        out
    }

    #[test]
    fn parallel_matches_sequential_fused_across_thread_counts() {
        let cfg = tiny_config(42, 1.0, 14);
        let expected = {
            let mut src = FleetSource::new(World::build(cfg.clone()));
            drain(&mut src, 4096)
        };
        assert!(expected.len() > 1_000, "trace too small to be meaningful");
        for n in [1, 2, 4, 8] {
            let mut src = ParallelFleetSource::new(World::build(cfg.clone()), n);
            assert_eq!(drain(&mut src, 4096), expected, "gen_threads={n}");
        }
    }

    #[test]
    fn parallel_matches_at_fractional_and_high_intensity() {
        for intensity in [0.3, 10.0] {
            let cfg = tiny_config(7, intensity, 7);
            let expected = {
                let mut src = FleetSource::new(World::build(cfg.clone()));
                drain(&mut src, 512)
            };
            let mut src = ParallelFleetSource::new(World::build(cfg.clone()), 3);
            assert_eq!(drain(&mut src, 512), expected, "intensity={intensity}");
        }
    }

    #[test]
    fn position_resume_continues_exactly_across_thread_counts() {
        let cfg = tiny_config(42, 1.0, 10);
        let full = {
            let mut src = ParallelFleetSource::new(World::build(cfg.clone()), 2);
            drain(&mut src, 256)
        };
        assert!(full.len() > 500);
        let mut src = ParallelFleetSource::new(World::build(cfg.clone()), 2);
        let mut batch = RecordBatch::new();
        let mut head = Vec::new();
        for _ in 0..3 {
            src.fill(&mut batch, 200).expect("fill");
            head.extend(batch.iter());
        }
        let pos = src.position();
        assert_eq!(pos.offset, 600);
        // A checkpoint written by a 2-thread run resumes under a different
        // gen-thread count: the position is a property of the record
        // sequence, which is thread-count-invariant.
        for n in [1, 4] {
            let mut fresh = ParallelFleetSource::new(World::build(cfg.clone()), n);
            fresh.resume(pos).expect("resume");
            let mut rest = head.clone();
            rest.extend(drain(&mut fresh, 333));
            assert_eq!(rest, full, "resume with gen_threads={n}");
        }
        // And the plain fused source accepts the same position (and vice
        // versa): the two implementations share the position contract.
        let mut fused = FleetSource::new(World::build(cfg));
        fused
            .resume(pos)
            .expect("fused resume of parallel position");
        head.extend(drain(&mut fused, 333));
        assert_eq!(head, full);
    }

    #[test]
    fn resume_rejects_foreign_positions() {
        let cfg = tiny_config(42, 1.0, 7);
        let n = {
            let mut src = ParallelFleetSource::new(World::build(cfg.clone()), 2);
            drain(&mut src, 512).len() as u64
        };
        let mut s2 = ParallelFleetSource::new(World::build(cfg.clone()), 2);
        assert!(s2
            .resume(TracePosition {
                offset: n + 1,
                prev_ts: 0,
            })
            .is_err());
        let mut s3 = ParallelFleetSource::new(World::build(cfg), 2);
        assert!(s3
            .resume(TracePosition {
                offset: 10,
                prev_ts: u64::MAX,
            })
            .is_err());
    }

    #[test]
    fn peak_buffered_records_do_not_scale_with_trace_length() {
        // The bounded-memory claim under parallel generation: buffering
        // (worker heaps + channel runs + consumer heads) is set by the
        // lane depth and concurrent session budgets, not by how many days
        // the trace spans.
        fn run(end_day: u64) -> (u64, u64) {
            let mut src = ParallelFleetSource::new(World::build(tiny_config(42, 1.0, end_day)), 4);
            let mut batch = RecordBatch::new();
            while src.fill(&mut batch, 1024).expect("fill") > 0 {}
            (src.peak_buffered_records(), src.delivered())
        }
        let (peak_short, total_short) = run(14);
        let (peak_long, total_long) = run(42);
        assert!(
            total_long > total_short * 2,
            "window did not grow the trace: {total_short} → {total_long}"
        );
        assert!(
            peak_long < peak_short * 2,
            "peak buffering scaled with trace length: {peak_short} → {peak_long} \
             while the trace grew {total_short} → {total_long}"
        );
        assert!(
            peak_long > 0,
            "peak tracker never observed any buffered records"
        );
    }

    proptest! {
        /// Differential battery: parallel fused == fused for arbitrary
        /// seeds across the gen-threads × batch × intensity grid.
        #[test]
        fn parallel_matches_fused_for_arbitrary_configs(
            seed in 0u64..1_000,
            gen_threads in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
            intensity_milli in prop_oneof![Just(100u64), Just(1_000), Just(25_000)],
            max in prop_oneof![Just(1usize), Just(64), Just(8_192)],
        ) {
            let cfg = FleetConfig {
                seed,
                intensity: intensity_milli as f64 / 1_000.0,
                end_day: 4,
                deployment: DeploymentConfig {
                    machines: 40,
                    ases: 5,
                    dns_pairs: 25,
                    ..Default::default()
                },
                noise_sources_per_day: 4,
                ..FleetConfig::small()
            };
            let expected = {
                let mut src = FleetSource::new(World::build(cfg.clone()));
                drain(&mut src, max)
            };
            let mut src = ParallelFleetSource::new(World::build(cfg), gen_threads);
            prop_assert_eq!(drain(&mut src, max), expected);
        }
    }
}
