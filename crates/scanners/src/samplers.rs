//! Composable samplers for scan-source addresses, target addresses, and
//! destination ports.

use lumen6_addr::{gen, Ipv6Prefix};
use lumen6_trace::Transport;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a scanner chooses the source address of each probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceSampler {
    /// Every probe from one fixed address (the paper's AS#1).
    Single(u128),
    /// Probes rotate over a fixed pool of addresses (AS#2: 5 addresses in
    /// one /64; AS#3: 12).
    Pool(Vec<u128>),
    /// A base address with the lowest `bits` bits randomized per probe
    /// (AS#9 varied the lowest 7–9 bits).
    VaryLowBits {
        /// The base /128.
        base: u128,
        /// Number of low bits randomized.
        bits: u8,
    },
    /// A fresh uniformly random address inside the prefix for every probe
    /// (AS#18 sourcing from its entire /32).
    RandomInPrefix(Ipv6Prefix),
    /// The pool used in contiguous time slices: address `i` owns the probe
    /// stream during slice `i`, cycling round-robin. Models scan tools that
    /// rotate their source address every so often — each /128 produces
    /// short, individually qualifying scan runs while the covering /64's
    /// run spans the whole session (the §3.1 duration-vs-aggregation
    /// effect).
    TimeSliced {
        /// The rotating address pool.
        pool: Vec<u128>,
        /// Slice length in milliseconds.
        slice_ms: u64,
    },
    /// A two-level spread: pick one of `subnets`, then one of the
    /// `hosts_per_subnet` deterministic host addresses inside it. Models
    /// actors with a bounded set of machines spread over many prefixes
    /// (AS#18's ~1 100 active /48s; multi-tenant clouds).
    SpreadSubnets {
        /// The sub-prefixes hosts live in.
        subnets: Vec<Ipv6Prefix>,
        /// Distinct host addresses per subnet.
        hosts_per_subnet: u32,
    },
}

impl SourceSampler {
    /// Draws one source address for a probe sent at `ts_ms`.
    pub fn sample(&self, rng: &mut SmallRng, ts_ms: u64) -> u128 {
        match self {
            SourceSampler::Single(a) => *a,
            SourceSampler::Pool(pool) => pool[rng.gen_range(0..pool.len())],
            SourceSampler::TimeSliced { pool, slice_ms } => {
                let idx = (ts_ms / slice_ms.max(&1)) as usize % pool.len();
                pool[idx]
            }
            SourceSampler::VaryLowBits { base, bits } => gen::vary_low_bits(rng, *base, *bits),
            SourceSampler::RandomInPrefix(p) => gen::random_in_prefix(rng, *p),
            SourceSampler::SpreadSubnets {
                subnets,
                hosts_per_subnet,
            } => {
                let sub = subnets[rng.gen_range(0..subnets.len())];
                let host = rng.gen_range(0..*hosts_per_subnet);
                // Deterministic host address: low bits carry the host index
                // with a subnet-dependent offset, keeping IIDs structured.
                sub.bits() | (u128::from(host) + 1)
            }
        }
    }

    /// A pool of `count` addresses inside one /64, with small structured
    /// IIDs — convenience constructor for the "k addresses in one /64"
    /// actors.
    pub fn pool_in_64(net64: u64, count: u32) -> SourceSampler {
        SourceSampler::Pool(
            (1..=u128::from(count))
                .map(|i| ((net64 as u128) << 64) | (0x10 + i))
                .collect(),
        )
    }
}

/// IID structure of generated target addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IidMode {
    /// Low-Hamming-weight, hitlist-like IIDs (structured target generation;
    /// the AS#1 / AS#3 pattern in Fig. 7).
    LowHamming(u32),
    /// Uniformly random IIDs (the December-24 scanner: Gaussian Hamming
    /// weight).
    Random,
}

/// How a scanner chooses target addresses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TargetSampler {
    /// Sweep a fixed list (a DNS-derived hitlist). Probes draw uniformly.
    Hitlist(Vec<u128>),
    /// Mostly hitlist, but with probability `explore_prob` follow a hit
    /// with a probe to a *nearby* address (same /(128-span)): the §3.3
    /// "found via DNS, then probe the neighborhood" behavior.
    HitlistNearby {
        /// The seed hitlist.
        hitlist: Vec<u128>,
        /// Probability of emitting a nearby follow-up probe.
        explore_prob: f64,
        /// Neighborhood size in low bits (4 → within a /124).
        span_bits: u8,
    },
    /// Draw from two pools: with probability `hidden_frac` from `hidden`
    /// (not-in-DNS pair members), otherwise from `exposed`. Models AS#18's
    /// 50% not-in-DNS targeting.
    PairMix {
        /// DNS-exposed pool.
        exposed: Vec<u128>,
        /// Not-in-DNS pool.
        hidden: Vec<u128>,
        /// Fraction of probes drawn from the hidden pool.
        hidden_frac: f64,
    },
    /// Probe a DNS-discovered address and, with probability `explore_prob`,
    /// follow up on its not-in-DNS *pair partner* (an address nearby in
    /// address space, within the same /123 at the telescope). This is the
    /// §3.3 "target found via DNS, then scanner probes other addresses that
    /// are nearby" behavior, with both probes landing on telescope
    /// addresses so the firewall actually logs them.
    PairExplore {
        /// (exposed, hidden) telescope address pairs.
        pairs: Vec<(u128, u128)>,
        /// Probability of the nearby follow-up probe.
        explore_prob: f64,
    },
    /// Sweep destination prefixes with generated IIDs: pick a prefix, pick
    /// a /64 within it, generate an IID. `dsts_per_64` bounds how many
    /// distinct /64 offsets are used per prefix (the paper measures a
    /// median of 2 targets per destination /64 for AS#1/AS#3, and exactly 1
    /// for the December-24 scanner).
    PrefixSweep {
        /// Destination networks to sweep.
        prefixes: Vec<Ipv6Prefix>,
        /// IID generation mode.
        iid: IidMode,
        /// Distinct /64 subnets sampled per prefix.
        subnets_per_prefix: u32,
    },
}

impl TargetSampler {
    /// Stable snake_case strategy name, used as the metric label in
    /// `scanners.fleet.packets_emitted.<kind>`.
    pub fn kind(&self) -> &'static str {
        match self {
            TargetSampler::Hitlist(_) => "hitlist",
            TargetSampler::HitlistNearby { .. } => "hitlist_nearby",
            TargetSampler::PairMix { .. } => "pair_mix",
            TargetSampler::PairExplore { .. } => "pair_explore",
            TargetSampler::PrefixSweep { .. } => "prefix_sweep",
        }
    }

    /// Draws the next target(s): usually one, sometimes two (a hit followed
    /// by a nearby exploration probe, which must come *after* the hit).
    pub fn sample(&self, rng: &mut SmallRng, out: &mut Vec<u128>) {
        match self {
            TargetSampler::Hitlist(list) => {
                out.push(list[rng.gen_range(0..list.len())]);
            }
            TargetSampler::HitlistNearby {
                hitlist,
                explore_prob,
                span_bits,
            } => {
                let hit = hitlist[rng.gen_range(0..hitlist.len())];
                out.push(hit);
                if rng.gen_bool(*explore_prob) {
                    out.push(gen::nearby_addr(rng, hit, *span_bits));
                }
            }
            TargetSampler::PairMix {
                exposed,
                hidden,
                hidden_frac,
            } => {
                let pool = if rng.gen_bool(*hidden_frac) {
                    hidden
                } else {
                    exposed
                };
                out.push(pool[rng.gen_range(0..pool.len())]);
            }
            TargetSampler::PairExplore {
                pairs,
                explore_prob,
            } => {
                let (exposed, hidden) = pairs[rng.gen_range(0..pairs.len())];
                out.push(exposed);
                if rng.gen_bool(*explore_prob) {
                    out.push(hidden);
                }
            }
            TargetSampler::PrefixSweep {
                prefixes,
                iid,
                subnets_per_prefix,
            } => {
                let p = prefixes[rng.gen_range(0..prefixes.len())];
                let sub = rng.gen_range(0..u128::from(*subnets_per_prefix));
                let p64 = p.nth_subnet(64, sub).unwrap_or_else(|| p.aggregate(64));
                let net64 = (p64.bits() >> 64) as u64;
                let addr = match iid {
                    IidMode::LowHamming(w) => gen::low_weight_iid(rng, net64, *w),
                    IidMode::Random => gen::random_iid(rng, net64),
                };
                out.push(addr);
            }
        }
    }
}

/// How a scanner chooses destination ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PortSampler {
    /// One service only (AS#18 probed just TCP/22).
    Single(Transport, u16),
    /// A fixed set, drawn uniformly (AS#2's ≈635 ports).
    Set(Transport, Vec<u16>),
    /// A uniform sweep of `1..=max` (AS#3's ~45 K TCP ports).
    UniformRange(Transport, u16),
    /// Strategy switch at an absolute time: AS#1 scanned ~444 ports until
    /// May 2021, then only {22, 3389, 8080, 8443}.
    SwitchAt {
        /// Switch time (ms since epoch).
        at_ms: u64,
        /// Strategy before the switch.
        before: Box<PortSampler>,
        /// Strategy after the switch.
        after: Box<PortSampler>,
    },
    /// ICMPv6 echo requests (no ports; type 128 code 0).
    Icmpv6Echo,
    /// A progressive port sweep: each day the scanner concentrates on a
    /// different `per_day`-sized window of the pool (the paper's A.3 notes
    /// an entity scanning "different port numbers progressively in distinct
    /// scanning episodes"). Keeps per-port destination counts high enough
    /// to register in per-port detectors while still covering hundreds of
    /// ports over weeks.
    DailyRotate {
        /// Transport protocol.
        proto: Transport,
        /// The full port pool rotated through.
        pool: Vec<u16>,
        /// Ports targeted per day.
        per_day: usize,
    },
}

impl PortSampler {
    /// Draws (protocol, source-port-irrelevant destination port) for a probe
    /// at time `ts_ms`.
    pub fn sample(&self, rng: &mut SmallRng, ts_ms: u64) -> (Transport, u16) {
        match self {
            PortSampler::Single(t, p) => (*t, *p),
            PortSampler::Set(t, ports) => (*t, ports[rng.gen_range(0..ports.len())]),
            PortSampler::UniformRange(t, max) => (*t, rng.gen_range(1..=*max)),
            PortSampler::SwitchAt {
                at_ms,
                before,
                after,
            } => {
                if ts_ms < *at_ms {
                    before.sample(rng, ts_ms)
                } else {
                    after.sample(rng, ts_ms)
                }
            }
            PortSampler::Icmpv6Echo => (Transport::Icmpv6, 0),
            PortSampler::DailyRotate {
                proto,
                pool,
                per_day,
            } => {
                let day = ts_ms / lumen6_trace::DAY_MS;
                // splitmix-style day hash selects the window offset.
                let mut h = day.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                let per = (*per_day).clamp(1, pool.len());
                let offset = (h as usize) % pool.len();
                let j = rng.gen_range(0..per);
                (*proto, pool[(offset + j) % pool.len()])
            }
        }
    }

    /// The first `n` well-known-ish TCP ports used by the multi-port
    /// actors: a deterministic blend of the paper's Table 3 services padded
    /// with low registered ports.
    pub fn common_tcp_ports(n: usize) -> Vec<u16> {
        const HEAD: [u16; 22] = [
            22, 23, 25, 21, 110, 143, 993, 995, 1433, 3128, 3306, 3389, 5900, 8000, 8080, 8081,
            8443, 8888, 53, 111, 139, 445,
        ];
        let mut v: Vec<u16> = HEAD.to_vec();
        let mut next = 1024u16;
        while v.len() < n {
            if !HEAD.contains(&next) {
                v.push(next);
            }
            next = next.wrapping_add(7);
        }
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn single_source_is_constant() {
        let mut r = rng();
        let s = SourceSampler::Single(42);
        assert!((0..50).all(|_| s.sample(&mut r, 0) == 42));
    }

    #[test]
    fn pool_draws_only_pool_members() {
        let mut r = rng();
        let s = SourceSampler::pool_in_64(0xabcd, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let a = s.sample(&mut r, 0);
            assert_eq!((a >> 64) as u64, 0xabcd);
            seen.insert(a);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn vary_low_bits_bounded_spread() {
        let mut r = rng();
        let s = SourceSampler::VaryLowBits {
            base: 0x5000,
            bits: 9,
        };
        let seen: std::collections::HashSet<u128> =
            (0..2000).map(|_| s.sample(&mut r, 0)).collect();
        assert!(
            seen.len() > 400,
            "9 bits should give ~512 distinct: {}",
            seen.len()
        );
        assert!(seen.iter().all(|&a| a >> 9 == 0x5000 >> 9));
    }

    #[test]
    fn random_in_prefix_spreads_widely() {
        let mut r = rng();
        let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let s = SourceSampler::RandomInPrefix(p);
        let seen48: std::collections::HashSet<u128> =
            (0..200).map(|_| s.sample(&mut r, 0) >> 80).collect();
        assert!(seen48.len() > 150, "sources land in many /48s");
    }

    #[test]
    fn spread_subnets_bounded_hosts() {
        let mut r = rng();
        let subnets: Vec<Ipv6Prefix> = (0..4u128)
            .map(|i| Ipv6Prefix::new(0x2001_0db8_0000_0000_0000_0000_0000_0000 | i << 64, 64))
            .collect();
        let s = SourceSampler::SpreadSubnets {
            subnets: subnets.clone(),
            hosts_per_subnet: 3,
        };
        let seen: std::collections::HashSet<u128> =
            (0..1000).map(|_| s.sample(&mut r, 0)).collect();
        assert_eq!(seen.len(), 12);
        for a in seen {
            assert!(subnets.iter().any(|p| p.contains_addr(a)));
        }
    }

    #[test]
    fn hitlist_sampler_stays_in_list() {
        let mut r = rng();
        let list = vec![10u128, 20, 30];
        let t = TargetSampler::Hitlist(list.clone());
        let mut out = Vec::new();
        for _ in 0..100 {
            t.sample(&mut r, &mut out);
        }
        assert!(out.iter().all(|a| list.contains(a)));
    }

    #[test]
    fn nearby_explorer_emits_hit_then_neighbor() {
        let mut r = rng();
        let t = TargetSampler::HitlistNearby {
            hitlist: vec![0x1000],
            explore_prob: 1.0,
            span_bits: 4,
        };
        let mut out = Vec::new();
        t.sample(&mut r, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], 0x1000);
        assert_ne!(out[1], 0x1000);
        assert_eq!(out[1] >> 4, 0x1000 >> 4, "neighbor within the /124");
    }

    #[test]
    fn pair_explore_emits_exposed_then_partner() {
        let mut r = rng();
        let t = TargetSampler::PairExplore {
            pairs: vec![(0x100, 0x10f), (0x200, 0x203)],
            explore_prob: 1.0,
        };
        let mut out = Vec::new();
        t.sample(&mut r, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out[0] == 0x100 || out[0] == 0x200);
        assert_eq!(out[1], if out[0] == 0x100 { 0x10f } else { 0x203 });
    }

    #[test]
    fn pair_mix_respects_fraction() {
        let mut r = rng();
        let t = TargetSampler::PairMix {
            exposed: vec![1],
            hidden: vec![2],
            hidden_frac: 0.5,
        };
        let mut out = Vec::new();
        for _ in 0..2000 {
            t.sample(&mut r, &mut out);
        }
        let hidden = out.iter().filter(|&&a| a == 2).count() as f64 / out.len() as f64;
        assert!((hidden - 0.5).abs() < 0.05, "hidden fraction {hidden}");
    }

    #[test]
    fn prefix_sweep_iid_modes_differ_in_weight() {
        let mut r = rng();
        let p: Ipv6Prefix = "2001:db8::/48".parse().unwrap();
        let mk = |iid| TargetSampler::PrefixSweep {
            prefixes: vec![p],
            iid,
            subnets_per_prefix: 16,
        };
        let mut low = Vec::new();
        let mut random = Vec::new();
        for _ in 0..1000 {
            mk(IidMode::LowHamming(6)).sample(&mut r, &mut low);
            mk(IidMode::Random).sample(&mut r, &mut random);
        }
        let w = |v: &[u128]| {
            v.iter()
                .map(|&a| f64::from(lumen6_addr::hamming_weight_iid(a)))
                .sum::<f64>()
                / v.len() as f64
        };
        assert!(w(&low) < 7.0);
        assert!((w(&random) - 32.0).abs() < 2.0);
        assert!(low.iter().all(|&a| p.contains_addr(a)));
    }

    #[test]
    fn port_switch_honors_time() {
        let mut r = rng();
        let s = PortSampler::SwitchAt {
            at_ms: 1000,
            before: Box::new(PortSampler::Single(Transport::Tcp, 1)),
            after: Box::new(PortSampler::Single(Transport::Tcp, 2)),
        };
        assert_eq!(s.sample(&mut r, 0).1, 1);
        assert_eq!(s.sample(&mut r, 999).1, 1);
        assert_eq!(s.sample(&mut r, 1000).1, 2);
    }

    #[test]
    fn uniform_range_covers_the_space() {
        let mut r = rng();
        let s = PortSampler::UniformRange(Transport::Tcp, 45_000);
        let seen: std::collections::HashSet<u16> =
            (0..20_000).map(|_| s.sample(&mut r, 0).1).collect();
        assert!(seen.len() > 15_000);
        assert!(seen.iter().all(|&p| (1..=45_000).contains(&p)));
    }

    #[test]
    fn common_ports_deterministic_and_deduped() {
        let a = PortSampler::common_tcp_ports(444);
        let b = PortSampler::common_tcp_ports(444);
        assert_eq!(a, b);
        assert_eq!(a.len(), 444);
        let set: std::collections::HashSet<u16> = a.iter().copied().collect();
        assert_eq!(set.len(), 444, "no duplicate ports");
        assert!(a.contains(&22) && a.contains(&8443));
    }

    #[test]
    fn daily_rotate_concentrates_then_moves_on() {
        let mut r = rng();
        let s = PortSampler::DailyRotate {
            proto: Transport::Tcp,
            pool: PortSampler::common_tcp_ports(400),
            per_day: 8,
        };
        let day0: std::collections::HashSet<u16> =
            (0..500).map(|_| s.sample(&mut r, 1000).1).collect();
        let day1: std::collections::HashSet<u16> = (0..500)
            .map(|_| s.sample(&mut r, lumen6_trace::DAY_MS + 1000).1)
            .collect();
        assert_eq!(day0.len(), 8, "exactly the daily window");
        assert_eq!(day1.len(), 8);
        assert_ne!(day0, day1, "the window moves between days");
        // Over many days the coverage grows far beyond one window.
        let mut all = std::collections::HashSet::new();
        for d in 0..40u64 {
            for _ in 0..100 {
                all.insert(s.sample(&mut r, d * lumen6_trace::DAY_MS).1);
            }
        }
        assert!(all.len() > 100, "covered {} ports over 40 days", all.len());
    }

    #[test]
    fn icmpv6_echo_sampler() {
        let mut r = rng();
        assert_eq!(
            PortSampler::Icmpv6Echo.sample(&mut r, 0),
            (Transport::Icmpv6, 0)
        );
    }
}
