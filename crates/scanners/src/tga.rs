//! Target generation algorithms (TGA).
//!
//! Scanning IPv6 means *generating* worthwhile targets, not enumerating the
//! space. The paper observes scanners probing not-in-DNS addresses and
//! leaves "how scanners generate target addresses" as future work, citing
//! the TGA literature (Entropy/IP, 6Gen, 6Tree, ...). This module
//! implements the two building blocks those algorithms share, at honest
//! simulation scale:
//!
//! - [`IidModel`]: learn the per-nibble value distribution of the Interface
//!   IDs of a *seed set* (e.g. DNS-harvested addresses), then synthesize
//!   fresh IIDs inside known /64s. Because server IIDs are heavily
//!   structured (low-byte, small counters), a learned model rediscovers
//!   unadvertised neighbors — like the telescope's not-in-DNS pair members
//!   — orders of magnitude better than random generation.
//! - [`PrefixTree`]: a seed-weighted prefix tree over the network halves,
//!   sampling /64s proportionally to observed density (the 6Tree/6Gen
//!   "divide where the seeds are" idea).
//!
//! [`evaluate_hit_rate`] scores a candidate list against a ground-truth
//! responder set — the standard TGA metric.

use lumen6_addr::entropy::{EntropyProfile, NIBBLES};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A per-nibble generative model of Interface IDs (the low 64 bits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IidModel {
    profile: EntropyProfile,
}

impl IidModel {
    /// Learns the model from seed addresses (their low 64 bits).
    pub fn learn(seeds: &[u128]) -> IidModel {
        IidModel {
            profile: EntropyProfile::from_addrs(seeds.iter().copied()),
        }
    }

    /// Mean entropy of the modeled IID nibbles — how "guessable" the seed
    /// population is.
    pub fn iid_entropy(&self) -> f64 {
        self.profile.iid_entropy()
    }

    /// Samples one IID: each of the 16 IID nibbles drawn from its learned
    /// distribution (with a small smoothing floor so unseen values remain
    /// reachable).
    pub fn sample_iid<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut iid = 0u64;
        for i in 16..NIBBLES {
            let counts = self.profile.counts(i);
            let total: u64 = counts.iter().sum::<u64>() + 16; // +1 smoothing
            let mut pick = rng.gen_range(0..total);
            let mut value = 0u8;
            for (v, &c) in counts.iter().enumerate() {
                let w = c + 1;
                if pick < w {
                    value = v as u8;
                    break;
                }
                pick -= w;
            }
            iid = (iid << 4) | u64::from(value);
        }
        iid
    }

    /// Generates `n` candidate addresses: for each, a seed /64 is chosen at
    /// random and a fresh modeled IID is placed in it. Candidates that
    /// exactly reproduce a seed address are re-rolled a few times (a
    /// scanner wants *new* targets).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        seed_64s: &[u64],
        seeds: &HashSet<u128>,
        n: usize,
    ) -> Vec<u128> {
        assert!(!seed_64s.is_empty(), "need at least one seed /64");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let net = seed_64s[rng.gen_range(0..seed_64s.len())];
            let mut cand = ((net as u128) << 64) | u128::from(self.sample_iid(rng));
            for _ in 0..4 {
                if !seeds.contains(&cand) {
                    break;
                }
                cand = ((net as u128) << 64) | u128::from(self.sample_iid(rng));
            }
            out.push(cand);
        }
        out
    }
}

/// A density-weighted prefix tree over network halves: sample /64s where
/// the seeds are.
#[derive(Debug, Clone, Default)]
pub struct PrefixTree {
    /// (network /64, seed count), sorted by network.
    nets: Vec<(u64, u64)>,
    total: u64,
}

impl PrefixTree {
    /// Builds the tree from seed addresses.
    pub fn learn(seeds: &[u128]) -> PrefixTree {
        let mut map = std::collections::BTreeMap::new();
        for &s in seeds {
            *map.entry((s >> 64) as u64).or_insert(0u64) += 1;
        }
        let nets: Vec<(u64, u64)> = map.into_iter().collect();
        let total = nets.iter().map(|(_, c)| c).sum();
        PrefixTree { nets, total }
    }

    /// Number of distinct seed /64s.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether no seeds were observed.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Samples a /64 network proportionally to its seed density.
    pub fn sample_net<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let mut pick = rng.gen_range(0..self.total);
        for &(net, c) in &self.nets {
            if pick < c {
                return Some(net);
            }
            pick -= c;
        }
        None
    }

    /// The distinct seed networks.
    pub fn networks(&self) -> Vec<u64> {
        self.nets.iter().map(|&(n, _)| n).collect()
    }
}

/// Fraction of `candidates` (deduplicated, seeds excluded) present in
/// `responders` — the standard TGA hit-rate metric.
pub fn evaluate_hit_rate(
    candidates: &[u128],
    seeds: &HashSet<u128>,
    responders: &HashSet<u128>,
) -> f64 {
    let fresh: HashSet<u128> = candidates
        .iter()
        .copied()
        .filter(|c| !seeds.contains(c))
        .collect();
    if fresh.is_empty() {
        return 0.0;
    }
    let hits = fresh.iter().filter(|c| responders.contains(c)).count();
    hits as f64 / fresh.len() as f64
}

/// Baseline: random IIDs in the seed /64s (what a structure-blind scanner
/// would do).
pub fn random_baseline<R: Rng + ?Sized>(rng: &mut R, seed_64s: &[u64], n: usize) -> Vec<u128> {
    (0..n)
        .map(|_| {
            let net = seed_64s[rng.gen_range(0..seed_64s.len())];
            lumen6_addr::gen::random_iid(rng, net)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A synthetic responder world: servers with small structured IIDs in
    /// 50 /64s; half are "seeds" (known), half are hidden responders.
    fn world() -> (Vec<u128>, HashSet<u128>, HashSet<u128>) {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut all = Vec::new();
        for net in 0..50u64 {
            let net64 = 0x2001_0db8_0000_0000 | net;
            for _ in 0..40 {
                all.push(lumen6_addr::gen::low_weight_iid(&mut rng, net64, 4));
            }
        }
        all.sort_unstable();
        all.dedup();
        let seeds: Vec<u128> = all.iter().step_by(2).copied().collect();
        let responders: HashSet<u128> = all.iter().copied().collect();
        let seed_set: HashSet<u128> = seeds.iter().copied().collect();
        (seeds, seed_set, responders)
    }

    #[test]
    fn learned_model_beats_random_by_orders_of_magnitude() {
        let (seed_list, seed_set, responders) = world();
        let model = IidModel::learn(&seed_list);
        let tree = PrefixTree::learn(&seed_list);
        let nets = tree.networks();
        let mut rng = SmallRng::seed_from_u64(12);

        let candidates = model.generate(&mut rng, &nets, &seed_set, 20_000);
        let hit = evaluate_hit_rate(&candidates, &seed_set, &responders);

        let baseline = random_baseline(&mut rng, &nets, 20_000);
        let base_hit = evaluate_hit_rate(&baseline, &seed_set, &responders);

        assert!(hit > 0.001, "model hit rate {hit}");
        // Random 64-bit IIDs essentially never hit.
        assert!(base_hit < 1e-3, "baseline {base_hit}");
        assert!(
            hit > 100.0 * (base_hit + 1e-9),
            "model {hit} vs baseline {base_hit}"
        );
    }

    #[test]
    fn model_iid_entropy_reflects_seed_structure() {
        let (seed_list, _, _) = world();
        let structured = IidModel::learn(&seed_list);
        assert!(
            structured.iid_entropy() < 1.0,
            "{}",
            structured.iid_entropy()
        );

        let mut rng = SmallRng::seed_from_u64(13);
        let random_seeds: Vec<u128> = (0..2000)
            .map(|_| lumen6_addr::gen::random_iid(&mut rng, 1))
            .collect();
        let random = IidModel::learn(&random_seeds);
        assert!(random.iid_entropy() > 3.5, "{}", random.iid_entropy());
    }

    #[test]
    fn prefix_tree_samples_proportionally() {
        // One heavy /64 (90 seeds) vs one light /64 (10 seeds).
        let mut seeds = Vec::new();
        for i in 0..90u128 {
            seeds.push((1u128 << 64) | i);
        }
        for i in 0..10u128 {
            seeds.push((2u128 << 64) | i);
        }
        let tree = PrefixTree::learn(&seeds);
        assert_eq!(tree.len(), 2);
        let mut rng = SmallRng::seed_from_u64(14);
        let heavy = (0..2000)
            .filter(|_| tree.sample_net(&mut rng) == Some(1))
            .count();
        assert!((1650..=1950).contains(&heavy), "heavy draws {heavy}");
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let tree = PrefixTree::learn(&[]);
        assert!(tree.is_empty());
        let mut rng = SmallRng::seed_from_u64(15);
        assert_eq!(tree.sample_net(&mut rng), None);
    }

    #[test]
    fn hit_rate_excludes_seeds() {
        let seeds: HashSet<u128> = [1u128, 2].into_iter().collect();
        let responders: HashSet<u128> = [1u128, 2, 3].into_iter().collect();
        // Candidates: one seed (excluded), one hidden responder, one miss.
        let hit = evaluate_hit_rate(&[1, 3, 99], &seeds, &responders);
        assert!((hit - 0.5).abs() < 1e-12);
        assert_eq!(evaluate_hit_rate(&[1, 2], &seeds, &responders), 0.0);
    }

    #[test]
    fn generate_avoids_exact_seed_reproduction_mostly() {
        let (seed_list, seed_set, _) = world();
        let model = IidModel::learn(&seed_list);
        let nets = PrefixTree::learn(&seed_list).networks();
        let mut rng = SmallRng::seed_from_u64(16);
        let cands = model.generate(&mut rng, &nets, &seed_set, 5_000);
        let dupes = cands.iter().filter(|c| seed_set.contains(c)).count();
        // Re-rolling keeps exact seed reproduction rare.
        assert!(dupes * 10 < cands.len(), "{dupes} of {}", cands.len());
    }
}
