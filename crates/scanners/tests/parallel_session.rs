//! Differential test battery for the parallel fused source at the session
//! level: `parallel_fused == fused == materialized` across the
//! gen-threads × batch × intensity grid — final reports, mid-run state
//! (records done at a checkpoint stop), and checkpoint file bytes — plus
//! kill-resume with a *different* gen-thread count than the run that wrote
//! the checkpoint.

use lumen6_detect::prelude::*;
use lumen6_scanners::{FleetConfig, FleetSource, ParallelFleetSource, World};
use lumen6_telescope::DeploymentConfig;
use lumen6_trace::TraceWriter;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "lumen6-parallel-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A fast grid fleet: four days, small telescope — still thousands of
/// logged records at 1×, tens of thousands at 25×.
fn grid_config(intensity: f64) -> FleetConfig {
    FleetConfig {
        seed: 77,
        intensity,
        end_day: 4,
        deployment: DeploymentConfig {
            machines: 40,
            ases: 5,
            dns_pairs: 25,
            ..Default::default()
        },
        noise_sources_per_day: 4,
        ..FleetConfig::small()
    }
}

/// Low-threshold detector so even the 0.1× grid corner produces events.
fn detector() -> DetectorBuilder {
    DetectorBuilder::new(ScanDetectorConfig {
        min_dsts: 25,
        ..Default::default()
    })
    .levels(&[AggLevel::L128, AggLevel::L64, AggLevel::L48])
}

fn report_json(rep: &SessionReport) -> String {
    serde_json::to_string(rep).unwrap()
}

fn finish(outcome: SessionOutcome) -> SessionReport {
    match outcome {
        SessionOutcome::Finished(rep) => rep,
        SessionOutcome::Stopped { .. } => panic!("session stopped unexpectedly"),
    }
}

/// `parallel_fused == fused == materialized` final reports across
/// gen-threads {1,2,4,8} × batch {1,64,8192} × intensity {0.1,1,25}.
#[test]
fn differential_battery_across_threads_batch_and_intensity() {
    let dir = TempDir::new("battery");
    for intensity in [0.1, 1.0, 25.0] {
        let cfg = grid_config(intensity);
        let recs = World::build(cfg.clone()).cdn_trace();
        assert!(
            recs.len() > 500,
            "grid corner too small at intensity {intensity}: {}",
            recs.len()
        );
        let trace = dir.path(&format!("grid-{intensity}.l6tr"));
        let mut w = TraceWriter::new(BufWriter::new(File::create(&trace).unwrap())).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.finish().unwrap().flush().unwrap();

        for batch in [1usize, 64, 8_192] {
            let session = |backend| {
                Session::new(
                    detector(),
                    backend,
                    SessionConfig {
                        batch,
                        ..Default::default()
                    },
                )
            };
            let via_file = finish(session(Backend::Sequential).run(&trace).unwrap());
            let expect = report_json(&via_file);

            let mut fused = FleetSource::new(World::build(cfg.clone()));
            let via_fused = finish(session(Backend::Sequential).run_source(&mut fused).unwrap());
            assert_eq!(
                report_json(&via_fused),
                expect,
                "fused vs materialized: batch={batch} intensity={intensity}"
            );

            for n in [1usize, 2, 4, 8] {
                let mut par = ParallelFleetSource::new(World::build(cfg.clone()), n);
                let via_par = finish(session(Backend::Sequential).run_source(&mut par).unwrap());
                assert_eq!(
                    report_json(&via_par),
                    expect,
                    "parallel vs materialized: gen_threads={n} batch={batch} \
                     intensity={intensity}"
                );
            }
        }
    }
}

/// Mid-run state and checkpoint bytes: a parallel fused run stopped at its
/// first checkpoint has ingested exactly as many records as the sequential
/// fused run at the same cadence, and the checkpoint files — detector
/// snapshot, source position, session counters, checksum framing — are
/// byte-identical.
#[test]
fn checkpoint_bytes_are_identical_to_sequential_fused() {
    let dir = TempDir::new("ckpt-bytes");
    let cfg = grid_config(1.0);
    let every = 500u64;
    let config = |path: PathBuf| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path,
            every_records: every,
            stop_after: Some(1),
        }),
        ..Default::default()
    };

    let fused_ck = dir.path("fused.l6ck");
    let mut fused = FleetSource::new(World::build(cfg.clone()));
    let outcome = Session::new(detector(), Backend::Sequential, config(fused_ck.clone()))
        .run_source(&mut fused)
        .unwrap();
    let SessionOutcome::Stopped {
        records_done: fused_records,
        ..
    } = outcome
    else {
        panic!("fused run must stop at its first checkpoint");
    };
    assert_eq!(fused_records, every);
    let fused_bytes = std::fs::read(&fused_ck).unwrap();

    for n in [2usize, 8] {
        let ck = dir.path(&format!("par{n}.l6ck"));
        let mut par = ParallelFleetSource::new(World::build(cfg.clone()), n);
        let outcome = Session::new(detector(), Backend::Sequential, config(ck.clone()))
            .run_source(&mut par)
            .unwrap();
        let SessionOutcome::Stopped { records_done, .. } = outcome else {
            panic!("parallel run must stop at its first checkpoint");
        };
        assert_eq!(records_done, fused_records, "gen_threads={n}");
        assert_eq!(
            std::fs::read(&ck).unwrap(),
            fused_bytes,
            "checkpoint bytes differ from sequential fused at gen_threads={n}"
        );
    }
}

/// Kill-resume with a different gen-thread count: a checkpoint written by
/// an N=2 parallel run resumes under N=4, N=1 (plain fused), and a changed
/// detector backend, all byte-identical to an uninterrupted run.
#[test]
fn kill_resume_with_different_gen_thread_count() {
    let dir = TempDir::new("cross-n");
    let cfg = grid_config(1.0);
    let every = 500u64;
    let config = |path: PathBuf, stop_after: Option<u64>| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path,
            every_records: every,
            stop_after,
        }),
        ..Default::default()
    };

    let mut reference_src = ParallelFleetSource::new(World::build(cfg.clone()), 2);
    let reference = finish(
        Session::new(
            detector(),
            Backend::Sequential,
            config(dir.path("ref.l6ck"), None),
        )
        .run_source(&mut reference_src)
        .unwrap(),
    );
    assert!(
        reference.records > 2 * every,
        "workload too small to interrupt: {}",
        reference.records
    );
    let expect = report_json(&reference);

    // Interrupt an N=2 run after its second checkpoint.
    let ck = dir.path("cross.l6ck");
    let mut src = ParallelFleetSource::new(World::build(cfg.clone()), 2);
    let outcome = Session::new(detector(), Backend::Sequential, config(ck.clone(), Some(2)))
        .run_source(&mut src)
        .unwrap();
    assert!(matches!(outcome, SessionOutcome::Stopped { .. }));

    // Resume under a larger thread count and a sharded backend.
    {
        let resume_ck = dir.path("resume4.l6ck");
        std::fs::copy(&ck, &resume_ck).unwrap();
        let mut fresh = ParallelFleetSource::new(World::build(cfg.clone()), 4);
        let rep = finish(
            Session::new(
                detector(),
                Backend::Sharded(ShardPlan::with_shards(2)),
                config(resume_ck, None),
            )
            .run_source(&mut fresh)
            .unwrap(),
        );
        assert_eq!(report_json(&rep), expect, "resume at gen_threads=4");
    }

    // Resume under the single-threaded fused source (gen_threads=1 path).
    {
        let resume_ck = dir.path("resume1.l6ck");
        std::fs::copy(&ck, &resume_ck).unwrap();
        let mut fresh = FleetSource::new(World::build(cfg));
        let rep = finish(
            Session::new(detector(), Backend::Sequential, config(resume_ck, None))
                .run_source(&mut fresh)
                .unwrap(),
        );
        assert_eq!(report_json(&rep), expect, "resume via plain FleetSource");
    }
}
