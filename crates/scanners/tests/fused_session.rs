//! End-to-end fused-pipeline tests: a detection [`Session`] pulling
//! batches straight from [`FleetSource`], with checkpoints.
//!
//! Proves the two properties a paper-scale fused run depends on:
//!
//! 1. The fused path produces the *same* `SessionReport` as the classic
//!    materialize-to-`L6TR`-then-stream path over the same world.
//! 2. A fused run killed at any checkpoint and resumed with a brand-new
//!    `FleetSource` (regenerated from the seed, as a restarted process
//!    would) finishes byte-identical to an uninterrupted run — even when
//!    the detector backend changes across the restart.

use lumen6_detect::prelude::*;
use lumen6_scanners::{FleetConfig, FleetSource, World};
use lumen6_telescope::DeploymentConfig;
use lumen6_trace::TraceWriter;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "lumen6-fused-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A fast fleet: one week, small telescope, still thousands of logged
/// records and real scan events at the paper's thresholds.
fn fleet_config() -> FleetConfig {
    FleetConfig {
        end_day: 7,
        deployment: DeploymentConfig {
            machines: 120,
            ases: 8,
            dns_pairs: 80,
            ..Default::default()
        },
        noise_sources_per_day: 8,
        ..FleetConfig::small()
    }
}

fn detector() -> DetectorBuilder {
    DetectorBuilder::new(ScanDetectorConfig::default()).levels(&[
        AggLevel::L128,
        AggLevel::L64,
        AggLevel::L48,
    ])
}

fn report_json(rep: &SessionReport) -> String {
    serde_json::to_string(rep).unwrap()
}

#[test]
fn fused_session_matches_materialized_trace_file() {
    let dir = TempDir::new("vs-file");
    let trace = dir.path("cdn.l6tr");
    let recs = World::build(fleet_config()).cdn_trace();
    assert!(recs.len() > 2_000, "workload too small: {}", recs.len());
    let mut w = TraceWriter::new(BufWriter::new(File::create(&trace).unwrap())).unwrap();
    for r in &recs {
        w.append(r).unwrap();
    }
    w.finish().unwrap().flush().unwrap();

    let via_file = Session::new(detector(), Backend::Sequential, SessionConfig::default())
        .run(&trace)
        .unwrap();
    let SessionOutcome::Finished(via_file) = via_file else {
        panic!("file-backed session must finish");
    };
    assert!(
        via_file.reports.values().any(|r| r.scans() > 0),
        "workload must produce scan events"
    );

    let mut fused = FleetSource::new(World::build(fleet_config()));
    let via_fused = Session::new(detector(), Backend::Sequential, SessionConfig::default())
        .run_source(&mut fused)
        .unwrap();
    let SessionOutcome::Finished(via_fused) = via_fused else {
        panic!("fused session must finish");
    };
    assert_eq!(report_json(&via_fused), report_json(&via_file));
}

#[test]
fn fused_kill_resume_is_byte_identical() {
    let dir = TempDir::new("kill-resume");
    let every = 1_000u64;
    let config = |path: PathBuf, stop_after: Option<u64>| SessionConfig {
        checkpoint: Some(CheckpointPolicy {
            path,
            every_records: every,
            stop_after,
        }),
        ..Default::default()
    };

    let mut reference_src = FleetSource::new(World::build(fleet_config()));
    let reference = Session::new(
        detector(),
        Backend::Sequential,
        config(dir.path("ref.l6ck"), None),
    )
    .run_source(&mut reference_src)
    .unwrap();
    let SessionOutcome::Finished(expect) = reference else {
        panic!("reference must finish");
    };
    assert!(
        expect.records > 3 * every,
        "workload too small to interrupt: {}",
        expect.records
    );
    let expect = report_json(&expect);

    let sharded = Backend::Sharded(ShardPlan::with_shards(2));

    for stop_at in 1..=3u64 {
        let ck = dir.path(&format!("stop{stop_at}.l6ck"));
        let mut src = FleetSource::new(World::build(fleet_config()));
        let outcome = Session::new(
            detector(),
            Backend::Sequential,
            config(ck.clone(), Some(stop_at)),
        )
        .run_source(&mut src)
        .unwrap();
        match outcome {
            SessionOutcome::Stopped {
                checkpoints_written,
                records_done,
            } => {
                assert_eq!(checkpoints_written, stop_at);
                assert_eq!(records_done, stop_at * every);
            }
            SessionOutcome::Finished(_) => panic!("stop {stop_at}: expected Stopped"),
        }
        // A restarted process rebuilds the source from the seed; the
        // session resumes it via the record-index checkpoint position.
        // Switch to the sharded backend to also prove portability.
        let mut fresh = FleetSource::new(World::build(fleet_config()));
        let resumed = Session::new(detector(), sharded, config(ck, None))
            .run_source(&mut fresh)
            .unwrap();
        let SessionOutcome::Finished(rep) = resumed else {
            panic!("stop {stop_at}: resume must finish");
        };
        assert_eq!(report_json(&rep), expect, "stop after {stop_at}");
    }
}
