//! Internet number-resource model: AS registry, prefix allocations, and a
//! longest-prefix-match routing table.
//!
//! The paper attributes scan sources to origin networks via BGP/WHOIS
//! lookups (§3.2, Table 2) and reasons about *allocation sizes*: a /32 is
//! the typical RIR allocation for an entire ISP, a /48 the smallest
//! Internet-routable entity, and some cloud providers hand customers
//! prefixes more specific than /96. This crate models exactly that:
//!
//! - [`AsInfo`] / [`AsType`]: an autonomous system with a coarse type and
//!   country, as anonymized in the paper's Table 2 ("Datacenter (CN)").
//! - [`InternetRegistry`]: registered ASes plus announced prefixes, with
//!   [`InternetRegistry::origin_asn`] doing longest-prefix-match attribution
//!   over a binary trie.
//! - [`alloc_len`]: RIR-conventional allocation sizes per AS type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lumen6_addr::{Ipv6Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Coarse network type, following the anonymized labels of the paper's
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AsType {
    /// Pure datacenter / server-hosting network.
    Datacenter,
    /// Public cloud provider.
    Cloud,
    /// Mixed cloud and transit network.
    CloudTransit,
    /// Global or regional transit provider.
    Transit,
    /// Residential / access ISP.
    Isp,
    /// Research network.
    Research,
    /// University network.
    University,
    /// Cybersecurity company.
    Cybersecurity,
    /// Content distribution network (the vantage point's networks).
    Cdn,
    /// Anything else.
    Enterprise,
}

impl AsType {
    /// Label matching the paper's Table 2 style.
    pub fn label(&self) -> &'static str {
        match self {
            AsType::Datacenter => "Datacenter",
            AsType::Cloud => "Cloud",
            AsType::CloudTransit => "Cloud/Transit",
            AsType::Transit => "Transit",
            AsType::Isp => "ISP",
            AsType::Research => "Research",
            AsType::University => "University",
            AsType::Cybersecurity => "Cybersecurity",
            AsType::Cdn => "CDN",
            AsType::Enterprise => "Enterprise",
        }
    }

    /// Whether this type exclusively connects residential end users — the
    /// paper notes no such network appears in its top-20 scan sources.
    pub fn is_residential(&self) -> bool {
        matches!(self, AsType::Isp)
    }
}

impl fmt::Display for AsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One autonomous system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// AS number.
    pub asn: u32,
    /// Coarse network type.
    pub ty: AsType,
    /// ISO-ish country / region label ("CN", "US/global", "DE", ...).
    pub country: String,
    /// Human-readable name (synthetic).
    pub name: String,
}

impl AsInfo {
    /// The paper's anonymized descriptor, e.g. `Datacenter (CN)`.
    pub fn descriptor(&self) -> String {
        format!("{} ({})", self.ty.label(), self.country)
    }
}

/// The RIR-conventional allocation prefix length for a network type.
///
/// ARIN and RIPE allocate /32 to ISPs/transit by default (paper §3.2 and
/// its reference \[4\]); large clouds receive shorter prefixes; end sites
/// get /48.
pub fn alloc_len(ty: AsType) -> u8 {
    match ty {
        AsType::Cloud | AsType::CloudTransit => 29,
        AsType::Isp | AsType::Transit | AsType::Datacenter | AsType::Cdn => 32,
        AsType::Research | AsType::University => 32,
        AsType::Cybersecurity | AsType::Enterprise => 48,
    }
}

/// AS registry plus routing table: the attribution substrate.
///
/// ```
/// use lumen6_netmodel::{InternetRegistry, AsType};
/// let mut reg = InternetRegistry::new();
/// reg.register(64500, AsType::Isp, "DE", "example-isp");
/// reg.announce("2001:db8::/32".parse().unwrap(), 64500).unwrap();
/// let addr: u128 = u128::from("2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap());
/// assert_eq!(reg.origin_asn(addr), Some(64500));
/// ```
#[derive(Debug, Clone, Default)]
pub struct InternetRegistry {
    ases: BTreeMap<u32, AsInfo>,
    rib: PrefixTrie<u32>,
    announcements: Vec<(Ipv6Prefix, u32)>,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Announced origin AS is not registered.
    UnknownAs(u32),
    /// The exact prefix is already announced (by the contained AS).
    DuplicateAnnouncement(Ipv6Prefix, u32),
    /// An allocation length outside the layout's supported 12..=120 range.
    AllocationLengthOutOfRange(u8),
    /// The slot index does not fit the allocation's prefix length.
    SlotOverflow {
        /// Requested slot.
        slot: u32,
        /// Allocation prefix length the slot must fit under.
        len: u8,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownAs(asn) => write!(f, "AS{asn} is not registered"),
            RegistryError::DuplicateAnnouncement(p, asn) => {
                write!(f, "prefix {p} already announced by AS{asn}")
            }
            RegistryError::AllocationLengthOutOfRange(len) => {
                write!(
                    f,
                    "allocation length /{len} outside the supported 12..=120 range"
                )
            }
            RegistryError::SlotOverflow { slot, len } => {
                write!(f, "slot {slot} does not fit a /{len} allocation")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl InternetRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an AS. Re-registering an ASN overwrites its metadata.
    pub fn register(&mut self, asn: u32, ty: AsType, country: &str, name: &str) -> &AsInfo {
        self.ases.insert(
            asn,
            AsInfo {
                asn,
                ty,
                country: country.to_string(),
                name: name.to_string(),
            },
        );
        &self.ases[&asn]
    }

    /// Announces a prefix with the given origin AS.
    pub fn announce(&mut self, prefix: Ipv6Prefix, asn: u32) -> Result<(), RegistryError> {
        if !self.ases.contains_key(&asn) {
            return Err(RegistryError::UnknownAs(asn));
        }
        if let Some(existing) = self.rib.get(&prefix) {
            return Err(RegistryError::DuplicateAnnouncement(prefix, *existing));
        }
        self.rib.insert(prefix, asn);
        self.announcements.push((prefix, asn));
        Ok(())
    }

    /// Registers an AS and announces its RIR-conventional allocation in one
    /// step, returning the allocated prefix. `slot` disambiguates multiple
    /// allocations: it is placed in the bits just below the 2000::/12 space.
    ///
    /// Fails with a typed error (never panics) when the slot does not fit
    /// the allocation length, or when an equal `(length, slot)` allocation
    /// was already announced — e.g. the same slot reused for two ASes of
    /// the same type.
    pub fn register_with_allocation(
        &mut self,
        asn: u32,
        ty: AsType,
        country: &str,
        name: &str,
        slot: u32,
    ) -> Result<Ipv6Prefix, RegistryError> {
        let len = alloc_len(ty);
        // Deterministic, collision-free layout inside 2000::/3: bits 3..11
        // carry the allocation *length*, so allocations of different
        // lengths live in disjoint sub-spaces, and the slot occupies the
        // lowest prefix bits, so equal-length allocations with distinct
        // slots never overlap either.
        if !(12..=120).contains(&len) {
            return Err(RegistryError::AllocationLengthOutOfRange(len));
        }
        if u64::from(slot) >= (1u64 << (len - 11)) {
            return Err(RegistryError::SlotOverflow { slot, len });
        }
        self.register(asn, ty, country, name);
        let bits =
            (1u128 << 125) | (u128::from(len) << 117) | ((slot as u128) << (128 - u32::from(len)));
        let prefix = Ipv6Prefix::new(bits, len);
        self.announce(prefix, asn)?;
        Ok(prefix)
    }

    /// Longest-prefix-match origin lookup.
    pub fn origin_asn(&self, addr: u128) -> Option<u32> {
        self.rib.longest_match(addr).map(|(_, asn)| *asn)
    }

    /// The most specific announced prefix covering the address.
    pub fn covering_prefix(&self, addr: u128) -> Option<(Ipv6Prefix, u32)> {
        self.rib.longest_match(addr).map(|(p, asn)| (p, *asn))
    }

    /// AS metadata.
    pub fn as_info(&self, asn: u32) -> Option<&AsInfo> {
        self.ases.get(&asn)
    }

    /// All registered ASes in ASN order.
    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.ases.values()
    }

    /// All announcements in insertion order.
    pub fn announcements(&self) -> &[(Ipv6Prefix, u32)] {
        &self.announcements
    }

    /// Number of distinct ASes originating the given addresses — the "ASes"
    /// column of the paper's Table 1. Unattributable addresses are counted
    /// under a synthetic "unknown" bucket only if `count_unknown` is set.
    pub fn distinct_origin_ases<I: IntoIterator<Item = u128>>(
        &self,
        addrs: I,
        count_unknown: bool,
    ) -> usize {
        use std::collections::HashSet;
        let mut set: HashSet<Option<u32>> = HashSet::new();
        for a in addrs {
            let asn = self.origin_asn(a);
            if asn.is_some() || count_unknown {
                set.insert(asn);
            }
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = InternetRegistry::new();
        reg.register(64500, AsType::Isp, "DE", "eyeball");
        reg.announce(p("2001:db8::/32"), 64500).unwrap();
        assert_eq!(reg.origin_asn(p("2001:db8::1").bits()), Some(64500));
        assert_eq!(reg.origin_asn(p("2001:db9::1").bits()), None);
    }

    #[test]
    fn announce_requires_registration() {
        let mut reg = InternetRegistry::new();
        assert_eq!(
            reg.announce(p("2001:db8::/32"), 1),
            Err(RegistryError::UnknownAs(1))
        );
    }

    #[test]
    fn duplicate_announcement_rejected() {
        let mut reg = InternetRegistry::new();
        reg.register(1, AsType::Transit, "US", "t");
        reg.announce(p("2001:db8::/32"), 1).unwrap();
        assert_eq!(
            reg.announce(p("2001:db8::/32"), 1),
            Err(RegistryError::DuplicateAnnouncement(p("2001:db8::/32"), 1))
        );
    }

    #[test]
    fn more_specific_announcement_wins() {
        // A customer /48 carved out of a provider /32 attributes to the
        // customer — the AS#18 situation (a /32 announced and used by one
        // entity, but sub-prefixes could be announced separately).
        let mut reg = InternetRegistry::new();
        reg.register(1, AsType::Transit, "DE", "provider");
        reg.register(2, AsType::Cybersecurity, "DE", "customer");
        reg.announce(p("2001:db8::/32"), 1).unwrap();
        reg.announce(p("2001:db8:42::/48"), 2).unwrap();
        assert_eq!(reg.origin_asn(p("2001:db8:42::1").bits()), Some(2));
        assert_eq!(reg.origin_asn(p("2001:db8:43::1").bits()), Some(1));
    }

    #[test]
    fn allocation_sizes_follow_rir_conventions() {
        assert_eq!(alloc_len(AsType::Isp), 32);
        assert_eq!(alloc_len(AsType::Transit), 32);
        assert_eq!(alloc_len(AsType::Enterprise), 48);
        assert!(alloc_len(AsType::Cloud) < 32);
    }

    #[test]
    fn register_with_allocation_is_deterministic_and_disjoint() {
        let mut reg = InternetRegistry::new();
        let a = reg
            .register_with_allocation(10, AsType::Isp, "RU", "a", 1)
            .unwrap();
        let b = reg
            .register_with_allocation(11, AsType::Isp, "RU", "b", 2)
            .unwrap();
        assert_eq!(a.len(), 32);
        assert_ne!(a, b);
        assert!(!a.contains(&b) && !b.contains(&a));
        assert_eq!(reg.origin_asn(a.first_addr() + 5), Some(10));
        assert_eq!(reg.origin_asn(b.first_addr() + 5), Some(11));
    }

    #[test]
    fn allocation_errors_are_typed_not_panics() {
        let mut reg = InternetRegistry::new();
        // Slot too large for an enterprise /48 layout (slot must fit
        // len - 11 = 37 bits — use a /32 ISP whose budget is 21 bits).
        let e = reg.register_with_allocation(1, AsType::Isp, "DE", "a", u32::MAX);
        assert_eq!(
            e,
            Err(RegistryError::SlotOverflow {
                slot: u32::MAX,
                len: 32
            })
        );
        // Reusing a (type, slot) pair collides on the same prefix and
        // surfaces as a duplicate announcement, not a panic.
        let p = reg
            .register_with_allocation(2, AsType::Isp, "DE", "b", 7)
            .unwrap();
        let e = reg.register_with_allocation(3, AsType::Isp, "DE", "c", 7);
        assert_eq!(e, Err(RegistryError::DuplicateAnnouncement(p, 2)));
    }

    #[test]
    fn descriptor_matches_paper_style() {
        let info = AsInfo {
            asn: 1,
            ty: AsType::Datacenter,
            country: "CN".into(),
            name: "x".into(),
        };
        assert_eq!(info.descriptor(), "Datacenter (CN)");
        let info2 = AsInfo {
            asn: 2,
            ty: AsType::CloudTransit,
            country: "DE".into(),
            name: "y".into(),
        };
        assert_eq!(info2.descriptor(), "Cloud/Transit (DE)");
    }

    #[test]
    fn distinct_origin_ases_counts() {
        let mut reg = InternetRegistry::new();
        reg.register(1, AsType::Isp, "VN", "a");
        reg.register(2, AsType::Cloud, "CN", "b");
        reg.announce(p("2001:db8::/32"), 1).unwrap();
        reg.announce(p("2001:db9::/32"), 2).unwrap();
        let addrs = vec![
            p("2001:db8::1").bits(),
            p("2001:db8::2").bits(),
            p("2001:db9::1").bits(),
            p("2001:dba::1").bits(), // unattributable
        ];
        assert_eq!(reg.distinct_origin_ases(addrs.iter().copied(), false), 2);
        assert_eq!(reg.distinct_origin_ases(addrs, true), 3);
    }

    #[test]
    fn residential_flag() {
        assert!(AsType::Isp.is_residential());
        assert!(!AsType::Cloud.is_residential());
        assert!(!AsType::Datacenter.is_residential());
    }
}
