//! Property tests for the registry's attribution semantics.

use lumen6_addr::Ipv6Prefix;
use lumen6_netmodel::{AsType, InternetRegistry};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = AsType> {
    prop_oneof![
        Just(AsType::Datacenter),
        Just(AsType::Cloud),
        Just(AsType::CloudTransit),
        Just(AsType::Transit),
        Just(AsType::Isp),
        Just(AsType::Research),
        Just(AsType::University),
        Just(AsType::Cybersecurity),
        Just(AsType::Cdn),
        Just(AsType::Enterprise),
    ]
}

proptest! {
    /// Deterministic allocations are mutually disjoint and attribute every
    /// contained address back to their AS.
    #[test]
    fn allocations_disjoint_and_attributable(types in proptest::collection::vec(arb_type(), 1..25)) {
        let mut reg = InternetRegistry::new();
        let prefixes: Vec<(u32, Ipv6Prefix)> = types
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                let asn = 70_000 + i as u32;
                let p = reg
                    .register_with_allocation(asn, ty, "XX", &format!("as-{i}"), 1 + i as u32)
                    .unwrap();
                (asn, p)
            })
            .collect();
        for (i, (asn, p)) in prefixes.iter().enumerate() {
            // Interior, first and last addresses attribute correctly.
            for addr in [p.first_addr(), p.last_addr(), p.first_addr() + p.size() / 2] {
                prop_assert_eq!(reg.origin_asn(addr), Some(*asn), "prefix {}", p);
            }
            for (j, (_, q)) in prefixes.iter().enumerate() {
                if i != j {
                    prop_assert!(!p.contains(q), "{p} contains {q}");
                }
            }
        }
    }

    /// Longest-prefix match: a customer prefix carved from a provider
    /// allocation always wins for its own addresses, regardless of
    /// announcement order.
    #[test]
    fn more_specific_wins_any_order(bits in any::<u128>(), flip in any::<bool>()) {
        let provider = Ipv6Prefix::new(bits, 32);
        let customer = Ipv6Prefix::new(bits, 48);
        let mut reg = InternetRegistry::new();
        reg.register(1, AsType::Transit, "XX", "provider");
        reg.register(2, AsType::Enterprise, "XX", "customer");
        if flip {
            reg.announce(provider, 1).unwrap();
            reg.announce(customer, 2).unwrap();
        } else {
            reg.announce(customer, 2).unwrap();
            reg.announce(provider, 1).unwrap();
        }
        prop_assert_eq!(reg.origin_asn(customer.first_addr()), Some(2));
        prop_assert_eq!(reg.origin_asn(customer.last_addr()), Some(2));
        // An address in the provider space outside the customer /48.
        let outside = customer.sibling().unwrap().first_addr();
        if provider.contains_addr(outside) {
            prop_assert_eq!(reg.origin_asn(outside), Some(1));
        }
    }

    /// distinct_origin_ases is bounded by both the number of registered
    /// ASes and the number of queried addresses.
    #[test]
    fn distinct_ases_bounded(addr_count in 1usize..60, as_count in 1usize..10) {
        let mut reg = InternetRegistry::new();
        let mut prefixes = Vec::new();
        for i in 0..as_count {
            let asn = 100 + i as u32;
            prefixes.push(
                reg.register_with_allocation(asn, AsType::Isp, "XX", "x", 1 + i as u32)
                    .unwrap(),
            );
        }
        let addrs: Vec<u128> = (0..addr_count)
            .map(|i| prefixes[i % prefixes.len()].first_addr() + i as u128)
            .collect();
        let n = reg.distinct_origin_ases(addrs.iter().copied(), false);
        prop_assert!(n <= as_count.min(addr_count));
        prop_assert!(n >= 1);
    }
}
