//! Number and duration formatting in the paper's style.

/// Formats a packet count the way Table 2 does: `839M`, `4.7M`, `0.6M`,
/// `950K`, `421`.
pub fn pkt_count(n: u64) -> String {
    if n >= 100_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1_000_000.0)
    } else if n >= 10_000 {
        format!("{:.0}K", n as f64 / 1_000.0)
    } else {
        n.to_string()
    }
}

/// Formats a fraction as the paper's share column: `39.2%`, `≤ 0.1%`.
pub fn pct(f: f64) -> String {
    let p = f * 100.0;
    if p > 0.0 && p < 0.1 {
        "≤ 0.1%".to_string()
    } else {
        format!("{p:.1}%")
    }
}

/// `839M (39.2%)` — the packets column of Table 2.
pub fn pkt_with_share(n: u64, share: f64) -> String {
    format!("{} ({})", pkt_count(n), pct(share))
}

/// Human-readable duration from milliseconds: `94 seconds`, `2.7 hours`,
/// `128.4 days`.
pub fn duration_human(ms: u64) -> String {
    let s = ms as f64 / 1000.0;
    if s < 120.0 {
        format!("{s:.0} seconds")
    } else if s < 7_200.0 {
        format!("{:.1} minutes", s / 60.0)
    } else if s < 172_800.0 {
        format!("{:.1} hours", s / 3600.0)
    } else {
        format!("{:.1} days", s / 86_400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_counts_match_paper_style() {
        assert_eq!(pkt_count(839_000_000), "839M");
        assert_eq!(pkt_count(4_700_000), "4.7M");
        assert_eq!(pkt_count(600_000), "600K");
        assert_eq!(pkt_count(45_000), "45K");
        assert_eq!(pkt_count(421), "421");
    }

    #[test]
    fn percents() {
        assert_eq!(pct(0.392), "39.2%");
        assert_eq!(pct(0.0004), "≤ 0.1%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn combined() {
        assert_eq!(pkt_with_share(839_000_000, 0.392), "839M (39.2%)");
    }

    #[test]
    fn durations() {
        assert_eq!(duration_human(94_000), "94 seconds");
        assert_eq!(duration_human(9_720_000), "2.7 hours");
        assert_eq!(duration_human(12_240_000), "3.4 hours");
        assert!(duration_human(129 * 86_400_000).contains("days"));
        assert!(duration_human(600_000).contains("minutes"));
    }
}
