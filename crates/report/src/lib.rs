//! Report rendering: ASCII tables, CSV series, and the paper's number
//! formats ("839M (39.2%)", "≤ 0.1%", "2.7 hours").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fmt;
pub mod table;

pub use fmt::{duration_human, pct, pkt_count, pkt_with_share};
pub use table::Table;

/// Renders a (header, rows) series as CSV. Fields containing commas or
/// quotes are quoted.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_quotes_when_needed() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1,5".into(), "plain".into()],
                vec!["x\"y".into(), "".into()],
            ],
        );
        assert_eq!(csv, "a,b\n\"1,5\",plain\n\"x\"\"y\",\n");
    }

    #[test]
    fn csv_empty_rows() {
        assert_eq!(to_csv(&["h"], &[]), "h\n");
    }
}
