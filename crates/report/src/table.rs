//! A minimal ASCII table renderer for experiment output.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An ASCII table with a header row and uniform column padding.
///
/// ```
/// use lumen6_report::Table;
/// let mut t = Table::new(vec!["rank", "AS type", "packets"]);
/// t.align_right(0).align_right(2);
/// t.row(vec!["#1".into(), "Datacenter (CN)".into(), "839M".into()]);
/// let s = t.render();
/// assert!(s.contains("Datacenter (CN)"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; header.len()];
        Table {
            header,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Right-aligns a column (builder style).
    pub fn align_right(&mut self, col: usize) -> &mut Self {
        if col < self.aligns.len() {
            self.aligns[col] = Align::Right;
        }
        self
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        // Column widths by character count (display width approximation).
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        line.push_str(c);
                        if i + 1 < cells.len() {
                            line.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(c);
                    }
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "n"]);
        t.align_right(1);
        t.row(vec!["a".into(), "5".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a      "));
        assert!(lines[2].ends_with("    5"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains('3'));
    }

    #[test]
    fn empty_table_renders_header() {
        let t = Table::new(vec!["only", "header"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.starts_with("only  header\n"));
    }

    #[test]
    fn unicode_width_by_chars() {
        let mut t = Table::new(vec!["p"]);
        t.row(vec!["≤ 0.1%".into()]);
        assert!(t.render().contains("≤ 0.1%"));
    }
}
