//! Assembly of the MAWI-visible scanner population.

use crate::{background, WINDOW_LEN_MS, WINDOW_START_MS};
use lumen6_addr::Ipv6Prefix;
use lumen6_scanners::{
    actor::{ScannerActor, Schedule},
    fleet::Fleet,
    IidMode, PortSampler, SourceSampler, TargetSampler,
};
use lumen6_trace::{PacketRecord, SimTime, Transport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// MAWI simulation shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MawiConfig {
    /// Master seed.
    pub seed: u64,
    /// First simulated day.
    pub start_day: u64,
    /// One past the last simulated day (the paper analyzes 439 days).
    pub end_day: u64,
    /// Downstream (WIDE-side) prefixes observable at the link.
    pub downstream: Vec<Ipv6Prefix>,
    /// Background flows per daily window.
    pub background_flows_per_day: usize,
    /// Recurring ICMPv6 scanner count.
    pub icmpv6_scanners: usize,
    /// Recurring TCP scanner count (besides AS#1).
    pub tcp_scanners: usize,
    /// Packets of the December-24 peak (scaled from ~192 M visible).
    pub dec24_packets: u64,
    /// Packets of the July-6 ICMPv6 peak.
    pub jul6_packets: u64,
    /// Size of the synthetic public IPv6 hitlist.
    pub hitlist_size: usize,
    /// Ephemeral small-scale scanners per day: sources probing only 6–60
    /// destinations. Invisible under the paper's 100-destination definition
    /// but detected with the original Fukuda–Heidemann threshold of 5 — the
    /// order-of-magnitude gap between the two curves of Fig. 5.
    pub small_scanners_per_day: usize,
}

impl Default for MawiConfig {
    fn default() -> Self {
        MawiConfig {
            seed: 42,
            start_day: 0,
            end_day: 439,
            // The WIDE downstream allocations (2001:200::/32,
            // 2001:df0::/32, 2403:8080::/32), constructed from raw bits so
            // the default is panic-free by construction.
            downstream: vec![
                Ipv6Prefix::new(0x2001_0200 << 96, 32),
                Ipv6Prefix::new(0x2001_0df0 << 96, 32),
                Ipv6Prefix::new(0x2403_8080 << 96, 32),
            ],
            background_flows_per_day: 40,
            icmpv6_scanners: 5,
            tcp_scanners: 3,
            dec24_packets: 50_000,
            jul6_packets: 12_000,
            hitlist_size: 4_000,
            small_scanners_per_day: 55,
        }
    }
}

impl MawiConfig {
    /// A short window for tests.
    pub fn small() -> Self {
        MawiConfig {
            end_day: 30,
            background_flows_per_day: 15,
            dec24_packets: 5_000,
            jul6_packets: 2_000,
            hitlist_size: 1_500,
            small_scanners_per_day: 25,
            ..Default::default()
        }
    }
}

/// The assembled MAWI world.
#[derive(Debug, Clone)]
pub struct MawiWorld {
    config: MawiConfig,
    /// Scanner actors visible at the vantage.
    pub actors: Vec<ScannerActor>,
    /// The synthetic public IPv6 hitlist (low-Hamming addresses in the
    /// downstream space) — the overlap reference of Appendix A.2.
    pub hitlist: Vec<u128>,
    /// Source address of the AS#1 scanner (for cross-vantage checks).
    pub as1_source: u128,
    /// The /124 holding the July-6 AS#3 sources.
    pub jul6_prefix: Ipv6Prefix,
    /// Source of the December-24 scanner.
    pub dec24_source: u128,
}

/// A daily-window schedule: one session per day pinned to the capture
/// window.
fn window_schedule(start_day: u64, end_day: u64, packets: u64) -> Schedule {
    Schedule {
        start_day,
        end_day,
        sessions_per_week: 7.0,
        session_hours: WINDOW_LEN_MS as f64 / 3_600_000.0,
        packets_per_session: packets,
        pin_start_ms_in_day: Some(WINDOW_START_MS),
    }
}

impl MawiWorld {
    /// Builds the MAWI world. If `cdn_fleet` is given, the AS#1 and AS#3
    /// source identities are taken from it, so cross-vantage analyses can
    /// confirm "the most active MAWI source is the most active CDN source".
    pub fn build(config: MawiConfig, cdn_fleet: Option<&Fleet>) -> MawiWorld {
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x3a91);
        let mut actors = Vec::new();

        // Synthetic public hitlist: structured addresses in downstream space.
        let mut hitlist: Vec<u128> = Vec::with_capacity(config.hitlist_size);
        for i in 0..config.hitlist_size {
            let p = config.downstream[i % config.downstream.len()];
            // Downstream prefixes are at most /64, so the subnet always
            // exists; fall back to the prefix itself rather than panic if a
            // user config ever violates that.
            let sub = p.nth_subnet(64, rng.gen_range(0..1u128 << 16)).unwrap_or(p);
            hitlist.push(lumen6_addr::gen::low_weight_iid(
                &mut rng,
                (sub.bits() >> 64) as u64,
                5,
            ));
        }
        hitlist.sort_unstable();
        hitlist.dedup();

        // AS#1: same source identity as the CDN fleet when available.
        let as1_source = cdn_fleet
            .and_then(|f| {
                f.actors
                    .iter()
                    .find(|a| a.name == "as1-datacenter-cn")
                    .map(|a| match &a.sources {
                        SourceSampler::Single(s) => *s,
                        _ => unreachable!("AS1 is single-source"),
                    })
            })
            .unwrap_or(0x2001_0db0_0000_0000_0000_0000_0000_0001);
        let as1_asn = cdn_fleet
            .and_then(|f| f.truth.first().map(|t| t.asn))
            .unwrap_or(64_601);

        let switch_day = SimTime::from_date(2021, 5, 27).day_index();
        let may27 = switch_day; // hitlist day == port-switch day (§A.2)
        let sweep = |iid, subnets| TargetSampler::PrefixSweep {
            prefixes: config.downstream.clone(),
            iid,
            subnets_per_prefix: subnets,
        };
        // AS#1 pre-switch: many ports, structured sweep (only if the window
        // covers those days).
        if config.start_day < may27.min(config.end_day) {
            actors.push(ScannerActor {
                name: "mawi-as1-pre".into(),
                asn: as1_asn,
                sources: SourceSampler::Single(as1_source),
                targets: sweep(IidMode::LowHamming(8), 1 << 15),
                // Progressive sweep: ~8 of 444 ports per day, so per-port
                // destination counts stay above the detector's bar at
                // simulation scale while hundreds of ports accrue over weeks.
                ports: PortSampler::DailyRotate {
                    proto: Transport::Tcp,
                    pool: PortSampler::common_tcp_ports(444),
                    per_day: 8,
                },
                schedule: window_schedule(config.start_day, may27.min(config.end_day), 3_000),
                probe_len: 60,
            });
        }
        // AS#1 hitlist day (2021-05-27): far fewer unique targets, all from
        // the hitlist, now with the reduced port set.
        if (config.start_day..config.end_day).contains(&may27) {
            actors.push(ScannerActor {
                name: "mawi-as1-hitlist-day".into(),
                asn: as1_asn,
                sources: SourceSampler::Single(as1_source),
                // A seed-set refresh probes a small slice of the hitlist:
                // unique targets collapse (the paper: 50k+ -> 2.3k) while
                // the overlap with the hitlist jumps to ~100%.
                targets: TargetSampler::Hitlist(hitlist.iter().copied().take(600).collect()),
                ports: PortSampler::Set(Transport::Tcp, vec![22, 80, 443, 3389, 8080, 8443]),
                schedule: window_schedule(may27, may27 + 1, 3_000),
                probe_len: 60,
            });
        }
        // AS#1 post-switch: six ports, structured sweep.
        if config.end_day > may27 + 1 {
            actors.push(ScannerActor {
                name: "mawi-as1-post".into(),
                asn: as1_asn,
                sources: SourceSampler::Single(as1_source),
                targets: sweep(IidMode::LowHamming(8), 1 << 15),
                ports: PortSampler::Set(Transport::Tcp, vec![22, 80, 443, 3389, 8080, 8443]),
                schedule: window_schedule((may27 + 1).max(config.start_day), config.end_day, 2_000),
                probe_len: 60,
            });
        }

        // July 6 ICMPv6 event: 7 sources within one /124 of AS#3.
        let jul6 = SimTime::from_date(2021, 7, 6).day_index();
        let jul6_base: u128 = cdn_fleet
            .and_then(|f| f.truth.get(2).map(|t| t.prefix.first_addr()))
            .unwrap_or(0x2001_0db3_0000_0000_0000_0000_0000_0000)
            | 0xe0;
        let jul6_prefix = Ipv6Prefix::new(jul6_base, 124);
        if (config.start_day..config.end_day).contains(&jul6) {
            actors.push(ScannerActor {
                name: "mawi-as3-jul6".into(),
                asn: cdn_fleet
                    .and_then(|f| f.truth.get(2).map(|t| t.asn))
                    .unwrap_or(64_603),
                sources: SourceSampler::Pool((1..=7u128).map(|i| jul6_base | i).collect()),
                targets: sweep(IidMode::LowHamming(8), 1 << 15),
                ports: PortSampler::Icmpv6Echo,
                schedule: window_schedule(jul6, jul6 + 1, config.jul6_packets),
                probe_len: 96,
            });
        }

        // December 24 peak: single /128, random IIDs, a distinct /64 per
        // packet (subnets_per_prefix is large enough that collisions are
        // negligible), enormous rate.
        let dec24 = SimTime::from_date(2021, 12, 24).day_index();
        let dec24_source: u128 = 0x2600_1f00_0000_0000_0000_0000_0000_0042;
        if (config.start_day..config.end_day).contains(&dec24) {
            actors.push(ScannerActor {
                name: "mawi-cloud-dec24".into(),
                asn: 64_700,
                sources: SourceSampler::Single(dec24_source),
                targets: sweep(IidMode::Random, 1 << 30),
                ports: PortSampler::Icmpv6Echo,
                schedule: window_schedule(dec24, dec24 + 1, config.dec24_packets),
                probe_len: 104,
            });
        }

        // Recurring ICMPv6 scanners: active most days, moderate volume.
        for i in 0..config.icmpv6_scanners {
            let net: u64 = 0x2a00_0000_0000_0000 | ((i as u64 + 1) << 32);
            actors.push(ScannerActor {
                name: format!("mawi-icmp-{i}"),
                asn: 64_800 + i as u32,
                sources: SourceSampler::Single(((net as u128) << 64) | 0x1),
                targets: sweep(IidMode::LowHamming(10), 1 << 14),
                ports: PortSampler::Icmpv6Echo,
                schedule: Schedule {
                    // Active ~35% of days each: with five scanners, some
                    // ICMPv6 scan shows on ~88% of days (paper: 78%), and
                    // on a sizable share of days they outnumber the TCP
                    // scanners (paper: 236 of 439 days).
                    sessions_per_week: 2.45,
                    ..window_schedule(config.start_day, config.end_day, 150)
                },
                probe_len: 96,
            });
        }
        // Recurring TCP scanners.
        for i in 0..config.tcp_scanners {
            let net: u64 = 0x2c0f_0000_0000_0000 | ((i as u64 + 1) << 32);
            actors.push(ScannerActor {
                name: format!("mawi-tcp-{i}"),
                asn: 64_900 + i as u32,
                sources: SourceSampler::Single(((net as u128) << 64) | 0x2),
                targets: sweep(IidMode::LowHamming(9), 1 << 14),
                ports: PortSampler::Single(Transport::Tcp, [22u16, 443, 23, 8080][i % 4]),
                schedule: Schedule {
                    sessions_per_week: 2.1,
                    ..window_schedule(config.start_day, config.end_day, 150)
                },
                probe_len: 60,
            });
        }

        MawiWorld {
            config,
            actors,
            hitlist,
            as1_source,
            jul6_prefix,
            dec24_source,
        }
    }

    /// The build configuration.
    pub fn config(&self) -> &MawiConfig {
        &self.config
    }

    /// Generates the full link trace (scanners + background), time-sorted;
    /// every record falls inside some daily capture window.
    pub fn trace(&self) -> Vec<PacketRecord> {
        use rayon::prelude::*;
        let mut streams: Vec<Vec<PacketRecord>> = self
            .actors
            .par_iter()
            .map(|a| a.generate(self.config.seed))
            .collect();
        streams.push(background::generate(
            &self.config.downstream,
            self.config.background_flows_per_day,
            self.config.start_day,
            self.config.end_day,
            self.config.seed,
        ));
        streams.push(self.small_scanners());
        lumen6_trace::merge_sorted(streams)
    }

    /// Ephemeral small-scale scanners (see
    /// [`MawiConfig::small_scanners_per_day`]): one-port probes of 6–60
    /// distinct destinations with constant packet length, inside the
    /// capture window.
    fn small_scanners(&self) -> Vec<PacketRecord> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5a11);
        let mut out = Vec::new();
        for day in self.config.start_day..self.config.end_day {
            let (ws, we) = crate::capture_window(day);
            for _ in 0..self.config.small_scanners_per_day {
                let net: u64 = 0x2a0e_0000_0000_0000 | (rng.gen::<u64>() >> 12);
                let src = ((net as u128) << 64) | u128::from(rng.gen::<u16>());
                let n = rng.gen_range(6..60u64);
                let dport = [22u16, 23, 80, 443, 8080, 2323][rng.gen_range(0usize..6)];
                let p = self.config.downstream[rng.gen_range(0..self.config.downstream.len())];
                let t0 = rng.gen_range(ws..we - 1);
                for k in 0..n {
                    let sub = p.nth_subnet(64, rng.gen_range(0..1u128 << 16)).unwrap_or(p);
                    let dst =
                        lumen6_addr::gen::low_weight_iid(&mut rng, (sub.bits() >> 64) as u64, 6);
                    out.push(PacketRecord {
                        ts_ms: (t0 + k * rng.gen_range(100u64..2_000)).min(we - 1),
                        src,
                        dst,
                        proto: Transport::Tcp,
                        sport: rng.gen_range(32_768..61_000),
                        dport,
                        len: 60,
                    });
                }
            }
        }
        lumen6_trace::sort_by_time(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_days;
    use lumen6_detect::{AggLevel, MawiDetector};

    #[test]
    fn default_downstream_matches_textual_prefixes() {
        // The defaults are built from raw bits (panic-free); pin them to
        // the textual WIDE allocations they stand for.
        let want: Vec<Ipv6Prefix> = ["2001:200::/32", "2001:df0::/32", "2403:8080::/32"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(MawiConfig::default().downstream, want);
    }

    #[test]
    fn builds_with_and_without_fleet() {
        let w = MawiWorld::build(MawiConfig::small(), None);
        assert!(!w.actors.is_empty());
        assert!(!w.hitlist.is_empty());
        let fleet_world =
            lumen6_scanners::fleet::World::build(lumen6_scanners::FleetConfig::small());
        let w2 = MawiWorld::build(MawiConfig::small(), Some(&fleet_world.fleet));
        // AS1 identity shared with the CDN fleet.
        assert!(fleet_world.fleet.truth[0]
            .prefix
            .contains_addr(w2.as1_source));
    }

    #[test]
    fn trace_stays_inside_windows() {
        let w = MawiWorld::build(MawiConfig::small(), None);
        let trace = w.trace();
        assert!(!trace.is_empty());
        for r in &trace {
            let day = r.ts_ms / lumen6_trace::DAY_MS;
            let (s, e) = crate::capture_window(day);
            assert!(
                r.ts_ms >= s && r.ts_ms < e,
                "record at {} outside window",
                r.ts_ms
            );
        }
    }

    #[test]
    fn as1_detected_most_days() {
        let w = MawiWorld::build(MawiConfig::small(), None);
        let trace = w.trace();
        let det = MawiDetector::new(lumen6_detect::MawiConfig::paper(AggLevel::L64));
        let mut days_with_as1 = 0;
        for (_, slice) in split_days(&trace, 0, 30) {
            let scans = det.detect(slice);
            if scans.iter().any(|s| s.source.contains_addr(w.as1_source)) {
                days_with_as1 += 1;
            }
        }
        assert!(
            days_with_as1 >= 25,
            "AS1 visible on {days_with_as1} of 30 days"
        );
    }

    #[test]
    fn hitlist_addresses_have_low_weight() {
        let w = MawiWorld::build(MawiConfig::small(), None);
        let mean: f64 = w
            .hitlist
            .iter()
            .map(|&a| f64::from(lumen6_addr::hamming_weight_iid(a)))
            .sum::<f64>()
            / w.hitlist.len() as f64;
        assert!(mean < 5.0, "hitlist mean IID weight {mean}");
    }

    #[test]
    fn dec24_packets_have_random_iids_and_unique_64s() {
        let mut cfg = MawiConfig::small();
        cfg.start_day = 355;
        cfg.end_day = 360; // covers 2021-12-24 (day 357)
        let w = MawiWorld::build(cfg, None);
        let trace = w.trace();
        let dec: Vec<_> = trace.iter().filter(|r| r.src == w.dec24_source).collect();
        assert!(dec.len() >= 4_000);
        let dist = lumen6_addr::HammingDistribution::from_addrs(dec.iter().map(|r| r.dst));
        assert!(dist.looks_random(), "mean {}", dist.mean());
        // Nearly every packet targets a distinct /64.
        let distinct64: std::collections::HashSet<u64> =
            dec.iter().map(|r| (r.dst >> 64) as u64).collect();
        assert!(distinct64.len() * 100 >= dec.len() * 95);
    }

    #[test]
    fn jul6_sources_share_the_124() {
        let mut cfg = MawiConfig::small();
        cfg.start_day = 180;
        cfg.end_day = 190; // covers 2021-07-06 (day 186)
        let w = MawiWorld::build(cfg, None);
        let trace = w.trace();
        let jul: std::collections::HashSet<u128> = trace
            .iter()
            .filter(|r| w.jul6_prefix.contains_addr(r.src))
            .map(|r| r.src)
            .collect();
        assert_eq!(jul.len(), 7, "seven /128 sources in the /124");
        assert!(trace
            .iter()
            .filter(|r| w.jul6_prefix.contains_addr(r.src))
            .all(|r| r.proto == Transport::Icmpv6));
    }
}
