//! Background cross-traffic at the transit link.
//!
//! Real traffic the Fukuda–Heidemann criteria must reject: flows exchange
//! many packets with the *same* destination (tripping the
//! packets-per-destination cap) and variable packet lengths (tripping the
//! entropy criterion), even when a busy server contacts over 100 clients.

use crate::capture_window;
use lumen6_addr::{gen, Ipv6Prefix};
use lumen6_trace::{PacketRecord, Transport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates background flows inside each day's capture window.
///
/// `flows_per_day` flows each exchange 5–40 packets of varying length
/// between a remote host and a downstream host. A few "busy servers" also
/// appear, touching >100 destinations — with high length entropy, so the
/// detector must still reject them.
pub fn generate(
    downstream: &[Ipv6Prefix],
    flows_per_day: usize,
    start_day: u64,
    end_day: u64,
    seed: u64,
) -> Vec<PacketRecord> {
    assert!(!downstream.is_empty(), "need downstream prefixes");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbac0);
    let mut out = Vec::new();
    for day in start_day..end_day {
        let (ws, we) = capture_window(day);
        // Ordinary flows.
        for _ in 0..flows_per_day {
            let p = downstream[rng.gen_range(0..downstream.len())];
            let local = gen::random_in_prefix(&mut rng, p);
            let remote_net: u64 = 0x2400_0000_0000_0000 | (rng.gen::<u64>() >> 8);
            let remote = gen::random_iid(&mut rng, remote_net);
            let dport = [443u16, 80, 53, 8443, 993][rng.gen_range(0usize..5)];
            let n = rng.gen_range(5..40u64);
            let t0 = rng.gen_range(ws..we - 1);
            for k in 0..n {
                out.push(PacketRecord {
                    ts_ms: (t0 + k * rng.gen_range(5u64..2_000)).min(we - 1),
                    src: remote,
                    dst: local,
                    proto: Transport::Tcp,
                    sport: rng.gen_range(1024..65000),
                    dport,
                    len: rng.gen_range(40..1500),
                });
            }
        }
        // A couple of busy remote servers touching many destinations with
        // high length variance (e.g. a node pushing data to many clients).
        // The second one keeps a FIXED destination port: it satisfies every
        // Fukuda–Heidemann criterion except length entropy, which is the
        // only thing standing between it and a false positive.
        for fixed_port in [false, true] {
            let remote_net: u64 = 0x2400_0000_0000_0000 | (rng.gen::<u64>() >> 8);
            let remote = gen::random_iid(&mut rng, remote_net);
            let p = downstream[rng.gen_range(0..downstream.len())];
            let t0 = rng.gen_range(ws..we - 1);
            for k in 0..150u64 {
                let local = gen::random_in_prefix(&mut rng, p);
                out.push(PacketRecord {
                    ts_ms: (t0 + k * rng.gen_range(5u64..500)).min(we - 1),
                    src: remote,
                    dst: local,
                    proto: Transport::Tcp,
                    sport: 443,
                    dport: if fixed_port {
                        4500
                    } else {
                        rng.gen_range(1024..65000)
                    },
                    len: rng.gen_range(40..1500),
                });
            }
        }
    }
    lumen6_trace::sort_by_time(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::{AggLevel, MawiConfig, MawiDetector};

    fn downstream() -> Vec<Ipv6Prefix> {
        vec!["2001:db8::/32".parse().unwrap()]
    }

    #[test]
    fn background_stays_in_windows() {
        let recs = generate(&downstream(), 20, 0, 3, 5);
        assert!(!recs.is_empty());
        for r in &recs {
            let day = r.ts_ms / lumen6_trace::DAY_MS;
            let (s, e) = capture_window(day);
            assert!(r.ts_ms >= s && r.ts_ms < e);
        }
    }

    #[test]
    fn background_is_rejected_by_the_detector() {
        let recs = generate(&downstream(), 60, 0, 2, 5);
        for (_, day) in crate::split_days(&recs, 0, 2) {
            let scans = MawiDetector::new(MawiConfig::loose(AggLevel::L64)).detect(day);
            assert!(
                scans.is_empty(),
                "background must not register as scans: {scans:?}"
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&downstream(), 10, 0, 2, 9),
            generate(&downstream(), 10, 0, 2, 9)
        );
    }
}
